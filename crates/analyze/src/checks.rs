//! The seven checks (VP001–VP007) over a parsed program.
//!
//! | code  | severity | finding |
//! |-------|----------|---------|
//! | VP001 | error    | predicate used with inconsistent arities |
//! | VP002 | warning  | constant or repeated variable in a rule head |
//! | VP003 | warning  | disconnected rule body (cartesian product) |
//! | VP004 | warning  | duplicate / homomorphically subsumed subgoal |
//! | VP005 | warning  | query subgoal no view can cover ⇒ no complete rewriting |
//! | VP006 | warning  | view that can never participate in a rewriting |
//! | VP007 | warning  | predicted search-space blowup |
//!
//! Only VP001 is an error: an arity mismatch makes the canonical
//! database ill-typed (a fact with the wrong width), so every downstream
//! phase — homomorphism search, evaluation, planning — would silently
//! compute over garbage. Everything else leaves the pipeline
//! well-defined; the warnings just say the result is probably not what
//! the author wanted (provably empty rewriting sets, cartesian
//! products, dead views, exponential blowups).

use crate::diagnostics::{Analysis, Diagnostic};
use std::collections::{HashMap, HashSet};
use viewplan_containment::minimize;
use viewplan_core::{body_signature, view_is_unusable, MAX_SUBGOALS};
use viewplan_cq::{
    hypertree_width_estimate, Atom, ConjunctiveQuery, Program, RuleSpans, Span, Symbol, Term, View,
    ViewSet,
};

/// How the rules of a program divide into queries and views.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Layout {
    /// `rewrite`/`plan`/`eval` problem files: rule 0 is the query, every
    /// later rule defines a view.
    Problem,
    /// `batch` files: the first `view_count` rules define views, every
    /// later rule is a query against them.
    Batch {
        /// Number of leading view rules.
        view_count: usize,
    },
    /// `serve` view files: every rule defines a view; queries arrive
    /// later over stdin.
    ViewsOnly,
}

/// Candidate-homomorphism estimate above which VP007 fires: beyond this
/// many candidate mappings the cover search is likely to need a budget
/// (`--deadline` / `--node-budget`) to answer interactively.
pub const BLOWUP_THRESHOLD: f64 = 10_000.0;

/// Analyzes a parsed program under the given layout. The returned
/// findings are sorted by source position.
pub fn analyze(program: &Program, layout: Layout) -> Analysis {
    let n = program.rules.len();
    let view_range = match layout {
        Layout::Problem => 1.min(n)..n,
        Layout::Batch { view_count } => 0..view_count.min(n),
        Layout::ViewsOnly => 0..n,
    };
    let query_indices: Vec<usize> = (0..n).filter(|i| !view_range.contains(i)).collect();
    let view_indices: Vec<usize> = view_range.collect();

    let mut out = Vec::new();
    check_arity(program, &query_indices, &mut out);
    let arity_consistent = out.is_empty();
    for i in 0..n {
        let rule = &program.rules[i];
        let spans = &program.spans[i];
        check_head_anomalies(rule, spans, &mut out);
        check_connectivity(rule, spans, &mut out);
        check_redundant_subgoals(rule, spans, &mut out);
    }
    // The cross-rule checks compare (predicate, arity) signatures, so an
    // arity mismatch would cascade into spurious coverage findings —
    // suppress them until VP001 is fixed (rustc-style).
    if arity_consistent {
        let views: Vec<&ConjunctiveQuery> =
            view_indices.iter().map(|&i| &program.rules[i]).collect();
        if !views.is_empty() {
            for &qi in &query_indices {
                check_coverage(&program.rules[qi], &program.spans[qi], &views, &mut out);
            }
            check_dead_views(program, &query_indices, &view_indices, &mut out);
        }
        for &qi in &query_indices {
            check_blowup(&program.rules[qi], &program.spans[qi], &views, &mut out);
        }
    }
    Analysis { diagnostics: out }.finish()
}

/// Only the error-severity checks (currently VP001) — the cheap input
/// gate the processing commands run before any real work. Unlike
/// [`analyze`] this performs no containment reasoning, so it leaves the
/// observability counters of the pipeline it guards untouched.
pub fn analyze_errors(program: &Program, layout: Layout) -> Analysis {
    let n = program.rules.len();
    let view_range = match layout {
        Layout::Problem => 1.min(n)..n,
        Layout::Batch { view_count } => 0..view_count.min(n),
        Layout::ViewsOnly => 0..n,
    };
    let query_indices: Vec<usize> = (0..n).filter(|i| !view_range.contains(i)).collect();
    let mut out = Vec::new();
    check_arity(program, &query_indices, &mut out);
    Analysis { diagnostics: out }.finish()
}

/// Cheap arity validation of one ad-hoc query against a fixed view set —
/// the `serve` reject-before-cache path, where queries come from stdin
/// and carry no spans. Returns the first conflict as an error message.
pub fn validate_query_against_views(
    query: &ConjunctiveQuery,
    views: &ViewSet,
) -> Result<(), String> {
    let mut arity: HashMap<Symbol, usize> = HashMap::new();
    for v in views.iter() {
        arity.insert(v.name(), v.arity());
        for a in &v.definition.body {
            arity.entry(a.predicate).or_insert(a.terms.len());
        }
    }
    for a in query.body.iter().chain(std::iter::once(&query.head)) {
        if let Some(&expected) = arity.get(&a.predicate) {
            if expected != a.terms.len() {
                return Err(format!(
                    "[VP001] arity mismatch: '{}' is used with {} arguments, but the view set \
                     defines it with {}",
                    a.predicate,
                    a.terms.len(),
                    expected
                ));
            }
        }
    }
    Ok(())
}

/// VP001: every use of a predicate must agree on arity. The first
/// (source-order) use fixes the arity; later conflicting uses are
/// errors. Query-rule heads are checked against the map but do not
/// populate it: a batch file legitimately reuses one head name (`q`)
/// across queries of different shapes.
fn check_arity(program: &Program, query_indices: &[usize], out: &mut Vec<Diagnostic>) {
    let is_query: HashSet<usize> = query_indices.iter().copied().collect();
    let mut first: HashMap<Symbol, (usize, Span)> = HashMap::new();
    let mut visit =
        |pred: Symbol, arity: usize, span: Span, query_head: bool, out: &mut Vec<_>| match first
            .get(&pred)
        {
            Some(&(expected, at)) if expected != arity => out.push(Diagnostic::error(
                "VP001",
                span,
                format!(
                    "arity mismatch: '{pred}' is used here with {arity} arguments, but with \
                     {expected} at line {}, column {}",
                    at.line, at.column
                ),
            )),
            Some(_) => {}
            None => {
                if !query_head {
                    first.insert(pred, (arity, span));
                }
            }
        };
    for (i, rule) in program.rules.iter().enumerate() {
        let spans = &program.spans[i];
        visit(
            rule.head.predicate,
            rule.head.terms.len(),
            spans.head,
            is_query.contains(&i),
            out,
        );
        for (a, s) in rule.body.iter().zip(&spans.body) {
            visit(a.predicate, a.terms.len(), *s, false, out);
        }
    }
}

/// VP002: heads should be a list of distinct variables. A constant in
/// the head is legal but almost always a typo (the paper's queries and
/// views all have variable heads); a repeated head variable exports the
/// same column twice.
fn check_head_anomalies(rule: &ConjunctiveQuery, spans: &RuleSpans, out: &mut Vec<Diagnostic>) {
    let mut seen: HashSet<Symbol> = HashSet::new();
    for t in &rule.head.terms {
        match *t {
            Term::Const(c) => out.push(Diagnostic::warning(
                "VP002",
                spans.head,
                format!(
                    "constant '{c}' in the head of '{}': heads should contain only variables",
                    rule.head.predicate
                ),
            )),
            Term::Var(v) => {
                if !seen.insert(v) {
                    out.push(Diagnostic::warning(
                        "VP002",
                        spans.head,
                        format!(
                            "variable '{v}' is repeated in the head of '{}': the same column is \
                             exported twice",
                            rule.head.predicate
                        ),
                    ));
                }
            }
        }
    }
}

/// VP003: subgoals that share no variables (directly or transitively)
/// join as a cartesian product. Anchored at the first subgoal outside
/// the component of the first subgoal.
fn check_connectivity(rule: &ConjunctiveQuery, spans: &RuleSpans, out: &mut Vec<Diagnostic>) {
    let k = rule.body.len();
    if k < 2 {
        return;
    }
    // Union-find over subgoal indices, merged through shared variables.
    let mut parent: Vec<usize> = (0..k).collect();
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    let mut owner: HashMap<Symbol, usize> = HashMap::new();
    for (i, atom) in rule.body.iter().enumerate() {
        for v in atom.variables() {
            match owner.get(&v) {
                Some(&j) => {
                    let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                    parent[a] = b;
                }
                None => {
                    owner.insert(v, i);
                }
            }
        }
    }
    let root0 = find(&mut parent, 0);
    let components: HashSet<usize> = (0..k).map(|i| find(&mut parent, i)).collect();
    if components.len() > 1 {
        let stray = (1..k)
            .find(|&i| find(&mut parent, i) != root0)
            .unwrap_or(k - 1);
        out.push(Diagnostic::warning(
            "VP003",
            spans.body[stray],
            format!(
                "the body of '{}' splits into {} groups of subgoals that share no variables: \
                 they join as a cartesian product",
                rule.head.predicate,
                components.len()
            ),
        ));
    }
}

/// VP004: a subgoal that is an exact duplicate, or that minimization
/// (Chandra–Merlin core computation) removes as homomorphically
/// subsumed, contributes nothing to the query's meaning.
fn check_redundant_subgoals(rule: &ConjunctiveQuery, spans: &RuleSpans, out: &mut Vec<Diagnostic>) {
    // Exact duplicates first, keeping the earliest occurrence.
    let mut first_at: HashMap<&Atom, Span> = HashMap::new();
    let mut kept: Vec<usize> = Vec::new();
    for (j, a) in rule.body.iter().enumerate() {
        match first_at.get(a) {
            Some(at) => out.push(Diagnostic::warning(
                "VP004",
                spans.body[j],
                format!(
                    "duplicate subgoal '{a}' (already written at line {}, column {})",
                    at.line, at.column
                ),
            )),
            None => {
                first_at.insert(a, spans.body[j]);
                kept.push(j);
            }
        }
    }
    // Then homomorphic subsumption: minimize() only deletes subgoals, so
    // the atoms it keeps are (a sub-multiset of) the deduplicated body,
    // and a counting diff recovers exactly which ones were dropped.
    let deduped = rule.dedup_subgoals();
    if deduped.body.len() < 2 {
        return;
    }
    let minimized = minimize(&deduped);
    if minimized.body.len() == deduped.body.len() {
        return;
    }
    let mut remaining: HashMap<&Atom, usize> = HashMap::new();
    for a in &minimized.body {
        *remaining.entry(a).or_insert(0) += 1;
    }
    for (pos, a) in kept.iter().map(|&j| (j, &rule.body[j])) {
        match remaining.get_mut(a) {
            Some(c) if *c > 0 => *c -= 1,
            _ => out.push(Diagnostic::warning(
                "VP004",
                spans.body[pos],
                format!(
                    "subgoal '{a}' is redundant in '{}': minimization removes it \
                     (homomorphically subsumed by the rest of the body)",
                    rule.head.predicate
                ),
            )),
        }
    }
}

/// VP005: a query subgoal whose (predicate, arity) appears in no view
/// body can never be covered, so no complete rewriting exists (the
/// expansion of any rewriting would miss that subgoal — Lemma 3.2).
fn check_coverage(
    query: &ConjunctiveQuery,
    spans: &RuleSpans,
    views: &[&ConjunctiveQuery],
    out: &mut Vec<Diagnostic>,
) {
    let mut available: HashSet<(Symbol, usize)> = HashSet::new();
    for v in views {
        for a in &v.body {
            available.insert((a.predicate, a.terms.len()));
        }
    }
    for (a, s) in query.body.iter().zip(&spans.body) {
        if !available.contains(&(a.predicate, a.terms.len())) {
            out.push(Diagnostic::warning(
                "VP005",
                *s,
                format!(
                    "subgoal '{}/{}' of '{}' occurs in no view definition: no complete \
                     rewriting can exist",
                    a.predicate,
                    a.terms.len(),
                    query.head.predicate
                ),
            ));
        }
    }
}

/// Can view-body atom `a` be mapped onto query subgoal `g` by *some*
/// homomorphism into the canonical database? Necessary conditions only:
/// same predicate and arity; a constant in `a` must meet the *same*
/// constant in `g` — canonical-database facts hold frozen variables
/// distinct from every real constant, so a view constant can never match
/// a query-variable position.
fn atom_can_map(a: &Atom, g: &Atom) -> bool {
    if a.predicate != g.predicate || a.terms.len() != g.terms.len() {
        return false;
    }
    a.terms.iter().zip(&g.terms).all(|(ta, tg)| match (ta, tg) {
        (Term::Const(c), Term::Const(d)) => c == d,
        (Term::Const(_), Term::Var(_)) => false,
        (Term::Var(_), _) => true,
    })
}

/// Can view-body atom `a` *cover* query subgoal `g` — end up in a
/// nonempty tuple-core a rewriting uses? On top of [`atom_can_map`],
/// MiniCon's export condition: a distinguished query variable must meet
/// a distinguished view variable, or the view cannot export the value
/// the covering needs (cf. MiniCon property C2).
fn atom_may_cover(
    a: &Atom,
    dist_view: &HashSet<Symbol>,
    g: &Atom,
    dist_query: &HashSet<Symbol>,
) -> bool {
    atom_can_map(a, g)
        && a.terms.iter().zip(&g.terms).all(|(ta, tg)| match (ta, tg) {
            (Term::Var(av), Term::Var(gv)) => !dist_query.contains(gv) || dist_view.contains(av),
            _ => true,
        })
}

/// VP006: a view that can never participate usefully in a rewriting.
/// Two strengths, checked against every query of the program (a view is
/// only flagged when it is dead for *all* of them):
///
/// * **unmatchable** — some view subgoal has no query subgoal it can map
///   onto ([`atom_can_map`]): foreign predicate, or conflicting constant
///   positions. No homomorphism into the canonical database exists, so
///   the view yields zero view tuples. The foreign-predicate sub-case is
///   exactly what the rewriter prunes on
///   ([`viewplan_core::view_is_unusable`]).
/// * **cover-impossible** — view tuples may exist, but no view subgoal
///   can cover any query subgoal under [`atom_may_cover`], so every
///   tuple-core is empty: the view can act only as an M2 filter, never
///   in a cover. Diagnostic-only — filters are legitimate, so the
///   rewriter must not (and does not) prune on this.
fn check_dead_views(
    program: &Program,
    query_indices: &[usize],
    view_indices: &[usize],
    out: &mut Vec<Diagnostic>,
) {
    if query_indices.is_empty() {
        return;
    }
    // Per query: the rule, its distinguished variables, and its body's
    // (predicate, arity) signature.
    type QueryFacts<'a> = (
        &'a ConjunctiveQuery,
        HashSet<Symbol>,
        HashSet<(Symbol, usize)>,
    );
    let queries: Vec<QueryFacts> = query_indices
        .iter()
        .map(|&i| {
            let q = &program.rules[i];
            (q, q.distinguished_set(), body_signature(q))
        })
        .collect();
    for &vi in view_indices {
        let rule = &program.rules[vi];
        let view = View {
            definition: rule.clone(),
        };
        let dist_view = rule.distinguished_set();
        let mut foreign_example: Option<&Atom> = None;
        let mut unmatchable_example: Option<&Atom> = None;
        let mut unmatchable_for_all = true;
        let mut coverless_for_all = true;
        for (q, dist_query, sig) in &queries {
            let unmatchable = rule
                .body
                .iter()
                .find(|a| !q.body.iter().any(|g| atom_can_map(a, g)));
            if let Some(a) = unmatchable {
                unmatchable_example = unmatchable_example.or(Some(a));
                if foreign_example.is_none() && view_is_unusable(sig, &view) {
                    foreign_example = rule
                        .body
                        .iter()
                        .find(|a| !sig.contains(&(a.predicate, a.terms.len())));
                }
                continue;
            }
            unmatchable_for_all = false;
            let covers_something = rule.body.iter().any(|a| {
                q.body
                    .iter()
                    .any(|g| atom_may_cover(a, &dist_view, g, dist_query))
            });
            if covers_something {
                coverless_for_all = false;
                break;
            }
        }
        if !coverless_for_all {
            continue;
        }
        let name = rule.head.predicate;
        let span = program.spans[vi].head;
        if unmatchable_for_all {
            if let Some(a) = foreign_example {
                out.push(Diagnostic::warning(
                    "VP006",
                    span,
                    format!(
                        "view '{name}' can never match: its subgoal '{}/{}' occurs in no \
                         query body, so it yields no view tuples (the rewriter prunes it)",
                        a.predicate,
                        a.terms.len()
                    ),
                ));
            } else {
                let a = unmatchable_example
                    .map(|a| a.to_string())
                    .unwrap_or_default();
                out.push(Diagnostic::warning(
                    "VP006",
                    span,
                    format!(
                        "view '{name}' can never match: its subgoal '{a}' maps onto no query \
                         subgoal (conflicting constant positions), so it yields no view tuples"
                    ),
                ));
            }
        } else {
            out.push(Diagnostic::warning(
                "VP006",
                span,
                format!(
                    "view '{name}' can cover no query subgoal (a distinguished query variable \
                     always meets a non-distinguished view variable, cf. MiniCon): it can act \
                     only as a filter, never in a rewriting's cover"
                ),
            ));
        }
    }
}

/// VP007: predicted search-space blowup — either the query is wider than
/// the cover engine's bitmask width, or the number of candidate
/// homomorphisms from the views into the query (the product, over each
/// view's subgoals, of the matching query subgoals) exceeds
/// [`BLOWUP_THRESHOLD`]. Either way, `--deadline`/`--node-budget` (the
/// anytime budgets) are the recommended mitigation.
fn check_blowup(
    query: &ConjunctiveQuery,
    spans: &RuleSpans,
    views: &[&ConjunctiveQuery],
    out: &mut Vec<Diagnostic>,
) {
    if query.body.len() > MAX_SUBGOALS {
        out.push(Diagnostic::warning(
            "VP007",
            spans.head,
            format!(
                "query '{}' has {} subgoals, beyond the {MAX_SUBGOALS} the cover search \
                 supports: rewriting will fail unless minimization shrinks it",
                query.head.predicate,
                query.body.len()
            ),
        ));
    }
    if views.is_empty() {
        return;
    }
    let mut matches: HashMap<(Symbol, usize), f64> = HashMap::new();
    for g in &query.body {
        *matches.entry((g.predicate, g.terms.len())).or_insert(0.0) += 1.0;
    }
    let estimate: f64 = views
        .iter()
        .map(|v| {
            v.body
                .iter()
                .map(|a| {
                    matches
                        .get(&(a.predicate, a.terms.len()))
                        .copied()
                        .unwrap_or(0.0)
                })
                .product::<f64>()
        })
        .sum();
    if estimate > BLOWUP_THRESHOLD {
        // The hypergraph structure tempers the prediction: width 1 means
        // the query is acyclic, so containment checks take the semijoin
        // fast path and evaluation can semijoin-reduce (intermediates
        // stay linear); only cyclic queries face the exponential search.
        let width = hypertree_width_estimate(&query.body);
        let structure = if width <= 1 {
            "hypertree width 1 — acyclic, so the semijoin fast path keeps \
             containment checks and intermediates polynomial"
                .to_string()
        } else {
            format!("hypertree width ~{width} — cyclic, search may be exponential")
        };
        out.push(Diagnostic::warning(
            "VP007",
            spans.head,
            format!(
                "predicted search-space blowup for '{}': ~{estimate:.0} candidate \
                 homomorphisms from {} views into the query ({structure}); consider \
                 running with --deadline or --node-budget",
                query.head.predicate,
                views.len()
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Severity;
    use viewplan_cq::parse_program;

    fn run(src: &str, layout: Layout) -> Analysis {
        analyze(&parse_program(src).unwrap(), layout)
    }

    fn codes(a: &Analysis) -> Vec<&'static str> {
        a.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_problem_has_no_findings() {
        let a = run(
            "q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y).\n\
             v1(A, B) :- a(A, B), a(B, B).\n\
             v2(C, D) :- a(C, E), b(C, D).",
            Layout::Problem,
        );
        assert!(a.is_empty(), "unexpected findings: {:?}", a.diagnostics);
    }

    #[test]
    fn vp001_arity_mismatch_is_an_error_with_a_span() {
        let src = "q(X) :- e(X, Y).\nv(A) :- e(A, A, A).";
        let a = run(src, Layout::Problem);
        assert_eq!(codes(&a), ["VP001"]);
        let d = &a.diagnostics[0];
        assert!(a.has_errors());
        assert_eq!(d.span.slice(src), "e(A, A, A)");
        assert_eq!((d.span.line, d.span.column), (2, 9));
        assert!(d.message.contains("3 arguments"));
        assert!(d.message.contains("with 2 at line 1, column 9"));
    }

    #[test]
    fn vp001_ignores_query_head_reuse_across_batch_queries() {
        // Two batch queries named `q` with different arities are fine…
        let src = "v(A, B) :- a(A, B).\nq(X, Y) :- a(X, Y).\nq(X) :- a(X, X).";
        let a = run(src, Layout::Batch { view_count: 1 });
        assert!(a.is_empty(), "unexpected findings: {:?}", a.diagnostics);
        // …but a query head colliding with a view name of another arity
        // is still an error.
        let src2 = "v(A, B) :- a(A, B).\nv(X) :- a(X, X).";
        let a2 = run(src2, Layout::Batch { view_count: 1 });
        assert_eq!(codes(&a2), ["VP001"]);
    }

    #[test]
    fn vp002_head_constant_and_repeated_variable() {
        let src = "q(X, c, X) :- e(X, Y).";
        let a = run(src, Layout::ViewsOnly);
        assert_eq!(codes(&a), ["VP002", "VP002"]);
        assert!(
            a.diagnostics
                .iter()
                .all(|d| d.severity == Severity::Warning),
            "VP002 findings must be warnings"
        );
        assert!(a.diagnostics[0].span.slice(src).starts_with("q(X, c, X)"));
        let messages: Vec<&str> = a.diagnostics.iter().map(|d| d.message.as_str()).collect();
        assert!(messages.iter().any(|m| m.contains("constant 'c'")));
        assert!(messages
            .iter()
            .any(|m| m.contains("variable 'X' is repeated")));
    }

    #[test]
    fn vp003_disconnected_body() {
        let src = "q(X, U) :- e(X, Y), f(Y, X), g(U, W).";
        let a = run(src, Layout::ViewsOnly);
        assert_eq!(codes(&a), ["VP003"]);
        assert_eq!(a.diagnostics[0].span.slice(src), "g(U, W)");
        assert!(a.diagnostics[0].message.contains("2 groups"));
        // A chain that reconnects transitively is fine.
        let b = run("q(X) :- e(X, Y), f(Y, Z), g(Z, X).", Layout::ViewsOnly);
        assert!(b.is_empty());
    }

    #[test]
    fn vp004_duplicate_and_subsumed_subgoals() {
        let src = "q(X) :- e(X, Y), e(X, Y).";
        let a = run(src, Layout::ViewsOnly);
        assert_eq!(codes(&a), ["VP004"]);
        assert_eq!(a.diagnostics[0].span.slice(src), "e(X, Y)");
        assert_eq!(a.diagnostics[0].span.column, 18);
        assert!(a.diagnostics[0].message.contains("duplicate subgoal"));

        // e(X, Z) is not a duplicate but is homomorphically subsumed.
        let src2 = "q(X) :- e(X, Y), e(X, Z).";
        let b = run(src2, Layout::ViewsOnly);
        assert_eq!(codes(&b), ["VP004"]);
        assert!(b.diagnostics[0].message.contains("minimization removes it"));
        assert_eq!(b.diagnostics[0].span.line, 1);
    }

    #[test]
    fn vp005_uncovered_query_subgoal() {
        let src = "q(X) :- e(X, Y), f(Y, X).\nv(A) :- e(A, A).";
        let a = run(src, Layout::Problem);
        assert_eq!(codes(&a), ["VP005"]);
        assert_eq!(a.diagnostics[0].span.slice(src), "f(Y, X)");
        assert!(a.diagnostics[0].message.contains("'f/2'"));
        assert!(a.diagnostics[0].message.contains("no complete rewriting"));
    }

    #[test]
    fn vp006_foreign_predicate_view() {
        let src = "q(X) :- e(X, Y).\nv(A) :- e(A, B), zzz(B).";
        let a = run(src, Layout::Problem);
        assert_eq!(codes(&a), ["VP006"]);
        assert_eq!(a.diagnostics[0].span.slice(src), "v(A)");
        assert!(a.diagnostics[0].message.contains("'zzz/1'"));
        assert!(a.diagnostics[0].message.contains("prunes it"));
    }

    #[test]
    fn vp006_export_impossible_view() {
        // The view's only subgoal can only sit on e(X, Y), but X is
        // distinguished in the query while A is existential in the view.
        let src = "q(X) :- e(X, Y).\nv(B) :- e(A, B).";
        let a = run(src, Layout::Problem);
        assert_eq!(codes(&a), ["VP006"]);
        assert!(a.diagnostics[0].message.contains("only as a filter"));
    }

    #[test]
    fn vp006_constant_conflict_view() {
        // The view pins position 1 to a constant the query never uses:
        // no homomorphism into the canonical database can exist.
        let src = "q(X) :- e(X, Y).\nv(A) :- e(A, nope).";
        let a = run(src, Layout::Problem);
        assert_eq!(codes(&a), ["VP006"]);
        assert!(a.diagnostics[0].message.contains("conflicting constant"));
    }

    #[test]
    fn vp006_spares_views_alive_for_some_batch_query() {
        // Dead for the first query, alive for the second → no finding.
        let src = "v(A, B) :- f(A, B).\nq(X) :- e(X, X).\nq2(X) :- f(X, Y).";
        let a = run(src, Layout::Batch { view_count: 1 });
        assert!(codes(&a).contains(&"VP005")); // e/2 uncovered for q
        assert!(!codes(&a).contains(&"VP006"));
    }

    #[test]
    fn vp006_spares_filter_candidate_views() {
        // carlocpart's v3 exports only S; it survives as a filter and
        // must not be called dead.
        let src = "q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C).\n\
                   v3(S) :- car(M, anderson), loc(anderson, C), part(S, M, C).";
        let a = run(src, Layout::Problem);
        assert!(!codes(&a).contains(&"VP006"), "{:?}", a.diagnostics);
    }

    #[test]
    fn vp007_blowup_estimate() {
        // 8 query subgoals on `e`, one view with 5 `e` subgoals:
        // 8^5 = 32768 > 10000 candidate homomorphisms.
        let query_body: Vec<String> = (0..8).map(|i| format!("e(X{i}, Y{i})")).collect();
        let view_body: Vec<String> = (0..5).map(|i| format!("e(A{i}, B{i})")).collect();
        let src = format!(
            "q(X0) :- {}.\nv(A0) :- {}.",
            query_body.join(", "),
            view_body.join(", ")
        );
        let a = run(&src, Layout::Problem);
        assert!(codes(&a).contains(&"VP007"), "{:?}", a.diagnostics);
        let d = a.diagnostics.iter().find(|d| d.code == "VP007").unwrap();
        assert!(d.message.contains("32768"));
        // The disconnected e(Xi, Yi) pairs are acyclic — the finding
        // reports that the blowup is tempered by the fast path.
        assert!(d.message.contains("hypertree width 1"), "{}", d.message);
        assert!(d.message.contains("acyclic"), "{}", d.message);
        assert_eq!(d.span.slice(&src), "q(X0)");
    }

    #[test]
    fn vp007_reports_width_of_cyclic_queries() {
        // A triangle of e-atoms padded with enough matching subgoals to
        // cross the threshold: 6 e-subgoals, view with 5 → 6^5 = 7776…
        // pad to 7 subgoals: 7^5 = 16807 > 10000.
        let query_body = "e(A, B), e(B, C), e(C, A), e(D, E), e(E, F), e(F, G), e(G, H)";
        let view_body: Vec<String> = (0..5).map(|i| format!("e(P{i}, R{i})")).collect();
        let src = format!("q(A) :- {query_body}.\nv(P0) :- {}.", view_body.join(", "));
        let a = run(&src, Layout::Problem);
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == "VP007")
            .expect("blowup should fire");
        assert!(d.message.contains("hypertree width ~2"), "{}", d.message);
        assert!(d.message.contains("cyclic"), "{}", d.message);
    }

    #[test]
    fn serve_validation_rejects_arity_conflicts() {
        use viewplan_cq::{parse_query, parse_views};
        let views = parse_views("v1(A, B) :- a(A, B), a(B, B).").unwrap();
        let ok = parse_query("q(X) :- a(X, X)").unwrap();
        assert!(validate_query_against_views(&ok, &views).is_ok());
        let bad = parse_query("q(X) :- a(X, X, X)").unwrap();
        let err = validate_query_against_views(&bad, &views).unwrap_err();
        assert!(err.contains("VP001"), "{err}");
        assert!(err.contains("3 arguments"));
        let bad_head = parse_query("v1(X, Y, Z) :- a(X, Y), a(Y, Z)").unwrap();
        assert!(validate_query_against_views(&bad_head, &views).is_err());
    }
}
