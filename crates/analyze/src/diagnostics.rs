//! The diagnostic data model: coded, span-carrying findings.

use viewplan_cq::Span;

/// How serious a diagnostic is.
///
/// Only [`Severity::Error`] diagnostics make a program unprocessable:
/// the CLI refuses to run `rewrite`/`plan`/`eval`/`batch`/`serve` over a
/// program with errors (exit code 2), while warnings merely print.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Suspicious but processable: the pipeline will run, though the
    /// result is likely not what the author intended (or provably empty).
    Warning,
    /// Unprocessable: running the pipeline over this program would
    /// produce garbage (e.g. an arity mismatch makes the canonical
    /// database ill-typed).
    Error,
}

impl Severity {
    /// Lower-case label used by both renderers ("error" / "warning").
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding: a stable code, a severity, a human message, and the
/// source span of the offending construct.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Stable machine-readable code (`"VP001"` … `"VP007"`).
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// Where in the source the finding anchors (byte range + line/col).
    pub span: Span,
}

impl Diagnostic {
    /// An error-severity diagnostic.
    pub fn error(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    /// A warning-severity diagnostic.
    pub fn warning(code: &'static str, span: Span, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }
}

/// The result of analyzing one program: all findings, in source order.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// Findings sorted by (source position, code).
    pub diagnostics: Vec<Diagnostic>,
}

impl Analysis {
    /// True iff any finding has error severity.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// True iff the program is clean.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Sorts findings into the deterministic presentation order: source
    /// position first, then code, then message (for co-anchored pairs).
    pub(crate) fn finish(mut self) -> Analysis {
        self.diagnostics.sort_by(|a, b| {
            (a.span.start, a.span.end, a.code, &a.message).cmp(&(
                b.span.start,
                b.span.end,
                b.code,
                &b.message,
            ))
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_ordering() {
        let a = Analysis {
            diagnostics: vec![
                Diagnostic::warning("VP003", Span::new(10, 12, 2, 1), "later"),
                Diagnostic::error("VP001", Span::new(0, 4, 1, 1), "earlier"),
            ],
        }
        .finish();
        assert!(a.has_errors());
        assert_eq!(a.error_count(), 1);
        assert_eq!(a.warning_count(), 1);
        assert_eq!(a.diagnostics[0].code, "VP001");
        assert_eq!(a.diagnostics[1].code, "VP003");
    }

    #[test]
    fn clean_analysis() {
        let a = Analysis::default();
        assert!(a.is_empty());
        assert!(!a.has_errors());
        assert_eq!(a.errors().count(), 0);
    }
}
