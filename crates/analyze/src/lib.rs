//! Static analysis over `viewplan` query/view programs.
//!
//! A diagnostic engine over parsed `.vp` programs: it takes a
//! [`viewplan_cq::Program`] (whose parser records a byte-range
//! [`viewplan_cq::Span`] for every head and body atom) plus a [`Layout`]
//! saying which rules are queries and which define views, and emits
//! coded, span-carrying [`Diagnostic`]s:
//!
//! * **VP001** (error) — a predicate used with inconsistent arities;
//! * **VP002** — constant or repeated variable in a rule head;
//! * **VP003** — disconnected rule body (cartesian product);
//! * **VP004** — duplicate or homomorphically subsumed subgoal;
//! * **VP005** — query subgoal no view covers ⇒ no complete rewriting
//!   exists (Lemma 3.2);
//! * **VP006** — a view that can never participate in a rewriting
//!   (foreign predicates / conflicting constants ⇒ zero view tuples;
//!   or MiniCon-style distinguished-variable export impossible ⇒
//!   filter-only);
//! * **VP007** — predicted search-space blowup (subgoal count beyond
//!   the cover bitmasks, or too many candidate homomorphisms).
//!
//! Only VP001 is an error; the CLI's `check` command exits 2 exactly
//! when errors are present, and the processing commands
//! (`rewrite`/`plan`/`eval`/`batch`/`serve`) refuse to run such
//! programs. [`render_human`] produces rustc-style colored output with
//! `line:column` and an underline; [`render_json`] a stable JSON
//! document for editors and CI.
//!
//! The VP006 *foreign predicate* condition doubles as the rewriter's
//! pruning pre-pass (see `viewplan_core::prune`): dropping such a view
//! before view-tuple construction provably cannot change the rewriting
//! set, because no homomorphism from its body into the canonical
//! database exists.

pub mod checks;
pub mod diagnostics;
pub mod render;

pub use checks::{analyze, analyze_errors, validate_query_against_views, Layout, BLOWUP_THRESHOLD};
pub use diagnostics::{Analysis, Diagnostic, Severity};
pub use render::{render_human, render_json, render_summary};
