//! Rendering diagnostics for humans (rustc-style, optionally colored)
//! and machines (JSON).

use crate::diagnostics::{Analysis, Diagnostic, Severity};
use std::fmt::Write as _;

/// ANSI styling, enabled only when the caller says the output is a
/// terminal (the CLI checks; tests pass `false` for byte-stable output).
struct Style {
    color: bool,
}

impl Style {
    fn paint(&self, code: &str, text: &str) -> String {
        if self.color {
            format!("\x1b[{code}m{text}\x1b[0m")
        } else {
            text.to_string()
        }
    }

    fn severity(&self, s: Severity, text: &str) -> String {
        match s {
            Severity::Error => self.paint("1;31", text),
            Severity::Warning => self.paint("1;33", text),
        }
    }

    fn bold(&self, text: &str) -> String {
        self.paint("1", text)
    }

    fn gutter(&self, text: &str) -> String {
        self.paint("1;34", text)
    }
}

/// Renders one program's findings rustc-style against its source text:
///
/// ```text
/// error[VP001]: arity mismatch: 'e' is used here with 3 arguments, …
///   --> file.vp:2:9
///    |
///  2 | v(A) :- e(A, A, A).
///    |         ^^^^^^^^^^
/// ```
///
/// `source` must be the text the diagnostics' spans index into (for the
/// CLI that is the comment-stripped, line-preserving rule source, whose
/// line/column coordinates match the original file).
pub fn render_human(analysis: &Analysis, file: &str, source: &str, color: bool) -> String {
    let style = Style { color };
    let lines: Vec<&str> = source.lines().collect();
    let mut out = String::new();
    for d in &analysis.diagnostics {
        let head = format!("{}[{}]", d.severity.label(), d.code);
        let _ = writeln!(
            out,
            "{}: {}",
            style.severity(d.severity, &head),
            style.bold(&d.message)
        );
        let _ = writeln!(
            out,
            "  {} {file}:{}:{}",
            style.gutter("-->"),
            d.span.line,
            d.span.column
        );
        if let Some(line_text) = d.span.line.checked_sub(1).and_then(|i| lines.get(i)) {
            let num = d.span.line.to_string();
            let pad = " ".repeat(num.len());
            let _ = writeln!(out, " {pad} {}", style.gutter("|"));
            let _ = writeln!(
                out,
                " {} {} {line_text}",
                style.gutter(&num),
                style.gutter("|")
            );
            let col = d.span.column.saturating_sub(1);
            let width = d
                .span
                .len()
                .max(1)
                .min(line_text.chars().count().saturating_sub(col).max(1));
            let _ = writeln!(
                out,
                " {pad} {} {}{}",
                style.gutter("|"),
                " ".repeat(col),
                style.severity(d.severity, &"^".repeat(width))
            );
        }
        out.push('\n');
    }
    out
}

/// The one-line totals trailer (`"2 errors, 1 warning"`), used by the
/// CLI after the findings.
pub fn render_summary(analysis: &Analysis) -> String {
    let (e, w) = (analysis.error_count(), analysis.warning_count());
    let plural = |n: usize| if n == 1 { "" } else { "s" };
    format!("{e} error{}, {w} warning{}", plural(e), plural(w))
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the findings as a stable JSON document (2-space indent, keys
/// in a fixed order, findings in source order) for editors and CI.
pub fn render_json(analysis: &Analysis, file: &str) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"file\": \"{}\",", json_escape(file));
    let _ = writeln!(out, "  \"errors\": {},", analysis.error_count());
    let _ = writeln!(out, "  \"warnings\": {},", analysis.warning_count());
    out.push_str("  \"diagnostics\": [");
    for (i, d) in analysis.diagnostics.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&render_json_diagnostic(d));
    }
    if !analysis.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn render_json_diagnostic(d: &Diagnostic) -> String {
    format!(
        "    {{\n      \"code\": \"{}\",\n      \"severity\": \"{}\",\n      \"line\": {},\n      \
         \"column\": {},\n      \"start\": {},\n      \"end\": {},\n      \"message\": \"{}\"\n    }}",
        d.code,
        d.severity.label(),
        d.span.line,
        d.span.column,
        d.span.start,
        d.span.end,
        json_escape(&d.message)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checks::{analyze, Layout};
    use viewplan_cq::parse_program;

    fn example() -> (&'static str, Analysis) {
        let src = "q(X) :- e(X, Y).\nv(A) :- e(A, A, A).";
        (src, analyze(&parse_program(src).unwrap(), Layout::Problem))
    }

    #[test]
    fn human_rendering_underlines_the_offending_atom() {
        let (src, a) = example();
        let text = render_human(&a, "bad.vp", src, false);
        assert!(text.contains("error[VP001]:"), "{text}");
        assert!(text.contains("--> bad.vp:2:9"), "{text}");
        assert!(text.contains(" 2 | v(A) :- e(A, A, A)."), "{text}");
        assert!(text.contains("|         ^^^^^^^^^^"), "{text}");
        assert_eq!(render_summary(&a), "1 error, 0 warnings");
    }

    #[test]
    fn colored_rendering_wraps_in_ansi() {
        let (src, a) = example();
        let text = render_human(&a, "bad.vp", src, true);
        assert!(text.contains("\x1b[1;31merror[VP001]\x1b[0m"), "{text}");
    }

    #[test]
    fn json_rendering_is_stable_and_escaped() {
        let (_, a) = example();
        let json = render_json(&a, "dir/bad \"x\".vp");
        assert!(
            json.contains("\"file\": \"dir/bad \\\"x\\\".vp\""),
            "{json}"
        );
        assert!(json.contains("\"errors\": 1,"), "{json}");
        assert!(json.contains("\"code\": \"VP001\""), "{json}");
        assert!(json.contains("\"line\": 2,"), "{json}");
        assert!(json.contains("\"column\": 9,"), "{json}");
    }

    #[test]
    fn empty_analysis_renders_empty_list() {
        let a = Analysis::default();
        assert_eq!(render_human(&a, "f.vp", "", false), "");
        let json = render_json(&a, "f.vp");
        assert!(json.contains("\"diagnostics\": []"), "{json}");
        assert_eq!(render_summary(&a), "0 errors, 0 warnings");
    }
}
