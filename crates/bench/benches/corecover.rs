//! Criterion benchmarks for the rewriting generator: the Figure 6/8
//! timing experiments, the §5.2 grouping ablation, and the baseline
//! comparisons against the naive Theorem 3.1 search and MiniCon.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use viewplan_core::{minicon_rewritings, naive_gmrs, CoreCover, CoreCoverConfig};
use viewplan_workload::{generate, WorkloadConfig};

/// Figure 6(a)/6(b): time for CoreCover to produce all GMRs of a star
/// query as the number of views grows.
fn corecover_star(c: &mut Criterion) {
    let mut group = c.benchmark_group("corecover_star");
    group.sample_size(20);
    for nondist in [0usize, 1] {
        for views in [100usize, 500, 1000] {
            let w = rewritable(|seed| WorkloadConfig::star(views, nondist, seed));
            group.bench_with_input(
                BenchmarkId::new(format!("nondist{nondist}"), views),
                &w,
                |b, w| b.iter(|| CoreCover::new(&w.query, &w.views).run()),
            );
        }
    }
    group.finish();
}

/// Figure 8(a)/8(b): the chain-query timing series.
fn corecover_chain(c: &mut Criterion) {
    let mut group = c.benchmark_group("corecover_chain");
    group.sample_size(20);
    for nondist in [0usize, 1] {
        for views in [100usize, 500, 1000] {
            let w = rewritable(|seed| WorkloadConfig::chain(views, nondist, seed));
            group.bench_with_input(
                BenchmarkId::new(format!("nondist{nondist}"), views),
                &w,
                |b, w| b.iter(|| CoreCover::new(&w.query, &w.views).run()),
            );
        }
    }
    group.finish();
}

/// §5.2 ablation: grouping views/view-tuples into equivalence classes is
/// what keeps CoreCover flat in the number of views.
fn grouping_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouping_ablation");
    group.sample_size(10);
    for views in [200usize, 600] {
        let w = rewritable(|seed| WorkloadConfig::star(views, 0, seed));
        group.bench_with_input(BenchmarkId::new("grouped", views), &w, |b, w| {
            b.iter(|| CoreCover::new(&w.query, &w.views).run())
        });
        let config = CoreCoverConfig {
            group_equivalent_views: false,
            group_view_tuples: false,
            ..CoreCoverConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("ungrouped", views), &w, |b, w| {
            b.iter(|| {
                CoreCover::new(&w.query, &w.views)
                    .with_config(config.clone())
                    .run()
            })
        });
    }
    group.finish();
}

/// CoreCover vs the naive Theorem 3.1 enumeration vs MiniCon (adapted to
/// equivalent rewritings), at small view counts where the baselines are
/// feasible.
fn generator_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("generator_baselines");
    group.sample_size(10);
    for views in [8usize, 16] {
        let w = rewritable(|seed| WorkloadConfig::chain(views, 0, seed));
        group.bench_with_input(BenchmarkId::new("corecover", views), &w, |b, w| {
            b.iter(|| CoreCover::new(&w.query, &w.views).run())
        });
        group.bench_with_input(BenchmarkId::new("naive_thm31", views), &w, |b, w| {
            b.iter(|| naive_gmrs(&w.query, &w.views))
        });
        group.bench_with_input(BenchmarkId::new("minicon", views), &w, |b, w| {
            b.iter(|| minicon_rewritings(&w.query, &w.views, true, 500))
        });
    }
    group.finish();
}

/// Example 4.2 at growing k: CoreCover stays flat while MiniCon's
/// combination space grows.
fn example42_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("example42");
    group.sample_size(10);
    for k in [3usize, 5, 7] {
        let (q, views) = example42(k);
        group.bench_with_input(BenchmarkId::new("corecover", k), &k, |b, _| {
            b.iter(|| CoreCover::new(&q, &views).run())
        });
        group.bench_with_input(BenchmarkId::new("minicon", k), &k, |b, _| {
            b.iter(|| minicon_rewritings(&q, &views, true, 500))
        });
    }
    group.finish();
}

fn example42(k: usize) -> (viewplan_cq::ConjunctiveQuery, viewplan_cq::ViewSet) {
    let body: Vec<String> = (1..=k)
        .map(|i| format!("a{i}(X, Z{i}), b{i}(Z{i}, Y)"))
        .collect();
    let q = viewplan_cq::parse_query(&format!("q(X, Y) :- {}", body.join(", "))).unwrap();
    let mut src = format!("v(X, Y) :- {}.\n", body.join(", "));
    for i in 1..k {
        src.push_str(&format!("v{i}(X, Y) :- a{i}(X, Z), b{i}(Z, Y).\n"));
    }
    (q, viewplan_cq::parse_views(&src).unwrap())
}

/// Finds a workload (by seed) that has at least one rewriting, so the
/// benchmark measures the interesting path.
fn rewritable(mk: impl Fn(u64) -> WorkloadConfig) -> viewplan_workload::Workload {
    for seed in 0..50 {
        let w = generate(&mk(seed));
        if !CoreCover::new(&w.query, &w.views)
            .run()
            .rewritings()
            .is_empty()
        {
            return w;
        }
    }
    panic!("no rewritable workload found in 50 seeds");
}

criterion_group!(
    benches,
    corecover_star,
    corecover_chain,
    grouping_ablation,
    generator_baselines,
    example42_family
);
criterion_main!(benches);
