//! Criterion benchmarks for the cost-model half: M2 subset-DP planning,
//! the M3 dropping policies on Example 6.1, and CoreCover* generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use viewplan_core::CoreCover;
use viewplan_cost::{optimal_m2_order, optimal_m3_plan, plan_with_order, DropPolicy, ExactOracle};
use viewplan_cq::{parse_query, parse_views, ConjunctiveQuery, ViewSet};
use viewplan_engine::{materialize_views, Database, Value};
use viewplan_workload::{generate, random_database, WorkloadConfig};

fn example61() -> (ConjunctiveQuery, ViewSet, Database) {
    let q = parse_query("q(A) :- r(A, A), t(A, B), s(B, B)").unwrap();
    let views = parse_views(
        "v1(A, B) :- r(A, A), s(B, B).\n\
         v2(A, B) :- t(A, B), s(B, B).",
    )
    .unwrap();
    let mut base = Database::new();
    base.insert_int("r", &[&[1, 1], &[2, 2], &[4, 4], &[6, 6], &[8, 8]]);
    base.insert_int("s", &[&[2, 2], &[4, 4], &[6, 6], &[8, 8]]);
    base.insert_int("t", &[&[1, 2], &[3, 4], &[5, 6], &[7, 8]]);
    let vdb = materialize_views(&views, &base);
    (q, views, vdb)
}

/// The three dropping policies on the paper's Example 6.1 (Figure 5).
fn m3_dropping(c: &mut Criterion) {
    let (q, views, vdb) = example61();
    let p2 = parse_query("q(A) :- v1(A, B), v2(A, B)").unwrap();
    let mut group = c.benchmark_group("m3_dropping");
    for (policy, name) in [
        (DropPolicy::Supplementary, "supplementary"),
        (DropPolicy::SmartAggressive, "smart_aggressive"),
        (DropPolicy::SmartCostBased, "smart_cost_based"),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut oracle = ExactOracle::new(&vdb);
                plan_with_order(&q, &views, &p2, &[0, 1], policy, &mut oracle)
            })
        });
    }
    group.bench_function("optimal_plan_smart", |b| {
        b.iter(|| {
            let mut oracle = ExactOracle::new(&vdb);
            optimal_m3_plan(&q, &views, &p2, DropPolicy::SmartCostBased, &mut oracle)
        })
    });
    group.finish();
}

/// M2 subset-DP planning over rewritings of generated chain workloads with
/// real (materialized) view databases.
fn m2_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("m2_planning");
    group.sample_size(10);
    for rows in [50usize, 200] {
        let w = generate(&WorkloadConfig::chain(20, 0, 3));
        let result = CoreCover::new(&w.query, &w.views).run();
        let Some(r) = result.rewritings().first().cloned() else {
            continue;
        };
        let mut base = Database::new();
        // Keep rows below the domain so chain joins shrink per step (a
        // rows/domain ratio above 1 grows bindings multiplicatively and
        // can exhaust memory on an 8-subgoal all-distinguished query).
        for (name, data) in random_database(&w.query, rows, 4 * rows as i64, 1) {
            for row in data {
                base.insert(name, row.into_iter().map(Value::Int).collect());
            }
        }
        let vdb = materialize_views(&w.views, &base);
        group.bench_with_input(BenchmarkId::new("exact_dp", rows), &rows, |b, _| {
            b.iter(|| {
                let mut oracle = ExactOracle::new(&vdb);
                optimal_m2_order(&r.body, &mut oracle)
            })
        });
    }
    group.finish();
}

/// CoreCover* (all minimal rewritings, Theorem 5.1's M2 space) vs
/// CoreCover (GMRs only).
fn corecover_star_vs_all(c: &mut Criterion) {
    let mut group = c.benchmark_group("corecover_vs_corecover_star");
    group.sample_size(10);
    let w = generate(&WorkloadConfig::chain(100, 0, 5));
    group.bench_function("gmrs_only", |b| {
        b.iter(|| CoreCover::new(&w.query, &w.views).run())
    });
    group.bench_function("all_minimal", |b| {
        b.iter(|| CoreCover::new(&w.query, &w.views).run_all_minimal())
    });
    group.finish();
}

criterion_group!(benches, m3_dropping, m2_planning, corecover_star_vs_all);
criterion_main!(benches);
