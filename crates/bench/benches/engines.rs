//! Criterion benchmarks for the execution engines: the same fixed
//! workload query executed under the row engine and the columnar batch
//! engine, over star and chain shapes at Figure 6 scale. The measured
//! (non-criterion) version of this comparison is
//! `viewplan_bench::trajectory::engine_trajectory`, which renders
//! `BENCH_engine.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use viewplan_engine::{execute_ordered, install, Database, Engine, Value};
use viewplan_workload::{generate, random_database, WorkloadConfig};

const SEED: u64 = 20010521;

fn build_db(config: &WorkloadConfig, rows: usize) -> (viewplan_cq::ConjunctiveQuery, Database) {
    let query = generate(config).query;
    let mut db = Database::new();
    for (name, tuples) in random_database(&query, rows, rows as i64, SEED ^ rows as u64) {
        for tuple in tuples {
            db.insert(name, tuple.into_iter().map(Value::Int).collect());
        }
    }
    (query, db)
}

fn engine_compare(c: &mut Criterion, family: &str, config: &WorkloadConfig) {
    let mut group = c.benchmark_group(format!("engine_{family}"));
    group.sample_size(20);
    for rows in [1000usize, 5000] {
        let (query, db) = build_db(config, rows);
        for engine in [Engine::Row, Engine::Columnar] {
            group.bench_with_input(
                BenchmarkId::new(engine.name(), rows),
                &(&query, &db),
                |b, (query, db)| {
                    let _guard = install(engine);
                    b.iter(|| execute_ordered(&query.head, &query.body, db))
                },
            );
        }
    }
    group.finish();
}

/// Row vs columnar on the 8-subgoal star query.
fn engines_star(c: &mut Criterion) {
    engine_compare(c, "star", &WorkloadConfig::star(1, 0, SEED));
}

/// Row vs columnar on the 8-subgoal chain query.
fn engines_chain(c: &mut Criterion) {
    engine_compare(c, "chain", &WorkloadConfig::chain(1, 0, SEED));
}

criterion_group!(engines, engines_star, engines_chain);
criterion_main!(engines);
