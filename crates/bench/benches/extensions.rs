//! Criterion benchmarks for the §8 extensions and the remaining
//! baselines: constraint-set reasoning, UCQ containment (the
//! ordering-refinement test), inverse rules vs. the MiniCon union, and the
//! bucket algorithm vs. CoreCover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use viewplan_core::{bucket_rewritings, CoreCover};
use viewplan_cq::{parse_query, parse_views, Term};
use viewplan_engine::{materialize_views, Database, Value};
use viewplan_extended::{
    certain_answers, evaluate_union, is_contained_in_union, maximally_contained_rewriting,
    parse_conditional, CompOp, Comparison, ConditionalQuery, ConstraintSet, UnionQuery,
};
use viewplan_workload::{generate, WorkloadConfig};

/// Constraint-closure throughput: satisfiability + implication over
/// growing chains of order constraints.
fn constraint_solving(c: &mut Criterion) {
    let mut group = c.benchmark_group("constraint_solving");
    for n in [4usize, 8, 16] {
        let cs = ConstraintSet::from_comparisons((0..n).map(|i| Comparison {
            lhs: Term::var(&format!("X{i}")),
            op: if i % 2 == 0 { CompOp::Le } else { CompOp::Lt },
            rhs: Term::var(&format!("X{}", i + 1)),
        }));
        let goal = Comparison::lt(Term::var("X0"), Term::var(&format!("X{n}")));
        group.bench_with_input(BenchmarkId::new("implies_chain", n), &n, |b, _| {
            b.iter(|| cs.implies(&goal))
        });
    }
    group.finish();
}

/// The §8 case-split containment proof at growing term counts (the
/// ordering-refinement enumeration is the cost driver).
fn ucq_containment(c: &mut Criterion) {
    let mut group = c.benchmark_group("ucq_containment");
    group.sample_size(10);
    for extra in [0usize, 1, 2] {
        // Pad the query with `extra` independent subgoals to grow the
        // linearized term set.
        let pads: String = (0..extra).map(|i| format!(", p{i}(Z{i})")).collect();
        let q = ConditionalQuery::plain(parse_query(&format!("s(X, Y) :- r(X, Y){pads}")).unwrap());
        let u = UnionQuery::new(vec![
            parse_conditional(&format!("s(X, Y) :- r(X, Y){pads}"), &["X <= Y"]).unwrap(),
            parse_conditional(&format!("s(X, Y) :- r(X, Y){pads}"), &["Y <= X"]).unwrap(),
        ]);
        let terms = 2 + extra;
        group.bench_with_input(BenchmarkId::new("case_split", terms), &terms, |b, _| {
            b.iter(|| is_contained_in_union(&q, &u, 8))
        });
    }
    group.finish();
}

/// Certain-answer computation: inverse rules (bottom-up, Skolem) vs. the
/// maximally-contained MiniCon union (rewrite, then evaluate).
fn certain_answer_paths(c: &mut Criterion) {
    let q = parse_query("q(X, Y) :- e(X, Y)").unwrap();
    let views = parse_views(
        "va(A, B) :- e(A, B), red(A).\n\
         vb(A, B) :- e(A, B), blue(A).",
    )
    .unwrap();
    let mut base = Database::new();
    for i in 0..300i64 {
        base.insert("e", vec![Value::Int(i), Value::Int(i + 1)]);
        if i % 2 == 0 {
            base.insert("red", vec![Value::Int(i)]);
        }
        if i % 3 == 0 {
            base.insert("blue", vec![Value::Int(i)]);
        }
    }
    let vdb = materialize_views(&views, &base);
    let union = maximally_contained_rewriting(&q, &views, 100).expect("exists");

    let mut group = c.benchmark_group("certain_answers");
    group.bench_function("inverse_rules", |b| {
        b.iter(|| certain_answers(&q, &views, &vdb))
    });
    group.bench_function("minicon_union_eval", |b| {
        b.iter(|| evaluate_union(&union, &vdb))
    });
    group.bench_function("minicon_union_build_and_eval", |b| {
        b.iter(|| {
            let u = maximally_contained_rewriting(&q, &views, 100).expect("exists");
            evaluate_union(&u, &vdb)
        })
    });
    group.finish();
}

/// Bucket algorithm vs CoreCover: the Cartesian-product validation cost.
fn bucket_vs_corecover(c: &mut Criterion) {
    let mut group = c.benchmark_group("bucket_vs_corecover");
    group.sample_size(10);
    for views in [8usize, 16] {
        let w = (0..50)
            .map(|seed| generate(&WorkloadConfig::chain(views, 0, seed)))
            .find(|w| {
                !CoreCover::new(&w.query, &w.views)
                    .run()
                    .rewritings()
                    .is_empty()
            })
            .expect("rewritable workload");
        group.bench_with_input(BenchmarkId::new("corecover", views), &views, |b, _| {
            b.iter(|| CoreCover::new(&w.query, &w.views).run())
        });
        group.bench_with_input(BenchmarkId::new("bucket", views), &views, |b, _| {
            b.iter(|| bucket_rewritings(&w.query, &w.views, 50_000))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    constraint_solving,
    ucq_containment,
    certain_answer_paths,
    bucket_vs_corecover
);
criterion_main!(benches);
