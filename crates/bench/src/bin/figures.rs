//! Regenerates every table and figure of the paper's evaluation.
//!
//! Writes `results/fig6a.csv` … `results/fig9b.csv` (plus `table2.txt`,
//! `example61.txt`, and the baseline/ablation series) and prints each to
//! stdout. Run with:
//!
//! ```text
//! cargo run -p viewplan-bench --release --bin figures           # paper scale (40 queries/point)
//! cargo run -p viewplan-bench --release --bin figures -- quick  # 8 queries/point
//! cargo run -p viewplan-bench --release --bin figures -- quick --threads 8
//! ```
//!
//! `--threads N` spreads each sweep point's query instances over N
//! workers (default: `VIEWPLAN_THREADS` or 1). The accepted queries and
//! all averaged stats are identical for any N; only wall-clock changes.

use std::fs;
use std::time::Instant;
use viewplan_bench::{run_sweep, to_csv, Family, SweepConfig, SweepPoint};
use viewplan_containment::minimize;
use viewplan_core::{
    bucket_rewritings, minicon_rewritings, naive_gmrs, tuple_core, view_tuples, CoreCover,
};
use viewplan_cost::{plan_with_order, DropPolicy, ExactOracle};
use viewplan_cq::{parse_query, parse_views};
use viewplan_engine::{materialize_views, Database};
use viewplan_workload::{generate, WorkloadConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "quick");
    let mut threads = viewplan_core::default_threads();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "quick" => {}
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => {
                    eprintln!("error: --threads expects a positive integer");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}` (expected `quick` or `--threads N`)");
                std::process::exit(2);
            }
        }
    }
    eprintln!("[sweep] harness threads: {threads}");
    fs::create_dir_all("results").expect("create results dir");
    let mk = |family, nondist| {
        let mut c = if quick {
            SweepConfig::quick(family, nondist)
        } else {
            SweepConfig::paper(family, nondist)
        };
        c.threads = threads;
        c
    };

    // ── Figures 6 & 7: star queries ─────────────────────────────────────
    let star0 = timed("star, all distinguished", || {
        run_sweep(&mk(Family::Star, 0))
    });
    let star1 = timed("star, 1 nondistinguished", || {
        run_sweep(&mk(Family::Star, 1))
    });
    emit(
        "fig6a",
        "Figure 6(a): star, time for all GMRs (all vars distinguished)",
        &star0,
    );
    emit(
        "fig6b",
        "Figure 6(b): star, time for all GMRs (1 nondistinguished)",
        &star1,
    );
    emit(
        "fig7a",
        "Figure 7(a): star, view equivalence classes",
        &star0,
    );
    emit(
        "fig7b",
        "Figure 7(b): star, view tuples vs representatives",
        &star0,
    );

    // ── Figures 8 & 9: chain queries ────────────────────────────────────
    let chain0 = timed("chain, all distinguished", || {
        run_sweep(&mk(Family::Chain, 0))
    });
    let chain1 = timed("chain, 1 nondistinguished", || {
        run_sweep(&mk(Family::Chain, 1))
    });
    emit(
        "fig8a",
        "Figure 8(a): chain, time for all GMRs (all vars distinguished)",
        &chain0,
    );
    emit(
        "fig8b",
        "Figure 8(b): chain, time for all GMRs (1 nondistinguished)",
        &chain1,
    );
    emit(
        "fig9a",
        "Figure 9(a): chain, view equivalence classes",
        &chain0,
    );
    emit(
        "fig9b",
        "Figure 9(b): chain, view tuples vs representatives",
        &chain0,
    );

    // ── Random queries (the third shape §7 mentions) ────────────────────
    let rand0 = timed("random, all distinguished", || {
        run_sweep(&mk(Family::Random, 0))
    });
    emit(
        "fig_random",
        "Random queries (extra series): time and classes",
        &rand0,
    );

    // ── Table 2: tuple-cores of Example 4.1 ─────────────────────────────
    let table2 = table2();
    print!("{table2}");
    fs::write("results/table2.txt", &table2).expect("write table2");

    // ── Example 6.1 / Figure 5: M3 cost comparison ──────────────────────
    let ex61 = example61();
    print!("{ex61}");
    fs::write("results/example61.txt", &ex61).expect("write example61");

    // ── Baselines & ablations ───────────────────────────────────────────
    let base = baselines(quick);
    print!("{base}");
    fs::write("results/baselines.csv", &base).expect("write baselines");

    let ablation = grouping_ablation(quick);
    print!("{ablation}");
    fs::write("results/grouping_ablation.csv", &ablation).expect("write ablation");

    println!("\nAll series written under results/.");
}

fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let start = Instant::now();
    let out = f();
    eprintln!("[sweep] {label}: {:.1?}", start.elapsed());
    out
}

fn emit(name: &str, title: &str, points: &[SweepPoint]) {
    let csv = to_csv(points);
    fs::write(format!("results/{name}.csv"), &csv).expect("write csv");
    println!("\n── {title} ──");
    print!("{csv}");
}

/// Reproduces Table 2 verbatim.
fn table2() -> String {
    let q = minimize(&parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)").unwrap());
    let views = parse_views(
        "v1(A, B) :- a(A, B), a(B, B).\n\
         v2(C, D) :- a(C, E), b(C, D).",
    )
    .unwrap();
    let mut out = String::from("\n── Table 2: tuple-cores for Example 4.1 ──\n");
    out.push_str("view tuple | tuple-core C(tv)\n");
    for t in view_tuples(&q, &views) {
        let core = tuple_core(&q, &t, &views);
        let covered: Vec<String> = core
            .subgoals
            .iter()
            .map(|&i| q.body[i].to_string())
            .collect();
        out.push_str(&format!("{:<10} | {}\n", t.to_string(), covered.join(", ")));
    }
    out
}

/// Reproduces the Example 6.1 comparison with exact engine-measured sizes.
fn example61() -> String {
    let q = parse_query("q(A) :- r(A, A), t(A, B), s(B, B)").unwrap();
    let views = parse_views(
        "v1(A, B) :- r(A, A), s(B, B).\n\
         v2(A, B) :- t(A, B), s(B, B).",
    )
    .unwrap();
    let mut base = Database::new();
    base.insert_int("r", &[&[1, 1], &[2, 2], &[4, 4], &[6, 6], &[8, 8]]);
    base.insert_int("s", &[&[2, 2], &[4, 4], &[6, 6], &[8, 8]]);
    base.insert_int("t", &[&[1, 2], &[3, 4], &[5, 6], &[7, 8]]);
    let vdb = materialize_views(&views, &base);
    let p2 = parse_query("q(A) :- v1(A, B), v2(A, B)").unwrap();
    let mut oracle = ExactOracle::new(&vdb);

    let mut out = String::from("\n── Example 6.1 (Figure 5): M3 plan costs ──\n");
    out.push_str("order      | policy        | GSR sizes | cost\n");
    for (order, oname) in [([0usize, 1], "v1,v2"), ([1, 0], "v2,v1")] {
        for (policy, pname) in [
            (DropPolicy::Supplementary, "supplementary"),
            (DropPolicy::SmartCostBased, "renaming §6.2"),
        ] {
            let (_, gsrs, cost) = plan_with_order(&q, &views, &p2, &order, policy, &mut oracle)
                .expect("unbudgeted M3 planning always completes");
            out.push_str(&format!("{oname:<10} | {pname:<13} | {gsrs:?} | {cost}\n"));
        }
    }
    out.push_str("(the renaming heuristic's cost is the paper's F1; supplementary is F2)\n");
    out
}

/// CoreCover vs the Theorem 3.1 naive search vs MiniCon, small view
/// counts (the naive baseline is exponential).
fn baselines(quick: bool) -> String {
    let mut out =
        String::from("\n── Baselines: CoreCover vs naive (Thm 3.1) vs MiniCon vs bucket ──\n");
    out.push_str("family,views,corecover_ms,naive_ms,minicon_ms,bucket_ms\n");
    let counts: &[usize] = if quick { &[5, 10] } else { &[5, 10, 15, 20] };
    for family in ["chain", "star"] {
        for &views in counts {
            let mut cc = 0.0;
            let mut nv = 0.0;
            let mut mc = 0.0;
            let mut bk = 0.0;
            let runs = 10;
            let mut accepted = 0;
            for seed in 0..(runs * 3) {
                let config = match family {
                    "chain" => WorkloadConfig::chain(views, 0, seed),
                    _ => WorkloadConfig::star(views, 0, seed),
                };
                let w = generate(&config);
                let t0 = Instant::now();
                let r = CoreCover::new(&w.query, &w.views).run();
                let t_cc = t0.elapsed().as_secs_f64() * 1e3;
                if r.rewritings().is_empty() {
                    continue;
                }
                let t1 = Instant::now();
                let _ = naive_gmrs(&w.query, &w.views);
                let t_nv = t1.elapsed().as_secs_f64() * 1e3;
                let t2 = Instant::now();
                let _ = minicon_rewritings(&w.query, &w.views, true, 500);
                let t_mc = t2.elapsed().as_secs_f64() * 1e3;
                let t3 = Instant::now();
                let _ = bucket_rewritings(&w.query, &w.views, 50_000);
                let t_bk = t3.elapsed().as_secs_f64() * 1e3;
                cc += t_cc;
                nv += t_nv;
                mc += t_mc;
                bk += t_bk;
                accepted += 1;
                if accepted >= runs {
                    break;
                }
            }
            let n = accepted.max(1) as f64;
            out.push_str(&format!(
                "{family},{views},{:.3},{:.3},{:.3},{:.3}\n",
                cc / n,
                nv / n,
                mc / n,
                bk / n
            ));
        }
    }
    out
}

/// The §5.2 ablation: CoreCover with equivalence-class grouping on vs off.
fn grouping_ablation(quick: bool) -> String {
    let mut out =
        String::from("\n── Ablation: §5.2 grouping on vs off (star, all distinguished) ──\n");
    out.push_str("views,grouped_ms,ungrouped_ms\n");
    let counts: Vec<usize> = if quick {
        vec![100, 400]
    } else {
        vec![100, 200, 400, 700, 1000]
    };
    for views in counts {
        let mut grouped = SweepConfig::quick(Family::Star, 0);
        grouped.view_counts = vec![views];
        grouped.queries_per_point = if quick { 4 } else { 8 };
        let mut ungrouped = grouped.clone();
        ungrouped.corecover.group_equivalent_views = false;
        ungrouped.corecover.group_view_tuples = false;
        let g = run_sweep(&grouped).remove(0);
        let u = run_sweep(&ungrouped).remove(0);
        out.push_str(&format!("{views},{:.3},{:.3}\n", g.avg_ms, u.avg_ms));
    }
    out
}
