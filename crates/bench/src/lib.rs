//! The experiment harness: reusable sweep machinery shared by the
//! `figures` binary (which regenerates every figure of §7 as CSV) and the
//! Criterion benchmarks.
//!
//! A *sweep* fixes a workload family (star/chain, number of
//! nondistinguished variables) and, for each view count, generates
//! `queries_per_point` workloads, discards those without rewritings (as
//! the paper does), runs `CoreCover` to all GMRs, and averages the
//! quantities Figures 6–9 plot.

use std::time::Instant;
use viewplan_core::{default_threads, parallel_map, CoreCover, CoreCoverConfig};
use viewplan_obs as obs;
use viewplan_workload::{generate, WorkloadConfig};

pub mod loadgen;
pub mod trajectory;

/// Which §7 workload family a sweep runs.
#[derive(Clone, Copy, Debug)]
pub enum Family {
    /// Star queries (§7.1).
    Star,
    /// Chain queries (§7.2).
    Chain,
    /// Random queries (mentioned alongside \[23\]).
    Random,
}

/// One averaged data point of a sweep.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Number of views at this point.
    pub views: usize,
    /// Queries that actually had rewritings (the denominator).
    pub queries: usize,
    /// Average wall-clock time of `CoreCover::run`, in milliseconds
    /// (includes view/tuple grouping, as in the paper).
    pub avg_ms: f64,
    /// Average number of view equivalence classes (Figures 7a / 9a).
    pub view_classes: f64,
    /// Average number of view tuples (Figures 7b / 9b, upper series).
    pub view_tuples: f64,
    /// Average number of representative view tuples (lower series).
    pub representative_tuples: f64,
    /// Average number of GMRs found.
    pub gmrs: f64,
    /// Average homomorphism search nodes per run (from the
    /// `containment.hom_nodes` counter) — the work metric behind the
    /// wall-clock series.
    pub hom_nodes: f64,
    /// Average set-cover search nodes per run (from the
    /// `cover.search_nodes` counter).
    pub set_cover_nodes: f64,
    /// Worker threads the harness used for this point (1 = serial).
    pub threads: usize,
    /// Fraction of accepted runs that reported
    /// [`viewplan_obs::Completeness::Complete`] (1.0 whenever no budget
    /// is installed; lower values mean some runs returned best-so-far
    /// results under an exhausted budget).
    pub completeness: f64,
}

/// Sweep parameters.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Workload family.
    pub family: Family,
    /// Number of nondistinguished variables (0 = all distinguished).
    pub nondistinguished: usize,
    /// View counts to measure (the paper: 100, 200, …, 1000).
    pub view_counts: Vec<usize>,
    /// Queries averaged per point (the paper: 40).
    pub queries_per_point: usize,
    /// Base RNG seed.
    pub base_seed: u64,
    /// CoreCover configuration (grouping on by default; the ablation bench
    /// turns it off).
    pub corecover: CoreCoverConfig,
    /// Worker threads for the harness itself: query instances of a point
    /// run concurrently. The accepted query set, per-query stats, and GMR
    /// counts are identical for any value (attempts are processed in
    /// order); only wall-clock changes. Per-run CoreCover stays serial
    /// unless `corecover.threads` is raised too.
    pub threads: usize,
}

impl SweepConfig {
    /// The paper's settings for one family: 40 queries per point over
    /// 100..=1000 views.
    pub fn paper(family: Family, nondistinguished: usize) -> SweepConfig {
        SweepConfig {
            family,
            nondistinguished,
            view_counts: (1..=10).map(|k| k * 100).collect(),
            queries_per_point: 40,
            base_seed: 20010521, // SIGMOD 2001, May 21
            corecover: CoreCoverConfig {
                threads: 1,
                ..CoreCoverConfig::default()
            },
            threads: default_threads(),
        }
    }

    /// A scaled-down variant for quick runs and Criterion.
    pub fn quick(family: Family, nondistinguished: usize) -> SweepConfig {
        SweepConfig {
            queries_per_point: 8,
            view_counts: vec![100, 300, 600, 1000],
            ..SweepConfig::paper(family, nondistinguished)
        }
    }
}

fn workload_config(c: &SweepConfig, views: usize, seed: u64) -> WorkloadConfig {
    match c.family {
        Family::Star => WorkloadConfig::star(views, c.nondistinguished, seed),
        Family::Chain => WorkloadConfig::chain(views, c.nondistinguished, seed),
        Family::Random => WorkloadConfig::random(views, c.nondistinguished, seed),
    }
}

/// Runs a sweep, returning one point per view count.
pub fn run_sweep(config: &SweepConfig) -> Vec<SweepPoint> {
    config
        .view_counts
        .iter()
        .map(|&views| run_point(config, views))
        .collect()
}

/// What one generated workload produced, before the accept/skip decision.
struct AttemptOutcome {
    ms: f64,
    empty: bool,
    view_classes: f64,
    view_tuples: f64,
    representative_tuples: f64,
    gmrs: f64,
    /// Per-run counter deltas; only meaningful on serial runs (the
    /// counters are process-global, so concurrent runs interleave).
    hom_delta: f64,
    cover_delta: f64,
    /// Whether the run covered its whole search space (no budget fired).
    complete: bool,
}

fn run_attempt(config: &SweepConfig, views: usize, attempt: usize, serial: bool) -> AttemptOutcome {
    let seed = config
        .base_seed
        .wrapping_add((views as u64) << 20)
        .wrapping_add(attempt as u64);
    let w = generate(&workload_config(config, views, seed));
    let hom_before = obs::counter_value("containment.hom_nodes");
    let cover_before = obs::counter_value("cover.search_nodes");
    let start = Instant::now();
    let result = CoreCover::new(&w.query, &w.views)
        .with_config(config.corecover.clone())
        .run();
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let (hom_delta, cover_delta) = if serial {
        (
            (obs::counter_value("containment.hom_nodes") - hom_before) as f64,
            (obs::counter_value("cover.search_nodes") - cover_before) as f64,
        )
    } else {
        (0.0, 0.0)
    };
    AttemptOutcome {
        ms,
        empty: result.rewritings().is_empty(),
        view_classes: result.stats.view_classes as f64,
        view_tuples: result.stats.view_tuples as f64,
        representative_tuples: result.stats.representative_tuples as f64,
        gmrs: result.stats.rewritings as f64,
        hom_delta,
        cover_delta,
        complete: result.stats.completeness == obs::Completeness::Complete,
    }
}

/// Runs one data point: `queries_per_point` accepted queries (skipping
/// rewriting-less ones, bounded retries), averaged.
///
/// With `config.threads > 1`, attempts are evaluated in in-order chunks
/// across the workers and the accept/skip scan stays in attempt order,
/// so the accepted query set and every averaged quantity except
/// wall-clock (`avg_ms`) and the work counters match the serial run
/// exactly. The `hom_nodes` / `set_cover_nodes` columns are per-run
/// deltas when serial; under concurrency the process-global counters
/// interleave, so they become point-level averages that include the work
/// of skipped attempts.
pub fn run_point(config: &SweepConfig, views: usize) -> SweepPoint {
    // Collect counters for the whole sweep; the registry is process-global,
    // so work metrics are read as before/after deltas rather than by
    // resetting (counter bumps are relaxed atomics — cheap enough to leave
    // on while timing).
    obs::set_enabled(true);
    let threads = config.threads.max(1);
    let serial = threads == 1;
    let max_attempts = config.queries_per_point * 5;
    let mut accepted = 0usize;
    let mut total_ms = 0.0;
    let mut classes = 0.0;
    let mut tuples = 0.0;
    let mut reps = 0.0;
    let mut gmrs = 0.0;
    let mut hom_nodes = 0.0;
    let mut set_cover_nodes = 0.0;
    let mut complete_runs = 0usize;
    let hom_point_before = obs::counter_value("containment.hom_nodes");
    let cover_point_before = obs::counter_value("cover.search_nodes");
    // Each chunk is exactly the remaining quota: the serial loop always
    // evaluates at least that many more attempts (an attempt accepts at
    // most one query), and a chunk can only fill the quota at its very
    // end (that needs every attempt accepted) — so the parallel run
    // evaluates *exactly* the attempt set the serial run would, with no
    // speculative waste, and the in-order scan below keeps the accepted
    // set identical.
    let mut next_attempt = 0usize;
    while accepted < config.queries_per_point && next_attempt < max_attempts {
        let chunk = config.queries_per_point - accepted;
        let ids: Vec<usize> = (next_attempt..(next_attempt + chunk).min(max_attempts)).collect();
        next_attempt = *ids.last().unwrap() + 1;
        let outcomes = parallel_map(threads, &ids, |&a| run_attempt(config, views, a, serial));
        for o in outcomes {
            if accepted >= config.queries_per_point {
                break;
            }
            if o.empty {
                continue; // "we ignored queries that did not have rewritings"
            }
            accepted += 1;
            total_ms += o.ms;
            classes += o.view_classes;
            tuples += o.view_tuples;
            reps += o.representative_tuples;
            gmrs += o.gmrs;
            hom_nodes += o.hom_delta;
            set_cover_nodes += o.cover_delta;
            complete_runs += o.complete as usize;
        }
    }
    let n = accepted.max(1) as f64;
    if !serial {
        // Point-level attribution (see the doc comment).
        hom_nodes = (obs::counter_value("containment.hom_nodes") - hom_point_before) as f64;
        set_cover_nodes = (obs::counter_value("cover.search_nodes") - cover_point_before) as f64;
    }
    SweepPoint {
        views,
        queries: accepted,
        avg_ms: total_ms / n,
        view_classes: classes / n,
        view_tuples: tuples / n,
        representative_tuples: reps / n,
        gmrs: gmrs / n,
        hom_nodes: hom_nodes / n,
        set_cover_nodes: set_cover_nodes / n,
        threads,
        completeness: complete_runs as f64 / n,
    }
}

/// Formats sweep points as a CSV with a header row.
pub fn to_csv(points: &[SweepPoint]) -> String {
    let mut out = String::from(
        "views,queries,avg_ms,view_classes,view_tuples,representative_tuples,gmrs,\
         hom_nodes,set_cover_nodes,threads,completeness\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{:.3},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{},{:.3}\n",
            p.views,
            p.queries,
            p.avg_ms,
            p.view_classes,
            p.view_tuples,
            p.representative_tuples,
            p.gmrs,
            p.hom_nodes,
            p.set_cover_nodes,
            p.threads,
            p.completeness
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_produces_points() {
        let mut config = SweepConfig::quick(Family::Chain, 0);
        config.view_counts = vec![50];
        config.queries_per_point = 3;
        let points = run_sweep(&config);
        assert_eq!(points.len(), 1);
        assert!(points[0].queries >= 1);
        assert!(points[0].view_tuples >= points[0].representative_tuples);
        // Chain queries are acyclic, so containment runs through the
        // semijoin fast path and the homomorphism counter can stay 0;
        // the set-cover search still does per-query work.
        assert!(points[0].hom_nodes >= 0.0);
        assert!(points[0].set_cover_nodes > 0.0);
        // No budget installed → every run is complete by definition.
        assert_eq!(points[0].completeness, 1.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let p = SweepPoint {
            views: 100,
            queries: 40,
            avg_ms: 1.5,
            view_classes: 20.0,
            view_tuples: 30.0,
            representative_tuples: 10.0,
            gmrs: 4.0,
            hom_nodes: 120.0,
            set_cover_nodes: 15.0,
            threads: 8,
            completeness: 0.75,
        };
        let csv = to_csv(&[p]);
        assert!(csv.starts_with("views,"));
        assert!(csv.lines().next().unwrap().ends_with(",completeness"));
        assert!(csv.contains("100,40,1.500"));
        assert!(csv.lines().nth(1).unwrap().ends_with(",8,0.750"));
    }

    /// The tentpole guarantee at the harness level: a parallel sweep
    /// accepts the same queries and averages the same per-query stats as
    /// a serial one (wall-clock and work-counter columns excepted).
    #[test]
    fn parallel_sweep_matches_serial_stats() {
        let mut config = SweepConfig::quick(Family::Star, 1);
        config.view_counts = vec![60];
        config.queries_per_point = 4;
        config.threads = 1;
        let serial = run_sweep(&config);
        for threads in [2, 8] {
            config.threads = threads;
            let par = run_sweep(&config);
            assert_eq!(par.len(), serial.len());
            for (p, s) in par.iter().zip(&serial) {
                assert_eq!(p.queries, s.queries, "threads = {threads}");
                assert_eq!(p.view_classes, s.view_classes);
                assert_eq!(p.view_tuples, s.view_tuples);
                assert_eq!(p.representative_tuples, s.representative_tuples);
                assert_eq!(p.gmrs, s.gmrs);
                assert_eq!(p.threads, threads);
            }
        }
    }
}
