//! Closed-loop load generator for the network serving layer.
//!
//! Each client thread owns one connection and drives it closed-loop:
//! send a `query` frame, block for the response, repeat. Offered load is
//! therefore controlled by the client count — the standard way to push a
//! server into overload without open-loop coordinated omission.
//!
//! **Retry with jittered exponential backoff.** A connection that dies
//! mid-request (injected accept/read/write faults, or a real network
//! blip) is retried on a fresh connection up to `max_retries` times,
//! sleeping `base_backoff · 2^attempt · jitter` between attempts
//! (jitter uniform in [0.5, 1.0), from a deterministic xorshift PRNG so
//! runs are reproducible). Retries are counted (`serve.retries`), and a
//! request that exhausts its retries is a **loud** failure
//! (`failed_after_retries`) — the soak harness asserts it stays zero,
//! which combined with the accounting identity below proves no request
//! was ever silently dropped.
//!
//! **Accounting identity.** Every offered request ends in exactly one
//! bucket: `ok + shed + errors + failed_after_retries == offered`.
//!
//! **Epoch monotonicity.** Responses carry the serving epoch. Within one
//! closed-loop client, epochs must never go backwards (the catalog swap
//! publishes the new snapshot before any later request grabs one); a
//! regression is counted in `stale_epoch` and asserted zero by the DDL
//! soak.

use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};
use viewplan_obs as obs;
use viewplan_serve::net::{read_frame, write_frame};
use viewplan_sync::thread;

/// Load-generator knobs.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests each client offers.
    pub requests_per_client: usize,
    /// Per-request deadline sent on the wire (`deadline-ms=N`).
    pub deadline_ms: Option<u64>,
    /// Retry attempts per request after a transport failure.
    pub max_retries: u32,
    /// Base backoff; attempt `k` sleeps `base · 2^k · jitter`.
    pub base_backoff: Duration,
    /// PRNG seed for the backoff jitter.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            clients: 4,
            requests_per_client: 25,
            deadline_ms: None,
            max_retries: 8,
            base_backoff: Duration::from_millis(2),
            seed: 20010521,
        }
    }
}

/// What a load-generator run observed (summed over clients).
#[derive(Clone, Debug, Default)]
pub struct LoadgenReport {
    /// Requests offered (clients × requests each).
    pub offered: u64,
    /// `ok …` responses.
    pub ok: u64,
    /// `shed …` responses (honest refusals).
    pub shed: u64,
    /// `error …` responses (structured, still answered).
    pub errors: u64,
    /// Transport-level retry attempts that were needed.
    pub retries: u64,
    /// Requests lost even after retrying — silent drops. Must be zero.
    pub failed_after_retries: u64,
    /// Per-client epoch regressions observed. Must be zero.
    pub stale_epoch: u64,
    /// `ok` responses answered from the cache.
    pub cached: u64,
    /// Wall-clock of the whole run.
    pub elapsed: Duration,
    /// Per-request latency, microseconds, successful (`ok`/`shed`/
    /// `error`-answered) requests only, unsorted.
    pub latency_us: Vec<u64>,
}

impl LoadgenReport {
    /// Completed requests per second over the run.
    pub fn throughput_rps(&self) -> f64 {
        let answered = (self.ok + self.shed + self.errors) as f64;
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            answered / secs
        } else {
            0.0
        }
    }

    /// The accounting identity: every offered request landed in exactly
    /// one bucket.
    pub fn accounted(&self) -> bool {
        self.ok + self.shed + self.errors + self.failed_after_retries == self.offered
    }

    /// Latency percentile in microseconds (nearest-rank on the recorded
    /// samples; 0 when nothing completed).
    pub fn latency_percentile(&self, q: f64) -> u64 {
        let mut sorted = self.latency_us.clone();
        sorted.sort_unstable();
        percentile(&sorted, q)
    }
}

/// Nearest-rank percentile over an ascending slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Deterministic xorshift64* PRNG for backoff jitter — reproducible runs
/// without pulling in a real RNG dependency.
struct Jitter(u64);

impl Jitter {
    fn new(seed: u64) -> Jitter {
        Jitter(seed.max(1))
    }

    /// Uniform in [0.5, 1.0).
    fn factor(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        0.5 + (self.0 >> 11) as f64 / (1u64 << 53) as f64 / 2.0
    }
}

/// One response, classified.
enum Answered {
    Ok { epoch: Option<u64>, cached: bool },
    Shed,
    Error,
}

fn classify(response: &str) -> Answered {
    let first = response.lines().next().unwrap_or("");
    if first.starts_with("ok ") || first.starts_with("pong") {
        Answered::Ok {
            epoch: first
                .split_whitespace()
                .find_map(|t| t.strip_prefix("epoch=")?.parse().ok()),
            cached: first.contains("cached=true"),
        }
    } else if first.starts_with("shed") {
        Answered::Shed
    } else {
        Answered::Error
    }
}

/// One closed-loop request: send the frame, read the response; any io
/// failure invalidates the connection (the caller reconnects on retry).
fn attempt(conn: &mut Option<TcpStream>, addr: SocketAddr, payload: &str) -> io::Result<String> {
    if conn.is_none() {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        *conn = Some(stream);
    }
    let result = (|| {
        let stream = conn
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "no connection"))?;
        write_frame(stream, payload)?;
        read_frame(stream, 1 << 20)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-request")
        })
    })();
    if result.is_err() {
        *conn = None;
    }
    result
}

fn client_loop(
    addr: SocketAddr,
    queries: Vec<String>,
    config: LoadgenConfig,
    client_id: usize,
) -> LoadgenReport {
    let mut report = LoadgenReport::default();
    let mut jitter = Jitter::new(config.seed.wrapping_mul(0x9e3779b97f4a7c15) ^ client_id as u64);
    let mut conn: Option<TcpStream> = None;
    let mut last_epoch: Option<u64> = None;
    for i in 0..config.requests_per_client {
        let src = &queries[i % queries.len()];
        let payload = match config.deadline_ms {
            Some(ms) => format!("query deadline-ms={ms} {src}"),
            None => format!("query {src}"),
        };
        report.offered += 1;
        let started = Instant::now();
        let mut answered = None;
        for attempt_no in 0..=config.max_retries {
            match attempt(&mut conn, addr, &payload) {
                Ok(response) => {
                    answered = Some(response);
                    break;
                }
                Err(_) if attempt_no < config.max_retries => {
                    report.retries += 1;
                    obs::counter!("serve.retries").incr();
                    let backoff = config
                        .base_backoff
                        .mul_f64(f64::from(1u32 << attempt_no.min(6)) * jitter.factor());
                    thread::sleep(backoff);
                }
                Err(_) => {}
            }
        }
        match answered {
            Some(response) => {
                report.latency_us.push(started.elapsed().as_micros() as u64);
                match classify(&response) {
                    Answered::Ok { epoch, cached } => {
                        report.ok += 1;
                        report.cached += u64::from(cached);
                        if let Some(e) = epoch {
                            // Closed-loop ordering: a later request grabs
                            // a later (or same) snapshot — going
                            // backwards means a stale epoch answered.
                            if last_epoch.is_some_and(|prev| e < prev) {
                                report.stale_epoch += 1;
                            }
                            last_epoch = Some(e);
                        }
                    }
                    Answered::Shed => report.shed += 1,
                    Answered::Error => report.errors += 1,
                }
            }
            None => report.failed_after_retries += 1,
        }
    }
    report
}

/// Runs the closed-loop load: `clients` threads, each offering
/// `requests_per_client` requests drawn round-robin from `queries`
/// (plain rule sources, e.g. `q(X) :- e(X, Y)`).
pub fn run_loadgen(addr: SocketAddr, queries: &[String], config: &LoadgenConfig) -> LoadgenReport {
    if queries.is_empty() || config.clients == 0 {
        return LoadgenReport::default();
    }
    let started = Instant::now();
    let mut handles = Vec::new();
    for client_id in 0..config.clients {
        let queries = queries.to_vec();
        let config = config.clone();
        let builder = thread::Builder::new().name(format!("viewplan-loadgen-{client_id}"));
        match builder.spawn(move || client_loop(addr, queries, config, client_id)) {
            Ok(h) => handles.push(h),
            Err(_) => break,
        }
    }
    let mut total = LoadgenReport::default();
    for h in handles {
        if let Ok(r) = h.join() {
            total.offered += r.offered;
            total.ok += r.ok;
            total.shed += r.shed;
            total.errors += r.errors;
            total.retries += r.retries;
            total.failed_after_retries += r.failed_after_retries;
            total.stale_epoch += r.stale_epoch;
            total.cached += r.cached;
            total.latency_us.extend(r.latency_us);
        }
    }
    total.elapsed = started.elapsed();
    total
}

/// Drives DDL churn over its own control connection: alternating
/// `add-view`/`drop-view` of `view_src` every `every`, `swaps` times.
/// Returns the number of acknowledged swaps. A transport failure
/// retries once on a fresh connection; an `already exists` /
/// `unknown view` error after a retry counts as acknowledged (the
/// earlier attempt landed — exactly the idempotency reasoning a retrying
/// client needs).
pub fn ddl_churn(
    addr: SocketAddr,
    view_src: &str,
    view_name: &str,
    swaps: usize,
    every: Duration,
) -> io::Result<u64> {
    let mut conn: Option<TcpStream> = None;
    let mut acknowledged = 0u64;
    for i in 0..swaps {
        let payload = if i % 2 == 0 {
            format!("add-view {view_src}")
        } else {
            format!("drop-view {view_name}")
        };
        let response = match attempt(&mut conn, addr, &payload) {
            Ok(r) => r,
            Err(_) => attempt(&mut conn, addr, &payload)?,
        };
        if response.starts_with("ok ")
            || response.contains("already exists")
            || response.contains("unknown view")
        {
            acknowledged += 1;
        }
        thread::sleep(every);
    }
    // Leave the catalog as we found it: a trailing add is dropped.
    if swaps % 2 == 1 {
        let _ = attempt(&mut conn, addr, &format!("drop-view {view_name}"));
    }
    if let Some(stream) = conn.as_mut() {
        let _ = stream.flush();
    }
    Ok(acknowledged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use viewplan_cq::parse_views;
    use viewplan_serve::{LiveCatalog, NetConfig, NetServer, ServeConfig};

    fn start() -> NetServer {
        let views = parse_views(
            "v1(A, B) :- a(A, B), a(B, B).\n\
             v2(C, D) :- a(C, E), b(C, D).",
        )
        .unwrap();
        let catalog = Arc::new(LiveCatalog::new(&views, ServeConfig::default()));
        NetServer::start(catalog, "127.0.0.1:0", NetConfig::default()).unwrap()
    }

    #[test]
    fn closed_loop_run_accounts_for_every_request() {
        let mut server = start();
        let queries = vec![
            "q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)".to_string(),
            "q(U) :- a(U, U)".to_string(),
        ];
        let config = LoadgenConfig {
            clients: 3,
            requests_per_client: 10,
            ..LoadgenConfig::default()
        };
        let report = run_loadgen(server.local_addr(), &queries, &config);
        assert_eq!(report.offered, 30);
        assert_eq!(report.failed_after_retries, 0);
        assert_eq!(report.stale_epoch, 0);
        assert!(report.accounted(), "{report:?}");
        assert_eq!(report.ok, 30, "healthy server answers everything");
        assert!(report.cached > 0, "repeats hit the cache");
        assert!(report.latency_percentile(0.5) <= report.latency_percentile(0.99));
        assert!(report.throughput_rps() > 0.0);
        server.shutdown();
    }

    #[test]
    fn ddl_churn_swaps_and_restores_the_catalog() {
        let mut server = start();
        let addr = server.local_addr();
        let acknowledged = ddl_churn(
            addr,
            "vddl(A, B) :- b(A, B)",
            "vddl",
            4,
            Duration::from_millis(1),
        )
        .unwrap();
        assert_eq!(acknowledged, 4);
        let mut conn = TcpStream::connect(addr).unwrap();
        write_frame(&mut conn, "epoch").unwrap();
        let response = read_frame(&mut conn, 1024).unwrap().unwrap();
        assert_eq!(response, "ok epoch=4 views=2", "catalog restored");
        server.shutdown();
    }

    #[test]
    fn jitter_is_deterministic_and_in_range() {
        let mut a = Jitter::new(42);
        let mut b = Jitter::new(42);
        for _ in 0..100 {
            let f = a.factor();
            assert_eq!(f, b.factor());
            assert!((0.5..1.0).contains(&f), "{f}");
        }
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 0.5), 50);
        assert_eq!(percentile(&sorted, 0.95), 95);
        assert_eq!(percentile(&sorted, 0.99), 99);
        assert_eq!(percentile(&[], 0.5), 0);
    }
}
