//! The measured bench trajectory behind `viewplan bench`.
//!
//! Every PR should land on a *curve*, not a vibe: this module runs fixed
//! star/chain/random CoreCover suites (the sweep machinery of
//! [`crate::run_sweep`]) plus a warm/cold serving loop against
//! [`viewplan_serve::BatchServer`], and renders the results as two
//! schema-versioned JSON documents — `BENCH_core.json` and
//! `BENCH_serve.json` — that CI regenerates in smoke mode and validates
//! against [`validate_core`] / [`validate_serve`].
//!
//! # `BENCH_core.json` (schema version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "suite": "core",
//!   "mode": "smoke" | "full",
//!   "threads": 1,
//!   "sweeps": [
//!     {
//!       "family": "star" | "chain" | "random",
//!       "nondistinguished": 2,
//!       "points": [
//!         { "views": 40, "queries": 4, "avg_ms": 1.2,
//!           "view_classes": 19.0, "view_tuples": 40.0,
//!           "representative_tuples": 19.0, "gmrs": 2.0,
//!           "hom_nodes": 800.0, "set_cover_nodes": 12.0,
//!           "completeness": 1.0 }
//!       ]
//!     }
//!   ],
//!   "acyclic": {
//!     "iters": 3,
//!     "points": [
//!       { "family": "chain", "size": 12, "pattern_atoms": 13,
//!         "target_atoms": 48, "fast_path_ms": 0.02, "fallback_ms": 4.1,
//!         "speedup": 205.0, "fast_path_hom_nodes": 0,
//!         "fallback_hom_nodes": 16384, "checks": 2, "verdicts_agree": 2 }
//!     ]
//!   }
//! }
//! ```
//!
//! The `acyclic` section is the containment half of the acyclicity
//! story: star (spider) and chain patterns at Figure 6 scale, decided
//! by both the semijoin fast path and the homomorphism DFS on the same
//! instances. The hard instances are built so the routes diverge —
//! "diamond" targets whose branching walks force the DFS to backtrack
//! exponentially while semijoins stay polynomial — and [`validate_core`]
//! pins `verdicts_agree == checks` and `speedup >= 1` on every point.
//!
//! # `BENCH_serve.json` (schema version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "suite": "serve",
//!   "mode": "smoke" | "full",
//!   "views": 12, "queries": 16,
//!   "passes": {
//!     "cold": { "requests": 16, "cache_hits": 0, "cache_misses": 16,
//!               "truncated": 0, "errors": 0,
//!               "latency_us": { "p50": 900.0, "p95": 1800.0,
//!                                "p99": 2100.0, "mean": 1000.0,
//!                                "max": 2200 } },
//!     "warm": { ... same shape, cache_hits > 0 ... }
//!   }
//! }
//! ```
//!
//! # `BENCH_engine.json` (schema version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "suite": "engine",
//!   "mode": "smoke" | "full",
//!   "points": [
//!     { "family": "star" | "chain", "rows": 1000, "subgoals": 8,
//!       "row_ms": 4.1, "columnar_ms": 1.3, "speedup": 3.2,
//!       "answer_rows": 950, "traces_match": true }
//!   ]
//! }
//! ```
//!
//! Each engine point runs the same fixed workload query (8 subgoals,
//! Figure 6 scale) over the same random base database through
//! [`viewplan_engine::execute_ordered`] twice — once under the row
//! engine, once under the columnar engine — and records the mean
//! wall-clock per execution after a warm-up run. `traces_match` is the
//! differential-oracle bit: the two [`viewplan_engine::ExecutionTrace`]s
//! (including the answer's row order) must be identical, and
//! [`validate_engine`] rejects the document if any point disagrees.
//! Timings vary run to run; `speedup` (`row_ms / columnar_ms`) is
//! recorded for the EXPERIMENTS.md table, not pinned by validation.
//!
//! Latency percentiles come from the `serve.request_latency_us` log₂
//! histogram (per-pass deltas via
//! [`viewplan_obs::MetricsSnapshot::delta_since`]), so they inherit the
//! documented ≤1-bucket interpolation error of
//! [`viewplan_obs::HistogramSnapshot::percentile`]. Wall-clock and
//! latency fields vary run to run; the *schema* (and the cache-behavior
//! invariants cold-misses/warm-hits) is what validation pins.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use viewplan_cq::{Atom, ConjunctiveQuery, Term, ViewSet};
use viewplan_engine::{Database, Engine, Value};
use viewplan_obs::{self as obs, Json};
use viewplan_serve::{BatchServer, LiveCatalog, NetConfig, NetServer, ServeConfig};
use viewplan_workload::{generate, random_database, WorkloadConfig};

use crate::loadgen::{ddl_churn, run_loadgen, LoadgenConfig, LoadgenReport};
use crate::{run_sweep, Family, SweepConfig, SweepPoint};

/// Schema version stamped into (and required from) both documents.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// How big a trajectory run should be.
#[derive(Clone, Copy, Debug)]
pub struct TrajectoryConfig {
    /// Smoke mode: tiny fixed suites that finish in seconds (what the CI
    /// `bench-smoke` job runs). Full mode runs the `quick` sweeps.
    pub smoke: bool,
    /// Harness threads forwarded to the sweep machinery.
    pub threads: usize,
}

/// The fixed core suites: one sweep per workload family. Smoke mode
/// shrinks the view counts and per-point quota so the whole trajectory
/// (including the serve loop) stays under a few seconds.
fn core_suites(config: &TrajectoryConfig) -> Vec<SweepConfig> {
    let families = [
        (Family::Star, 2usize),
        (Family::Chain, 0usize),
        (Family::Random, 1usize),
    ];
    families
        .into_iter()
        .map(|(family, nondistinguished)| {
            let mut sweep = SweepConfig::quick(family, nondistinguished);
            sweep.threads = config.threads;
            if config.smoke {
                sweep.view_counts = vec![20, 60];
                sweep.queries_per_point = 4;
            }
            sweep
        })
        .collect()
}

fn family_name(family: Family) -> &'static str {
    match family {
        Family::Star => "star",
        Family::Chain => "chain",
        Family::Random => "random",
    }
}

fn json_point(p: &SweepPoint) -> Json {
    let mut o = BTreeMap::new();
    o.insert("views".into(), Json::num(p.views as u64));
    o.insert("queries".into(), Json::num(p.queries as u64));
    o.insert("avg_ms".into(), Json::Number(p.avg_ms));
    o.insert("view_classes".into(), Json::Number(p.view_classes));
    o.insert("view_tuples".into(), Json::Number(p.view_tuples));
    o.insert(
        "representative_tuples".into(),
        Json::Number(p.representative_tuples),
    );
    o.insert("gmrs".into(), Json::Number(p.gmrs));
    o.insert("hom_nodes".into(), Json::Number(p.hom_nodes));
    o.insert("set_cover_nodes".into(), Json::Number(p.set_cover_nodes));
    o.insert("completeness".into(), Json::Number(p.completeness));
    Json::Object(o)
}

/// Runs the fixed CoreCover suites and renders `BENCH_core.json`.
/// Enables metrics collection for the duration (the sweep counters need
/// it) and leaves it enabled.
pub fn core_trajectory(config: &TrajectoryConfig) -> Json {
    obs::set_enabled(true);
    let sweeps: Vec<Json> = core_suites(config)
        .iter()
        .map(|sweep| {
            let points = run_sweep(sweep);
            let mut o = BTreeMap::new();
            o.insert("family".into(), Json::str(family_name(sweep.family)));
            o.insert(
                "nondistinguished".into(),
                Json::num(sweep.nondistinguished as u64),
            );
            o.insert(
                "points".into(),
                Json::Array(points.iter().map(json_point).collect()),
            );
            Json::Object(o)
        })
        .collect();
    let mut doc = BTreeMap::new();
    doc.insert("schema_version".into(), Json::num(BENCH_SCHEMA_VERSION));
    doc.insert("suite".into(), Json::str("core"));
    doc.insert(
        "mode".into(),
        Json::str(if config.smoke { "smoke" } else { "full" }),
    );
    doc.insert("threads".into(), Json::num(config.threads as u64));
    doc.insert("sweeps".into(), Json::Array(sweeps));
    doc.insert("acyclic".into(), acyclic_section(config));
    Json::Object(doc)
}

// ---------------------------------------------------------------------
// The acyclic containment section of `BENCH_core.json`: the semijoin
// fast path vs the homomorphism DFS on star/chain patterns at Figure 6
// scale, on instances constructed so the two routes genuinely diverge
// in cost.

/// A Boolean chain pattern: `q() :- e(X0, X1), …, e(Xk, Xk+1)` — a
/// directed walk of length `k + 1`, acyclic (every end atom is an ear).
fn chain_pattern(k: usize) -> ConjunctiveQuery {
    let body = (0..=k)
        .map(|i| {
            Atom::new(
                "e",
                vec![
                    Term::var(&format!("X{i}")),
                    Term::var(&format!("X{}", i + 1)),
                ],
            )
        })
        .collect();
    ConjunctiveQuery::new(Atom::new("q", vec![]), body)
}

/// A "diamond chain" target of depth `k`: two parallel nodes per level,
/// all four edges between consecutive levels. Its longest directed walk
/// has length `k`, but a walk prefix can be extended in two ways at
/// every level — the worst case for the backtracking DFS (2^k failing
/// partial walks per start node) and a polynomial case for semijoins.
fn diamond_target(k: usize) -> ConjunctiveQuery {
    let mut body = Vec::new();
    for i in 0..k {
        for from in ["a", "b"] {
            for to in ["a", "b"] {
                body.push(Atom::new(
                    "e",
                    vec![
                        Term::var(&format!("D{i}{from}")),
                        Term::var(&format!("D{}{to}", i + 1)),
                    ],
                ));
            }
        }
    }
    ConjunctiveQuery::new(Atom::new("q", vec![]), body)
}

/// A Boolean spider (star of paths) pattern: three legs of length `k`
/// hanging off one hub — a tree, so acyclic for any `k`.
fn spider_pattern(k: usize) -> ConjunctiveQuery {
    let mut body = Vec::new();
    for leg in 0..3 {
        let mut prev = Term::var("H");
        for i in 0..k {
            let next = Term::var(&format!("P{leg}x{i}"));
            body.push(Atom::new("e", vec![prev, next]));
            prev = next;
        }
    }
    ConjunctiveQuery::new(Atom::new("q", vec![]), body)
}

/// A spider target whose legs are diamond chains of depth `k - 1`: no
/// node reaches a directed walk of length `k`, so a `k`-leg spider
/// pattern cannot map in — but the DFS only learns that after
/// backtracking through every branching walk.
fn spider_target(k: usize) -> ConjunctiveQuery {
    let mut body = Vec::new();
    for leg in 0..3 {
        for to in ["a", "b"] {
            body.push(Atom::new(
                "e",
                vec![Term::var("H"), Term::var(&format!("T{leg}x0{to}"))],
            ));
        }
        for i in 0..k.saturating_sub(2) {
            for from in ["a", "b"] {
                for to in ["a", "b"] {
                    body.push(Atom::new(
                        "e",
                        vec![
                            Term::var(&format!("T{leg}x{i}{from}")),
                            Term::var(&format!("T{leg}x{}{to}", i + 1)),
                        ],
                    ));
                }
            }
        }
    }
    ConjunctiveQuery::new(Atom::new("q", vec![]), body)
}

/// One acyclic containment point: the same checks decided by both
/// routes, timed. Each point pairs a hard *false* instance (pattern one
/// hop too long for the target, exponential for the DFS) with an easy
/// *true* instance (the same pattern into a longer same-family target),
/// so agreement is asserted over both verdicts; only the hard instance
/// is timed. The containment memo cache is disabled by the caller, so
/// every iteration really runs its route.
fn acyclic_point(
    family: &'static str,
    size: usize,
    pattern: &ConjunctiveQuery,
    hard_target: &ConjunctiveQuery,
    easy_target: &ConjunctiveQuery,
    iters: u32,
) -> Json {
    use viewplan_containment::is_contained_in;

    // `is_contained_in(target, pattern)` maps `pattern` into `target`,
    // and routing is decided by the *pattern*'s hypergraph.
    let run = |on: bool| -> ((bool, bool), f64, u64) {
        let _g = viewplan_cq::install_acyclic(on);
        let verdicts = (
            is_contained_in(hard_target, pattern),
            is_contained_in(easy_target, pattern),
        );
        let before = obs::metrics_snapshot();
        let start = std::time::Instant::now();
        for _ in 0..iters {
            is_contained_in(hard_target, pattern);
        }
        let ms = start.elapsed().as_secs_f64() * 1000.0 / f64::from(iters);
        let delta = obs::metrics_snapshot().delta_since(&before);
        let nodes = delta.counter("containment.hom_nodes") / u64::from(iters);
        (verdicts, ms, nodes)
    };
    let (fast_verdicts, fast_ms, fast_nodes) = run(true);
    let (slow_verdicts, fallback_ms, fallback_nodes) = run(false);

    let checks = 2u64;
    let mut agree = 0u64;
    if fast_verdicts.0 == slow_verdicts.0 {
        agree += 1;
    }
    if fast_verdicts.1 == slow_verdicts.1 {
        agree += 1;
    }

    let mut o = BTreeMap::new();
    o.insert("family".into(), Json::str(family));
    o.insert("size".into(), Json::num(size as u64));
    o.insert("pattern_atoms".into(), Json::num(pattern.body.len() as u64));
    o.insert(
        "target_atoms".into(),
        Json::num(hard_target.body.len() as u64),
    );
    o.insert("fast_path_ms".into(), Json::Number(fast_ms));
    o.insert("fallback_ms".into(), Json::Number(fallback_ms));
    o.insert(
        "speedup".into(),
        Json::Number(if fast_ms > 0.0 {
            fallback_ms / fast_ms
        } else {
            0.0
        }),
    );
    o.insert("fast_path_hom_nodes".into(), Json::num(fast_nodes));
    o.insert("fallback_hom_nodes".into(), Json::num(fallback_nodes));
    o.insert("checks".into(), Json::num(checks));
    o.insert("verdicts_agree".into(), Json::num(agree));
    Json::Object(o)
}

/// Runs the acyclic star/chain containment points and renders the
/// `acyclic` section: per point, fast-path vs fallback latency on the
/// same instances, with the differential verdict agreement recorded
/// for [`validate_core`] to pin (`verdicts_agree == checks`, and the
/// polynomial route is never slower: `speedup >= 1`).
fn acyclic_section(config: &TrajectoryConfig) -> Json {
    let (chain_sizes, spider_sizes): (&[usize], &[usize]) = if config.smoke {
        (&[10, 12], &[8, 10])
    } else {
        (&[12, 16, 20], &[10, 12, 14])
    };
    let iters: u32 = if config.smoke { 3 } else { 5 };

    // Every iteration must *run* its route: memoized verdicts would
    // time the cache, not the semijoin/DFS divergence.
    let cache_was_enabled = viewplan_containment::cache_enabled();
    viewplan_containment::set_cache_enabled(false);
    let mut points = Vec::new();
    for &k in chain_sizes {
        points.push(acyclic_point(
            "chain",
            k,
            &chain_pattern(k),
            &diamond_target(k),
            &chain_pattern(k + 1),
            iters,
        ));
    }
    for &k in spider_sizes {
        points.push(acyclic_point(
            "star",
            k,
            &spider_pattern(k),
            &spider_target(k),
            &spider_pattern(k + 1),
            iters,
        ));
    }
    viewplan_containment::set_cache_enabled(cache_was_enabled);

    let mut o = BTreeMap::new();
    o.insert("iters".into(), Json::num(u64::from(iters)));
    o.insert("points".into(), Json::Array(points));
    Json::Object(o)
}

/// One warm/cold pass summary, in JSON form.
fn json_pass(
    requests: usize,
    truncated: usize,
    errors: usize,
    hits: u64,
    misses: u64,
    latency: &obs::HistogramSnapshot,
) -> Json {
    let mut lat = BTreeMap::new();
    lat.insert("p50".into(), Json::Number(latency.percentile(0.5)));
    lat.insert("p95".into(), Json::Number(latency.percentile(0.95)));
    lat.insert("p99".into(), Json::Number(latency.percentile(0.99)));
    lat.insert("mean".into(), Json::Number(latency.mean()));
    lat.insert("max".into(), Json::num(latency.max));
    let mut o = BTreeMap::new();
    o.insert("requests".into(), Json::num(requests as u64));
    o.insert("truncated".into(), Json::num(truncated as u64));
    o.insert("errors".into(), Json::num(errors as u64));
    o.insert("cache_hits".into(), Json::num(hits));
    o.insert("cache_misses".into(), Json::num(misses));
    o.insert("latency_us".into(), Json::Object(lat));
    Json::Object(o)
}

/// Runs the warm/cold serving loop and renders `BENCH_serve.json`: one
/// view set, a stream of distinct queries served twice through one
/// [`BatchServer`] — the first (cold) pass misses the rewriting cache on
/// every request, the second (warm) pass hits it on every request.
pub fn serve_trajectory(config: &TrajectoryConfig) -> Json {
    obs::set_enabled(true);
    let (views_n, queries_n) = if config.smoke { (12, 16) } else { (24, 64) };
    let seed = 20010521u64; // same fixed seed as the sweep machinery
    let views = generate(&WorkloadConfig::random(views_n, 1, seed)).views;
    let queries: Vec<_> = (0..queries_n)
        .map(|i| generate(&WorkloadConfig::random(views_n, 1, seed + 1 + i as u64)).query)
        .collect();
    let server = BatchServer::with_config(&views, ServeConfig::default());

    let run_pass = |label: &str| -> (String, Json) {
        let before = obs::metrics_snapshot();
        let hits_before = server.cache().map_or(0, |c| c.stats().hits);
        let misses_before = server.cache().map_or(0, |c| c.stats().misses);
        let mut truncated = 0usize;
        let mut errors = 0usize;
        for q in &queries {
            match server.serve(q) {
                Ok(a) if a.completeness.is_incomplete() => truncated += 1,
                Ok(_) => {}
                Err(_) => errors += 1,
            }
        }
        let delta = obs::metrics_snapshot().delta_since(&before);
        let latency = delta
            .histogram("serve.request_latency_us")
            .cloned()
            .unwrap_or_default();
        let hits = server.cache().map_or(0, |c| c.stats().hits) - hits_before;
        let misses = server.cache().map_or(0, |c| c.stats().misses) - misses_before;
        (
            label.to_string(),
            json_pass(queries.len(), truncated, errors, hits, misses, &latency),
        )
    };

    let passes: BTreeMap<String, Json> = [run_pass("cold"), run_pass("warm")].into_iter().collect();
    let query_srcs: Vec<String> = queries.iter().map(|q| q.to_string()).collect();
    let mut doc = BTreeMap::new();
    doc.insert("schema_version".into(), Json::num(BENCH_SCHEMA_VERSION));
    doc.insert("suite".into(), Json::str("serve"));
    doc.insert(
        "mode".into(),
        Json::str(if config.smoke { "smoke" } else { "full" }),
    );
    doc.insert("views".into(), Json::num(views_n as u64));
    doc.insert("queries".into(), Json::num(queries_n as u64));
    doc.insert("passes".into(), Json::Object(passes));
    doc.insert(
        "overload".into(),
        overload_section(&views, &query_srcs, config.smoke),
    );
    doc.insert(
        "ddl_churn".into(),
        ddl_churn_section(&views, &query_srcs, config.smoke),
    );
    Json::Object(doc)
}

/// One [`LoadgenReport`] rendered for the serve document.
fn json_load_report(r: &LoadgenReport) -> Json {
    let mut lat = BTreeMap::new();
    lat.insert("p50".into(), Json::num(r.latency_percentile(0.5)));
    lat.insert("p95".into(), Json::num(r.latency_percentile(0.95)));
    lat.insert("p99".into(), Json::num(r.latency_percentile(0.99)));
    let mut o = BTreeMap::new();
    o.insert("offered".into(), Json::num(r.offered));
    o.insert("ok".into(), Json::num(r.ok));
    o.insert("shed".into(), Json::num(r.shed));
    o.insert("errors".into(), Json::num(r.errors));
    o.insert("retries".into(), Json::num(r.retries));
    o.insert("silent_drops".into(), Json::num(r.failed_after_retries));
    o.insert("stale_epoch".into(), Json::num(r.stale_epoch));
    o.insert("cached".into(), Json::num(r.cached));
    o.insert("throughput_rps".into(), Json::Number(r.throughput_rps()));
    o.insert("latency_us".into(), Json::Object(lat));
    Json::Object(o)
}

/// Overload comparison over the real network stack: the same offered
/// load (closed-loop clients ≫ workers, each request carrying a
/// deadline) against a server *with* admission control (bounded queue,
/// deadline-aware rejection) and one *without* (a queue deep enough to
/// never refuse — requests then miss their deadlines inside the queue
/// instead of being shed at the door). The EXPERIMENTS table reads shed
/// rate and p99 from here; validation pins only the structural
/// invariants (accounting identity, zero silent drops, monotone
/// percentiles).
fn overload_section(views: &ViewSet, query_srcs: &[String], smoke: bool) -> Json {
    let (clients, per_client, workers) = if smoke { (6, 6, 2) } else { (12, 20, 2) };
    let deadline_ms = if smoke { 200 } else { 60 };
    let run = |queue_capacity: usize, deadline: Option<u64>| -> Json {
        let catalog = Arc::new(LiveCatalog::new(views, ServeConfig::default()));
        let net = NetConfig {
            workers,
            queue_capacity,
            ..NetConfig::default()
        };
        match NetServer::start(catalog, "127.0.0.1:0", net) {
            Ok(mut server) => {
                let report = run_loadgen(
                    server.local_addr(),
                    query_srcs,
                    &LoadgenConfig {
                        clients,
                        requests_per_client: per_client,
                        deadline_ms: deadline,
                        ..LoadgenConfig::default()
                    },
                );
                server.shutdown();
                json_load_report(&report)
            }
            Err(e) => Json::str(format!("bind failed: {e}")),
        }
    };
    let mut o = BTreeMap::new();
    o.insert("clients".into(), Json::num(clients as u64));
    o.insert("requests_per_client".into(), Json::num(per_client as u64));
    o.insert("workers".into(), Json::num(workers as u64));
    o.insert("deadline_ms".into(), Json::num(deadline_ms));
    o.insert(
        "with_admission".into(),
        run(if smoke { 4 } else { 8 }, Some(deadline_ms)),
    );
    o.insert("without_admission".into(), run(4096, None));
    Json::Object(o)
}

/// DDL churn under live traffic: closed-loop clients stream queries
/// while a control connection alternates `add-view`/`drop-view` of a
/// view sharing the workload's predicates (so swaps genuinely invalidate
/// cache entries). Validation pins the robustness story: every swap
/// acknowledged, zero silent drops, zero stale-epoch answers.
fn ddl_churn_section(views: &ViewSet, query_srcs: &[String], smoke: bool) -> Json {
    let (clients, per_client, swaps) = if smoke { (4, 8, 4) } else { (8, 25, 10) };
    // The churned view reuses the first workload view's body under a
    // fresh name, so its predicates overlap the cached queries'.
    let first_def = views.as_slice()[0].definition.to_string();
    let churn_src = match first_def.split_once('(') {
        Some((_, rest)) => format!("vchurn({rest}"),
        None => "vchurn(X) :- e(X, X)".to_string(),
    };
    let catalog = Arc::new(LiveCatalog::new(views, ServeConfig::default()));
    let net = NetConfig {
        workers: 2,
        ..NetConfig::default()
    };
    let mut o = BTreeMap::new();
    o.insert("clients".into(), Json::num(clients as u64));
    o.insert("requests_per_client".into(), Json::num(per_client as u64));
    match NetServer::start(catalog, "127.0.0.1:0", net) {
        Ok(mut server) => {
            let addr = server.local_addr();
            let churn_every = Duration::from_millis(if smoke { 2 } else { 5 });
            let churner = viewplan_sync::thread::spawn(move || {
                ddl_churn(addr, &churn_src, "vchurn", swaps, churn_every).unwrap_or(0)
            });
            let report = run_loadgen(
                addr,
                query_srcs,
                &LoadgenConfig {
                    clients,
                    requests_per_client: per_client,
                    ..LoadgenConfig::default()
                },
            );
            let acknowledged = churner.join().unwrap_or(0);
            server.shutdown();
            o.insert("epoch_swaps".into(), Json::num(acknowledged));
            o.insert("report".into(), json_load_report(&report));
        }
        Err(e) => {
            o.insert("error".into(), Json::str(format!("bind failed: {e}")));
        }
    }
    Json::Object(o)
}

/// Runs the row-vs-columnar comparison and renders `BENCH_engine.json`:
/// for each workload family and base-table size, the same 8-subgoal
/// query executes under both engines over the same database, with the
/// traces compared for byte-identity.
pub fn engine_trajectory(config: &TrajectoryConfig) -> Json {
    obs::set_enabled(true);
    let row_counts: &[usize] = if config.smoke {
        &[200, 1000]
    } else {
        &[1000, 5000]
    };
    let iters: u32 = if config.smoke { 3 } else { 5 };
    let seed = 20010521u64; // same fixed seed as the sweep machinery

    let mut points = Vec::new();
    for (family, wconfig) in [
        ("star", WorkloadConfig::star(1, 0, seed)),
        ("chain", WorkloadConfig::chain(1, 0, seed)),
    ] {
        let subgoals = wconfig.query_subgoals;
        let query = generate(&wconfig).query;
        for &rows in row_counts {
            let mut db = Database::new();
            for (name, tuples) in random_database(&query, rows, rows as i64, seed ^ rows as u64) {
                for tuple in tuples {
                    db.insert(name, tuple.into_iter().map(Value::Int).collect());
                }
            }
            let measure = |engine: Engine| {
                let _guard = viewplan_engine::install(engine);
                // Warm-up: populates the columnar cache (and the CPU's)
                // so the timed runs measure steady-state execution.
                let trace = viewplan_engine::execute_ordered(&query.head, &query.body, &db);
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    viewplan_engine::execute_ordered(&query.head, &query.body, &db);
                }
                let ms = start.elapsed().as_secs_f64() * 1000.0 / f64::from(iters);
                (ms, trace)
            };
            let (row_ms, row_trace) = measure(Engine::Row);
            let (columnar_ms, columnar_trace) = measure(Engine::Columnar);
            let traces_match = row_trace == columnar_trace
                && row_trace.answer.as_slice() == columnar_trace.answer.as_slice();
            let mut o = BTreeMap::new();
            o.insert("family".into(), Json::str(family));
            o.insert("rows".into(), Json::num(rows as u64));
            o.insert("subgoals".into(), Json::num(subgoals as u64));
            o.insert("row_ms".into(), Json::Number(row_ms));
            o.insert("columnar_ms".into(), Json::Number(columnar_ms));
            o.insert(
                "speedup".into(),
                Json::Number(if columnar_ms > 0.0 {
                    row_ms / columnar_ms
                } else {
                    0.0
                }),
            );
            o.insert(
                "answer_rows".into(),
                Json::num(columnar_trace.answer.len() as u64),
            );
            o.insert("traces_match".into(), Json::Bool(traces_match));
            points.push(Json::Object(o));
        }
    }

    let mut doc = BTreeMap::new();
    doc.insert("schema_version".into(), Json::num(BENCH_SCHEMA_VERSION));
    doc.insert("suite".into(), Json::str("engine"));
    doc.insert(
        "mode".into(),
        Json::str(if config.smoke { "smoke" } else { "full" }),
    );
    doc.insert("points".into(), Json::Array(points));
    Json::Object(doc)
}

// ---------------------------------------------------------------------
// Schema validation (what the CI bench-smoke job runs against both the
// freshly emitted documents and the checked-in trajectory files).

fn expect_u64(doc: &Json, key: &str) -> Result<u64, String> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {key:?}"))
}

fn expect_f64(doc: &Json, key: &str) -> Result<f64, String> {
    doc.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing or non-numeric field {key:?}"))
}

fn expect_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, String> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field {key:?}"))
}

fn check_header(doc: &Json, suite: &str) -> Result<(), String> {
    let version = expect_u64(doc, "schema_version")?;
    if version != BENCH_SCHEMA_VERSION {
        return Err(format!(
            "schema_version {version} != supported {BENCH_SCHEMA_VERSION}"
        ));
    }
    let got = expect_str(doc, "suite")?;
    if got != suite {
        return Err(format!("suite {got:?} != expected {suite:?}"));
    }
    let mode = expect_str(doc, "mode")?;
    if mode != "smoke" && mode != "full" {
        return Err(format!("mode {mode:?} is neither \"smoke\" nor \"full\""));
    }
    Ok(())
}

/// Validates a `BENCH_core.json` document against schema version 1.
pub fn validate_core(doc: &Json) -> Result<(), String> {
    check_header(doc, "core")?;
    expect_u64(doc, "threads")?;
    let sweeps = doc
        .get("sweeps")
        .and_then(Json::as_array)
        .ok_or("missing \"sweeps\" array")?;
    if sweeps.is_empty() {
        return Err("\"sweeps\" is empty".into());
    }
    for sweep in sweeps {
        let family = expect_str(sweep, "family")?;
        if !matches!(family, "star" | "chain" | "random") {
            return Err(format!("unknown family {family:?}"));
        }
        expect_u64(sweep, "nondistinguished")?;
        let points = sweep
            .get("points")
            .and_then(Json::as_array)
            .ok_or("sweep missing \"points\" array")?;
        if points.is_empty() {
            return Err(format!("family {family:?} has no points"));
        }
        for p in points {
            expect_u64(p, "views")?;
            expect_u64(p, "queries")?;
            for key in [
                "avg_ms",
                "view_classes",
                "view_tuples",
                "representative_tuples",
                "gmrs",
                "hom_nodes",
                "set_cover_nodes",
                "completeness",
            ] {
                let v = expect_f64(p, key)?;
                if v < 0.0 {
                    return Err(format!("negative {key} in a {family:?} point"));
                }
            }
        }
    }
    validate_acyclic(doc.get("acyclic").ok_or("missing \"acyclic\" object")?)
}

/// Validates the `acyclic` section of `BENCH_core.json`: per point, the
/// differential-oracle invariant (the semijoin and DFS verdicts agreed
/// on every check) and the performance invariant (the polynomial route
/// was never slower than the exponential one on its hard instances).
fn validate_acyclic(section: &Json) -> Result<(), String> {
    expect_u64(section, "iters")?;
    let points = section
        .get("points")
        .and_then(Json::as_array)
        .ok_or("acyclic section missing \"points\" array")?;
    if points.is_empty() {
        return Err("acyclic \"points\" is empty".into());
    }
    for p in points {
        let family = expect_str(p, "family")?;
        if !matches!(family, "star" | "chain") {
            return Err(format!("unknown acyclic family {family:?}"));
        }
        let size = expect_u64(p, "size")?;
        if size == 0 {
            return Err(format!("acyclic {family:?} point has size 0"));
        }
        expect_u64(p, "pattern_atoms")?;
        expect_u64(p, "target_atoms")?;
        for key in ["fast_path_ms", "fallback_ms"] {
            let v = expect_f64(p, key)?;
            if v < 0.0 {
                return Err(format!("negative {key} in an acyclic {family:?} point"));
            }
        }
        let speedup = expect_f64(p, "speedup")?;
        if speedup < 1.0 {
            return Err(format!(
                "acyclic {family:?} at size {size}: fast path slower than fallback \
                 (speedup {speedup})"
            ));
        }
        // The fast path must have decided without the DFS; the fallback
        // must really have searched.
        let fast_nodes = expect_u64(p, "fast_path_hom_nodes")?;
        if fast_nodes != 0 {
            return Err(format!(
                "acyclic {family:?} at size {size}: fast path expanded {fast_nodes} \
                 DFS node(s) — it did not take the semijoin route"
            ));
        }
        let fallback_nodes = expect_u64(p, "fallback_hom_nodes")?;
        if fallback_nodes == 0 {
            return Err(format!(
                "acyclic {family:?} at size {size}: fallback expanded no DFS nodes"
            ));
        }
        let checks = expect_u64(p, "checks")?;
        let agree = expect_u64(p, "verdicts_agree")?;
        if checks == 0 || agree != checks {
            return Err(format!(
                "acyclic {family:?} at size {size}: verdict agreement {agree}/{checks}"
            ));
        }
    }
    Ok(())
}

/// Validates a `BENCH_serve.json` document against schema version 1,
/// including the cache-behavior invariant: the cold pass cannot hit more
/// than the warm pass, and the warm pass must actually hit the cache.
pub fn validate_serve(doc: &Json) -> Result<(), String> {
    check_header(doc, "serve")?;
    expect_u64(doc, "views")?;
    expect_u64(doc, "queries")?;
    let passes = doc.get("passes").ok_or("missing \"passes\" object")?;
    let mut hit_rate = BTreeMap::new();
    for label in ["cold", "warm"] {
        let pass = passes
            .get(label)
            .ok_or_else(|| format!("missing pass {label:?}"))?;
        let requests = expect_u64(pass, "requests")?;
        if requests == 0 {
            return Err(format!("pass {label:?} served no requests"));
        }
        expect_u64(pass, "truncated")?;
        expect_u64(pass, "errors")?;
        let hits = expect_u64(pass, "cache_hits")?;
        expect_u64(pass, "cache_misses")?;
        hit_rate.insert(label, hits as f64 / requests as f64);
        let lat = pass
            .get("latency_us")
            .ok_or_else(|| format!("pass {label:?} missing \"latency_us\""))?;
        let p50 = expect_f64(lat, "p50")?;
        let p95 = expect_f64(lat, "p95")?;
        let p99 = expect_f64(lat, "p99")?;
        expect_f64(lat, "mean")?;
        expect_u64(lat, "max")?;
        if !(p50 <= p95 && p95 <= p99) {
            return Err(format!(
                "pass {label:?}: percentiles are not monotone (p50={p50}, p95={p95}, p99={p99})"
            ));
        }
    }
    if hit_rate["warm"] <= hit_rate["cold"] {
        return Err(format!(
            "warm hit rate {} is not above cold hit rate {} — the cache did nothing",
            hit_rate["warm"], hit_rate["cold"]
        ));
    }
    let overload = doc.get("overload").ok_or("missing \"overload\" object")?;
    for key in ["clients", "requests_per_client", "workers", "deadline_ms"] {
        expect_u64(overload, key)?;
    }
    for variant in ["with_admission", "without_admission"] {
        let block = overload
            .get(variant)
            .ok_or_else(|| format!("overload missing {variant:?}"))?;
        validate_load_block(block, variant)?;
    }
    let churn = doc.get("ddl_churn").ok_or("missing \"ddl_churn\" object")?;
    expect_u64(churn, "clients")?;
    expect_u64(churn, "requests_per_client")?;
    let swaps = expect_u64(churn, "epoch_swaps")?;
    if swaps == 0 {
        return Err("ddl_churn acknowledged no epoch swaps".into());
    }
    validate_load_block(
        churn.get("report").ok_or("ddl_churn missing \"report\"")?,
        "ddl_churn.report",
    )?;
    Ok(())
}

/// Structural invariants of one load-generator block: the accounting
/// identity holds, nothing was silently dropped, no stale-epoch answer
/// was served, and the latency percentiles are monotone. Timing fields
/// (throughput, absolute latency) vary run to run and are not pinned.
fn validate_load_block(block: &Json, label: &str) -> Result<(), String> {
    let offered = expect_u64(block, "offered")?;
    if offered == 0 {
        return Err(format!("{label}: offered no requests"));
    }
    let ok = expect_u64(block, "ok")?;
    let shed = expect_u64(block, "shed")?;
    let errors = expect_u64(block, "errors")?;
    let silent = expect_u64(block, "silent_drops")?;
    let stale = expect_u64(block, "stale_epoch")?;
    expect_u64(block, "retries")?;
    expect_u64(block, "cached")?;
    expect_f64(block, "throughput_rps")?;
    if ok + shed + errors + silent != offered {
        return Err(format!(
            "{label}: accounting broken — ok {ok} + shed {shed} + errors {errors} + \
             silent {silent} != offered {offered}"
        ));
    }
    if silent != 0 {
        return Err(format!("{label}: {silent} request(s) silently dropped"));
    }
    if stale != 0 {
        return Err(format!("{label}: {stale} stale-epoch answer(s) served"));
    }
    let lat = block
        .get("latency_us")
        .ok_or_else(|| format!("{label} missing \"latency_us\""))?;
    let p50 = expect_f64(lat, "p50")?;
    let p95 = expect_f64(lat, "p95")?;
    let p99 = expect_f64(lat, "p99")?;
    if !(p50 <= p95 && p95 <= p99) {
        return Err(format!(
            "{label}: percentiles are not monotone (p50={p50}, p95={p95}, p99={p99})"
        ));
    }
    Ok(())
}

/// Validates a `BENCH_engine.json` document against schema version 1,
/// including the differential-oracle invariant: every point's row and
/// columnar traces must have matched (`traces_match: true`).
pub fn validate_engine(doc: &Json) -> Result<(), String> {
    check_header(doc, "engine")?;
    let points = doc
        .get("points")
        .and_then(Json::as_array)
        .ok_or("missing \"points\" array")?;
    if points.is_empty() {
        return Err("\"points\" is empty".into());
    }
    for p in points {
        let family = expect_str(p, "family")?;
        if !matches!(family, "star" | "chain") {
            return Err(format!("unknown engine family {family:?}"));
        }
        let rows = expect_u64(p, "rows")?;
        if rows == 0 {
            return Err(format!("family {family:?} has a zero-row point"));
        }
        expect_u64(p, "subgoals")?;
        expect_u64(p, "answer_rows")?;
        for key in ["row_ms", "columnar_ms"] {
            let v = expect_f64(p, key)?;
            if v < 0.0 {
                return Err(format!("negative {key} in a {family:?} point"));
            }
        }
        let speedup = expect_f64(p, "speedup")?;
        if speedup <= 0.0 {
            return Err(format!("non-positive speedup in a {family:?} point"));
        }
        match p.get("traces_match") {
            Some(Json::Bool(true)) => {}
            Some(Json::Bool(false)) => {
                return Err(format!(
                    "family {family:?} at {rows} rows: row and columnar traces diverged"
                ));
            }
            _ => return Err("missing or non-boolean field \"traces_match\"".into()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> TrajectoryConfig {
        TrajectoryConfig {
            smoke: true,
            threads: 1,
        }
    }

    #[test]
    fn serve_trajectory_validates_and_shows_warm_cache_hits() {
        let doc = serve_trajectory(&smoke());
        validate_serve(&doc).unwrap();
        let warm = doc.get("passes").unwrap().get("warm").unwrap();
        let requests = warm.get("requests").unwrap().as_u64().unwrap();
        let hits = warm.get("cache_hits").unwrap().as_u64().unwrap();
        assert_eq!(hits, requests, "every warm request hits the cache");
        // The overload run over a live socket must account for every
        // request and the DDL churn must have swapped epochs.
        let overload = doc.get("overload").unwrap();
        for variant in ["with_admission", "without_admission"] {
            let block = overload.get(variant).unwrap();
            assert_eq!(block.get("silent_drops").unwrap().as_u64(), Some(0));
            assert_eq!(block.get("stale_epoch").unwrap().as_u64(), Some(0));
        }
        let churn = doc.get("ddl_churn").unwrap();
        assert!(churn.get("epoch_swaps").unwrap().as_u64().unwrap() >= 1);
    }

    #[test]
    fn core_trajectory_validates_and_round_trips_through_render() {
        let doc = core_trajectory(&smoke());
        validate_core(&doc).unwrap();
        let rendered = doc.render();
        let parsed = obs::parse_json(&rendered).unwrap();
        validate_core(&parsed).unwrap();
        assert_eq!(parsed, doc);
        // Flip one differential-oracle bit in the acyclic section: the
        // document must be rejected.
        let mut broken = doc;
        if let Json::Object(map) = &mut broken {
            if let Some(Json::Object(acyclic)) = map.get_mut("acyclic") {
                if let Some(Json::Array(points)) = acyclic.get_mut("points") {
                    if let Some(Json::Object(p)) = points.first_mut() {
                        p.insert("verdicts_agree".into(), Json::num(1));
                    }
                }
            }
        }
        assert!(validate_core(&broken)
            .unwrap_err()
            .contains("verdict agreement"));
    }

    #[test]
    fn acyclic_hard_instances_really_diverge() {
        // The constructions underlying the acyclic section: a k-walk
        // pattern cannot map into a depth-k diamond (hard false), but
        // can into a (k+1)-walk of its own family (easy true) — and
        // both routes must say so. The memo cache is cleared between
        // routes (not disabled — the enable switch is process-global
        // and other tests in this binary time uncached runs) so the
        // second route really recomputes its verdict.
        for (pattern, hard, easy) in [
            (chain_pattern(6), diamond_target(6), chain_pattern(7)),
            (spider_pattern(5), spider_target(5), spider_pattern(6)),
        ] {
            for on in [true, false] {
                let _g = viewplan_cq::install_acyclic(on);
                viewplan_containment::clear_containment_cache();
                assert!(
                    !viewplan_containment::is_contained_in(&hard, &pattern),
                    "hard instance unexpectedly mapped (acyclic={on})"
                );
                assert!(
                    viewplan_containment::is_contained_in(&easy, &pattern),
                    "easy instance failed to map (acyclic={on})"
                );
            }
        }
    }

    #[test]
    fn engine_trajectory_validates_and_traces_match() {
        let doc = engine_trajectory(&smoke());
        validate_engine(&doc).unwrap();
        let rendered = doc.render();
        let parsed = obs::parse_json(&rendered).unwrap();
        validate_engine(&parsed).unwrap();
        // Flip one oracle bit: validation must reject the document.
        let mut broken = doc;
        if let Json::Object(map) = &mut broken {
            if let Some(Json::Array(points)) = map.get_mut("points") {
                if let Some(Json::Object(p)) = points.first_mut() {
                    p.insert("traces_match".into(), Json::Bool(false));
                }
            }
        }
        assert!(validate_engine(&broken).unwrap_err().contains("diverged"));
    }

    #[test]
    fn validation_rejects_wrong_versions_and_broken_invariants() {
        let mut doc = serve_trajectory(&smoke());
        validate_serve(&doc).unwrap();
        // Break the overload accounting identity: must be rejected.
        let mut cooked = doc.clone();
        if let Json::Object(map) = &mut cooked {
            if let Some(Json::Object(over)) = map.get_mut("overload") {
                if let Some(Json::Object(block)) = over.get_mut("with_admission") {
                    block.insert("silent_drops".into(), Json::num(3));
                }
            }
        }
        assert!(validate_serve(&cooked).unwrap_err().contains("accounting"));
        // A served stale-epoch answer must be rejected even when the
        // accounting identity still balances.
        let mut stale = doc.clone();
        if let Json::Object(map) = &mut stale {
            if let Some(Json::Object(churn)) = map.get_mut("ddl_churn") {
                if let Some(Json::Object(block)) = churn.get_mut("report") {
                    block.insert("stale_epoch".into(), Json::num(1));
                }
            }
        }
        assert!(validate_serve(&stale).unwrap_err().contains("stale-epoch"));
        // Bump the version: must be rejected.
        if let Json::Object(map) = &mut doc {
            map.insert("schema_version".into(), Json::num(99));
        }
        assert!(validate_serve(&doc).unwrap_err().contains("schema_version"));
    }
}
