//! Spot check: disabled-mode instrumentation costs nothing measurable.
//!
//! The hot loops are instrumented unconditionally; when collection is
//! off every counter/span call is one relaxed atomic load. This test
//! times one Figure-8-style sweep point with collection off and with it
//! on: the *enabled* run is a strict upper bound on whatever the
//! disabled run can cost over uninstrumented code, so if the two are
//! close, disabled overhead is in the noise.
//!
//! Run manually (timing asserts are too flaky for CI):
//!
//! ```bash
//! cargo test -q -p viewplan-bench --release -- --ignored --nocapture
//! ```

use std::time::Instant;
use viewplan_core::CoreCover;
use viewplan_obs as obs;
use viewplan_workload::{generate, WorkloadConfig};

#[test]
#[ignore = "timing-sensitive; run manually with --release --ignored"]
fn disabled_stats_add_no_measurable_overhead() {
    let w = generate(&WorkloadConfig::chain(500, 0, 20010521));
    let time_runs = |iters: usize| {
        let start = Instant::now();
        for _ in 0..iters {
            let r = CoreCover::new(&w.query, &w.views).run();
            assert!(!r.rewritings().is_empty());
        }
        start.elapsed().as_secs_f64() / iters as f64
    };

    // Warm up, then measure each mode.
    obs::set_enabled(false);
    time_runs(5);
    let disabled = time_runs(30);
    obs::set_enabled(true);
    let enabled = time_runs(30);
    obs::set_enabled(false);

    let ratio = enabled / disabled;
    println!(
        "corecover chain/500: disabled {:.3} ms, enabled {:.3} ms, ratio {ratio:.3}",
        disabled * 1e3,
        enabled * 1e3,
    );
    // Even full collection should stay within 25% of disabled; disabled
    // vs. uninstrumented is far below that.
    assert!(
        ratio < 1.25,
        "instrumentation overhead too high: {ratio:.3}"
    );
}

/// The tracing layer's *marginal* cost on a Figure-6-style star sweep
/// point: with collection already enabled, installing a request trace
/// adds per-span buffer appends on top of the counters — the quantity
/// EXPERIMENTS.md's "tracing overhead" table reports (target ≤ 5%).
#[test]
#[ignore = "timing-sensitive; run manually with --release --ignored"]
fn request_tracing_overhead_is_bounded_on_a_fig6_point() {
    let w = generate(&WorkloadConfig::star(500, 0, 20010521));
    let time_runs = |iters: usize, traced: bool| {
        let start = Instant::now();
        for _ in 0..iters {
            let trace = traced.then(obs::Trace::new);
            let _guard = trace.as_ref().map(obs::trace::install);
            let r = CoreCover::new(&w.query, &w.views).run();
            assert!(!r.rewritings().is_empty());
        }
        start.elapsed().as_secs_f64() / iters as f64
    };

    obs::set_enabled(true);
    time_runs(5, true);
    let untraced = time_runs(30, false);
    let traced = time_runs(30, true);
    obs::set_enabled(false);

    let ratio = traced / untraced;
    println!(
        "corecover star/500 (collection on): untraced {:.3} ms, traced {:.3} ms, ratio {ratio:.3}",
        untraced * 1e3,
        traced * 1e3,
    );
    // The ≤5% documentation target with headroom for container noise.
    assert!(ratio < 1.15, "tracing overhead too high: {ratio:.3}");
}
