//! Polynomial containment for acyclic patterns: semijoins over the GYO
//! join forest instead of the exponential homomorphism DFS.
//!
//! By Chandra–Merlin, deciding a containment mapping from `from` onto
//! `onto` is Boolean conjunctive-query evaluation: treat `onto`'s body
//! as a frozen database and ask whether `from`'s body (with the head
//! mapping pinned) has a match. When the *pattern's* hypergraph — over
//! the variables still free after pinning the head — is acyclic,
//! Yannakakis' argument applies: build, per pattern atom, the relation
//! of its candidate matches projected onto its free variables, then
//! semijoin-reduce bottom-up along the join forest. A homomorphism
//! exists iff every root of the forest keeps at least one row. Each
//! candidate relation has at most `|onto.body|` rows, so the whole
//! decision is polynomial — no search tree, no budget ticks, and
//! therefore always *complete*: the verdict is safe to cache and
//! immune to node budgets by construction.
//!
//! Cyclic patterns return `None` and the caller falls back to the DFS;
//! the `containment.acyclic_fast_path` / `containment.acyclic_fallback`
//! counters record which way each check went.

use std::collections::HashSet;
use viewplan_cq::hypergraph::gyo_forest;
use viewplan_cq::{Atom, Substitution, Symbol, Term};
use viewplan_obs as obs;

// Single registration site per counter name (the xtask lint): both
// outcomes of the routing decision funnel through here.
fn note_routing(fast_path: bool) {
    if fast_path {
        obs::counter!("containment.acyclic_fast_path").incr();
    } else {
        obs::counter!("containment.acyclic_fallback").incr();
    }
}

/// One argument position of a pattern atom after pinning the head
/// mapping: either still free, or forced to a fixed target term.
///
/// Pinning by *value* (instead of interning fresh frozen symbols) keeps
/// the two variable spaces apart without touching the global interner:
/// a pattern variable named like a target variable stays distinct from
/// it unless the head mapping identifies them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PatTerm {
    /// An unbound pattern variable, matched by consistent binding.
    Free(Symbol),
    /// A constant, or a variable the head mapping already sent to a
    /// fixed target term; matches exactly that term.
    Pinned(Term),
}

/// Decides whether a homomorphism from `pattern` into `target`
/// extending `initial` exists, via bottom-up semijoins — `None` when
/// the pinned pattern's hypergraph is cyclic (caller must fall back to
/// the DFS), `Some(verdict)` otherwise. The verdict is always complete:
/// no budget is consumed and truncation is impossible.
pub(crate) fn semijoin_mapping_exists(
    pattern: &[Atom],
    target: &[Atom],
    initial: &Substitution,
) -> Option<bool> {
    // Per-atom free-variable schemas and hyperedges, head pins applied.
    let pinned: Vec<Vec<PatTerm>> = pattern
        .iter()
        .map(|a| {
            a.terms
                .iter()
                .map(|&t| match t {
                    Term::Const(_) => PatTerm::Pinned(t),
                    Term::Var(v) => match initial.get(v) {
                        Some(bound) => PatTerm::Pinned(bound),
                        None => PatTerm::Free(v),
                    },
                })
                .collect()
        })
        .collect();
    let schemas: Vec<Vec<Symbol>> = pinned.iter().map(|terms| schema_of(terms)).collect();
    let edges = schemas
        .iter()
        .map(|s| s.iter().copied().collect())
        .collect::<Vec<_>>();
    let Some(forest) = gyo_forest(&edges) else {
        note_routing(false);
        return None;
    };
    note_routing(true);

    // Candidate relations: for pattern atom i, the matches among the
    // target atoms, projected onto (and deduplicated over) its schema.
    let mut relations: Vec<Vec<Vec<Term>>> = Vec::with_capacity(pattern.len());
    for (i, terms) in pinned.iter().enumerate() {
        let mut rows: Vec<Vec<Term>> = Vec::new();
        let mut seen: HashSet<Vec<Term>> = HashSet::new();
        for cand in target {
            if cand.predicate != pattern[i].predicate || cand.arity() != pattern[i].arity() {
                continue;
            }
            if let Some(row) = match_atom(terms, &schemas[i], cand) {
                if seen.insert(row.clone()) {
                    rows.push(row);
                }
            }
        }
        if rows.is_empty() {
            // An unmatched atom can never be satisfied — the join is
            // empty regardless of the rest.
            return Some(false);
        }
        relations.push(rows);
    }

    // Bottom-up semijoin pass along the ear-removal order: each ear
    // filters its witness down to the rows that still have a partner.
    // (The Boolean verdict needs no top-down pass.)
    for &ear in &forest.order {
        let Some(parent) = forest.parent[ear] else {
            continue;
        };
        let shared: Vec<Symbol> = schemas[parent]
            .iter()
            .copied()
            .filter(|v| schemas[ear].contains(v))
            .collect();
        if shared.is_empty() {
            // GYO only assigns a witness when variables are shared, but
            // be defensive: a disjoint ear gates only nonemptiness, and
            // every relation is nonempty here (empty ones return early).
            continue;
        }
        let ear_positions: Vec<usize> = shared
            .iter()
            .map(|v| position_of(&schemas[ear], *v))
            .collect();
        let keys: HashSet<Vec<Term>> = relations[ear]
            .iter()
            .map(|row| ear_positions.iter().map(|&p| row[p]).collect())
            .collect();
        let parent_positions: Vec<usize> = shared
            .iter()
            .map(|v| position_of(&schemas[parent], *v))
            .collect();
        relations[parent].retain(|row| {
            let key: Vec<Term> = parent_positions.iter().map(|&p| row[p]).collect();
            keys.contains(&key)
        });
        if relations[parent].is_empty() {
            return Some(false);
        }
    }
    // Fully reduced: every root (hence every component) kept a row, so
    // a consistent global assignment exists.
    let verdict = forest.roots().all(|r| !relations[r].is_empty());
    Some(verdict)
}

/// The free variables of a pinned atom, in first-occurrence order.
fn schema_of(terms: &[PatTerm]) -> Vec<Symbol> {
    let mut out = Vec::new();
    for t in terms {
        if let PatTerm::Free(v) = t {
            if !out.contains(v) {
                out.push(*v);
            }
        }
    }
    out
}

/// Index of `v` in `schema` (always present by construction).
fn position_of(schema: &[Symbol], v: Symbol) -> usize {
    schema.iter().position(|&x| x == v).unwrap_or(0)
}

/// Matches one pinned pattern atom against one target atom, returning
/// the induced row over `schema` — the same unification semantics as
/// the DFS: pinned terms must be exactly equal, free variables bind
/// consistently within the atom.
fn match_atom(terms: &[PatTerm], schema: &[Symbol], cand: &Atom) -> Option<Vec<Term>> {
    let mut row: Vec<Option<Term>> = vec![None; schema.len()];
    for (p, c) in terms.iter().zip(&cand.terms) {
        match *p {
            PatTerm::Pinned(t) => {
                if t != *c {
                    return None;
                }
            }
            PatTerm::Free(v) => {
                let slot = position_of(schema, v);
                match row[slot] {
                    Some(existing) if existing != *c => return None,
                    Some(_) => {}
                    None => row[slot] = Some(*c),
                }
            }
        }
    }
    Some(row.into_iter().map(|t| t.unwrap_or(Term::int(0))).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::head_bindings;
    use crate::homomorphism::HomomorphismSearch;
    use viewplan_cq::parse_query;

    /// Runs both deciders on `from ⊒ onto` and checks they agree; returns
    /// the fast path's answer (`None` = cyclic, fast path unavailable).
    fn differential(from_src: &str, onto_src: &str) -> Option<bool> {
        let from = parse_query(from_src).unwrap();
        let onto = parse_query(onto_src).unwrap();
        let Some(initial) = head_bindings(&from, &onto) else {
            return Some(false);
        };
        let fast = semijoin_mapping_exists(&from.body, &onto.body, &initial);
        if let Some(verdict) = fast {
            let slow =
                HomomorphismSearch::with_initial(&from.body, &onto.body, initial.clone()).exists();
            assert_eq!(
                verdict, slow,
                "semijoin disagrees with DFS: {from_src} / {onto_src}"
            );
        }
        fast
    }

    #[test]
    fn chain_containment_agrees_with_dfs() {
        assert_eq!(
            differential("q(X) :- e(X, Y)", "q(A) :- e(A, B), e(B, C)"),
            Some(true)
        );
        // No hom maps the 2-chain into the 1-chain with X pinned to A.
        assert_eq!(
            differential("q(X) :- e(X, Y), e(Y, Z)", "q(A) :- e(A, B)"),
            Some(false)
        );
        assert_eq!(
            differential("q(X) :- e(X, Y), f(Y, Z)", "q(A) :- e(A, B), f(C, D)"),
            Some(false)
        );
    }

    #[test]
    fn constants_and_repeats_agree_with_dfs() {
        assert_eq!(
            differential("q(X) :- e(X, a)", "q(Z) :- e(Z, b)"),
            Some(false)
        );
        assert_eq!(
            differential("q(X) :- e(X, X)", "q(A) :- e(A, B)"),
            Some(false)
        );
        assert_eq!(
            differential("q(X) :- e(X, X)", "q(A) :- e(A, A)"),
            Some(true)
        );
    }

    #[test]
    fn head_pins_are_respected() {
        // Head maps X→A; the body e(X, X) must then match e(A, A) only.
        assert_eq!(
            differential("q(X, X) :- e(X, X)", "q(A, A) :- e(A, A)"),
            Some(true)
        );
        assert_eq!(
            differential("q(X, X) :- e(X, X)", "q(A, A) :- e(A, B)"),
            Some(false)
        );
    }

    #[test]
    fn same_named_variables_stay_distinct_across_sides() {
        // The pattern's unbound Y shares its name with the target's Y;
        // value-pinning must not conflate them.
        assert_eq!(
            differential("q(X) :- e(X, Y)", "q(Y) :- e(Y, Z)"),
            Some(true)
        );
    }

    #[test]
    fn cyclic_pattern_reports_fallback() {
        assert_eq!(
            differential("q() :- e(A, B), e(B, C), e(C, A)", "q() :- e(X, X)"),
            None
        );
    }

    #[test]
    fn head_pins_can_make_a_cyclic_body_acyclic() {
        // The triangle collapses once the head pins two of its corners.
        let fast = differential(
            "q(A, B, C) :- e(A, B), e(B, C), e(C, A)",
            "q(X, Y, Z) :- e(X, Y), e(Y, Z), e(Z, X)",
        );
        assert_eq!(fast, Some(true));
    }

    #[test]
    fn star_pattern_onto_star_target() {
        assert_eq!(
            differential(
                "q(X) :- r(X, A), r(X, B), r(X, C)",
                "q(U) :- r(U, V), r(U, W)"
            ),
            Some(true)
        );
        assert_eq!(
            differential("q(X) :- r(X, A), s(X, B)", "q(U) :- r(U, V), r(U, W)"),
            Some(false)
        );
    }

    #[test]
    fn ground_pattern_atom_decides_by_presence() {
        assert_eq!(
            differential("q() :- e(a, b)", "q() :- e(a, b), f(c, d)"),
            Some(true)
        );
        assert_eq!(
            differential("q() :- e(a, c)", "q() :- e(a, b), f(c, d)"),
            Some(false)
        );
    }

    #[test]
    fn empty_pattern_is_trivially_contained() {
        let from = parse_query("q() :- e(X, Y)").unwrap();
        let initial = Substitution::new();
        assert_eq!(
            semijoin_mapping_exists(&[], &from.body, &initial),
            Some(true)
        );
    }

    #[test]
    fn disconnected_pattern_components_all_must_match() {
        assert_eq!(
            differential("q() :- e(X, Y), f(Z, W)", "q() :- e(a, b), f(c, d)"),
            Some(true)
        );
        assert_eq!(
            differential("q() :- e(X, Y), g(Z, W)", "q() :- e(a, b), f(c, d)"),
            Some(false)
        );
    }
}
