//! A shared, thread-safe containment memo cache.
//!
//! Containment checks recur heavily across the CoreCover pipeline: the
//! same query pair is tested during minimization, again while grouping
//! views into equivalence classes, again per view tuple, and once more by
//! the M3 renaming heuristic — and a parallel sweep multiplies the
//! repetition across worker threads. Since containment is invariant under
//! variable renaming (Chandra & Merlin homomorphisms never look at
//! variable *names*), verdicts can be memoized on **canonicalized** query
//! pairs: every variable is renamed to its order of first occurrence
//! (head first, then body, left to right), so all variants of a pair hit
//! the same entry.
//!
//! The cache is process-global and sharded: each shard is an independent
//! `viewplan_sync::RwLock<HashMap>`, picked by key hash, so concurrent
//! workers rarely contend on the same lock. Reads take the shard's read
//! lock; only a miss upgrades to a write. Only checks of at least
//! [`MIN_CACHED_SUBGOALS`] combined body subgoals are memoized: below
//! that, a fresh homomorphism search beats even an uncontended cache
//! probe, and routing the millions of tiny view-vs-view checks of a
//! sweep through shared locks would serialize parallel workers. To bound memory across long
//! sweeps (whose workloads never repeat a query pair between instances),
//! a shard that reaches [`SHARD_CAPACITY`] entries is cleared wholesale —
//! reuse is temporally local, so epoch-style eviction loses almost
//! nothing.
//!
//! Observability: hits, misses, and evictions are reported through the
//! `containment.cache_hits` / `containment.cache_misses` /
//! `containment.cache_evictions` counters when stats collection is on.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;
use viewplan_cq::{Atom, ConjunctiveQuery, Constant, Substitution, Symbol, Term};
use viewplan_obs as obs;
use viewplan_sync::{AtomicBool, Ordering, RwLock};

/// Number of independent lock shards (power of two).
const SHARDS: usize = 16;

/// Entries per shard before the shard is cleared (epoch eviction). With
/// 16 shards this bounds the cache at ~128k verdicts.
const SHARD_CAPACITY: usize = 8192;

/// Minimum combined body size (subgoals of both queries) for a check to
/// be memoized. Below this, a fresh homomorphism search is cheaper than
/// building two canonical keys and taking a shard lock — and under a
/// parallel sweep the lock traffic of millions of tiny view-vs-view
/// checks serializes the workers. Expansion-sized checks (rewriting
/// verification, minimization of expansions), where the search is
/// genuinely expensive and repetition is high, are all well above this.
const MIN_CACHED_SUBGOALS: usize = 12;

/// One token of a canonical query encoding. Variables are replaced by
/// dense first-occurrence indices, so two queries that differ only by a
/// variable renaming encode identically; constants and predicates keep
/// their interned identity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Tok {
    /// Atom start: predicate symbol + arity.
    Pred(u32, u32),
    /// Variable by dense first-occurrence index.
    Var(u32),
    /// Symbolic constant by interned id.
    Sym(u32),
    /// Integer constant.
    Int(i64),
}

/// A conjunctive query canonicalized up to variable renaming. Two queries
/// that are variants (differ only in variable names) produce equal keys;
/// queries that differ structurally (including body order) produce
/// different keys, which costs hit rate but never correctness.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CanonicalQuery(Vec<Tok>);

/// Canonicalizes a query for use as a cache key.
pub fn canonical_key(q: &ConjunctiveQuery) -> CanonicalQuery {
    let mut toks = Vec::with_capacity(2 + 4 * (q.body.len() + 1));
    let mut rename: HashMap<Symbol, u32> = HashMap::new();
    let mut encode_atom = |atom: &Atom, toks: &mut Vec<Tok>| {
        toks.push(Tok::Pred(
            atom.predicate.index() as u32,
            atom.terms.len() as u32,
        ));
        for t in &atom.terms {
            toks.push(match *t {
                Term::Var(v) => {
                    let next = rename.len() as u32;
                    Tok::Var(*rename.entry(v).or_insert(next))
                }
                Term::Const(Constant::Sym(s)) => Tok::Sym(s.index() as u32),
                Term::Const(Constant::Int(i)) => Tok::Int(i),
            });
        }
    };
    encode_atom(&q.head, &mut toks);
    for atom in &q.body {
        encode_atom(atom, &mut toks);
    }
    CanonicalQuery(toks)
}

/// The canonical name of the `i`-th variable (by first occurrence) of a
/// canonicalized query. The `__c` prefix keeps canonical names out of the
/// way of ordinary user variables, but nothing breaks if a user query
/// already contains one: canonicalization is a *simultaneous* bijective
/// renaming, so collisions cannot alias two variables.
pub fn canonical_variable(i: usize) -> Symbol {
    Symbol::new(&format!("__c{i}"))
}

/// A query renamed into canonical variable space, together with the map
/// back to the original names.
///
/// Canonicalization assigns every variable the dense name
/// [`canonical_variable`]`(i)` where `i` is its first-occurrence index
/// (head first, then body, left to right) — the same order
/// [`canonical_key`] uses. Two queries that are variants of each other
/// therefore canonicalize to **byte-identical** queries, which is the
/// foundation of the serving layer's rewriting cache: run the pipeline on
/// `canonical`, and any variant of the original query can reuse the
/// result by renaming it through its own `from_canonical` map. Because
/// every variant performs the *same* canonical computation, a cache hit
/// is provably identical to a cold run — no equivariance assumption about
/// the pipeline is needed.
#[derive(Clone, Debug)]
pub struct Canonicalization {
    /// The query with every variable renamed to its canonical name.
    pub canonical: ConjunctiveQuery,
    /// The cache key (equals `canonical_key` of the original query).
    pub key: CanonicalQuery,
    /// Substitution mapping canonical names back to the original
    /// variables. Pipeline outputs over `canonical` mention only its
    /// variables, so applying this recovers the original vocabulary.
    pub from_canonical: Substitution,
}

/// Canonicalizes a query: renames variables to dense first-occurrence
/// names and returns the renamed query, its cache key, and the inverse
/// renaming. See [`Canonicalization`].
pub fn canonicalize(q: &ConjunctiveQuery) -> Canonicalization {
    let mut order: Vec<Symbol> = Vec::new();
    let mut seen: HashMap<Symbol, ()> = HashMap::new();
    let mut visit = |atom: &Atom| {
        for t in &atom.terms {
            if let Term::Var(v) = *t {
                if seen.insert(v, ()).is_none() {
                    order.push(v);
                }
            }
        }
    };
    visit(&q.head);
    for atom in &q.body {
        visit(atom);
    }
    let to_canonical = Substitution::from_pairs(
        order
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, Term::Var(canonical_variable(i)))),
    );
    let from_canonical = Substitution::from_pairs(
        order
            .iter()
            .enumerate()
            .map(|(i, &v)| (canonical_variable(i), Term::Var(v))),
    );
    let canonical = q.apply(&to_canonical);
    let key = canonical_key(&canonical);
    Canonicalization {
        canonical,
        key,
        from_canonical,
    }
}

type Shard = RwLock<HashMap<(CanonicalQuery, CanonicalQuery), bool>>;

fn shards() -> &'static Vec<Shard> {
    static CACHE: OnceLock<Vec<Shard>> = OnceLock::new();
    CACHE.get_or_init(|| (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect())
}

static CACHE_ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns the containment cache on or off process-wide (on by default).
/// Disabling does not clear existing entries; use
/// [`clear_containment_cache`] for that.
pub fn set_cache_enabled(enabled: bool) {
    // ordering: standalone switch; probes that see it late merely hit or
    // skip the cache one more time, both of which are correct.
    CACHE_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether memoization is currently on.
pub fn cache_enabled() -> bool {
    // ordering: standalone switch read; see set_cache_enabled.
    CACHE_ENABLED.load(Ordering::Relaxed)
}

/// Drops every cached verdict (all shards).
pub fn clear_containment_cache() {
    for shard in shards() {
        shard.write().clear();
    }
}

/// Total number of cached verdicts across all shards.
pub fn containment_cache_len() -> usize {
    shards().iter().map(|s| s.read().len()).sum()
}

fn shard_of(key: &(CanonicalQuery, CanonicalQuery)) -> &'static Shard {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    &shards()[(h.finish() as usize) % SHARDS]
}

/// Memoizes the verdict of `compute` under the canonicalized `(q1, q2)`
/// pair. The caller fixes the semantics of the pair (here: "q1 ⊑ q2");
/// canonicalization guarantees any variant pair gets the same verdict.
///
/// `compute` additionally reports whether it ran to completion: a
/// verdict from a budget-truncated search is returned to the caller but
/// **never inserted** into the cache — truncated verdicts are
/// conservative under-approximations, and memoizing one would poison
/// later unbudgeted (or more generously budgeted) checks. Cache *hits*
/// under a budget are safe in the other direction: a cached verdict is
/// always from a complete search, i.e. at least as accurate as the
/// truncated search it replaces.
// lock-order: one shard lock, taken twice sequentially (read probe, then
// write insert) — the read guard is dropped before `compute` runs, so no
// two locks are ever held together and `compute` may recurse freely.
pub(crate) fn cached_verdict_complete(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    compute: impl FnOnce() -> (bool, bool),
) -> bool {
    if !cache_enabled() || q1.body.len() + q2.body.len() < MIN_CACHED_SUBGOALS {
        return compute().0;
    }
    let key = (canonical_key(q1), canonical_key(q2));
    let shard = shard_of(&key);
    if let Some(&verdict) = shard.read().get(&key) {
        obs::counter!("containment.cache_hits").incr();
        return verdict;
    }
    obs::counter!("containment.cache_misses").incr();
    let (verdict, complete) = compute();
    if !complete {
        obs::counter!("containment.cache_uncacheable").incr();
        return verdict;
    }
    let mut wr = shard.write();
    if wr.len() >= SHARD_CAPACITY {
        obs::counter!("containment.cache_evictions").incr();
        wr.clear();
    }
    wr.insert(key, verdict);
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::{containment_mapping, is_contained_in};
    use viewplan_cq::parse_query;

    #[test]
    fn variants_share_a_key() {
        let q1 = parse_query("q(X) :- e(X, Y), e(Y, Z)").unwrap();
        let q2 = parse_query("q(A) :- e(A, B), e(B, C)").unwrap();
        assert_eq!(canonical_key(&q1), canonical_key(&q2));
    }

    #[test]
    fn structurally_different_queries_differ() {
        let q1 = parse_query("q(X) :- e(X, Y)").unwrap();
        let q2 = parse_query("q(X) :- e(Y, X)").unwrap();
        let q3 = parse_query("q(X) :- f(X, Y)").unwrap();
        let q4 = parse_query("q(X) :- e(X, a)").unwrap();
        assert_ne!(canonical_key(&q1), canonical_key(&q2));
        assert_ne!(canonical_key(&q1), canonical_key(&q3));
        assert_ne!(canonical_key(&q1), canonical_key(&q4));
    }

    #[test]
    fn variants_canonicalize_to_byte_identical_queries() {
        let q1 = parse_query("q(X, Y) :- e(X, Z), f(Z, Y), g(Y, a)").unwrap();
        let q2 = parse_query("q(A, B) :- e(A, C), f(C, B), g(B, a)").unwrap();
        let c1 = canonicalize(&q1);
        let c2 = canonicalize(&q2);
        assert_eq!(c1.canonical, c2.canonical);
        assert_eq!(c1.key, c2.key);
        assert_eq!(c1.key, canonical_key(&q1));
        // Round trip: renaming back recovers each original query.
        assert_eq!(c1.canonical.apply(&c1.from_canonical), q1);
        assert_eq!(c2.canonical.apply(&c2.from_canonical), q2);
    }

    #[test]
    fn canonicalize_handles_adversarial_names() {
        // A query that already uses canonical-style names in "wrong"
        // positions: the simultaneous renaming must stay bijective.
        let q = parse_query("q(__c1, __c0) :- e(__c1, __c0), e(__c0, W)").unwrap();
        let c = canonicalize(&q);
        assert_eq!(c.canonical.apply(&c.from_canonical), q);
        // Distinct originals stay distinct in canonical space.
        let vars = c.canonical.variables();
        assert_eq!(vars.len(), q.variables().len());
    }

    #[test]
    fn repeated_variables_are_distinguished_from_distinct_ones() {
        let diag = parse_query("q(X) :- e(X, X)").unwrap();
        let free = parse_query("q(X) :- e(X, Y)").unwrap();
        assert_ne!(canonical_key(&diag), canonical_key(&free));
    }

    /// Serializes tests that observe or toggle the process-global cache
    /// (the default test harness runs tests concurrently).
    fn state_lock() -> viewplan_sync::MutexGuard<'static, ()> {
        static LOCK: viewplan_sync::Mutex<()> = viewplan_sync::Mutex::new(());
        LOCK.lock()
    }

    /// A chain query `q(V0) :- e(V0, V1), …` of `n` subgoals, with `v`
    /// as the variable name prefix. Large enough chains clear the
    /// [`MIN_CACHED_SUBGOALS`] gate.
    fn chain(v: &str, n: usize) -> String {
        let body: Vec<String> = (0..n).map(|i| format!("e({v}{i}, {v}{})", i + 1)).collect();
        format!("q({v}0) :- {}", body.join(", "))
    }

    #[test]
    fn cached_verdict_matches_fresh_verdict() {
        let _guard = state_lock();
        // The satellite's correctness contract: a verdict answered from
        // the cache must equal the one computed fresh with the cache off.
        let pairs = [
            (chain("X", 8), chain("X", 6)),
            (chain("X", 6), chain("X", 8)),
            (chain("X", 7), chain("Y", 7)),
        ];
        for (s1, s2) in &pairs {
            let q1 = parse_query(s1).unwrap();
            let q2 = parse_query(s2).unwrap();
            set_cache_enabled(false);
            let fresh = containment_mapping(&q2, &q1).is_some();
            set_cache_enabled(true);
            clear_containment_cache();
            let first = is_contained_in(&q1, &q2); // populates the cache
            assert!(containment_cache_len() > 0, "check was not memoized");
            let second = is_contained_in(&q1, &q2); // answered from the cache
            assert_eq!(first, fresh, "first check disagrees for {s1} ⊑ {s2}");
            assert_eq!(second, fresh, "cached check disagrees for {s1} ⊑ {s2}");
        }
    }

    #[test]
    fn variant_pair_is_answered_from_the_same_entry() {
        let _guard = state_lock();
        clear_containment_cache();
        set_cache_enabled(true);
        let q1 = parse_query(&chain("X", 8)).unwrap();
        let q2 = parse_query(&chain("X", 6)).unwrap();
        let before = containment_cache_len();
        assert!(is_contained_in(&q1, &q2));
        let after_first = containment_cache_len();
        assert!(after_first > before);
        // A renamed variant of the same pair must not add a new entry.
        let q1v = parse_query(&chain("A", 8)).unwrap();
        let q2v = parse_query(&chain("B", 6)).unwrap();
        assert!(is_contained_in(&q1v, &q2v));
        assert_eq!(containment_cache_len(), after_first);
    }

    #[test]
    fn small_checks_bypass_the_cache() {
        let _guard = state_lock();
        // Below the size gate a fresh search is cheaper than a probe, so
        // tiny checks must leave no trace in the cache.
        clear_containment_cache();
        set_cache_enabled(true);
        let q1 = parse_query("q(X) :- p(X, Y), r(Y)").unwrap();
        let q2 = parse_query("q(X) :- p(X, Y)").unwrap();
        assert!(is_contained_in(&q1, &q2));
        assert_eq!(containment_cache_len(), 0);
    }

    #[test]
    fn truncated_verdicts_are_not_cached() {
        let _guard = state_lock();
        clear_containment_cache();
        set_cache_enabled(true);
        let q1 = parse_query(&chain("X", 8)).unwrap();
        let q2 = parse_query(&chain("Y", 6)).unwrap();
        // Chains are acyclic, so the semijoin fast path would decide
        // them completely regardless of budget — force the DFS here to
        // exercise the truncation path this test is about.
        let _acyclic_off = viewplan_cq::install_acyclic(false);
        // Under a 1-node hom budget the check truncates: conservative
        // `false`, and nothing may be written to the cache.
        let truncated = {
            let _b = obs::budget::install(
                obs::budget::BudgetSpec::new()
                    .phase_nodes(obs::Phase::Hom, 1)
                    .build(),
            );
            is_contained_in(&q1, &q2)
        };
        assert!(!truncated, "truncated check must under-approximate");
        assert_eq!(containment_cache_len(), 0, "truncated verdict was cached");
        // The same check without a budget is complete, correct, cached.
        assert!(is_contained_in(&q1, &q2));
        assert!(containment_cache_len() > 0);
    }

    #[test]
    fn acyclic_fast_path_verdicts_are_complete_under_budget_and_cached() {
        let _guard = state_lock();
        clear_containment_cache();
        set_cache_enabled(true);
        let q1 = parse_query(&chain("X", 8)).unwrap();
        let q2 = parse_query(&chain("Y", 6)).unwrap();
        // Truncation is impossible on the semijoin route: even a 1-node
        // hom budget leaves the verdict complete — correct, and written
        // to the cache (unlike the truncated DFS above).
        let _acyclic_on = viewplan_cq::install_acyclic(true);
        let _b = obs::budget::install(
            obs::budget::BudgetSpec::new()
                .phase_nodes(obs::Phase::Hom, 1)
                .build(),
        );
        assert!(
            is_contained_in(&q1, &q2),
            "fast path must ignore the budget"
        );
        assert!(
            containment_cache_len() > 0,
            "complete verdict must be cached"
        );
    }

    #[test]
    fn disabling_bypasses_memoization() {
        let _guard = state_lock();
        clear_containment_cache();
        set_cache_enabled(false);
        let q1 = parse_query("q(X) :- zz_cache_off(X, Y)").unwrap();
        let q2 = parse_query("q(X) :- zz_cache_off(X, Y)").unwrap();
        assert!(is_contained_in(&q1, &q2));
        assert_eq!(containment_cache_len(), 0);
        set_cache_enabled(true);
    }
}
