//! Query containment and equivalence (Definition 2.1).

use crate::homomorphism::HomomorphismSearch;
use viewplan_cq::{acyclic_enabled, ConjunctiveQuery, Substitution, Term};
use viewplan_obs as obs;

// Single registration site for `containment.checks` (the xtask lint):
// both the homomorphism DFS and the acyclic semijoin route count here.
fn note_check() {
    obs::counter!("containment.checks").incr();
}

/// Builds the initial bindings that pin the head of `from` onto the head of
/// `onto` (a containment mapping must map head to head). Returns `None` if
/// the heads are incompatible (different predicate, arity, or conflicting
/// constants / repeated variables). Exposed for extensions that enumerate
/// homomorphisms under additional side conditions (e.g. containment with
/// comparison predicates).
pub fn head_bindings(from: &ConjunctiveQuery, onto: &ConjunctiveQuery) -> Option<Substitution> {
    if from.head.predicate != onto.head.predicate || from.head.arity() != onto.head.arity() {
        return None;
    }
    let mut subst = Substitution::new();
    for (f, o) in from.head.terms.iter().zip(&onto.head.terms) {
        match *f {
            Term::Const(fc) => match *o {
                Term::Const(oc) if fc == oc => {}
                _ => return None,
            },
            Term::Var(v) => match subst.get(v) {
                Some(existing) if existing != *o => return None,
                Some(_) => {}
                None => {
                    subst.bind(v, *o);
                }
            },
        }
    }
    Some(subst)
}

/// Finds a containment mapping from `from` onto `onto`: a homomorphism
/// mapping `from`'s head to `onto`'s head and every body subgoal of `from`
/// to a body subgoal of `onto`. Its existence proves `onto ⊑ from`
/// (Chandra & Merlin).
pub fn containment_mapping(
    from: &ConjunctiveQuery,
    onto: &ConjunctiveQuery,
) -> Option<Substitution> {
    containment_mapping_complete(from, onto).0
}

/// Like [`containment_mapping`], also reporting whether the search ran
/// to completion under the ambient budget. A truncated search can only
/// *miss* a mapping — `(None, false)` is a conservative "not proven",
/// never a fabricated proof.
pub fn containment_mapping_complete(
    from: &ConjunctiveQuery,
    onto: &ConjunctiveQuery,
) -> (Option<Substitution>, bool) {
    note_check();
    let Some(initial) = head_bindings(from, onto) else {
        return (None, true);
    };
    HomomorphismSearch::with_initial(&from.body, &onto.body, initial).find_complete()
}

/// The boolean verdict for `onto ⊑ from`, with completeness. Routes
/// acyclic patterns (after head pinning) through the polynomial
/// semijoin decision of [`crate::acyclic`] when the `VIEWPLAN_ACYCLIC`
/// switch is on; the fast path never consumes budget, so its verdicts
/// are always complete. Cyclic patterns (and disabled switch) take the
/// homomorphism DFS.
fn contains_complete(from: &ConjunctiveQuery, onto: &ConjunctiveQuery) -> (bool, bool) {
    note_check();
    let Some(initial) = head_bindings(from, onto) else {
        return (false, true);
    };
    if acyclic_enabled() {
        if let Some(verdict) =
            crate::acyclic::semijoin_mapping_exists(&from.body, &onto.body, &initial)
        {
            return (verdict, true);
        }
    }
    let (mapping, complete) =
        HomomorphismSearch::with_initial(&from.body, &onto.body, initial).find_complete();
    (mapping.is_some(), complete)
}

/// True iff `q1 ⊑ q2`: for every database, `q1`'s answer is a subset of
/// `q2`'s. Decided by searching for a containment mapping from `q2` to
/// `q1`; the boolean verdict is memoized in the process-global
/// [containment cache](crate::cache) (containment is invariant under
/// variable renaming, so the cache keys on canonicalized pairs).
/// Verdicts from budget-truncated searches are conservative (`false` =
/// "not proven") and are **not** written to the cache, so a budgeted
/// run can never poison an unbudgeted one. Acyclic patterns skip the
/// search entirely: the semijoin fast path decides them in polynomial
/// time with a verdict that is complete by construction.
pub fn is_contained_in(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    crate::cache::cached_verdict_complete(q1, q2, || contains_complete(q2, q1))
}

/// True iff the queries are equivalent (contained in each other).
pub fn are_equivalent(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    is_contained_in(q1, q2) && is_contained_in(q2, q1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewplan_cq::parse_query;

    #[test]
    fn longer_path_is_contained_in_shorter() {
        let q1 = parse_query("q(X) :- e(X, Y), e(Y, Z)").unwrap();
        let q2 = parse_query("q(X) :- e(X, Y)").unwrap();
        assert!(is_contained_in(&q1, &q2));
        assert!(!is_contained_in(&q2, &q1));
        assert!(!are_equivalent(&q1, &q2));
    }

    #[test]
    fn chain_with_loop_equivalences() {
        // q(X) :- e(X,Y), e(Y,Y) is equivalent to itself with an extra
        // redundant step into the loop.
        let q1 = parse_query("q(X) :- e(X, Y), e(Y, Y)").unwrap();
        let q2 = parse_query("q(X) :- e(X, Y), e(Y, Z), e(Z, Z)").unwrap();
        assert!(is_contained_in(&q1, &q2));
        assert!(!is_contained_in(&q2, &q1));
    }

    #[test]
    fn head_constants_must_match() {
        let q1 = parse_query("q(a) :- e(X, X)").unwrap();
        let q2 = parse_query("q(b) :- e(X, X)").unwrap();
        assert!(!is_contained_in(&q1, &q2));
        assert!(are_equivalent(&q1, &q1));
    }

    #[test]
    fn head_var_to_constant_is_a_valid_direction() {
        // q(a) :- e(a) is contained in q(X) :- e(X).
        let specific = parse_query("q(a) :- e(a)").unwrap();
        let general = parse_query("q(X) :- e(X)").unwrap();
        assert!(is_contained_in(&specific, &general));
        assert!(!is_contained_in(&general, &specific));
    }

    #[test]
    fn repeated_head_variable_pins_both_positions() {
        let diag = parse_query("q(X, X) :- e(X, X)").unwrap();
        let free = parse_query("q(X, Y) :- e(X, Y)").unwrap();
        assert!(is_contained_in(&diag, &free));
        assert!(!is_contained_in(&free, &diag));
    }

    #[test]
    fn different_head_predicates_are_incomparable() {
        let q1 = parse_query("p(X) :- e(X, X)").unwrap();
        let q2 = parse_query("q(X) :- e(X, X)").unwrap();
        assert!(!is_contained_in(&q1, &q2));
        assert!(!is_contained_in(&q2, &q1));
    }

    #[test]
    fn paper_expansion_equivalence_example() {
        // P1exp and P2exp from Example 1.1 / §2.1 are equivalent.
        let p1exp =
            parse_query("q1(S, C) :- car(M, a), loc(a, C1), car(M1, a), loc(a, C), part(S, M, C)")
                .unwrap();
        let p2exp = parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)").unwrap();
        assert!(are_equivalent(&p1exp, &p2exp));
    }

    #[test]
    fn containment_mapping_is_returned_and_maps_head() {
        let q1 = parse_query("q(X) :- e(X, Y), e(Y, Z)").unwrap();
        let q2 = parse_query("q(A) :- e(A, B)").unwrap();
        let m = containment_mapping(&q2, &q1).unwrap();
        assert_eq!(
            m.apply(viewplan_cq::Term::var("A")),
            viewplan_cq::Term::var("X")
        );
    }
}
