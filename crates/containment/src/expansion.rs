//! Expansion of rewritings over views into base relations
//! (Definition 2.2).
//!
//! The expansion `P^exp` of a rewriting `P` replaces every view subgoal by
//! the view's definition body, with the definition's head variables unified
//! against the subgoal's arguments and its existential variables replaced by
//! fresh variables per occurrence.
//!
//! Unification (rather than plain substitution) is needed to handle views
//! whose head repeats a variable (`v(A, A) :- …`) or contains a constant:
//! such heads equate arguments of the subgoal. We gather all equalities and
//! solve them with a union-find over terms; two distinct constants in one
//! class make the expansion unsatisfiable (the rewriting returns no
//! tuples on any database).

use viewplan_cq::{Atom, ConjunctiveQuery, Substitution, Symbol, Term, View, ViewSet};

use std::collections::HashMap;
use std::fmt;

/// Why a rewriting could not be expanded.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExpandError {
    /// A body subgoal refers to a predicate that is not a known view.
    UnknownView(Symbol),
    /// A body subgoal's arity differs from the view's arity.
    ArityMismatch {
        /// The offending view.
        view: Symbol,
        /// Arity expected by the view definition.
        expected: usize,
        /// Arity found in the rewriting subgoal.
        found: usize,
    },
    /// The head equalities of some view force two distinct constants to be
    /// equal; the rewriting is unsatisfiable.
    Unsatisfiable,
}

impl fmt::Display for ExpandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpandError::UnknownView(v) => write!(f, "unknown view: {v}"),
            ExpandError::ArityMismatch {
                view,
                expected,
                found,
            } => write!(
                f,
                "arity mismatch for view {view}: expected {expected}, found {found}"
            ),
            ExpandError::Unsatisfiable => {
                f.write_str("expansion is unsatisfiable (conflicting constants)")
            }
        }
    }
}

impl std::error::Error for ExpandError {}

/// Union-find over terms used to solve head-argument equalities.
struct TermUnion {
    parent: HashMap<Term, Term>,
}

impl TermUnion {
    fn new() -> TermUnion {
        TermUnion {
            parent: HashMap::new(),
        }
    }

    fn find(&mut self, t: Term) -> Term {
        let p = match self.parent.get(&t) {
            None => return t,
            Some(&p) => p,
        };
        let root = self.find(p);
        self.parent.insert(t, root);
        root
    }

    /// Unions two classes; prefers a constant as representative, otherwise
    /// `preferred` variables (the rewriting's own variables) win so the
    /// expansion reads in the rewriting's vocabulary.
    fn union(
        &mut self,
        a: Term,
        b: Term,
        preferred: &dyn Fn(Term) -> bool,
    ) -> Result<(), ExpandError> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return Ok(());
        }
        let (winner, loser) = match (ra, rb) {
            (Term::Const(_), Term::Const(_)) => return Err(ExpandError::Unsatisfiable),
            (Term::Const(_), _) => (ra, rb),
            (_, Term::Const(_)) => (rb, ra),
            _ => {
                if preferred(ra) || !preferred(rb) {
                    (ra, rb)
                } else {
                    (rb, ra)
                }
            }
        };
        self.parent.insert(loser, winner);
        Ok(())
    }
}

fn resolve_view<'v>(views: &'v ViewSet, atom: &Atom) -> Result<&'v View, ExpandError> {
    let view = views
        .get(atom.predicate)
        .ok_or(ExpandError::UnknownView(atom.predicate))?;
    if view.arity() != atom.arity() {
        return Err(ExpandError::ArityMismatch {
            view: atom.predicate,
            expected: view.arity(),
            found: atom.arity(),
        });
    }
    Ok(view)
}

/// Expands a rewriting `p` whose body subgoals are view literals into a
/// conjunctive query over base relations.
pub fn expand(p: &ConjunctiveQuery, views: &ViewSet) -> Result<ConjunctiveQuery, ExpandError> {
    let mut raw_body: Vec<Atom> = Vec::new();
    let mut equalities: Vec<(Term, Term)> = Vec::new();
    for atom in &p.body {
        let view = resolve_view(views, atom)?;
        // Rename *all* view variables apart so occurrences never collide
        // with each other or with the rewriting's variables.
        let def = rename_all_apart(&view.definition);
        for (h, a) in def.head.terms.iter().zip(&atom.terms) {
            equalities.push((*h, *a));
        }
        raw_body.extend(def.body.iter().cloned());
    }

    // Solve equalities; the rewriting's own terms are preferred
    // representatives.
    let own: std::collections::HashSet<Term> = p
        .head
        .terms
        .iter()
        .chain(p.body.iter().flat_map(|a| a.terms.iter()))
        .copied()
        .collect();
    let prefer = |t: Term| own.contains(&t);
    let mut uf = TermUnion::new();
    for (a, b) in equalities {
        uf.union(a, b, &prefer)?;
    }

    let mut rewrite = |atom: &Atom| Atom {
        predicate: atom.predicate,
        terms: atom.terms.iter().map(|&t| uf.find(t)).collect(),
    };
    let head = rewrite(&p.head);
    let body = raw_body.iter().map(&mut rewrite).collect();
    Ok(ConjunctiveQuery::new(head, body))
}

/// Expands a single view literal (a view tuple) into its base-relation
/// atoms — the `t_v^exp` of Definition 4.1. Existential variables of the
/// view are replaced by fresh variables.
pub fn expand_atom(atom: &Atom, views: &ViewSet) -> Result<Vec<Atom>, ExpandError> {
    let view = resolve_view(views, atom)?;
    let def = view.definition.freshen_existentials();
    let mut subst = Substitution::new();
    for (h, a) in def.head.terms.iter().zip(&atom.terms) {
        match *h {
            Term::Var(v) => match subst.get(v) {
                None => {
                    subst.bind(v, *a);
                }
                Some(prev) if prev == *a => {}
                Some(_) => return Err(ExpandError::Unsatisfiable),
            },
            Term::Const(c) => match *a {
                Term::Const(c2) if c2 == c => {}
                _ => return Err(ExpandError::Unsatisfiable),
            },
        }
    }
    Ok(def.body.iter().map(|b| b.apply(&subst)).collect())
}

/// Renames every variable of `q` (head and body) to a fresh variable.
fn rename_all_apart(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut subst = Substitution::new();
    for v in q.variables() {
        subst.bind(v, Term::Var(Symbol::fresh(&v.as_str())));
    }
    q.apply(&subst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::are_equivalent;
    use viewplan_cq::{parse_query, parse_views};

    fn carlocpart_views() -> ViewSet {
        parse_views(
            "v1(M, D, C) :- car(M, D), loc(D, C).\n\
             v2(S, M, C) :- part(S, M, C).\n\
             v3(S) :- car(M, a), loc(a, C), part(S, M, C).\n\
             v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).\n\
             v5(M, D, C) :- car(M, D), loc(D, C).",
        )
        .unwrap()
    }

    #[test]
    fn expands_p2_to_p2exp() {
        let views = carlocpart_views();
        let p2 = parse_query("q1(S, C) :- v1(M, a, C), v2(S, M, C)").unwrap();
        let p2exp = expand(&p2, &views).unwrap();
        let expected = parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)").unwrap();
        assert!(are_equivalent(&p2exp, &expected));
    }

    #[test]
    fn expands_p1_to_p1exp() {
        let views = carlocpart_views();
        let p1 = parse_query("q1(S, C) :- v1(M, a, C1), v1(M1, a, C), v2(S, M, C)").unwrap();
        let p1exp = expand(&p1, &views).unwrap();
        assert_eq!(p1exp.body.len(), 5);
        let q = parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)").unwrap();
        assert!(are_equivalent(&p1exp, &q));
    }

    #[test]
    fn existentials_are_fresh_per_occurrence() {
        let views = parse_views("v(X) :- e(X, Y)").unwrap();
        let p = parse_query("q(A, B) :- v(A), v(B)").unwrap();
        let exp = expand(&p, &views).unwrap();
        assert_eq!(exp.body.len(), 2);
        // The two existential Ys must be distinct fresh variables.
        assert_ne!(exp.body[0].terms[1], exp.body[1].terms[1]);
    }

    #[test]
    fn repeated_head_variable_in_view_equates_arguments() {
        // v(A, A) :- e(A): the subgoal v(X, Y) forces X = Y.
        let views = parse_views("v(A, A) :- e(A)").unwrap();
        let p = parse_query("q(X, Y) :- v(X, Y)").unwrap();
        let exp = expand(&p, &views).unwrap();
        assert_eq!(exp.body.len(), 1);
        assert_eq!(exp.head.terms[0], exp.head.terms[1]);
    }

    #[test]
    fn conflicting_constants_are_unsatisfiable() {
        let views = parse_views("v(A, A) :- e(A)").unwrap();
        let p = parse_query("q(X) :- v(a, b), v(X, X)").unwrap();
        assert_eq!(expand(&p, &views), Err(ExpandError::Unsatisfiable));
    }

    #[test]
    fn unknown_view_and_arity_mismatch() {
        let views = parse_views("v(A) :- e(A)").unwrap();
        let p1 = parse_query("q(X) :- w(X)").unwrap();
        assert!(matches!(
            expand(&p1, &views),
            Err(ExpandError::UnknownView(_))
        ));
        let p2 = parse_query("q(X) :- v(X, X)").unwrap();
        assert!(matches!(
            expand(&p2, &views),
            Err(ExpandError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn expand_atom_gives_tuple_expansion() {
        let views = carlocpart_views();
        let atom = viewplan_cq::parse_atom("v1(M, a, C)").unwrap();
        let exp = expand_atom(&atom, &views).unwrap();
        assert_eq!(exp.len(), 2);
        assert_eq!(exp[0].predicate.as_str(), "car");
        assert_eq!(exp[0].terms[0], Term::var("M"));
        // D is existential in v1? No — D is distinguished (in head), it is
        // bound to the constant a by the tuple.
        assert_eq!(exp[0].terms[1], Term::cst("a"));
    }

    #[test]
    fn expand_atom_freshens_existentials() {
        let views = parse_views("v(A) :- e(A, B), f(B)").unwrap();
        let atom = viewplan_cq::parse_atom("v(X)").unwrap();
        let e1 = expand_atom(&atom, &views).unwrap();
        let e2 = expand_atom(&atom, &views).unwrap();
        // B is fresh each time.
        assert_ne!(e1[0].terms[1], e2[0].terms[1]);
        // but consistent within one expansion.
        assert_eq!(e1[0].terms[1], e1[1].terms[0]);
    }

    #[test]
    fn view_head_constant_checks_argument() {
        let views = parse_views("v(a, X) :- e(X)").unwrap();
        let ok = parse_query("q(X) :- v(a, X)").unwrap();
        assert!(expand(&ok, &views).is_ok());
        let bad = parse_query("q(X) :- v(b, X)").unwrap();
        assert_eq!(expand(&bad, &views), Err(ExpandError::Unsatisfiable));
        // A variable in the constant position gets pinned to the constant.
        let pin = parse_query("q(Y, X) :- v(Y, X)").unwrap();
        let exp = expand(&pin, &views).unwrap();
        assert_eq!(exp.head.terms[0], Term::cst("a"));
    }

    #[test]
    fn expansion_keeps_rewriting_vocabulary_where_possible() {
        let views = carlocpart_views();
        let p = parse_query("q1(S, C) :- v4(M, a, C, S)").unwrap();
        let exp = expand(&p, &views).unwrap();
        // Head stays q1(S, C) verbatim.
        assert_eq!(exp.head, p.head);
        assert!(exp.body.iter().any(|a| a.contains_var(Symbol::new("M"))));
    }
}
