//! Backtracking homomorphism search between sets of atoms.
//!
//! The search maps every *pattern* atom to some *target* atom with the same
//! predicate and arity, such that the induced term mapping is a function
//! fixing constants. This is the inner loop of every containment,
//! equivalence, minimization, local-minimality, and M3-renaming test in the
//! system, so it is written allocation-consciously: the target atoms are
//! indexed by predicate once, the pattern is ordered most-constrained-first,
//! and bindings are kept in a single mutable [`Substitution`] that is
//! unwound on backtrack.

use viewplan_cq::{Atom, Substitution, Symbol, Term};
use viewplan_obs as obs;

use std::collections::HashMap;

/// A reusable homomorphism search from a pattern (list of atoms) into a
/// target (list of atoms), optionally seeded with initial bindings.
pub struct HomomorphismSearch<'a> {
    /// Pattern atoms, reordered most-constrained-first.
    pattern: Vec<&'a Atom>,
    /// For each pattern atom (post-reorder), the candidate target atoms.
    candidates: Vec<Vec<&'a Atom>>,
    /// Initial bindings that every found homomorphism must extend.
    initial: Substitution,
}

impl<'a> HomomorphismSearch<'a> {
    /// Prepares a search from `pattern` into `target`.
    pub fn new(pattern: &'a [Atom], target: &'a [Atom]) -> HomomorphismSearch<'a> {
        HomomorphismSearch::with_initial(pattern, target, Substitution::new())
    }

    /// Prepares a search whose solutions must extend `initial` (used to pin
    /// the head mapping for containment, and the identity requirements of
    /// tuple-core search).
    pub fn with_initial(
        pattern: &'a [Atom],
        target: &'a [Atom],
        initial: Substitution,
    ) -> HomomorphismSearch<'a> {
        let mut by_pred: HashMap<(Symbol, usize), Vec<&'a Atom>> = HashMap::new();
        for atom in target {
            by_pred
                .entry((atom.predicate, atom.arity()))
                .or_default()
                .push(atom);
        }
        let empty: Vec<&'a Atom> = Vec::new();
        let mut order: Vec<&'a Atom> = pattern.iter().collect();
        // Most-constrained-first: fewest candidate targets, then most
        // constants/repeats (approximated by arity) to fail fast.
        order.sort_by_key(|a| {
            by_pred
                .get(&(a.predicate, a.arity()))
                .map_or(0, |c| c.len())
        });
        let candidates = order
            .iter()
            .map(|a| {
                by_pred
                    .get(&(a.predicate, a.arity()))
                    .unwrap_or(&empty)
                    .clone()
            })
            .collect();
        HomomorphismSearch {
            pattern: order,
            candidates,
            initial,
        }
    }

    /// Finds one homomorphism, if any.
    pub fn find(&self) -> Option<Substitution> {
        self.find_complete().0
    }

    /// Like [`HomomorphismSearch::find`], also reporting whether the
    /// search ran to completion. Under an exhausted budget the search is
    /// truncated: `(None, false)` means "none found *so far*" — a
    /// conservative miss, never a fabricated match.
    pub fn find_complete(&self) -> (Option<Substitution>, bool) {
        let mut found = None;
        let complete = self.for_each_complete(|s| {
            found = Some(s.clone());
            true
        });
        // A found homomorphism is valid regardless of truncation.
        (found, complete)
    }

    /// True iff a homomorphism exists.
    pub fn exists(&self) -> bool {
        self.exists_complete().0
    }

    /// Like [`HomomorphismSearch::exists`], also reporting completeness.
    /// `(false, false)` means the truncated search found none so far.
    pub fn exists_complete(&self) -> (bool, bool) {
        let (found, complete) = self.find_complete();
        (found.is_some(), complete)
    }

    /// Enumerates homomorphisms, invoking `visit` for each; `visit`
    /// returning `true` stops the enumeration early.
    pub fn for_each(&self, visit: impl FnMut(&Substitution) -> bool) {
        self.for_each_complete(visit);
    }

    /// Enumerates homomorphisms under the ambient budget; returns `true`
    /// when the enumeration ran to completion (or the visitor stopped it),
    /// `false` when the budget truncated it.
    pub fn for_each_complete(&self, mut visit: impl FnMut(&Substitution) -> bool) -> bool {
        let mut meter = obs::Meter::start(obs::Phase::Hom);
        let mut subst = self.initial.clone();
        self.search(0, &mut subst, &mut meter, &mut visit);
        !meter.exhausted()
    }

    /// Collects all homomorphisms (use only on small instances — the count
    /// can be exponential).
    pub fn all(&self) -> Vec<Substitution> {
        let mut out = Vec::new();
        self.for_each(|s| {
            out.push(s.clone());
            false
        });
        out
    }

    /// Depth-first search over pattern positions. Returns `true` when the
    /// visitor requested a stop. A refused meter tick unwinds the whole
    /// search (every level returns `false`, reading as "no match"); the
    /// caller distinguishes truncation via `meter.exhausted()`.
    fn search(
        &self,
        depth: usize,
        subst: &mut Substitution,
        meter: &mut obs::Meter,
        visit: &mut dyn FnMut(&Substitution) -> bool,
    ) -> bool {
        if !meter.tick() {
            return false;
        }
        obs::counter!("containment.hom_nodes").incr();
        if depth == self.pattern.len() {
            return visit(subst);
        }
        let pat = self.pattern[depth];
        for &cand in &self.candidates[depth] {
            let mut bound: Vec<Symbol> = Vec::new();
            if unify_atom(pat, cand, subst, &mut bound)
                && self.search(depth + 1, subst, meter, visit)
            {
                return true;
            }
            for v in bound.drain(..) {
                subst.unbind(v);
            }
            if meter.exhausted() {
                break;
            }
        }
        false
    }
}

/// Attempts to extend `subst` so that `pat` maps onto `cand` argument by
/// argument; records newly bound variables in `bound` so the caller can
/// unwind. Returns `false` (with partial bindings recorded in `bound`) on
/// mismatch.
fn unify_atom(pat: &Atom, cand: &Atom, subst: &mut Substitution, bound: &mut Vec<Symbol>) -> bool {
    debug_assert_eq!(pat.predicate, cand.predicate);
    debug_assert_eq!(pat.arity(), cand.arity());
    for (p, c) in pat.terms.iter().zip(&cand.terms) {
        match *p {
            Term::Const(pc) => match *c {
                Term::Const(cc) if pc == cc => {}
                _ => return false,
            },
            Term::Var(v) => match subst.get(v) {
                Some(existing) => {
                    if existing != *c {
                        return false;
                    }
                }
                None => {
                    subst.bind(v, *c);
                    bound.push(v);
                }
            },
        }
    }
    true
}

/// Finds a homomorphism from `pattern` into `target`, if one exists.
pub fn find_homomorphism(pattern: &[Atom], target: &[Atom]) -> Option<Substitution> {
    HomomorphismSearch::new(pattern, target).find()
}

/// Finds a homomorphism extending `initial`.
pub fn find_homomorphism_with(
    pattern: &[Atom],
    target: &[Atom],
    initial: Substitution,
) -> Option<Substitution> {
    HomomorphismSearch::with_initial(pattern, target, initial).find()
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewplan_cq::parse_query;

    fn body(src: &str) -> Vec<Atom> {
        parse_query(src).unwrap().body
    }

    #[test]
    fn maps_simple_pattern() {
        let pat = body("q(X) :- e(X, Y)");
        let tgt = body("q(A) :- e(A, B), e(B, C)");
        let h = find_homomorphism(&pat, &tgt).unwrap();
        assert!(h.get(Symbol::new("X")).is_some());
    }

    #[test]
    fn respects_constants() {
        let pat = body("q(X) :- e(X, a)");
        let tgt1 = body("q() :- e(Z, a)");
        let tgt2 = body("q() :- e(Z, b)");
        assert!(find_homomorphism(&pat, &tgt1).is_some());
        assert!(find_homomorphism(&pat, &tgt2).is_none());
    }

    #[test]
    fn respects_shared_variables() {
        // e(X,Y),f(Y,Z) needs the middle terms to coincide in the target.
        let pat = body("q(X) :- e(X, Y), f(Y, Z)");
        let good = body("q() :- e(A, B), f(B, C)");
        let bad = body("q() :- e(A, B), f(C, D)");
        assert!(find_homomorphism(&pat, &good).is_some());
        assert!(find_homomorphism(&pat, &bad).is_none());
    }

    #[test]
    fn initial_bindings_are_respected() {
        let pat = body("q(X) :- e(X, Y)");
        let tgt = body("q() :- e(a, b), e(c, d)");
        let pinned = Substitution::from_pairs([(Symbol::new("X"), Term::cst("c"))]);
        let h = find_homomorphism_with(&pat, &tgt, pinned).unwrap();
        assert_eq!(h.get(Symbol::new("Y")), Some(Term::cst("d")));
    }

    #[test]
    fn enumerates_all_homomorphisms() {
        let pat = body("q(X) :- e(X, Y)");
        let tgt = body("q() :- e(a, b), e(c, d)");
        let all = HomomorphismSearch::new(&pat, &tgt).all();
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn early_stop_enumeration() {
        let pat = body("q(X) :- e(X, Y)");
        let tgt = body("q() :- e(a, b), e(c, d)");
        let mut count = 0;
        HomomorphismSearch::new(&pat, &tgt).for_each(|_| {
            count += 1;
            true
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn missing_predicate_fails_fast() {
        let pat = body("q(X) :- zz(X)");
        let tgt = body("q(X) :- e(X, X)");
        assert!(!HomomorphismSearch::new(&pat, &tgt).exists());
    }

    #[test]
    fn arity_mismatch_is_not_a_candidate() {
        let pat = body("q(X) :- e(X, X)");
        let tgt = body("q(X) :- e(X)");
        assert!(find_homomorphism(&pat, &tgt).is_none());
    }

    #[test]
    fn repeated_variables_in_pattern_force_equality() {
        let pat = body("q(X) :- e(X, X)");
        let good = body("q() :- e(a, a)");
        let bad = body("q() :- e(a, b)");
        assert!(find_homomorphism(&pat, &good).is_some());
        assert!(find_homomorphism(&pat, &bad).is_none());
    }

    #[test]
    fn empty_pattern_has_trivial_homomorphism() {
        let tgt = body("q(X) :- e(X, X)");
        assert!(find_homomorphism(&[], &tgt).is_some());
    }

    #[test]
    fn unbudgeted_search_reports_complete() {
        let pat = body("q(X) :- e(X, Y)");
        let tgt = body("q(A) :- e(A, B)");
        let (found, complete) = HomomorphismSearch::new(&pat, &tgt).find_complete();
        assert!(found.is_some());
        assert!(complete);
    }

    #[test]
    fn exhausted_budget_truncates_but_never_fabricates() {
        // A 1-node budget stops the search before any mapping is built.
        let pat = body("q(X) :- e(X, Y), e(Y, Z)");
        let tgt = body("q(A) :- e(A, B), e(B, C)");
        let budget = obs::budget::BudgetSpec::new()
            .phase_nodes(obs::Phase::Hom, 1)
            .build();
        let _g = obs::budget::install(budget.clone());
        let (found, complete) = HomomorphismSearch::new(&pat, &tgt).find_complete();
        assert!(found.is_none(), "truncated search must not invent matches");
        assert!(!complete, "truncation must be reported");
        assert_eq!(budget.abandoned(obs::Phase::Hom), 1);
    }

    #[test]
    fn node_capped_search_is_deterministic() {
        let pat = body("q(X) :- e(X, Y), e(Y, Z), e(Z, W)");
        let tgt = body("q() :- e(a, b), e(b, c), e(c, d), e(d, a)");
        let run = |cap: u64| {
            let _g = obs::budget::install(
                obs::budget::BudgetSpec::new()
                    .phase_nodes(obs::Phase::Hom, cap)
                    .build(),
            );
            let mut seen = Vec::new();
            let complete = HomomorphismSearch::new(&pat, &tgt).for_each_complete(|s| {
                seen.push(s.apply(Term::var("X")));
                false
            });
            (seen, complete)
        };
        for cap in [1, 5, 20, 10_000] {
            assert_eq!(run(cap), run(cap), "cap {cap} not deterministic");
        }
    }
}
