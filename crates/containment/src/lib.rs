//! Containment, equivalence, minimization, and expansion of conjunctive
//! queries.
//!
//! This crate implements the classical machinery the paper builds on:
//!
//! * **Containment mappings** (Chandra & Merlin \[5\]): a conjunctive query
//!   `Q1` is contained in `Q2` iff there is a homomorphism from `Q2` to
//!   `Q1` mapping head to head, each variable to a term, and each constant
//!   to itself ([`homomorphism`], [`is_contained_in`]).
//! * **Equivalence** — containment both ways ([`are_equivalent`]).
//! * **Minimization** — removing redundant subgoals until the core is
//!   reached ([`minimize()`]); the first step of `CoreCover` (Figure 4,
//!   step 1).
//! * **Expansion** of a rewriting over views into base relations
//!   (Definition 2.2, [`expand`]).
//! * **Variant checking** — equality of queries up to variable renaming
//!   ([`is_variant`]), the identification the paper adopts ("we assume two
//!   rewritings are the same if the only difference between them is
//!   variable renamings", §3.3).
//! * **Acyclic fast path** — a containment check whose pattern is
//!   acyclic after head pinning is decided by polynomial semijoins over
//!   its GYO join forest ([`acyclic`]) instead of the exponential DFS,
//!   gated by the `VIEWPLAN_ACYCLIC` switch.
//! * **Memoization** — a process-global, lock-sharded cache of containment
//!   verdicts keyed on canonicalized query pairs ([`cache`]), shared by
//!   containment, minimization, view-class grouping, and the M3 dropping
//!   heuristic, and safe to hit from parallel workers.
//!
//! # Example
//!
//! ```
//! use viewplan_cq::parse_query;
//! use viewplan_containment::{are_equivalent, is_contained_in, minimize};
//!
//! let q1 = parse_query("q(X) :- e(X, Y), e(Y, Z)").unwrap();
//! let q2 = parse_query("q(X) :- e(X, Y)").unwrap();
//! assert!(is_contained_in(&q1, &q2));
//! assert!(!is_contained_in(&q2, &q1));
//!
//! let redundant = parse_query("q(X) :- e(X, Y), e(X, Z)").unwrap();
//! assert_eq!(minimize(&redundant).body.len(), 1);
//! assert!(are_equivalent(&redundant, &q2));
//! ```

pub mod acyclic;
pub mod cache;
pub mod containment;
pub mod expansion;
pub mod homomorphism;
pub mod minimize;
pub mod variant;

pub use cache::{
    cache_enabled, canonical_key, canonical_variable, canonicalize, clear_containment_cache,
    containment_cache_len, set_cache_enabled, CanonicalQuery, Canonicalization,
};
pub use containment::{are_equivalent, containment_mapping, head_bindings, is_contained_in};
pub use expansion::{expand, expand_atom, ExpandError};
pub use homomorphism::{find_homomorphism, find_homomorphism_with, HomomorphismSearch};
pub use minimize::minimize;
pub use variant::is_variant;
