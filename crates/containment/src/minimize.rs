//! Query minimization: computing the core of a conjunctive query.
//!
//! A body subgoal `g` of `Q` is redundant iff the query without `g` is
//! still equivalent to `Q`; since dropping a subgoal only weakens a query,
//! this reduces to a single containment test `Q\{g} ⊑ Q`, i.e. a
//! containment mapping from `Q` into `Q\{g}`. Repeating to a fixpoint
//! yields the **minimal equivalent query** (unique up to variable renaming
//! — Chandra & Merlin), which is step (1) of `CoreCover` (Figure 4).

use crate::containment::is_contained_in;
use viewplan_cq::ConjunctiveQuery;
use viewplan_obs as obs;

/// Returns the minimal equivalent of `q` (its core).
///
/// Exact duplicate subgoals are removed first, then subgoals are removed
/// greedily while a containment mapping from `q` into the reduced query
/// exists. Greedy removal is sound: query equivalence is transitive, so
/// once a subgoal is removed the remaining query is still equivalent to
/// the original, and the fixpoint has no redundant subgoal.
pub fn minimize(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let _span = obs::span("containment.minimize");
    let mut current = q.dedup_subgoals();
    let mut i = 0;
    while i < current.body.len() {
        if current.body.len() == 1 {
            break; // a single-subgoal safe query is already minimal
        }
        // Graceful degradation: once the ambient budget is cancelled,
        // stop removing subgoals. The partial result is still equivalent
        // to `q` (every removal so far was proven), just not minimal —
        // and individual truncated containment checks inside the loop
        // only err toward keeping subgoals, which is equally sound.
        if obs::budget::cancelled() {
            break;
        }
        obs::counter!("containment.minimize_rounds").incr();
        let candidate = current.without_subgoal(i);
        // candidate ⊒ current always; equivalence needs current ⊑ candidate,
        // i.e. a containment mapping current → candidate — the (cached)
        // check is_contained_in(candidate, current). We map from the
        // *original-sized* current, which is equivalent to q throughout.
        if is_contained_in(&candidate, &current) {
            obs::counter!("containment.minimize_removed").incr();
            current = candidate;
            // restart scanning from the beginning: removing one subgoal can
            // expose redundancy in earlier positions.
            i = 0;
        } else {
            i += 1;
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containment::are_equivalent;
    use viewplan_cq::parse_query;

    #[test]
    fn removes_duplicate_subgoals() {
        let q = parse_query("q(X) :- e(X, Y), e(X, Y)").unwrap();
        assert_eq!(minimize(&q).body.len(), 1);
    }

    #[test]
    fn removes_subsumed_subgoals() {
        // e(X, Z) is subsumed by e(X, Y) when both Z and Y are existential.
        let q = parse_query("q(X) :- e(X, Y), e(X, Z)").unwrap();
        let m = minimize(&q);
        assert_eq!(m.body.len(), 1);
        assert!(are_equivalent(&q, &m));
    }

    #[test]
    fn keeps_genuinely_needed_subgoals() {
        let q = parse_query("q(X, Z) :- e(X, Y), e(Y, Z)").unwrap();
        assert_eq!(minimize(&q).body.len(), 2);
    }

    #[test]
    fn self_loop_absorbs_tail() {
        // q(X) :- e(X,Y), e(Y,Z), e(Z,Z): can Z-chain fold into itself?
        // Mapping X->X, Y->Y, Z->Z cannot drop anything, but mapping the
        // whole chain into e(X,Y),e(Y,Y) requires e(Y,Y) which is absent.
        let q = parse_query("q(X) :- e(X, Y), e(Y, Z), e(Z, Z)").unwrap();
        let m = minimize(&q);
        // e(Y,Z) maps to e(Z,Z) only if Y==Z; not forced, so check via
        // equivalence: the minimized query must stay equivalent.
        assert!(are_equivalent(&q, &m));
        // and must be locally non-redundant:
        for i in 0..m.body.len() {
            assert!(!are_equivalent(&m, &m.without_subgoal(i)));
        }
    }

    #[test]
    fn paper_p1exp_minimizes_to_p2exp() {
        // Example 1.1: P1's expansion minimizes to P2's expansion.
        let p1exp =
            parse_query("q1(S, C) :- car(M, a), loc(a, C1), car(M1, a), loc(a, C), part(S, M, C)")
                .unwrap();
        let p2exp = parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)").unwrap();
        let m = minimize(&p1exp);
        assert_eq!(m.body.len(), 3);
        assert!(are_equivalent(&m, &p2exp));
    }

    #[test]
    fn already_minimal_query_is_unchanged() {
        let q = parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)").unwrap();
        assert_eq!(minimize(&q), q);
    }

    #[test]
    fn triangle_is_minimal() {
        let q = parse_query("q(X) :- e(X, Y), e(Y, Z), e(Z, X)").unwrap();
        assert_eq!(minimize(&q).body.len(), 3);
    }

    #[test]
    fn constants_block_folding() {
        let q = parse_query("q(X) :- e(X, a), e(X, b)").unwrap();
        assert_eq!(minimize(&q).body.len(), 2);
    }

    #[test]
    fn single_subgoal_is_untouched() {
        let q = parse_query("q(X) :- e(X, X)").unwrap();
        assert_eq!(minimize(&q), q);
    }
}
