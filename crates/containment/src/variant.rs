//! Variant checking: query equality up to variable renaming.
//!
//! The paper identifies rewritings that differ only by variable renaming
//! (§3.3, footnote 2). Two queries are *variants* iff there is a bijective
//! variable renaming mapping one onto the other: head onto head, and the
//! body atom multiset onto the body atom multiset.

use viewplan_cq::{Atom, ConjunctiveQuery, Substitution, Symbol, Term};

/// True iff `q1` and `q2` are equal up to a bijective renaming of
/// variables.
pub fn is_variant(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    if q1.body.len() != q2.body.len()
        || q1.head.predicate != q2.head.predicate
        || q1.head.arity() != q2.head.arity()
    {
        return false;
    }
    let mut fwd = Substitution::new();
    let mut used = std::collections::HashSet::new();
    // The head must match position-by-position under the renaming.
    if !unify_renaming(&q1.head, &q2.head, &mut fwd, &mut used, &mut Vec::new()) {
        return false;
    }
    let mut taken = vec![false; q2.body.len()];
    match_bodies(&q1.body, &q2.body, 0, &mut fwd, &mut used, &mut taken)
}

/// Backtracking perfect matching between the two bodies under a growing
/// bijective renaming.
fn match_bodies(
    b1: &[Atom],
    b2: &[Atom],
    i: usize,
    fwd: &mut Substitution,
    used: &mut std::collections::HashSet<Term>,
    taken: &mut [bool],
) -> bool {
    if i == b1.len() {
        return true;
    }
    for j in 0..b2.len() {
        if taken[j] || b1[i].predicate != b2[j].predicate || b1[i].arity() != b2[j].arity() {
            continue;
        }
        let mut bound: Vec<Symbol> = Vec::new();
        if unify_renaming(&b1[i], &b2[j], fwd, used, &mut bound) {
            taken[j] = true;
            if match_bodies(b1, b2, i + 1, fwd, used, taken) {
                return true;
            }
            taken[j] = false;
        }
        for v in bound {
            let t = fwd.unbind(v).expect("was bound during unify");
            used.remove(&t);
        }
    }
    false
}

/// Extends a bijective variable renaming so `a1` maps exactly onto `a2`.
/// Constants must be identical; variables map to variables injectively.
fn unify_renaming(
    a1: &Atom,
    a2: &Atom,
    fwd: &mut Substitution,
    used: &mut std::collections::HashSet<Term>,
    bound: &mut Vec<Symbol>,
) -> bool {
    for (t1, t2) in a1.terms.iter().zip(&a2.terms) {
        match (*t1, *t2) {
            (Term::Const(c1), Term::Const(c2)) => {
                if c1 != c2 {
                    return false;
                }
            }
            (Term::Var(v), t @ Term::Var(_)) => match fwd.get(v) {
                Some(existing) => {
                    if existing != t {
                        return false;
                    }
                }
                None => {
                    if !used.insert(t) {
                        return false; // injectivity violated
                    }
                    fwd.bind(v, t);
                    bound.push(v);
                }
            },
            _ => return false, // var vs const is not a renaming
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewplan_cq::parse_query;

    #[test]
    fn renamed_query_is_a_variant() {
        let q1 = parse_query("q(X, Y) :- e(X, Z), f(Z, Y)").unwrap();
        let q2 = parse_query("q(A, B) :- e(A, C), f(C, B)").unwrap();
        assert!(is_variant(&q1, &q2));
        assert!(is_variant(&q2, &q1));
    }

    #[test]
    fn body_order_does_not_matter() {
        let q1 = parse_query("q(X) :- e(X, Y), f(Y)").unwrap();
        let q2 = parse_query("q(X) :- f(Z), e(X, Z)").unwrap();
        assert!(is_variant(&q1, &q2));
    }

    #[test]
    fn equivalent_but_not_variant() {
        // Equivalent as queries (both minimize to one subgoal) but not
        // renamings of each other.
        let q1 = parse_query("q(X) :- e(X, Y), e(X, Z)").unwrap();
        let q2 = parse_query("q(X) :- e(X, Y)").unwrap();
        assert!(!is_variant(&q1, &q2));
    }

    #[test]
    fn injectivity_is_required() {
        // Collapsing two variables onto one is not a renaming.
        let q1 = parse_query("q(X) :- e(X, Y), e(Y, X)").unwrap();
        let q2 = parse_query("q(X) :- e(X, X), e(X, X)").unwrap();
        assert!(!is_variant(&q1, &q2));
    }

    #[test]
    fn constants_must_match_exactly() {
        let q1 = parse_query("q(X) :- e(X, a)").unwrap();
        let q2 = parse_query("q(X) :- e(X, b)").unwrap();
        let q3 = parse_query("q(X) :- e(X, Y)").unwrap();
        assert!(!is_variant(&q1, &q2));
        assert!(!is_variant(&q1, &q3));
    }

    #[test]
    fn repeated_variables_shape_matters() {
        let q1 = parse_query("q(X) :- e(X, X)").unwrap();
        let q2 = parse_query("q(X) :- e(X, Y)").unwrap();
        assert!(!is_variant(&q1, &q2));
    }

    #[test]
    fn identical_queries_are_variants() {
        let q = parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)").unwrap();
        assert!(is_variant(&q, &q));
    }

    #[test]
    fn duplicate_atoms_match_multiset_wise() {
        let q1 = parse_query("q(X) :- e(X, Y), e(X, Y)").unwrap();
        let q2 = parse_query("q(A) :- e(A, B), e(A, B)").unwrap();
        let q3 = parse_query("q(A) :- e(A, B), e(A, C)").unwrap();
        assert!(is_variant(&q1, &q2));
        assert!(!is_variant(&q1, &q3));
    }
}
