//! The bucket algorithm (Levy et al. \[17\], Grahne & Mendelzon \[12\]) —
//! the oldest of the rewriting baselines the paper's related work cites.
//!
//! For each query subgoal, the bucket holds the view literals that could
//! cover it: a view body atom unifies with the subgoal such that
//! distinguished query variables land on distinguished view variables (the
//! per-subgoal check — unlike MiniCon and CoreCover, the bucket algorithm
//! does *not* propagate the interaction of existential variables across
//! subgoals, which is exactly why its candidate space is so much larger).
//! Candidate rewritings are elements of the buckets' Cartesian product,
//! each validated by an expansion-containment check and then minimized.
//!
//! We adapt it to the closed-world setting by keeping the candidates whose
//! expansion is *equivalent* to the query (the original keeps contained
//! ones). The per-candidate containment checks the other algorithms avoid
//! are the measured cost in the `generator_baselines` benchmarks.

use crate::rewriting::{dedup_variants, Rewriting};
use std::collections::HashMap;
use viewplan_containment::{are_equivalent, expand, minimize};
use viewplan_cq::{Atom, ConjunctiveQuery, Symbol, Term, View, ViewSet};
use viewplan_obs as obs;

/// One bucket entry: a candidate view literal for a query subgoal.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BucketEntry {
    /// The view supplying the literal.
    pub view: Symbol,
    /// The literal, with query terms in the unified positions and fresh
    /// variables elsewhere.
    pub literal: Atom,
}

/// The buckets of a query: one list of candidate literals per subgoal.
pub type Buckets = Vec<Vec<BucketEntry>>;

/// Builds the buckets for `query` (minimized first) over `views`.
pub fn build_buckets(query: &ConjunctiveQuery, views: &ViewSet) -> (ConjunctiveQuery, Buckets) {
    let qm = minimize(query);
    let distinguished = qm.distinguished_set();
    let mut buckets: Buckets = vec![Vec::new(); qm.body.len()];
    for (i, subgoal) in qm.body.iter().enumerate() {
        for view in views {
            for watom in &view.definition.body {
                if watom.predicate != subgoal.predicate || watom.arity() != subgoal.arity() {
                    continue;
                }
                if let Some(entry) = unify_into_literal(subgoal, watom, view, &distinguished) {
                    if !buckets[i].contains(&entry) {
                        buckets[i].push(entry);
                    }
                }
            }
        }
    }
    (qm, buckets)
}

/// Unifies a query subgoal with one view body atom; on success builds the
/// bucket literal: the view head with unified positions replaced by query
/// terms and the rest by fresh variables.
fn unify_into_literal(
    subgoal: &Atom,
    watom: &Atom,
    view: &View,
    distinguished: &std::collections::HashSet<Symbol>,
) -> Option<BucketEntry> {
    let head_vars: std::collections::HashSet<Symbol> = view.definition.head.variables().collect();
    // view variable -> query term it must carry.
    let mut binding: HashMap<Symbol, Term> = HashMap::new();
    for (qt, vt) in subgoal.terms.iter().zip(&watom.terms) {
        match *vt {
            Term::Const(c) => {
                // A view constant must match the query term exactly (a
                // query variable could bind to it only in a contained
                // rewriting; the classic bucket test rejects mismatched
                // constants and lets variables through).
                match *qt {
                    Term::Const(qc) if qc == c => {}
                    Term::Const(_) => return None,
                    Term::Var(_) => return None,
                }
            }
            Term::Var(v) => {
                // Distinguished query variables (and constants) must land
                // on distinguished view variables.
                let needs_head = match *qt {
                    Term::Var(x) => distinguished.contains(&x),
                    Term::Const(_) => true,
                };
                if needs_head && !head_vars.contains(&v) {
                    return None;
                }
                match binding.get(&v) {
                    Some(prev) if *prev != *qt => return None,
                    Some(_) => {}
                    None => {
                        binding.insert(v, *qt);
                    }
                }
            }
        }
    }
    // Build the literal from the view head.
    let mut fresh: HashMap<Symbol, Term> = HashMap::new();
    let terms: Vec<Term> = view
        .definition
        .head
        .terms
        .iter()
        .map(|&ht| match ht {
            Term::Const(_) => ht,
            Term::Var(v) => binding.get(&v).copied().unwrap_or_else(|| {
                *fresh
                    .entry(v)
                    .or_insert_with(|| Term::Var(Symbol::fresh("B")))
            }),
        })
        .collect();
    Some(BucketEntry {
        view: view.name(),
        literal: Atom::new(view.name(), terms),
    })
}

/// Runs the bucket algorithm: Cartesian product of the buckets, each
/// candidate checked for expansion equivalence with the query and
/// minimized. `limit` caps the number of candidates *examined* (the
/// product is the algorithm's known weakness).
pub fn bucket_rewritings(
    query: &ConjunctiveQuery,
    views: &ViewSet,
    limit: usize,
) -> Vec<Rewriting> {
    let _span = obs::span("bucket.run");
    let (qm, buckets) = build_buckets(query, views);
    obs::counter!("bucket.entries").add(buckets.iter().map(Vec::len).sum::<usize>() as u64);
    if buckets.iter().any(Vec::is_empty) {
        return Vec::new(); // some subgoal is uncoverable
    }
    let mut results = Vec::new();
    let mut choice = vec![0usize; buckets.len()];
    let mut examined = 0usize;
    'outer: loop {
        if examined >= limit {
            break;
        }
        examined += 1;
        obs::counter!("bucket.candidates_examined").incr();
        let body: Vec<Atom> = choice
            .iter()
            .enumerate()
            .map(|(i, &k)| buckets[i][k].literal.clone())
            .collect();
        let candidate = ConjunctiveQuery::new(qm.head.clone(), body).dedup_subgoals();
        if let Ok(exp) = expand(&candidate, views) {
            if are_equivalent(&exp, &qm) {
                results.push(minimize(&candidate));
            }
        }
        // Next element of the Cartesian product.
        for i in (0..choice.len()).rev() {
            choice[i] += 1;
            if choice[i] < buckets[i].len() {
                continue 'outer;
            }
            choice[i] = 0;
            if i == 0 {
                break 'outer;
            }
        }
    }
    dedup_variants(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corecover::CoreCover;
    use viewplan_cq::{parse_query, parse_views};

    fn carlocpart() -> (ConjunctiveQuery, ViewSet) {
        (
            parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)").unwrap(),
            parse_views(
                "v1(M, D, C) :- car(M, D), loc(D, C).\n\
                 v2(S, M, C) :- part(S, M, C).\n\
                 v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).",
            )
            .unwrap(),
        )
    }

    #[test]
    fn buckets_collect_per_subgoal_candidates() {
        let (q, views) = carlocpart();
        let (_, buckets) = build_buckets(&q, &views);
        assert_eq!(buckets.len(), 3);
        // car(M, a) can come from v1 or v4; loc from v1 or v4; part from
        // v2 or v4.
        assert_eq!(buckets[0].len(), 2);
        assert_eq!(buckets[1].len(), 2);
        assert_eq!(buckets[2].len(), 2);
    }

    #[test]
    fn finds_equivalent_rewritings_but_misses_the_gmr() {
        let (q, views) = carlocpart();
        let rs = bucket_rewritings(&q, &views, 10_000);
        assert!(!rs.is_empty());
        // The classic bucket weakness CoreCover fixes: each bucket entry
        // invents its own fresh variables, so the product can never align
        // v4's three occurrences into the single literal v4(M, a, C, S) —
        // the 1-subgoal GMR is unreachable, and query-level minimization
        // cannot recover it (the redundancy is only visible after
        // expansion).
        assert!(rs.iter().all(|r| r.body.len() >= 2));
        // CoreCover finds it.
        let cc = CoreCover::new(&q, &views).run();
        assert_eq!(cc.rewritings()[0].body.len(), 1);
        // Every bucket result is still a genuine equivalent rewriting.
        let qm = minimize(&q);
        for r in &rs {
            let exp = expand(r, &views).unwrap();
            assert!(are_equivalent(&exp, &qm), "{r}");
        }
    }

    #[test]
    fn distinguished_variable_check_prunes() {
        // The view hides the distinguished variable — bucket must be empty.
        let q = parse_query("q(X) :- e(X, Y)").unwrap();
        let views = parse_views("v(B) :- e(A, B)").unwrap();
        let (_, buckets) = build_buckets(&q, &views);
        assert!(buckets[0].is_empty());
        assert!(bucket_rewritings(&q, &views, 100).is_empty());
    }

    #[test]
    fn bucket_misses_cross_subgoal_interaction_until_validation() {
        // Classic bucket weakness: it admits per-subgoal candidates whose
        // combination is invalid; the expansion check rejects them.
        let q = parse_query("q(X, Y) :- e(X, Z), f(Z, Y)").unwrap();
        let views = parse_views(
            "ve(A) :- e(A, B).\n\
             vf(B) :- f(A, B).",
        )
        .unwrap();
        let (_, buckets) = build_buckets(&q, &views);
        // Z is existential in the query, so ve(A)'s hidden B position is
        // bucket-admissible for subgoal e(X, Z)…
        assert_eq!(buckets[0].len(), 1);
        // …but no combination survives the equivalence check (Z is lost).
        assert!(bucket_rewritings(&q, &views, 100).is_empty());
    }

    #[test]
    fn agrees_with_corecover_on_existence() {
        for seed in 0..6 {
            let w = viewplan_workload_stub(seed);
            let cc = CoreCover::new(&w.0, &w.1).run();
            let bk = bucket_rewritings(&w.0, &w.1, 100_000);
            assert_eq!(
                cc.rewritings().is_empty(),
                bk.is_empty(),
                "existence disagrees (seed {seed})"
            );
        }
    }

    /// A tiny deterministic workload generator local to this test (the
    /// real one lives in `viewplan-workload`, which would be a circular
    /// dev-dependency here).
    fn viewplan_workload_stub(seed: u64) -> (ConjunctiveQuery, ViewSet) {
        let n = 3 + (seed % 3) as usize;
        let body: Vec<String> = (0..n).map(|i| format!("r{i}(X{i}, X{})", i + 1)).collect();
        let head: Vec<String> = (0..=n).map(|i| format!("X{i}")).collect();
        let q = parse_query(&format!("q({}) :- {}", head.join(", "), body.join(", "))).unwrap();
        let mut vs = String::new();
        for i in 0..n {
            let len = 1 + ((seed + i as u64) % 2) as usize;
            let end = (i + len).min(n);
            let seg: Vec<String> = (i..end)
                .map(|j| format!("r{j}(Y{j}, Y{})", j + 1))
                .collect();
            let hvars: Vec<String> = (i..=end).map(|j| format!("Y{j}")).collect();
            vs.push_str(&format!(
                "w{i}({}) :- {}.\n",
                hvars.join(", "),
                seg.join(", ")
            ));
        }
        (q, parse_views(&vs).unwrap())
    }

    #[test]
    fn limit_caps_candidate_examination() {
        let (q, views) = carlocpart();
        let capped = bucket_rewritings(&q, &views, 1);
        assert!(capped.len() <= 1);
    }
}
