//! Equivalence classes of views and view tuples — the concise
//! representation of §5.2.
//!
//! With many views, the number of view tuples (and hence of minimal
//! rewritings, up to `2^n − 1`) explodes. The paper's remedy, and the key
//! to its scalability results (Figures 7 and 9):
//!
//! 1. partition the **views** into classes of queries equivalent as
//!    queries, and run the algorithm on one representative per class;
//! 2. partition the **view tuples** by tuple-core, and cover the query
//!    subgoals using one representative per class.
//!
//! The number of representative view tuples is then bounded by the number
//! of distinct subgoal subsets, which depends only on the query — the
//! experiments show it is essentially constant in the number of views.

use crate::tuple_core::TupleCore;
use std::collections::HashMap;
use viewplan_containment::are_equivalent;
use viewplan_cq::{ConjunctiveQuery, Symbol, View, ViewSet};

/// Renames a view definition's head predicate to a fixed marker so two
/// views can be compared as queries regardless of their names.
fn normalized(view: &View) -> ConjunctiveQuery {
    let mut def = view.definition.clone();
    def.head.predicate = Symbol::new("__viewclass__");
    def
}

/// A cheap signature that equivalent queries must share, used to bucket
/// views before the quadratic pairwise tests: head arity plus the sorted
/// set of body predicates of the *minimized*… no — minimization is more
/// expensive than the test itself at these sizes, so the signature uses
/// the raw body, which is only a bucketing heuristic and never merges
/// non-equivalent views (the pairwise test decides).
type ViewSignature = (usize, Vec<(Symbol, usize)>);

fn signature(view: &View) -> ViewSignature {
    let mut preds: Vec<(Symbol, usize)> = view
        .definition
        .body
        .iter()
        .map(|a| (a.predicate, a.arity()))
        .collect();
    preds.sort();
    preds.dedup();
    (view.arity(), preds)
}

/// Partitions the views into classes equivalent as queries (ignoring the
/// view names). Returns classes of indices into `views`, in first-seen
/// order; each class's first element is its representative.
pub fn view_equivalence_classes(views: &ViewSet) -> Vec<Vec<usize>> {
    let mut classes: Vec<Vec<usize>> = Vec::new();
    let mut normal: Vec<ConjunctiveQuery> = Vec::new();
    let mut buckets: HashMap<ViewSignature, Vec<usize>> = HashMap::new();
    for (i, view) in views.iter().enumerate() {
        let norm = normalized(view);
        let sig = signature(view);
        let bucket = buckets.entry(sig).or_default();
        let mut found = None;
        for &class_idx in bucket.iter() {
            let rep = classes[class_idx][0];
            if are_equivalent(&normal[rep], &norm) {
                found = Some(class_idx);
                break;
            }
        }
        normal.push(norm);
        match found {
            Some(ci) => classes[ci].push(i),
            None => {
                bucket.push(classes.len());
                classes.push(vec![i]);
            }
        }
    }
    classes
}

/// Partitions view tuples by their tuple-core (same covered subgoal set).
/// `cores` must align with the tuple list. Returns classes of indices in
/// first-seen order; tuples with an empty core form one class (they cover
/// nothing, but CoreCover* uses them as filter candidates).
pub fn view_tuple_classes(cores: &[TupleCore]) -> Vec<Vec<usize>> {
    let mut by_core: HashMap<Vec<usize>, usize> = HashMap::new();
    let mut classes: Vec<Vec<usize>> = Vec::new();
    for (i, core) in cores.iter().enumerate() {
        let key: Vec<usize> = core.subgoals.iter().copied().collect();
        match by_core.get(&key) {
            Some(&ci) => classes[ci].push(i),
            None => {
                by_core.insert(key, classes.len());
                classes.push(vec![i]);
            }
        }
    }
    classes
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use viewplan_cq::parse_views;

    #[test]
    fn v1_and_v5_share_a_class() {
        // Example 1.1: V1 and V5 have the same definition.
        let views = parse_views(
            "v1(M, D, C) :- car(M, D), loc(D, C).\n\
             v2(S, M, C) :- part(S, M, C).\n\
             v5(M, D, C) :- car(M, D), loc(D, C).",
        )
        .unwrap();
        let classes = view_equivalence_classes(&views);
        assert_eq!(classes, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn equivalence_is_semantic_not_syntactic() {
        // The second view has a redundant subgoal but is equivalent.
        let views = parse_views(
            "v1(A) :- e(A, B).\n\
             v2(A) :- e(A, B), e(A, C).",
        )
        .unwrap();
        let classes = view_equivalence_classes(&views);
        assert_eq!(classes.len(), 1);
    }

    #[test]
    fn head_argument_order_separates_classes() {
        let views = parse_views(
            "v1(A, B) :- e(A, B).\n\
             v2(B, A) :- e(A, B).",
        )
        .unwrap();
        assert_eq!(view_equivalence_classes(&views).len(), 2);
    }

    #[test]
    fn arity_separates_classes() {
        let views = parse_views(
            "v1(A) :- e(A, B).\n\
             v2(A, B) :- e(A, B).",
        )
        .unwrap();
        assert_eq!(view_equivalence_classes(&views).len(), 2);
    }

    #[test]
    fn tuple_classes_group_by_core() {
        let mk = |subgoals: &[usize]| TupleCore {
            subgoals: subgoals.iter().copied().collect::<BTreeSet<_>>(),
            mapping: Default::default(),
        };
        let cores = vec![mk(&[0, 1]), mk(&[2]), mk(&[0, 1]), mk(&[]), mk(&[])];
        let classes = view_tuple_classes(&cores);
        assert_eq!(classes, vec![vec![0, 2], vec![1], vec![3, 4]]);
    }
}
