//! The `CoreCover` algorithm (Figure 4) and its `CoreCover*` variant (§5).
//!
//! ```text
//! (1) Minimize Q by removing redundant subgoals → Q_m.
//! (2) Build the canonical database D_Qm; compute T(Q_m, V) by applying
//!     the view definitions to it.
//! (3) For each view tuple, compute its tuple-core.
//! (4) Cover the subgoals of Q_m with the minimum number of nonempty
//!     tuple-cores; each cover yields a globally-minimal rewriting.
//! ```
//!
//! `CoreCover*` differs only in step (4): it enumerates *all* irredundant
//! covers, giving all minimal rewritings using view tuples — the space
//! guaranteed to contain an M2-optimal rewriting (Theorem 5.1). View
//! tuples with an *empty* tuple-core are excluded from covering but kept
//! as **filter candidates** (like `v3(S)` in rewriting `P3` of the paper's
//! running example), which the downstream optimizer may graft onto a
//! rewriting when a selective view relation pays for itself.
//!
//! The §5.2 concise representation — views grouped into classes
//! equivalent as queries, view tuples grouped by tuple-core — is on by
//! default and is what makes the algorithm scale to a thousand views
//! (Figures 6–9).

use crate::classes::{view_equivalence_classes, view_tuple_classes};
use crate::cover::{all_irredundant_covers_counted, all_minimum_covers_counted};
use crate::error::{CoreError, MAX_SUBGOALS};
use crate::parallel::{default_threads, parallel_map};
use crate::prepared::PreparedViews;
use crate::rewriting::{dedup_variants_with_map, Rewriting};
use crate::tuple_core::{tuple_core, TupleCore};
use crate::view_tuple::{view_tuples_with_threads, ViewTuple};
use viewplan_containment::{are_equivalent, expand, minimize};
use viewplan_cq::{ConjunctiveQuery, ViewSet};
use viewplan_obs as obs;
use viewplan_obs::Completeness;

/// Tuning knobs for [`CoreCover`].
#[derive(Clone, Debug)]
pub struct CoreCoverConfig {
    /// Group views into classes equivalent as queries and use one
    /// representative per class (§5.2 step 1). Default `true`.
    pub group_equivalent_views: bool,
    /// Group view tuples by tuple-core and cover with one representative
    /// per class (§5.2 step 2). Default `true`.
    pub group_view_tuples: bool,
    /// Drop views that provably yield no view tuples (some body atom's
    /// `(predicate, arity)` pair is absent from the minimized query —
    /// the `VP006` analyzer condition, see [`crate::prune`]) before the
    /// view-tuple construction. Output-invariant by construction: such
    /// views contribute nothing to any later step. Counted under
    /// `analyze.views_pruned`. Default `true`.
    pub prune_unusable_views: bool,
    /// Verify each produced rewriting by expanding it and checking
    /// equivalence with the query; candidates that fail are dropped
    /// (counted under `corecover.nonequivalent_covers`, or marked
    /// `Truncated` when a budget may have cut the equivalence search
    /// short). Covers whose overlapping tuple-cores disagree on a shared
    /// variable are not rewritings, so this defaults to `false` only for
    /// speed; debug builds always verify.
    pub verify_rewritings: bool,
    /// Cap on the number of rewritings enumerated by `CoreCover*`.
    pub max_rewritings: usize,
    /// Worker threads for the parallel stages (view tuples, tuple-cores,
    /// verification). `1` runs fully serial; results are identical for
    /// every thread count. Defaults to the `VIEWPLAN_THREADS` environment
    /// variable, or 1 when unset.
    pub threads: usize,
    /// Record per-candidate provenance — which views the VP006 prune
    /// dropped, every candidate cover with its fate (accepted, duplicate
    /// variant, nonequivalent, unverified) — in
    /// [`CoreCoverResult::provenance`]. Forces verification (a verdict
    /// is only meaningful when the equivalence check ran) and keeps a
    /// copy of every pre-dedup candidate, so leave it off outside
    /// `viewplan explain`. Default `false`.
    pub collect_provenance: bool,
}

impl Default for CoreCoverConfig {
    fn default() -> CoreCoverConfig {
        CoreCoverConfig {
            group_equivalent_views: true,
            group_view_tuples: true,
            prune_unusable_views: true,
            verify_rewritings: false,
            max_rewritings: 10_000,
            threads: default_threads(),
            collect_provenance: false,
        }
    }
}

/// Why the run produced the rewritings it did — collected when
/// [`CoreCoverConfig::collect_provenance`] is on, and rendered by
/// `viewplan explain`.
#[derive(Clone, Debug, Default)]
pub struct CoverProvenance {
    /// Views dropped by the VP006 prune (a body `(predicate, arity)`
    /// pair is absent from the minimized query, so no homomorphism into
    /// the canonical database exists).
    pub pruned_views: Vec<String>,
    /// Representative views that survived grouping and pruning, in view
    /// order.
    pub surviving_views: Vec<String>,
    /// Every candidate cover in enumeration order, with its fate.
    pub candidates: Vec<CandidateCover>,
}

/// One candidate cover and what became of it.
#[derive(Clone, Debug)]
pub struct CandidateCover {
    /// The candidate rewriting built from the cover.
    pub rewriting: Rewriting,
    /// View names used by the cover (body predicates, in body order).
    pub views_used: Vec<String>,
    /// The candidate's fate.
    pub verdict: CandidateVerdict,
}

/// The fate of one candidate cover.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CandidateVerdict {
    /// Survived dedup and verification: a genuine equivalent rewriting.
    Accepted,
    /// A variable renaming of candidate `of` (index into
    /// [`CoverProvenance::candidates`]); dropped per the §3.3 convention
    /// that renamings are the same rewriting.
    DuplicateVariant {
        /// Index of the kept candidate this one renames.
        of: usize,
    },
    /// The expansion is provably not equivalent to the query
    /// (overlapping tuple-cores treated a shared variable
    /// inconsistently).
    NotEquivalent,
    /// The equivalence check was cut short by the ambient budget: shed
    /// for lack of proof, not disproved.
    Unverified,
}

/// Counters describing one run (these are the series plotted in the
/// paper's Figures 7 and 9).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreCoverStats {
    /// Number of input views.
    pub views: usize,
    /// Number of view equivalence classes (= `views` when grouping is
    /// off).
    pub view_classes: usize,
    /// Number of view tuples computed from the representative views.
    pub view_tuples: usize,
    /// Number of representative view tuples used for covering
    /// (= `view_tuples` when tuple grouping is off; empty-core classes are
    /// not counted).
    pub representative_tuples: usize,
    /// Number of view tuples with an empty tuple-core (filter candidates).
    pub empty_core_tuples: usize,
    /// Number of rewritings produced.
    pub rewritings: usize,
    /// True iff the enumeration was cut short — by
    /// [`CoreCoverConfig::max_rewritings`] or by the ambient budget —
    /// so the rewriting list is a subset of the full space, not the
    /// whole of it.
    pub truncated: bool,
    /// How complete the run was under the ambient
    /// [budget](viewplan_obs::budget): [`Completeness::Complete`] when
    /// nothing was cut short, [`Completeness::Truncated`] when a node
    /// cap or count cap fired (deterministic subset),
    /// [`Completeness::DeadlineExceeded`] when the wall clock fired
    /// (nondeterministic best-so-far). Every rewriting returned is a
    /// genuine equivalent rewriting regardless of this marker.
    pub completeness: Completeness,
}

/// The output of a [`CoreCover`] run.
#[derive(Clone, Debug)]
pub struct CoreCoverResult {
    /// The minimized query the rewritings are equivalent to.
    pub minimized_query: ConjunctiveQuery,
    /// All view tuples of the (representative) views.
    pub view_tuples: Vec<ViewTuple>,
    /// Tuple-cores aligned with `view_tuples`.
    pub cores: Vec<TupleCore>,
    /// View-tuple classes (indices into `view_tuples`), grouped by core.
    pub tuple_classes: Vec<Vec<usize>>,
    /// Run counters.
    pub stats: CoreCoverStats,
    /// Per-candidate provenance; `Some` iff
    /// [`CoreCoverConfig::collect_provenance`] was on.
    pub provenance: Option<CoverProvenance>,
    rewritings: Vec<Rewriting>,
}

impl CoreCoverResult {
    /// The rewritings found (globally minimal for [`CoreCover::run`], all
    /// minimal for [`CoreCover::run_all_minimal`]).
    pub fn rewritings(&self) -> &[Rewriting] {
        &self.rewritings
    }

    /// View tuples with empty tuple-cores — candidates for filtering
    /// subgoals under cost model M2 (§5.1).
    pub fn filter_tuples(&self) -> Vec<&ViewTuple> {
        self.view_tuples
            .iter()
            .zip(&self.cores)
            .filter(|(_, c)| c.is_empty())
            .map(|(t, _)| t)
            .collect()
    }

    /// The §5.2 advantage (4): view tuples interchangeable with `tuple`
    /// (same tuple-core class). Substituting any of them for `tuple` in a
    /// rewriting yields another rewriting of the query, letting the
    /// optimizer pick the class member with the cheapest view relation.
    pub fn interchangeable_tuples(&self, tuple: &ViewTuple) -> Vec<&ViewTuple> {
        let Some(idx) = self.view_tuples.iter().position(|t| t == tuple) else {
            return Vec::new();
        };
        self.tuple_classes
            .iter()
            .find(|class| class.contains(&idx))
            .map(|class| {
                class
                    .iter()
                    .filter(|&&i| i != idx)
                    .map(|&i| &self.view_tuples[i])
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Substitutes `from` with `to` in a rewriting's body (both must be in
    /// the same tuple-core class for the result to stay a rewriting —
    /// debug builds assert nothing here; the caller chooses from
    /// [`CoreCoverResult::interchangeable_tuples`]).
    pub fn swap_tuple(&self, rewriting: &Rewriting, from: &ViewTuple, to: &ViewTuple) -> Rewriting {
        let mut out = rewriting.clone();
        for atom in &mut out.body {
            if *atom == from.atom {
                *atom = to.atom.clone();
            }
        }
        out
    }
}

/// The algorithm driver. See the module docs for the four steps.
pub struct CoreCover<'a> {
    query: &'a ConjunctiveQuery,
    views: &'a ViewSet,
    config: CoreCoverConfig,
    prepared: Option<&'a PreparedViews>,
}

impl<'a> CoreCover<'a> {
    /// Prepares a run with the default configuration.
    pub fn new(query: &'a ConjunctiveQuery, views: &'a ViewSet) -> CoreCover<'a> {
        CoreCover {
            query,
            views,
            config: CoreCoverConfig::default(),
            prepared: None,
        }
    }

    /// Prepares a run over a [`PreparedViews`] set: the §5.2 view
    /// grouping is taken from the precomputed classes instead of being
    /// redone, which is what lets a serving layer amortize the
    /// per-view-set work across a whole query stream. Output is
    /// byte-identical to [`CoreCover::new`] over the same view set.
    pub fn with_prepared_views(
        query: &'a ConjunctiveQuery,
        prepared: &'a PreparedViews,
    ) -> CoreCover<'a> {
        CoreCover {
            query,
            views: prepared.views(),
            config: CoreCoverConfig::default(),
            prepared: Some(prepared),
        }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: CoreCoverConfig) -> CoreCover<'a> {
        self.config = config;
        self
    }

    /// Runs `CoreCover`: all globally-minimal rewritings.
    ///
    /// # Panics
    /// Panics when the query exceeds [`MAX_SUBGOALS`] subgoals; use
    /// [`CoreCover::try_run`] to get the error instead.
    pub fn run(&self) -> CoreCoverResult {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs `CoreCover*`: all minimal rewritings using view tuples (the
    /// M2 search space of Theorem 5.1), capped at
    /// [`CoreCoverConfig::max_rewritings`].
    ///
    /// # Panics
    /// Panics when the query exceeds [`MAX_SUBGOALS`] subgoals; use
    /// [`CoreCover::try_run_all_minimal`] to get the error instead.
    pub fn run_all_minimal(&self) -> CoreCoverResult {
        self.try_run_all_minimal().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`CoreCover::run`], returning an error instead of panicking on
    /// queries the 64-bit cover masks cannot represent.
    pub fn try_run(&self) -> Result<CoreCoverResult, CoreError> {
        self.run_inner(true)
    }

    /// [`CoreCover::run_all_minimal`], returning an error instead of
    /// panicking on queries the 64-bit cover masks cannot represent.
    pub fn try_run_all_minimal(&self) -> Result<CoreCoverResult, CoreError> {
        self.run_inner(false)
    }

    fn run_inner(&self, minimum_only: bool) -> Result<CoreCoverResult, CoreError> {
        let _run_span = obs::span("corecover.run");
        let threads = self.config.threads.max(1);
        // Scope completeness classification to this run: the ambient
        // budget handle may carry hits from earlier runs.
        let budget_active = obs::budget::current().is_some();
        let budget_before = obs::budget::snapshot();
        let mut provenance = self
            .config
            .collect_provenance
            .then(CoverProvenance::default);

        // Step 1: minimize the query (times itself as containment.minimize).
        let qm = minimize(self.query);
        // Guard before any mask arithmetic: the cover step encodes subgoal
        // sets as u64 bitmasks, and `1 << i` for i ≥ 64 wraps silently in
        // release builds — report, don't miscompute.
        if qm.body.len() > MAX_SUBGOALS {
            return Err(CoreError::TooManySubgoals {
                subgoals: qm.body.len(),
            });
        }

        // Step 1b (§5.2): group views into equivalence classes — or reuse
        // the classes a PreparedViews set computed once for the whole
        // query stream (identical by determinism of the grouping).
        let (active_views, view_classes) = {
            let _span = obs::span("corecover.group_views");
            if !self.config.group_equivalent_views {
                (self.views.clone(), self.views.len())
            } else if let Some(p) = self.prepared {
                (p.representatives().clone(), p.class_count())
            } else {
                let classes = view_equivalence_classes(self.views);
                let reps = ViewSet::from_views(
                    classes.iter().map(|c| self.views.as_slice()[c[0]].clone()),
                );
                (reps, classes.len())
            }
        };

        // Step 1c: analyzer-driven pruning (VP006). A view whose body
        // mentions a (predicate, arity) pair absent from the minimized
        // query admits no homomorphism into the canonical database and
        // therefore yields zero view tuples — dropping it here skips its
        // share of the tuple/core work without changing any output.
        // `stats.views`/`stats.view_classes` stay at their pre-pruning
        // values: pruning is an execution shortcut, not a semantic change.
        let active_views = if self.config.prune_unusable_views {
            let needed = crate::prune::body_signature(&qm);
            let mut kept: Vec<_> = Vec::with_capacity(active_views.len());
            for v in active_views.iter() {
                if crate::prune::view_is_unusable(&needed, v) {
                    obs::trace_event!("analyze.view_pruned", ("view", v.name().as_str()));
                    if let Some(p) = provenance.as_mut() {
                        p.pruned_views.push(v.name().as_str());
                    }
                } else {
                    kept.push(v.clone());
                }
            }
            let pruned = active_views.len() - kept.len();
            if pruned > 0 {
                obs::counter!("analyze.views_pruned").add(pruned as u64);
            }
            ViewSet::from_views(kept)
        } else {
            active_views
        };

        if let Some(p) = provenance.as_mut() {
            p.surviving_views = active_views.iter().map(|v| v.name().as_str()).collect();
        }

        // Step 2: view tuples from the canonical database, one parallel
        // task per view (merged back in view order — same output as serial).
        let tuples = {
            let _span = obs::span("corecover.view_tuples");
            view_tuples_with_threads(&qm, &active_views, threads)
        };

        // Step 3: tuple-cores, one parallel task per view tuple (collected
        // per-index, so `cores[i]` matches `tuples[i]` as in a serial run).
        let (cores, tuple_classes) = {
            let _span = obs::span("corecover.tuple_cores");
            let cores: Vec<TupleCore> =
                parallel_map(threads, &tuples, |t| tuple_core(&qm, t, &active_views));
            let classes = view_tuple_classes(&cores);
            (cores, classes)
        };

        // Step 4: cover the query subgoals.
        let universe: u64 = if qm.body.is_empty() {
            0
        } else {
            // `1u64 << 64` overflows, and the MAX_SUBGOALS guard above
            // admits exactly 64 subgoals; shift from the top instead.
            u64::MAX >> (64 - qm.body.len())
        };
        let candidate_indices: Vec<usize> = if self.config.group_view_tuples {
            tuple_classes
                .iter()
                .map(|class| class[0])
                .filter(|&i| !cores[i].is_empty())
                .collect()
        } else {
            (0..tuples.len())
                .filter(|&i| !cores[i].is_empty())
                .collect()
        };
        let masks: Vec<u64> = candidate_indices
            .iter()
            .map(|&i| cores[i].bitmask())
            .collect();
        let (covers, truncated) = {
            let _span = obs::span("corecover.set_cover");
            if minimum_only {
                let e = all_minimum_covers_counted(universe, &masks);
                (e.covers, e.truncated)
            } else {
                let e =
                    all_irredundant_covers_counted(universe, &masks, self.config.max_rewritings);
                (e.covers, e.truncated)
            }
        };

        let mut rewritings: Vec<Rewriting> = covers
            .iter()
            .map(|cover| {
                ConjunctiveQuery::new(
                    qm.head.clone(),
                    cover
                        .iter()
                        .map(|&k| tuples[candidate_indices[k]].atom.clone())
                        .collect(),
                )
            })
            .collect();
        // Pre-dedup candidates are kept only when provenance is on: the
        // explain path wants to say "this cover was a renaming of that
        // one", which requires remembering the dropped ones.
        let all_candidates: Option<Vec<Rewriting>> =
            provenance.is_some().then(|| rewritings.clone());
        let (deduped, variant_of) = dedup_variants_with_map(rewritings);
        rewritings = deduped;

        let mut unverified_dropped = false;
        // Indexed like post-dedup `rewritings` before filtering; `Some`
        // iff verification ran.
        let mut verified_flags: Option<Vec<bool>> = None;
        if self.config.verify_rewritings || provenance.is_some() || cfg!(debug_assertions) {
            let _span = obs::span("corecover.verify");
            // One parallel verification task per cover; verdicts line up
            // with `rewritings` by index.
            let verified: Vec<bool> = parallel_map(threads, &rewritings, |r| {
                // Covers are built from view tuples of known views, so
                // expansion cannot fail; if that invariant ever broke,
                // the candidate is not a rewriting — shed it like any
                // other failed verification rather than aborting.
                let equivalent = match expand(r, &active_views) {
                    Ok(exp) => are_equivalent(&exp, &qm),
                    Err(_) => false,
                };
                obs::trace_event!(
                    "corecover.cover_verified",
                    ("subgoals", r.body.len()),
                    ("equivalent", equivalent)
                );
                equivalent
            });
            // Candidates that fail the check are dropped, never
            // asserted on: a cover whose overlapping tuple-cores treat
            // a shared variable inconsistently (identity in one core,
            // existential image in the other) is not a rewriting, and a
            // production pipeline must shed it, not abort. Under a
            // budget a failed check can also mean the equivalence
            // search itself was truncated — a possibly-valid rewriting
            // dropped for lack of proof — so the run is additionally
            // marked truncated.
            let kept: Vec<Rewriting> = rewritings
                .into_iter()
                .zip(&verified)
                .filter_map(|(r, &ok)| ok.then_some(r))
                .collect();
            let dropped = verified.len() - kept.len();
            if dropped > 0 {
                if budget_active {
                    unverified_dropped = true;
                    obs::counter!("budget.unverified_dropped").add(dropped as u64);
                } else {
                    obs::counter!("corecover.nonequivalent_covers").add(dropped as u64);
                }
            }
            rewritings = kept;
            verified_flags = Some(verified);
        }

        if let (Some(p), Some(candidates)) = (provenance.as_mut(), all_candidates) {
            // Walk candidates in enumeration order; kept ones consume
            // the next verification verdict.
            let mut kept_pos = 0usize;
            for (idx, r) in candidates.into_iter().enumerate() {
                let verdict = match variant_of[idx] {
                    Some(of) => CandidateVerdict::DuplicateVariant { of },
                    None => {
                        let ok = verified_flags.as_ref().map(|v| v[kept_pos]).unwrap_or(true);
                        kept_pos += 1;
                        if ok {
                            CandidateVerdict::Accepted
                        } else if budget_active {
                            CandidateVerdict::Unverified
                        } else {
                            CandidateVerdict::NotEquivalent
                        }
                    }
                };
                let views_used = r.body.iter().map(|a| a.predicate.as_str()).collect();
                p.candidates.push(CandidateCover {
                    rewriting: r,
                    views_used,
                    verdict,
                });
            }
        }

        let truncated = truncated || unverified_dropped;
        let completeness = obs::budget::completeness_since(budget_before).worst(if truncated {
            Completeness::Truncated
        } else {
            Completeness::Complete
        });
        let stats = CoreCoverStats {
            views: self.views.len(),
            view_classes,
            view_tuples: tuples.len(),
            representative_tuples: candidate_indices.len(),
            empty_core_tuples: cores.iter().filter(|c| c.is_empty()).count(),
            rewritings: rewritings.len(),
            truncated,
            completeness,
        };
        // Mirror the per-run stats into the global registry so reporters
        // and the bench harness see the same numbers (Figures 7 and 9).
        obs::counter!("corecover.runs").incr();
        obs::counter!("corecover.views").add(stats.views as u64);
        obs::counter!("corecover.view_classes").add(stats.view_classes as u64);
        obs::counter!("corecover.view_tuples").add(stats.view_tuples as u64);
        obs::counter!("corecover.representative_tuples").add(stats.representative_tuples as u64);
        obs::counter!("corecover.empty_core_tuples").add(stats.empty_core_tuples as u64);
        obs::counter!("corecover.rewritings").add(stats.rewritings as u64);
        if truncated {
            obs::counter!("corecover.truncated_runs").incr();
        }
        if completeness.is_incomplete() {
            obs::counter!("corecover.incomplete_runs").incr();
        }
        Ok(CoreCoverResult {
            minimized_query: qm,
            view_tuples: tuples,
            cores,
            tuple_classes,
            stats,
            provenance,
            rewritings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewplan_cq::{parse_query, parse_views};

    fn carlocpart() -> (ConjunctiveQuery, ViewSet) {
        (
            parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)").unwrap(),
            parse_views(
                "v1(M, D, C) :- car(M, D), loc(D, C).\n\
                 v2(S, M, C) :- part(S, M, C).\n\
                 v3(S) :- car(M, a), loc(a, C), part(S, M, C).\n\
                 v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).\n\
                 v5(M, D, C) :- car(M, D), loc(D, C).",
            )
            .unwrap(),
        )
    }

    #[test]
    fn carlocpart_gmr_is_p4() {
        // §4.2: the unique minimum cover uses v4(M, a, C, S) → GMR P4.
        let (q, views) = carlocpart();
        let result = CoreCover::new(&q, &views).run();
        let gmrs = result.rewritings();
        assert_eq!(gmrs.len(), 1);
        assert_eq!(gmrs[0].to_string(), "q1(S, C) :- v4(M, a, C, S)");
    }

    #[test]
    fn carlocpart_stats() {
        let (q, views) = carlocpart();
        let result = CoreCover::new(&q, &views).run();
        let s = result.stats;
        assert_eq!(s.views, 5);
        assert_eq!(s.view_classes, 4); // v1 ≡ v5
        assert_eq!(s.view_tuples, 4); // one per representative view
        assert_eq!(s.empty_core_tuples, 1); // v3(S)
        assert_eq!(s.representative_tuples, 3);
        assert_eq!(
            result
                .filter_tuples()
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>(),
            ["v3(S)"]
        );
    }

    #[test]
    fn example41_gmr() {
        let q = parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)").unwrap();
        let views = parse_views(
            "v1(A, B) :- a(A, B), a(B, B).\n\
             v2(C, D) :- a(C, E), b(C, D).",
        )
        .unwrap();
        let gmrs = CoreCover::new(&q, &views).run();
        assert_eq!(gmrs.rewritings().len(), 1);
        assert_eq!(
            gmrs.rewritings()[0].to_string(),
            "q(X, Y) :- v1(X, Z), v2(Z, Y)"
        );
    }

    #[test]
    fn example42_minicon_comparison_case() {
        // Example 4.2 (k = 3): CoreCover finds the single-subgoal GMR.
        let q = parse_query(
            "q(X, Y) :- a1(X, Z1), b1(Z1, Y), a2(X, Z2), b2(Z2, Y), a3(X, Z3), b3(Z3, Y)",
        )
        .unwrap();
        let views = parse_views(
            "v(X, Y) :- a1(X, Z1), b1(Z1, Y), a2(X, Z2), b2(Z2, Y), a3(X, Z3), b3(Z3, Y).\n\
             v1(X, Y) :- a1(X, Z1), b1(Z1, Y).\n\
             v2(X, Y) :- a2(X, Z2), b2(Z2, Y).",
        )
        .unwrap();
        let gmrs = CoreCover::new(&q, &views).run();
        assert_eq!(gmrs.rewritings().len(), 1);
        assert_eq!(gmrs.rewritings()[0].to_string(), "q(X, Y) :- v(X, Y)");
    }

    #[test]
    fn no_rewriting_gives_empty_result() {
        let q = parse_query("q(X) :- a(X, Y), b(Y, X)").unwrap();
        let views = parse_views("v(A, B) :- a(A, B)").unwrap();
        let result = CoreCover::new(&q, &views).run();
        assert!(result.rewritings().is_empty());
    }

    #[test]
    fn section32_gmr_that_is_not_cmr() {
        // §3.2: Q: q(X) :- e(X, X); V: v(A, B) :- e(A, A), e(A, B).
        // Both P1: q(X) :- v(X, B) and P2: q(X) :- v(X, X) are GMRs.
        let q = parse_query("q(X) :- e(X, X)").unwrap();
        let views = parse_views("v(A, B) :- e(A, A), e(A, B)").unwrap();
        let result = CoreCover::new(&q, &views).run();
        let printed: Vec<String> = result.rewritings().iter().map(|r| r.to_string()).collect();
        // The view-tuple space contains v(X, X) (from the canonical
        // database {e(x, x)}), giving P2. P1 uses a fresh variable B and is
        // outside the view-tuple space — the paper's point that a GMR need
        // not be a CMR, but some view-tuple GMR of the same size exists.
        assert_eq!(printed, ["q(X) :- v(X, X)"]);
    }

    #[test]
    fn all_minimal_includes_non_minimum_rewritings() {
        // Both one chain view covering everything and two half-views exist:
        // CoreCover* returns the 1-subgoal GMR and the 2-subgoal minimal.
        let q = parse_query("q(X, Y) :- e(X, Z), f(Z, Y)").unwrap();
        let views = parse_views(
            "vall(X, Y) :- e(X, Z), f(Z, Y).\n\
             ve(X, Z) :- e(X, Z).\n\
             vf(Z, Y) :- f(Z, Y).",
        )
        .unwrap();
        let gmrs = CoreCover::new(&q, &views).run();
        assert_eq!(gmrs.rewritings().len(), 1);
        let all = CoreCover::new(&q, &views).run_all_minimal();
        let printed: Vec<String> = all.rewritings().iter().map(|r| r.to_string()).collect();
        assert_eq!(printed.len(), 2);
        assert!(printed.contains(&"q(X, Y) :- vall(X, Y)".to_string()));
        assert!(printed.contains(&"q(X, Y) :- ve(X, Z), vf(Z, Y)".to_string()));
    }

    #[test]
    fn grouping_off_recovers_duplicate_rewritings() {
        let (q, views) = carlocpart();
        let config = CoreCoverConfig {
            group_equivalent_views: false,
            group_view_tuples: false,
            ..CoreCoverConfig::default()
        };
        let result = CoreCover::new(&q, &views).with_config(config).run();
        // Without grouping, v1/v5 both produce tuples; the GMR is still
        // unique (v4 covers alone and is the only size-1 cover).
        assert_eq!(result.stats.view_classes, 5);
        assert_eq!(result.stats.view_tuples, 5);
        assert_eq!(result.rewritings().len(), 1);
    }

    #[test]
    fn query_minimization_happens_first() {
        // The redundant subgoal must not inflate the universe.
        let q = parse_query("q(X) :- e(X, Y), e(X, Z)").unwrap();
        let views = parse_views("v(A) :- e(A, B)").unwrap();
        let result = CoreCover::new(&q, &views).run();
        assert_eq!(result.minimized_query.body.len(), 1);
        assert_eq!(result.rewritings().len(), 1);
        assert_eq!(result.rewritings()[0].to_string(), "q(X) :- v(X)");
    }

    #[test]
    fn interchangeable_tuples_swap_into_valid_rewritings() {
        // §5.2 advantage (4): v1 and v5 share a tuple-core class, so the
        // optimizer may swap one for the other in any rewriting.
        let (q, views) = carlocpart();
        let config = CoreCoverConfig {
            group_equivalent_views: false, // keep both v1 and v5 tuples
            group_view_tuples: true,
            ..CoreCoverConfig::default()
        };
        let result = CoreCover::new(&q, &views)
            .with_config(config)
            .run_all_minimal();
        let v1_tuple = result
            .view_tuples
            .iter()
            .find(|t| t.view.as_str() == "v1")
            .unwrap()
            .clone();
        let alts = result.interchangeable_tuples(&v1_tuple);
        assert!(alts.iter().any(|t| t.view.as_str() == "v5"));
        // Swap v1 → v5 in a rewriting that uses v1; it must remain a
        // rewriting.
        let with_v1 = result
            .rewritings()
            .iter()
            .find(|r| r.body.iter().any(|a| a.predicate.as_str() == "v1"))
            .expect("some rewriting uses v1")
            .clone();
        let v5_tuple = alts
            .iter()
            .find(|t| t.view.as_str() == "v5")
            .copied()
            .cloned()
            .unwrap();
        let swapped = result.swap_tuple(&with_v1, &v1_tuple, &v5_tuple);
        assert!(swapped.body.iter().any(|a| a.predicate.as_str() == "v5"));
        let exp = expand(&swapped, &views).unwrap();
        assert!(are_equivalent(&exp, &result.minimized_query));
    }

    #[test]
    fn interchangeable_tuples_of_unknown_tuple_is_empty() {
        let (q, views) = carlocpart();
        let result = CoreCover::new(&q, &views).run();
        let bogus = crate::view_tuple::ViewTuple {
            view: viewplan_cq::Symbol::new("nope"),
            atom: viewplan_cq::parse_atom("nope(X)").unwrap(),
        };
        assert!(result.interchangeable_tuples(&bogus).is_empty());
    }

    #[test]
    fn verification_mode_accepts_valid_rewritings() {
        let (q, views) = carlocpart();
        let config = CoreCoverConfig {
            verify_rewritings: true,
            ..CoreCoverConfig::default()
        };
        let result = CoreCover::new(&q, &views).with_config(config).run();
        assert_eq!(result.rewritings().len(), 1);
    }
}

#[cfg(test)]
mod pruning_tests {
    use super::*;
    use viewplan_cq::{parse_query, parse_views};

    /// A view set where half the views mention predicates the query never
    /// uses (plus one arity-mismatched one) — all provably tuple-free.
    fn mixed_problem() -> (ConjunctiveQuery, ViewSet) {
        (
            parse_query("q(X, Y) :- e(X, Z), f(Z, Y)").unwrap(),
            parse_views(
                "vall(X, Y) :- e(X, Z), f(Z, Y).\n\
                 ve(X, Z) :- e(X, Z).\n\
                 vf(Z, Y) :- f(Z, Y).\n\
                 vg(A, B) :- g(A, B).\n\
                 vmix(A) :- e(A, B), h(B).\n\
                 varity(A) :- e(A, B, B).",
            )
            .unwrap(),
        )
    }

    #[test]
    fn pruning_is_output_invariant() {
        let (q, views) = mixed_problem();
        let pruned_cfg = CoreCoverConfig {
            prune_unusable_views: true,
            ..CoreCoverConfig::default()
        };
        let unpruned_cfg = CoreCoverConfig {
            prune_unusable_views: false,
            ..CoreCoverConfig::default()
        };
        for all_minimal in [false, true] {
            let run = |cfg: &CoreCoverConfig| {
                let cc = CoreCover::new(&q, &views).with_config(cfg.clone());
                if all_minimal {
                    cc.run_all_minimal()
                } else {
                    cc.run()
                }
            };
            let with = run(&pruned_cfg);
            let without = run(&unpruned_cfg);
            assert_eq!(with.rewritings(), without.rewritings());
            assert_eq!(with.view_tuples, without.view_tuples);
            // Tuple-core *mappings* embed gensym'd fresh variables whose
            // global counter depends on how much work ran before — only
            // the covered-subgoal sets are observable output.
            let subgoal_sets = |r: &CoreCoverResult| -> Vec<_> {
                r.cores.iter().map(|c| c.subgoals.clone()).collect()
            };
            assert_eq!(subgoal_sets(&with), subgoal_sets(&without));
            assert_eq!(with.tuple_classes, without.tuple_classes);
            assert_eq!(with.stats, without.stats);
            assert_eq!(with.minimized_query, without.minimized_query);
        }
    }

    #[test]
    fn pruning_counts_dropped_views() {
        let (q, views) = mixed_problem();
        obs::set_enabled(true);
        let before = obs::counter_value("analyze.views_pruned");
        let _ = CoreCover::new(&q, &views).run();
        let after = obs::counter_value("analyze.views_pruned");
        // vg, vmix, and varity are provably tuple-free.
        assert_eq!(after - before, 3);
    }

    #[test]
    fn pruning_keeps_filter_candidates() {
        // v3 has an empty tuple-core (a filter candidate, §5.1) but all
        // its predicates match the query — it must survive pruning.
        let q = parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)").unwrap();
        let views = parse_views(
            "v2(S, M, C) :- part(S, M, C).\n\
             v3(S) :- car(M, a), loc(a, C), part(S, M, C).\n\
             v1(M, D, C) :- car(M, D), loc(D, C).",
        )
        .unwrap();
        let result = CoreCover::new(&q, &views).run_all_minimal();
        assert_eq!(result.stats.empty_core_tuples, 1);
        assert_eq!(result.filter_tuples().len(), 1);
    }

    #[test]
    fn prepared_views_prune_identically() {
        let (q, views) = mixed_problem();
        let prepared = PreparedViews::prepare(&views);
        let fresh = CoreCover::new(&q, &views).run_all_minimal();
        let pre = CoreCover::with_prepared_views(&q, &prepared).run_all_minimal();
        assert_eq!(fresh.rewritings(), pre.rewritings());
        assert_eq!(fresh.stats, pre.stats);
    }
}

#[cfg(test)]
mod wide_query_tests {
    use super::*;
    use viewplan_cq::{parse_query, parse_views};

    /// Regression: a minimized query with many subgoals must not overflow
    /// the 64-bit universe mask (`1u64 << 64` panics).
    #[test]
    fn very_wide_queries_do_not_overflow_the_mask() {
        // 64 distinct unary subgoals, all head variables: nothing minimizes
        // away.
        let body: Vec<String> = (0..64).map(|i| format!("p{i}(X{i})")).collect();
        let head: Vec<String> = (0..64).map(|i| format!("X{i}")).collect();
        let q = parse_query(&format!("q({}) :- {}", head.join(", "), body.join(", "))).unwrap();
        let mut vs = String::new();
        for i in 0..64 {
            vs.push_str(&format!("v{i}(A) :- p{i}(A).\n"));
        }
        let views = parse_views(&vs).unwrap();
        let result = CoreCover::new(&q, &views).run();
        assert_eq!(result.rewritings().len(), 1);
        assert_eq!(result.rewritings()[0].body.len(), 64);
    }

    fn wide_problem(subgoals: usize) -> (ConjunctiveQuery, ViewSet) {
        let body: Vec<String> = (0..subgoals).map(|i| format!("p{i}(X{i})")).collect();
        let head: Vec<String> = (0..subgoals).map(|i| format!("X{i}")).collect();
        let q = parse_query(&format!("q({}) :- {}", head.join(", "), body.join(", "))).unwrap();
        let mut vs = String::new();
        for i in 0..subgoals {
            vs.push_str(&format!("v{i}(A) :- p{i}(A).\n"));
        }
        (q, parse_views(&vs).unwrap())
    }

    /// Regression: with 65 subgoals the mask folds would shift by ≥ 64
    /// and wrap silently in release builds; the pipeline must return a
    /// clear error instead of wrong covers.
    #[test]
    fn beyond_64_subgoals_is_a_clear_error_not_a_wrong_answer() {
        let (q, views) = wide_problem(65);
        let err = CoreCover::new(&q, &views).try_run().unwrap_err();
        assert_eq!(
            err,
            crate::error::CoreError::TooManySubgoals { subgoals: 65 }
        );
        assert!(err.to_string().contains("65 subgoals"));
        let err2 = CoreCover::new(&q, &views)
            .try_run_all_minimal()
            .unwrap_err();
        assert_eq!(err2, err);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn run_panics_with_the_same_message() {
        let (q, views) = wide_problem(65);
        let _ = CoreCover::new(&q, &views).run();
    }

    /// A >64-subgoal query whose *core* fits in 64 subgoals is fine: the
    /// guard applies after minimization, as the masks do.
    #[test]
    fn wide_but_redundant_queries_still_minimize_through() {
        // 70 copies of the same subgoal minimize to one.
        let body = vec!["e(X, Y)".to_string(); 70].join(", ");
        let q = parse_query(&format!("q(X) :- {body}")).unwrap();
        let views = parse_views("v(A) :- e(A, B)").unwrap();
        let result = CoreCover::new(&q, &views).try_run().unwrap();
        assert_eq!(result.rewritings().len(), 1);
    }
}

#[cfg(test)]
mod budget_tests {
    use super::*;
    use obs::budget::{BudgetSpec, Fault, FaultPoint};
    use viewplan_cq::{parse_query, parse_views};

    fn chain_problem() -> (ConjunctiveQuery, ViewSet) {
        (
            parse_query("q(X, Y) :- e(X, Z), f(Z, W), g(W, Y)").unwrap(),
            parse_views(
                "vef(X, W) :- e(X, Z), f(Z, W).\n\
                 vfg(Z, Y) :- f(Z, W), g(W, Y).\n\
                 ve(X, Z) :- e(X, Z).\n\
                 vf(Z, W) :- f(Z, W).\n\
                 vg(W, Y) :- g(W, Y).",
            )
            .unwrap(),
        )
    }

    #[test]
    fn unbudgeted_runs_report_complete() {
        let (q, views) = chain_problem();
        let result = CoreCover::new(&q, &views).run_all_minimal();
        assert_eq!(result.stats.completeness, Completeness::Complete);
        assert!(result.rewritings().len() >= 2);
    }

    #[test]
    fn tight_node_budget_degrades_honestly_and_deterministically() {
        let (q, views) = chain_problem();
        let run = || {
            let _g = obs::budget::install(BudgetSpec::new().node_budget(6).build());
            CoreCover::new(&q, &views).try_run_all_minimal().unwrap()
        };
        let a = run();
        assert!(
            a.stats.completeness.is_incomplete(),
            "a 6-node budget must truncate this pipeline"
        );
        // Everything that *was* returned is still a genuine rewriting
        // (verified here with no budget installed).
        for r in a.rewritings() {
            let exp = expand(r, &views).unwrap();
            assert!(are_equivalent(&exp, &a.minimized_query), "bogus: {r}");
        }
        // Node budgets are per-search: the degraded result is stable.
        let b = run();
        let printed = |res: &CoreCoverResult| -> Vec<String> {
            res.rewritings().iter().map(|r| r.to_string()).collect()
        };
        assert_eq!(printed(&a), printed(&b));
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn injected_deadline_fault_yields_best_so_far_not_a_panic() {
        let (q, views) = chain_problem();
        let budget = BudgetSpec::new()
            .fault(Fault {
                point: FaultPoint::Deadline,
                nth: 5,
            })
            .build();
        let _g = obs::budget::install(budget.clone());
        let result = CoreCover::new(&q, &views).try_run_all_minimal().unwrap();
        assert!(budget.cancelled());
        assert_eq!(result.stats.completeness, Completeness::DeadlineExceeded);
        // Best-so-far output stays sound (checked outside the budget).
        drop(_g);
        for r in result.rewritings() {
            let exp = expand(r, &views).unwrap();
            assert!(are_equivalent(&exp, &result.minimized_query));
        }
    }

    #[test]
    fn deadline_takes_precedence_over_truncation() {
        let (q, views) = chain_problem();
        let budget = BudgetSpec::new()
            .node_budget(6)
            .fault(Fault {
                point: FaultPoint::Deadline,
                nth: 2,
            })
            .build();
        let _g = obs::budget::install(budget);
        let result = CoreCover::new(&q, &views).try_run_all_minimal().unwrap();
        assert_eq!(result.stats.completeness, Completeness::DeadlineExceeded);
    }
}

#[cfg(test)]
mod truncation_tests {
    use super::*;
    use viewplan_cq::{parse_query, parse_views};

    /// Three subgoals, pairwise two-subgoal views: many irredundant
    /// covers exist, so a cap of 1 must flag the run as truncated.
    #[test]
    fn max_rewritings_cap_is_recorded_in_stats() {
        let q = parse_query("q(X, Y, Z) :- a(X), b(Y), c(Z)").unwrap();
        let views = parse_views(
            "vab(X, Y) :- a(X), b(Y).\n\
             vbc(Y, Z) :- b(Y), c(Z).\n\
             vca(Z, X) :- c(Z), a(X).\n\
             va(X) :- a(X).\n\
             vb(Y) :- b(Y).\n\
             vc(Z) :- c(Z).",
        )
        .unwrap();
        let capped = CoreCover::new(&q, &views)
            .with_config(CoreCoverConfig {
                max_rewritings: 1,
                ..CoreCoverConfig::default()
            })
            .run_all_minimal();
        assert_eq!(capped.rewritings().len(), 1);
        assert!(capped.stats.truncated, "cap must be reported, not silent");
        let full = CoreCover::new(&q, &views).run_all_minimal();
        assert!(full.rewritings().len() > 1);
        assert!(!full.stats.truncated);
        // `run` (minimum covers) never truncates.
        assert!(!CoreCover::new(&q, &views).run().stats.truncated);
    }
}
