//! Set-cover enumeration over subgoal bitmasks.
//!
//! Step (4) of `CoreCover` (Figure 4) models "use the minimum number of
//! view tuples to cover all query subgoals" as classic set covering \[8\].
//! The universe is the set of subgoals of the minimized query (≤ 64,
//! bitmask-encoded); the sets are the nonempty tuple-cores. Two
//! enumerations are provided:
//!
//! * [`all_minimum_covers`] — every cover of minimum cardinality: each is
//!   a globally-minimal rewriting (Corollary 4.1).
//! * [`all_irredundant_covers`] — every cover from which no member can be
//!   dropped: the `CoreCover*` space of §5, whose rewritings are the
//!   minimal rewritings using view tuples (Theorem 5.1 guarantees this
//!   space contains an M2-optimal rewriting).
//!
//! Subsets are enumerated in increasing index order, so each cover is
//! produced exactly once; branch-and-bound prunes on the best size found.

use viewplan_obs as obs;

// Single registration site per counter name (the xtask lint enforces
// this): both DFS variants funnel through these helpers.
fn note_search_node() {
    obs::counter!("cover.search_nodes").incr();
}

fn note_pruned() {
    obs::counter!("cover.pruned").incr();
}

fn note_truncated() {
    obs::counter!("cover.truncated").incr();
}

/// Every minimum-cardinality cover of `universe` using `sets`, as sorted
/// index vectors. Empty result iff `universe` cannot be covered.
pub fn all_minimum_covers(universe: u64, sets: &[u64]) -> Vec<Vec<usize>> {
    all_minimum_covers_counted(universe, sets).covers
}

/// [`all_minimum_covers`] plus an explicit truncation flag for searches
/// cut short by the ambient budget. A truncated enumeration still
/// contains only genuine covers of the best size *found so far* — each
/// one a valid rewriting — but may miss smaller or additional covers.
pub fn all_minimum_covers_counted(universe: u64, sets: &[u64]) -> CoverEnumeration {
    if universe == 0 {
        return CoverEnumeration {
            covers: vec![Vec::new()],
            truncated: false,
        };
    }
    // Quick feasibility check.
    if sets.iter().fold(0u64, |a, &s| a | s) & universe != universe {
        return CoverEnumeration {
            covers: Vec::new(),
            truncated: false,
        };
    }
    let mut best_size = usize::MAX;
    let mut covers: Vec<Vec<usize>> = Vec::new();
    let mut chosen: Vec<usize> = Vec::new();
    let mut meter = obs::Meter::start(obs::Phase::Cover);
    minimum_dfs(
        universe,
        sets,
        0,
        0,
        &mut chosen,
        &mut best_size,
        &mut covers,
        &mut meter,
    );
    if meter.exhausted() {
        note_truncated();
    }
    CoverEnumeration {
        covers,
        truncated: meter.exhausted(),
    }
}

// Recursive DFS: the search state is threaded as parameters rather
// than bundled in a struct, keeping the hot path allocation-free.
#[allow(clippy::too_many_arguments)]
fn minimum_dfs(
    universe: u64,
    sets: &[u64],
    start: usize,
    covered: u64,
    chosen: &mut Vec<usize>,
    best_size: &mut usize,
    covers: &mut Vec<Vec<usize>>,
    meter: &mut obs::Meter,
) {
    if !meter.tick() {
        return;
    }
    note_search_node();
    if covered & universe == universe {
        match chosen.len().cmp(best_size) {
            std::cmp::Ordering::Less => {
                *best_size = chosen.len();
                covers.clear();
                covers.push(chosen.clone());
            }
            std::cmp::Ordering::Equal => covers.push(chosen.clone()),
            std::cmp::Ordering::Greater => {}
        }
        return;
    }
    if chosen.len() >= *best_size {
        note_pruned();
        return; // cannot match the best size anymore
    }
    // Bound: remaining sets must be able to finish the job.
    let rest: u64 = sets[start..].iter().fold(0u64, |a, &s| a | s);
    if (covered | rest) & universe != universe {
        note_pruned();
        return;
    }
    for i in start..sets.len() {
        if sets[i] & universe & !covered == 0 {
            continue; // contributes nothing new: never part of a *minimum* cover at this point
        }
        chosen.push(i);
        minimum_dfs(
            universe,
            sets,
            i + 1,
            covered | sets[i],
            chosen,
            best_size,
            covers,
            meter,
        );
        chosen.pop();
        if meter.exhausted() {
            return;
        }
    }
}

/// The result of a capped cover enumeration: the covers found plus
/// whether the `limit` actually cut the search short ("no silent caps" —
/// a truncated enumeration must be reported, not swallowed).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CoverEnumeration {
    /// The covers found, in increasing-index subset order.
    pub covers: Vec<Vec<usize>>,
    /// True iff the search was abandoned because `limit` was reached
    /// while unexplored branches remained.
    pub truncated: bool,
}

/// Every irredundant cover: a cover where each member covers at least one
/// subgoal no other member covers. Produced in increasing-index subset
/// order; `limit` caps the number of covers returned (the count can grow
/// combinatorially — the paper's §5.2 concise representation exists for a
/// reason). Prefer [`all_irredundant_covers_counted`] when the caller
/// needs to know whether the cap truncated the enumeration.
pub fn all_irredundant_covers(universe: u64, sets: &[u64], limit: usize) -> Vec<Vec<usize>> {
    all_irredundant_covers_counted(universe, sets, limit).covers
}

/// [`all_irredundant_covers`] plus an explicit truncation flag; bumps the
/// `cover.truncated` counter when the limit cut the search short.
pub fn all_irredundant_covers_counted(
    universe: u64,
    sets: &[u64],
    limit: usize,
) -> CoverEnumeration {
    if universe == 0 {
        return CoverEnumeration {
            covers: vec![Vec::new()],
            truncated: false,
        };
    }
    if sets.iter().fold(0u64, |a, &s| a | s) & universe != universe {
        return CoverEnumeration {
            covers: Vec::new(),
            truncated: false,
        };
    }
    let mut covers: Vec<Vec<usize>> = Vec::new();
    let mut chosen: Vec<usize> = Vec::new();
    let mut truncated = false;
    let mut meter = obs::Meter::start(obs::Phase::Cover);
    irredundant_dfs(
        universe,
        sets,
        0,
        0,
        &mut chosen,
        limit,
        &mut covers,
        &mut truncated,
        &mut meter,
    );
    truncated |= meter.exhausted();
    if truncated {
        note_truncated();
    }
    CoverEnumeration { covers, truncated }
}

// Recursive DFS with parameter-threaded state, like `minimum_dfs`.
#[allow(clippy::too_many_arguments)]
fn irredundant_dfs(
    universe: u64,
    sets: &[u64],
    start: usize,
    covered: u64,
    chosen: &mut Vec<usize>,
    limit: usize,
    covers: &mut Vec<Vec<usize>>,
    truncated: &mut bool,
    meter: &mut obs::Meter,
) {
    if !meter.tick() {
        return;
    }
    note_search_node();
    if covers.len() >= limit {
        // The search still had branches to explore — record, don't hide.
        *truncated = true;
        return;
    }
    if covered & universe == universe {
        // Irredundancy check: every member must cover something unique.
        let masks: Vec<u64> = chosen.iter().map(|&i| sets[i] & universe).collect();
        let irredundant = masks.iter().enumerate().all(|(k, &m)| {
            let others: u64 = masks
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != k)
                .fold(0u64, |a, (_, &x)| a | x);
            m & !others != 0
        });
        if irredundant {
            covers.push(chosen.clone());
        }
        return;
    }
    let rest: u64 = sets[start..].iter().fold(0u64, |a, &s| a | s);
    if (covered | rest) & universe != universe {
        note_pruned();
        return;
    }
    for i in start..sets.len() {
        if sets[i] & universe & !covered == 0 {
            continue; // adding a no-progress set can never stay irredundant
        }
        chosen.push(i);
        irredundant_dfs(
            universe,
            sets,
            i + 1,
            covered | sets[i],
            chosen,
            limit,
            covers,
            truncated,
            meter,
        );
        chosen.pop();
        if meter.exhausted() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_covering_set_wins() {
        // Universe {0,1,2}; sets: {0,1}, {2}, {0,1,2}.
        let covers = all_minimum_covers(0b111, &[0b011, 0b100, 0b111]);
        assert_eq!(covers, vec![vec![2]]);
    }

    #[test]
    fn enumerates_all_ties() {
        // Two ways to cover with 2 sets.
        let covers = all_minimum_covers(0b111, &[0b011, 0b100, 0b110, 0b001]);
        assert_eq!(covers, vec![vec![0, 1], vec![0, 2], vec![2, 3]]);
    }

    #[test]
    fn infeasible_universe_gives_no_covers() {
        assert!(all_minimum_covers(0b111, &[0b011]).is_empty());
        assert!(all_irredundant_covers(0b111, &[0b011], 100).is_empty());
    }

    #[test]
    fn empty_universe_has_the_empty_cover() {
        assert_eq!(all_minimum_covers(0, &[0b1]), vec![Vec::<usize>::new()]);
    }

    #[test]
    fn irredundant_covers_include_non_minimum_ones() {
        // {0,1} + {1,2} is irredundant (each has a unique element) even
        // though {0,1,2} covers alone.
        let sets = [0b011, 0b110, 0b111];
        let irr = all_irredundant_covers(0b111, &sets, 100);
        assert!(irr.contains(&vec![0, 1]));
        assert!(irr.contains(&vec![2]));
        // {0,1,2} all together is redundant.
        assert!(!irr.contains(&vec![0, 1, 2]));
        let min = all_minimum_covers(0b111, &sets);
        assert_eq!(min, vec![vec![2]]);
    }

    #[test]
    fn overlapping_cores_are_allowed_in_minimum_covers() {
        // §4.3: tuple-cores of a rewriting may overlap.
        let covers = all_minimum_covers(0b11, &[0b11, 0b10, 0b01]);
        assert_eq!(covers, vec![vec![0]]);
        let covers2 = all_minimum_covers(0b111, &[0b110, 0b011]);
        assert_eq!(covers2, vec![vec![0, 1]]); // share subgoal 1
    }

    #[test]
    fn limit_caps_irredundant_enumeration() {
        let sets = [0b001, 0b010, 0b100, 0b011, 0b110, 0b101];
        let all = all_irredundant_covers(0b111, &sets, usize::MAX);
        assert!(all.len() > 3);
        let capped = all_irredundant_covers(0b111, &sets, 2);
        assert_eq!(capped.len(), 2);
    }

    #[test]
    fn truncation_is_reported_not_silent() {
        let sets = [0b001, 0b010, 0b100, 0b011, 0b110, 0b101];
        let capped = all_irredundant_covers_counted(0b111, &sets, 2);
        assert_eq!(capped.covers.len(), 2);
        assert!(capped.truncated, "hitting the cap must set the flag");
        let full = all_irredundant_covers_counted(0b111, &sets, usize::MAX);
        assert!(!full.truncated, "an exhaustive run must not set the flag");
        // Degenerate inputs never truncate.
        assert!(!all_irredundant_covers_counted(0, &sets, 1).truncated);
        assert!(!all_irredundant_covers_counted(0b1000, &sets, 1).truncated);
    }

    #[test]
    fn budget_truncation_is_reported_and_partial_covers_are_real() {
        let sets = [0b001, 0b010, 0b100, 0b011, 0b110, 0b101];
        let full = all_minimum_covers_counted(0b111, &sets);
        assert!(!full.truncated);
        let budgeted = {
            let _g = obs::budget::install(
                obs::budget::BudgetSpec::new()
                    .phase_nodes(obs::Phase::Cover, 4)
                    .build(),
            );
            all_minimum_covers_counted(0b111, &sets)
        };
        assert!(budgeted.truncated, "a 4-node cap must truncate this search");
        // Whatever was found is a genuine cover from the full result set.
        for cover in &budgeted.covers {
            let mask: u64 = cover.iter().fold(0, |a, &i| a | sets[i]);
            assert_eq!(mask & 0b111, 0b111, "partial result contains a non-cover");
        }
        // And the budgeted run is deterministic.
        let again = {
            let _g = obs::budget::install(
                obs::budget::BudgetSpec::new()
                    .phase_nodes(obs::Phase::Cover, 4)
                    .build(),
            );
            all_minimum_covers_counted(0b111, &sets)
        };
        assert_eq!(budgeted, again);
    }

    #[test]
    fn duplicate_sets_yield_distinct_covers() {
        // Two identical sets are different view tuples; both minimum
        // covers are reported (the §5.2 equivalence classes collapse them
        // upstream when grouping is on).
        let covers = all_minimum_covers(0b1, &[0b1, 0b1]);
        assert_eq!(covers, vec![vec![0], vec![1]]);
    }
}
