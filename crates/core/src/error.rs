//! Errors of the rewriting generators.

use std::fmt;

/// A failure of `CoreCover` or a baseline rewriter to process a query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CoreError {
    /// The (minimized) query has more body subgoals than the 64-bit
    /// set-cover bitmasks can represent. Without this guard the `1 << i`
    /// mask folds would wrap silently in release builds and produce wrong
    /// covers.
    TooManySubgoals {
        /// Subgoals in the offending query.
        subgoals: usize,
    },
}

/// The widest query the bitmask-based cover engines accept.
pub const MAX_SUBGOALS: usize = 64;

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CoreError::TooManySubgoals { subgoals } => write!(
                f,
                "query has {subgoals} subgoals, but the set-cover engine supports at most \
                 {MAX_SUBGOALS} (64-bit subgoal bitmasks)"
            ),
        }
    }
}

impl std::error::Error for CoreError {}
