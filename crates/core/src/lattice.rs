//! The rewriting taxonomy of §3: minimal, locally-minimal (LMR),
//! containment-minimal (CMR), and globally-minimal (GMR) rewritings, and
//! the partial order of LMRs (Figure 2).
//!
//! * A **minimal** rewriting has no redundant subgoal *as a query* (over
//!   the view predicates).
//! * A **locally-minimal** rewriting (LMR) additionally admits no subgoal
//!   removal that keeps the *expansion* equivalent to the query — `P3` in
//!   the car-loc-part example is minimal but not an LMR because `v3(S)`
//!   can be dropped.
//! * A **containment-minimal** rewriting (CMR) is an LMR with no other LMR
//!   properly contained in it as queries.
//! * A **globally-minimal** rewriting (GMR) has the fewest subgoals; by
//!   Lemma 3.1 / Propositions 3.1–3.2, the CMRs contain a GMR.

use crate::rewriting::Rewriting;
use viewplan_containment::{are_equivalent, expand, is_contained_in, minimize};
use viewplan_cq::{ConjunctiveQuery, ViewSet};

/// True iff `p` is an equivalent rewriting of `q`: its expansion is
/// equivalent to `q` (Definition 2.3). Unexpandable bodies (unknown views,
/// unsatisfiable equalities) are simply not rewritings.
pub fn is_equivalent_rewriting(p: &Rewriting, q: &ConjunctiveQuery, views: &ViewSet) -> bool {
    match expand(p, views) {
        Ok(exp) => are_equivalent(&exp, q),
        Err(_) => false,
    }
}

/// True iff `p` is a locally-minimal rewriting (LMR) of `q`: an equivalent
/// rewriting from which no subgoal can be removed while the expansion
/// stays equivalent to `q`.
pub fn is_locally_minimal(p: &Rewriting, q: &ConjunctiveQuery, views: &ViewSet) -> bool {
    if !is_equivalent_rewriting(p, q, views) {
        return false;
    }
    (0..p.body.len()).all(|i| !is_equivalent_rewriting(&p.without_subgoal(i), q, views))
}

/// True iff `p` is a minimal rewriting: no subgoal is redundant *as a
/// query* over the view predicates (the first minimization step of §3.1).
pub fn is_minimal_as_query(p: &Rewriting) -> bool {
    minimize(p).body.len() == p.body.len()
}

/// The proper-containment edges among a set of rewritings, as `(i, j)`
/// pairs meaning `rewritings[i] ⊏ rewritings[j]` as queries (over the view
/// predicates). These are the edges of Figure 2 when the input is a set of
/// LMRs.
pub fn lmr_partial_order(rewritings: &[Rewriting]) -> Vec<(usize, usize)> {
    let mut edges = Vec::new();
    for i in 0..rewritings.len() {
        for j in 0..rewritings.len() {
            if i != j
                && is_contained_in(&rewritings[i], &rewritings[j])
                && !is_contained_in(&rewritings[j], &rewritings[i])
            {
                edges.push((i, j));
            }
        }
    }
    edges
}

/// True iff `rewritings[idx]` is containment-minimal within the given set
/// of LMRs: no other member is properly contained in it.
pub fn is_containment_minimal(idx: usize, rewritings: &[Rewriting]) -> bool {
    rewritings.iter().enumerate().all(|(j, other)| {
        j == idx
            || !is_contained_in(other, &rewritings[idx])
            || is_contained_in(&rewritings[idx], other)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewplan_cq::{parse_query, parse_views};

    fn carlocpart() -> (ConjunctiveQuery, ViewSet) {
        (
            parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)").unwrap(),
            parse_views(
                "v1(M, D, C) :- car(M, D), loc(D, C).\n\
                 v2(S, M, C) :- part(S, M, C).\n\
                 v3(S) :- car(M, a), loc(a, C), part(S, M, C).\n\
                 v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).\n\
                 v5(M, D, C) :- car(M, D), loc(D, C).",
            )
            .unwrap(),
        )
    }

    #[test]
    fn p1_through_p5_are_equivalent_rewritings() {
        let (q, views) = carlocpart();
        for p in [
            "q1(S, C) :- v1(M, a, C1), v1(M1, a, C), v2(S, M, C)",
            "q1(S, C) :- v1(M, a, C), v2(S, M, C)",
            "q1(S, C) :- v3(S), v1(M, a, C), v2(S, M, C)",
            "q1(S, C) :- v4(M, a, C, S)",
            "q1(S, C) :- v1(M, a, C1), v5(M1, a, C), v2(S, M, C)",
        ] {
            let p = parse_query(p).unwrap();
            assert!(is_equivalent_rewriting(&p, &q, &views), "{p}");
        }
    }

    #[test]
    fn p3_is_minimal_but_not_locally_minimal() {
        // §3.1: P3's v3(S) cannot be removed by query minimization, but it
        // can be removed while keeping expansion equivalence.
        let (q, views) = carlocpart();
        let p3 = parse_query("q1(S, C) :- v3(S), v1(M, a, C), v2(S, M, C)").unwrap();
        assert!(is_minimal_as_query(&p3));
        assert!(!is_locally_minimal(&p3, &q, &views));
    }

    #[test]
    fn p1_and_p2_are_lmrs() {
        let (q, views) = carlocpart();
        let p1 = parse_query("q1(S, C) :- v1(M, a, C1), v1(M1, a, C), v2(S, M, C)").unwrap();
        let p2 = parse_query("q1(S, C) :- v1(M, a, C), v2(S, M, C)").unwrap();
        assert!(is_locally_minimal(&p1, &q, &views));
        assert!(is_locally_minimal(&p2, &q, &views));
    }

    #[test]
    fn figure2a_partial_order() {
        // Figure 2(a): P2 ⊏ P1, P2 ⊏ P5, P4 ⊏ P1, P4 ⊏ P5, (P4 vs P2
        // incomparable, P1 vs P5 — v1 and v5 are different predicates so
        // incomparable as queries).
        let (q, views) = carlocpart();
        let ps: Vec<Rewriting> = [
            "q1(S, C) :- v1(M, a, C1), v1(M1, a, C), v2(S, M, C)", // P1
            "q1(S, C) :- v1(M, a, C), v2(S, M, C)",                // P2
            "q1(S, C) :- v4(M, a, C, S)",                          // P4
            "q1(S, C) :- v1(M, a, C1), v5(M1, a, C), v2(S, M, C)", // P5
        ]
        .iter()
        .map(|s| parse_query(s).unwrap())
        .collect();
        for p in &ps {
            assert!(is_locally_minimal(p, &q, &views));
        }
        let edges = lmr_partial_order(&ps);
        assert!(edges.contains(&(1, 0))); // P2 ⊏ P1
        assert!(!edges.contains(&(0, 1)));
        // P5 uses the v5 predicate, which containment-as-queries treats as
        // uninterpreted, so P2 and P5 are incomparable as queries even
        // though v1 ≡ v5 semantically.
        assert!(!edges.contains(&(1, 3)));
        // P2 is containment-minimal; P1 is not.
        assert!(is_containment_minimal(1, &ps));
        assert!(!is_containment_minimal(0, &ps));
    }

    #[test]
    fn example31_chain_of_lmrs() {
        // Example 3.1: P1 ⊏ P2 ⊏ P3 as queries; all three are LMRs.
        let q = parse_query("q(X, Y, Z) :- e1(X, c), e2(Y, c), e3(Z, c)").unwrap();
        let views = parse_views("v(X, Y, Z, W) :- e1(X, W), e2(Y, W), e3(Z, W)").unwrap();
        let ps: Vec<Rewriting> = [
            "q(X, Y, Z) :- v(X, Y, Z, c)",
            "q(X, Y, Z) :- v(X, Y, Z1, c), v(X1, Y1, Z, c)",
            "q(X, Y, Z) :- v(X, Y1, Z1, c), v(X2, Y, Z2, c), v(X3, Y3, Z, c)",
        ]
        .iter()
        .map(|s| parse_query(s).unwrap())
        .collect();
        for p in &ps {
            assert!(is_locally_minimal(p, &q, &views), "{p}");
        }
        let edges = lmr_partial_order(&ps);
        assert!(edges.contains(&(0, 1)));
        assert!(edges.contains(&(1, 2)));
        assert!(edges.contains(&(0, 2)));
        assert!(is_containment_minimal(0, &ps));
        assert!(!is_containment_minimal(1, &ps));
    }

    #[test]
    fn section32_gmr_not_cmr() {
        // §3.2: P1: q(X) :- v(X, B) is a GMR but not a CMR; P2: q(X) :-
        // v(X, X) is both.
        let q = parse_query("q(X) :- e(X, X)").unwrap();
        let views = parse_views("v(A, B) :- e(A, A), e(A, B)").unwrap();
        let p1 = parse_query("q(X) :- v(X, B)").unwrap();
        let p2 = parse_query("q(X) :- v(X, X)").unwrap();
        assert!(is_locally_minimal(&p1, &q, &views));
        assert!(is_locally_minimal(&p2, &q, &views));
        let ps = vec![p1, p2];
        assert!(!is_containment_minimal(0, &ps));
        assert!(is_containment_minimal(1, &ps));
    }

    #[test]
    fn non_rewriting_is_rejected() {
        let (q, views) = carlocpart();
        let p = parse_query("q1(S, C) :- v2(S, M, C)").unwrap();
        assert!(!is_equivalent_rewriting(&p, &q, &views));
        assert!(!is_locally_minimal(&p, &q, &views));
    }
}
