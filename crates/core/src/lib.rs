//! **CoreCover** — the paper's primary contribution.
//!
//! Given a conjunctive query `Q` and a set of materialized views `V`
//! (closed-world), this crate generates *equivalent rewritings* of `Q`
//! over `V`:
//!
//! * [`view_tuples`] — the candidate view literals `T(Q, V)` obtained by
//!   applying the view definitions to the canonical database of the
//!   minimized query (§3.3, Lemma 3.2);
//! * [`tuple_core()`] — the unique maximal set of query subgoals covered by
//!   a view tuple (Definition 4.1, Lemma 4.2);
//! * [`CoreCover`] — all globally-minimal rewritings (GMRs) via minimum
//!   set covers of the query subgoals by tuple-cores (§4, Theorem 4.1,
//!   Corollary 4.1), and all minimal rewritings for cost model M2 via
//!   `CoreCover*` (§5, Theorem 5.1);
//! * [`classes`] — the concise representation of §5.2: equivalence classes
//!   of views (equivalent as queries) and of view tuples (same
//!   tuple-core), the key to the paper's scalability results;
//! * [`lattice`] — the rewriting taxonomy of §3 (minimal / locally-minimal
//!   / containment-minimal / globally-minimal) and the LMR partial order
//!   of Figure 2;
//! * [`naive`] — the brute-force Theorem 3.1 enumeration, as a baseline;
//! * [`minicon`] — a MiniCon implementation (Pottinger & Levy) adapted to
//!   equivalent rewritings, as the paper's comparison point (§4.3).
//!
//! # Quickstart
//!
//! ```
//! use viewplan_cq::{parse_query, parse_views};
//! use viewplan_core::CoreCover;
//!
//! // Example 4.1 of the paper.
//! let q = parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)").unwrap();
//! let views = parse_views(
//!     "v1(A, B) :- a(A, B), a(B, B).\n\
//!      v2(C, D) :- a(C, E), b(C, D).",
//! ).unwrap();
//! let result = CoreCover::new(&q, &views).run();
//! let gmrs = result.rewritings();
//! assert_eq!(gmrs.len(), 1);
//! assert_eq!(gmrs[0].to_string(), "q(X, Y) :- v1(X, Z), v2(Z, Y)");
//! ```

pub mod bucket;
pub mod classes;
pub mod corecover;
pub mod cover;
pub mod error;
pub mod lattice;
pub mod minicon;
pub mod naive;
pub mod parallel;
pub mod prepared;
pub mod prune;
pub mod rewriting;
pub mod tuple_core;
pub mod view_tuple;

pub use bucket::{bucket_rewritings, build_buckets, BucketEntry, Buckets};
pub use classes::{view_equivalence_classes, view_tuple_classes};
pub use corecover::{
    CandidateCover, CandidateVerdict, CoreCover, CoreCoverConfig, CoreCoverResult, CoreCoverStats,
    CoverProvenance,
};
pub use cover::{
    all_irredundant_covers, all_irredundant_covers_counted, all_minimum_covers, CoverEnumeration,
};
pub use error::{CoreError, MAX_SUBGOALS};
pub use lattice::{
    is_containment_minimal, is_equivalent_rewriting, is_locally_minimal, lmr_partial_order,
};
pub use minicon::{minicon_rewritings, Mcd, MiniCon};
pub use naive::naive_gmrs;
pub use parallel::{default_threads, parallel_map};
pub use prepared::PreparedViews;
pub use prune::{body_signature, view_is_unusable};
pub use rewriting::{dedup_variants, dedup_variants_with_map, Rewriting};
pub use tuple_core::{tuple_core, TupleCore};
pub use view_tuple::{view_tuples, view_tuples_with_threads, ViewTuple};
