//! A MiniCon implementation (Pottinger & Levy \[20\]), adapted to the
//! closed-world / equivalent-rewriting setting, as the comparison baseline
//! of §4.3.
//!
//! MiniCon builds **MCDs** (MiniCon descriptions): for a view `V` and a
//! seed query subgoal, it unifies the subgoal with a view body atom using
//! the *least restrictive head homomorphism* on `V`'s head variables, then
//! closes the covered set under the rule that a query variable mapped to
//! an existential view variable drags every subgoal using it into the same
//! MCD (clause C2). Distinguished query variables must land on
//! distinguished view positions or constants (clause C1). Rewritings are
//! then formed by combining MCDs with **pairwise-disjoint** coverage.
//!
//! Two differences from `CoreCover` drive the paper's comparison:
//!
//! * an MCD is a *minimal* covered set (so all MCDs combine), while a
//!   tuple-core is *maximal* — Example 4.2 shows MiniCon emitting
//!   rewritings with redundant subgoals that `CoreCover` avoids;
//! * MiniCon explores head homomorphisms per view, while `CoreCover`
//!   derives candidate literals from the canonical database.
//!
//! Our adaptation: since MiniCon targets maximally-contained rewritings,
//! the combinations are *contained* rewritings; [`minicon_rewritings`]
//! post-filters them to the equivalent ones (and this filtering cost is
//! part of what the comparison benchmarks measure).

use crate::error::{CoreError, MAX_SUBGOALS};
use crate::rewriting::{dedup_variants, Rewriting};
use std::collections::{BTreeSet, HashMap};
use viewplan_containment::{are_equivalent, expand, minimize};
use viewplan_cq::{Atom, ConjunctiveQuery, Symbol, Term, View, ViewSet};
use viewplan_obs as obs;

/// A MiniCon description: a view usage covering a minimal set of query
/// subgoals.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Mcd {
    /// The view this MCD uses.
    pub view: Symbol,
    /// Indices of the covered query subgoals (minimal, closed under C2).
    pub covered: BTreeSet<usize>,
    /// The rewriting literal this MCD contributes.
    pub literal: Atom,
}

/// Union-find over view terms, tracking the least restrictive head
/// homomorphism implied by unification.
#[derive(Clone, Default, Debug)]
struct ViewUf {
    parent: HashMap<Term, Term>,
}

impl ViewUf {
    fn find(&mut self, t: Term) -> Term {
        let p = match self.parent.get(&t) {
            None => return t,
            Some(&p) => p,
        };
        let root = self.find(p);
        self.parent.insert(t, root);
        root
    }

    /// Unions two view-term classes; constants win as representatives; two
    /// distinct constants conflict.
    fn union(&mut self, a: Term, b: Term) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return true;
        }
        match (ra, rb) {
            (Term::Const(_), Term::Const(_)) => false,
            (Term::Const(_), _) => {
                self.parent.insert(rb, ra);
                true
            }
            _ => {
                self.parent.insert(ra, rb);
                true
            }
        }
    }
}

/// The MiniCon algorithm: MCD formation plus combination.
pub struct MiniCon<'a> {
    query: ConjunctiveQuery,
    views: &'a ViewSet,
}

impl<'a> MiniCon<'a> {
    /// Prepares a run. The query is minimized first (our equivalence
    /// setting needs the minimal universe, mirroring `CoreCover` step 1).
    pub fn new(query: &ConjunctiveQuery, views: &'a ViewSet) -> MiniCon<'a> {
        MiniCon {
            query: minimize(query),
            views,
        }
    }

    /// The minimized query the MCDs refer to.
    pub fn minimized_query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// Forms all MCDs (deduplicated).
    pub fn mcds(&self) -> Vec<Mcd> {
        let mut out: Vec<Mcd> = Vec::new();
        for view in self.views {
            for seed in 0..self.query.body.len() {
                self.form_mcds(view, seed, &mut out);
            }
        }
        out
    }

    /// All MCDs for `view` seeded at query subgoal `seed`.
    fn form_mcds(&self, view: &View, seed: usize, out: &mut Vec<Mcd>) {
        let state = McdState {
            uf: ViewUf::default(),
            phi: HashMap::new(),
            covered: BTreeSet::new(),
        };
        self.extend_mcd(view, vec![seed], state, out);
    }

    /// Recursive closure: unify each pending subgoal with some view atom,
    /// propagating clause C2 demands.
    fn extend_mcd(
        &self,
        view: &View,
        mut pending: Vec<usize>,
        state: McdState,
        out: &mut Vec<Mcd>,
    ) {
        // Skip already-covered pending goals.
        while let Some(&g) = pending.last() {
            if state.covered.contains(&g) {
                pending.pop();
            } else {
                break;
            }
        }
        let Some(&g) = pending.last() else {
            // Worklist drained: run clause C1 and emit.
            self.finish_mcd(view, state, out);
            return;
        };
        pending.pop();
        let subgoal = &self.query.body[g];
        for watom in &view.definition.body {
            if watom.predicate != subgoal.predicate || watom.arity() != subgoal.arity() {
                continue;
            }
            let mut st = state.clone();
            if !st.unify(subgoal, watom) {
                continue;
            }
            st.covered.insert(g);
            // Clause C2: query variables now mapped to existential view
            // classes drag all their subgoals in.
            // Distinguished-variable violations are not pruned here:
            // later unifications can merge an existential class with a
            // head variable's class, so the hard C1 check waits until
            // finish_mcd.
            let mut next = pending.clone();
            for x in st.existential_demands(view) {
                for (i, atom) in self.query.body.iter().enumerate() {
                    if atom.contains_var(x) && !st.covered.contains(&i) {
                        next.push(i);
                    }
                }
            }
            self.extend_mcd(view, next, st, out);
        }
    }

    /// Clause C1 check and literal construction.
    fn finish_mcd(&self, view: &View, mut state: McdState, out: &mut Vec<Mcd>) {
        if state.covered.is_empty() {
            return;
        }
        let head_vars: BTreeSet<Symbol> = view.definition.head.variables().collect();
        let distinguished = self.query.distinguished_set();
        let bindings: Vec<(Symbol, Term)> = state.phi.iter().map(|(&x, &t)| (x, t)).collect();
        // C1: distinguished query variables must map to a class containing
        // a head variable or a constant.
        for &(x, img) in &bindings {
            if distinguished.contains(&x) {
                let rep = state.uf.find(img);
                let class_ok = match rep {
                    Term::Const(_) => true,
                    Term::Var(_) => state.class_has_head_var(view, img, &head_vars),
                };
                if !class_ok {
                    // Clause C1 violation: a distinguished query variable
                    // landed in a purely existential view class.
                    obs::trace_event!(
                        "minicon.mcd_rejected",
                        ("view", view.name().as_str()),
                        ("variable", x.as_str()),
                        ("reason", "c1_distinguished_not_exposed")
                    );
                    return;
                }
            }
        }
        // C2 final check: existentially mapped variables have all their
        // subgoals covered (the closure should guarantee it; keep as a
        // safety net because class merges can change existential status).
        for &(x, img) in &bindings {
            let rep = state.uf.find(img);
            let existential = match rep {
                Term::Const(_) => false,
                Term::Var(_) => !state.class_has_head_var(view, img, &head_vars),
            };
            if existential {
                for (i, atom) in self.query.body.iter().enumerate() {
                    if atom.contains_var(x) && !state.covered.contains(&i) {
                        return;
                    }
                }
            }
        }
        let literal = state.literal(view, &self.query);
        let mcd = Mcd {
            view: view.name(),
            covered: state.covered.clone(),
            literal,
        };
        // Dedup by covered set + literal shape modulo fresh names: compare
        // literal with fresh variables erased positionally.
        if !out.iter().any(|m| {
            m.view == mcd.view && m.covered == mcd.covered && same_shape(&m.literal, &mcd.literal)
        }) {
            out.push(mcd);
        }
    }

    /// Combines MCDs with pairwise-disjoint coverage into rewritings of the
    /// query; `equivalent_only` post-filters to equivalent rewritings
    /// (our closed-world adaptation); `limit` caps the output.
    ///
    /// # Panics
    /// Panics with the [`CoreError::TooManySubgoals`] message if the
    /// minimized query has more than 64 subgoals; use
    /// [`MiniCon::try_rewritings`] to handle that case as an error.
    pub fn rewritings(&self, equivalent_only: bool, limit: usize) -> Vec<Rewriting> {
        self.try_rewritings(equivalent_only, limit)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`MiniCon::rewritings`] returning an error instead of panicking on
    /// queries too wide for the 64-bit coverage masks. Without the guard,
    /// `1 << i` for a subgoal index ≥ 64 would wrap silently in release
    /// builds and corrupt the disjointness checks.
    pub fn try_rewritings(
        &self,
        equivalent_only: bool,
        limit: usize,
    ) -> Result<Vec<Rewriting>, CoreError> {
        self.try_rewritings_with_completeness(equivalent_only, limit)
            .map(|(rs, _)| rs)
    }

    /// [`MiniCon::try_rewritings`] plus an explicit
    /// [`Completeness`](obs::Completeness) marker for runs cut short by
    /// the ambient [budget](obs::budget). Every rewriting returned is
    /// genuine regardless of the marker; an incomplete run may simply
    /// miss some.
    pub fn try_rewritings_with_completeness(
        &self,
        equivalent_only: bool,
        limit: usize,
    ) -> Result<(Vec<Rewriting>, obs::Completeness), CoreError> {
        let _span = obs::span("minicon.run");
        let budget_before = obs::budget::snapshot();
        let n = self.query.body.len();
        if n > MAX_SUBGOALS {
            return Err(CoreError::TooManySubgoals { subgoals: n });
        }
        let mcds = self.mcds();
        obs::counter!("minicon.mcds").add(mcds.len() as u64);
        let universe: u64 = if n == 0 { 0 } else { u64::MAX >> (64 - n) };
        let masks: Vec<u64> = mcds
            .iter()
            .map(|m| m.covered.iter().fold(0u64, |a, &i| a | (1 << i)))
            .collect();
        let mut results: Vec<Rewriting> = Vec::new();
        let mut chosen: Vec<usize> = Vec::new();
        let mut meter = obs::Meter::start(obs::Phase::Cover);
        self.combine(
            universe,
            &masks,
            0,
            &mut chosen,
            &mcds,
            equivalent_only,
            limit,
            &mut results,
            &mut meter,
        );
        let completeness = obs::budget::completeness_since(budget_before);
        Ok((dedup_variants(results), completeness))
    }

    // Recursive combination search; state is threaded as parameters to
    // keep the per-frame cost at a few words.
    #[allow(clippy::too_many_arguments)]
    fn combine(
        &self,
        remaining: u64,
        masks: &[u64],
        start: usize,
        chosen: &mut Vec<usize>,
        mcds: &[Mcd],
        equivalent_only: bool,
        limit: usize,
        results: &mut Vec<Rewriting>,
        meter: &mut obs::Meter,
    ) {
        if !meter.tick() {
            return;
        }
        obs::counter!("minicon.combine_nodes").incr();
        if results.len() >= limit {
            return;
        }
        if remaining == 0 {
            let body: Vec<Atom> = chosen.iter().map(|&i| mcds[i].literal.clone()).collect();
            let candidate = ConjunctiveQuery::new(self.query.head.clone(), body);
            if !equivalent_only || self.is_equivalent(&candidate) {
                results.push(candidate);
            }
            return;
        }
        // Branch on the lowest uncovered subgoal; MCDs must cover it and be
        // disjoint from the already-chosen coverage.
        let lowest = remaining.trailing_zeros() as u64;
        let bit = 1u64 << lowest;
        for i in start..mcds.len() {
            if masks[i] & bit != 0 && masks[i] & !remaining == 0 {
                chosen.push(i);
                self.combine(
                    remaining & !masks[i],
                    masks,
                    0,
                    chosen,
                    mcds,
                    equivalent_only,
                    limit,
                    results,
                    meter,
                );
                chosen.pop();
                if meter.exhausted() {
                    return;
                }
            }
        }
    }

    fn is_equivalent(&self, candidate: &Rewriting) -> bool {
        match expand(candidate, self.views) {
            Ok(exp) => are_equivalent(&exp, &self.query),
            Err(_) => false,
        }
    }
}

/// State of one MCD under construction.
#[derive(Clone, Debug)]
struct McdState {
    uf: ViewUf,
    /// Query variable → view term (class member) it unified with.
    phi: HashMap<Symbol, Term>,
    covered: BTreeSet<usize>,
}

impl McdState {
    /// Unifies a query subgoal with a view body atom, updating the head
    /// homomorphism (view-side unions) and φ (query-side bindings).
    fn unify(&mut self, subgoal: &Atom, watom: &Atom) -> bool {
        for (qt, vt) in subgoal.terms.iter().zip(&watom.terms) {
            match *qt {
                Term::Const(_) => {
                    if !self.uf.union(*qt, *vt) {
                        return false;
                    }
                }
                Term::Var(x) => match self.phi.get(&x) {
                    Some(&prev) => {
                        if !self.uf.union(prev, *vt) {
                            return false;
                        }
                    }
                    None => {
                        self.phi.insert(x, *vt);
                    }
                },
            }
        }
        true
    }

    /// True iff the class of `t` contains some view head variable.
    fn class_has_head_var(&mut self, view: &View, t: Term, head_vars: &BTreeSet<Symbol>) -> bool {
        let rep = self.uf.find(t);
        // A class contains a head var iff some head var finds the same rep.
        head_vars.iter().any(|&h| {
            let hv = Term::Var(h);
            self.uf.find(hv) == rep
        }) || view
            .definition
            .head
            .terms
            .iter()
            .any(|&ht| matches!(ht, Term::Const(_)) && self.uf.find(ht) == rep)
    }

    /// Query variables currently mapped to classes with no head variable
    /// and no constant — the clause-C2 demands.
    fn existential_demands(&mut self, view: &View) -> Vec<Symbol> {
        let head_vars: BTreeSet<Symbol> = view.definition.head.variables().collect();
        let keys: Vec<(Symbol, Term)> = self.phi.iter().map(|(&x, &t)| (x, t)).collect();
        keys.into_iter()
            .filter(|&(_, t)| {
                let rep = self.uf.find(t);
                match rep {
                    Term::Const(_) => false,
                    Term::Var(_) => !self.class_has_head_var(view, t, &head_vars),
                }
            })
            .map(|(x, _)| x)
            .collect()
    }

    /// Builds the rewriting literal: the view head with each argument
    /// replaced by its class's query variable / constant, or a fresh
    /// variable when unmapped.
    fn literal(&mut self, view: &View, query: &ConjunctiveQuery) -> Atom {
        // Deterministic query-variable choice per class: first in query
        // variable order.
        let qvars = query.variables();
        let mut class_to_qvar: HashMap<Term, Symbol> = HashMap::new();
        for &x in &qvars {
            if let Some(&img) = self.phi.get(&x) {
                let rep = self.uf.find(img);
                class_to_qvar.entry(rep).or_insert(x);
            }
        }
        let mut fresh: HashMap<Term, Term> = HashMap::new();
        let terms: Vec<Term> = view
            .definition
            .head
            .terms
            .iter()
            .map(|&ht| {
                let rep = self.uf.find(ht);
                match rep {
                    Term::Const(_) => rep,
                    Term::Var(_) => {
                        if let Some(&x) = class_to_qvar.get(&rep) {
                            Term::Var(x)
                        } else {
                            *fresh
                                .entry(rep)
                                .or_insert_with(|| Term::Var(Symbol::fresh("F")))
                        }
                    }
                }
            })
            .collect();
        Atom::new(view.name(), terms)
    }
}

/// True iff the atoms are identical up to a consistent renaming of
/// variables (used to dedup MCD literals that differ only in fresh names).
fn same_shape(a: &Atom, b: &Atom) -> bool {
    if a.predicate != b.predicate || a.arity() != b.arity() {
        return false;
    }
    let mut fwd: HashMap<Symbol, Symbol> = HashMap::new();
    let mut bwd: HashMap<Symbol, Symbol> = HashMap::new();
    for (ta, tb) in a.terms.iter().zip(&b.terms) {
        match (*ta, *tb) {
            (Term::Const(x), Term::Const(y)) => {
                if x != y {
                    return false;
                }
            }
            (Term::Var(x), Term::Var(y)) => {
                if *fwd.entry(x).or_insert(y) != y || *bwd.entry(y).or_insert(x) != x {
                    return false;
                }
            }
            _ => return false,
        }
    }
    true
}

/// Convenience wrapper: runs MiniCon and returns the (optionally
/// equivalence-filtered) rewritings.
///
/// # Panics
/// Panics if the minimized query exceeds 64 subgoals; see
/// [`MiniCon::try_rewritings`].
pub fn minicon_rewritings(
    query: &ConjunctiveQuery,
    views: &ViewSet,
    equivalent_only: bool,
    limit: usize,
) -> Vec<Rewriting> {
    MiniCon::new(query, views).rewritings(equivalent_only, limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewplan_cq::{parse_query, parse_views};

    #[test]
    fn example42_minicon_produces_redundant_subgoals() {
        // Example 4.2 with k = 3: MiniCon forms 3 MCDs for the big view and
        // combines them into a rewriting with 3 (redundant) literals, while
        // CoreCover emits the single-literal GMR.
        let q = parse_query(
            "q(X, Y) :- a1(X, Z1), b1(Z1, Y), a2(X, Z2), b2(Z2, Y), a3(X, Z3), b3(Z3, Y)",
        )
        .unwrap();
        let views = parse_views(
            "v(X, Y) :- a1(X, Z1), b1(Z1, Y), a2(X, Z2), b2(Z2, Y), a3(X, Z3), b3(Z3, Y).\n\
             v1(X, Y) :- a1(X, Z1), b1(Z1, Y).\n\
             v2(X, Y) :- a2(X, Z2), b2(Z2, Y).",
        )
        .unwrap();
        let mc = MiniCon::new(&q, &views);
        let mcds = mc.mcds();
        // 3 MCDs for v (one per (ai, bi) pair), 1 for v1, 1 for v2.
        let v_mcds: Vec<&Mcd> = mcds.iter().filter(|m| m.view.as_str() == "v").collect();
        assert_eq!(v_mcds.len(), 3);
        for m in &v_mcds {
            assert_eq!(m.covered.len(), 2);
        }
        let rewritings = mc.rewritings(true, 1000);
        // Every MiniCon rewriting here has 3 literals — never 1.
        assert!(!rewritings.is_empty());
        assert!(rewritings.iter().all(|r| r.body.len() == 3));
    }

    #[test]
    fn simple_chain_combination() {
        let q = parse_query("q(X, Y) :- e(X, Z), f(Z, Y)").unwrap();
        let views = parse_views(
            "ve(A, B) :- e(A, B).\n\
             vf(A, B) :- f(A, B).",
        )
        .unwrap();
        let rs = minicon_rewritings(&q, &views, true, 100);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].to_string(), "q(X, Y) :- ve(X, Z), vf(Z, Y)");
    }

    #[test]
    fn existential_closure_drags_subgoals_together() {
        // Z is existential in the view; an MCD touching e must cover f too.
        let q = parse_query("q(X, Y) :- e(X, Z), f(Z, Y)").unwrap();
        let views = parse_views("v(A, B) :- e(A, C), f(C, B)").unwrap();
        let mc = MiniCon::new(&q, &views);
        let mcds = mc.mcds();
        assert_eq!(mcds.len(), 1);
        assert_eq!(mcds[0].covered.len(), 2);
        let rs = mc.rewritings(true, 100);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].to_string(), "q(X, Y) :- v(X, Y)");
    }

    #[test]
    fn c1_rejects_distinguished_to_existential() {
        // The view hides X (projects it away): no MCD may survive.
        let q = parse_query("q(X) :- e(X, Y)").unwrap();
        let views = parse_views("v(B) :- e(A, B)").unwrap();
        let mc = MiniCon::new(&q, &views);
        assert!(mc.mcds().is_empty());
        assert!(mc.rewritings(true, 100).is_empty());
    }

    #[test]
    fn head_homomorphism_found_when_needed() {
        // Query needs both view head vars equated: v(A, B) with A = B.
        let q = parse_query("q(X) :- e(X, X)").unwrap();
        let views = parse_views("v(A, B) :- e(A, B)").unwrap();
        let rs = minicon_rewritings(&q, &views, true, 100);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].to_string(), "q(X) :- v(X, X)");
    }

    #[test]
    fn contained_but_not_equivalent_is_filtered() {
        let q = parse_query("q(X) :- e(X, Y)").unwrap();
        let views = parse_views("v(A) :- e(A, A)").unwrap();
        // v gives a contained rewriting q(X) :- v(X) (only self-loops) but
        // not an equivalent one.
        let contained = minicon_rewritings(&q, &views, false, 100);
        assert_eq!(contained.len(), 1);
        let equivalent = minicon_rewritings(&q, &views, true, 100);
        assert!(equivalent.is_empty());
    }

    #[test]
    fn unmapped_head_vars_become_fresh_variables() {
        let q = parse_query("q(X) :- e(X, Y)").unwrap();
        let views = parse_views("v(A, D) :- e(A, B), d(D)").unwrap();
        // d(D) is extra view scope; D is unmapped → fresh variable, and the
        // rewriting is contained; equivalence depends on d — it is not
        // equivalent (the view requires d nonempty).
        let contained = minicon_rewritings(&q, &views, false, 100);
        assert_eq!(contained.len(), 1);
        assert_eq!(contained[0].body[0].predicate.as_str(), "v");
        assert!(contained[0].body[0].terms[1].is_var());
        assert_ne!(contained[0].body[0].terms[1], Term::var("Y"));
    }

    #[test]
    fn beyond_64_subgoals_is_a_clear_error() {
        // Regression for the silent `1 << i` wrap: a 65-subgoal (minimal)
        // query must be rejected, not mis-covered.
        let body: Vec<String> = (0..65).map(|i| format!("p{i}(X{i})")).collect();
        let head: Vec<String> = (0..65).map(|i| format!("X{i}")).collect();
        let q = parse_query(&format!("q({}) :- {}", head.join(", "), body.join(", "))).unwrap();
        let views = parse_views("v0(A) :- p0(A)").unwrap();
        let err = MiniCon::new(&q, &views)
            .try_rewritings(true, 100)
            .unwrap_err();
        assert_eq!(err, CoreError::TooManySubgoals { subgoals: 65 });
    }

    #[test]
    fn tight_budget_truncates_combination_honestly() {
        let q = parse_query("q(X, Y) :- e(X, Z), f(Z, Y)").unwrap();
        let views = parse_views(
            "ve(A, B) :- e(A, B).\n\
             vf(A, B) :- f(A, B).\n\
             vef(A, B) :- e(A, C), f(C, B).",
        )
        .unwrap();
        let mc = MiniCon::new(&q, &views);
        let (full, complete) = mc.try_rewritings_with_completeness(true, 100).unwrap();
        assert_eq!(complete, obs::Completeness::Complete);
        assert!(full.len() >= 2);
        let _g = obs::budget::install(
            obs::budget::BudgetSpec::new()
                .phase_nodes(obs::Phase::Cover, 2)
                .build(),
        );
        let (some, marker) = mc.try_rewritings_with_completeness(true, 100).unwrap();
        assert_eq!(marker, obs::Completeness::Truncated);
        assert!(some.len() < full.len());
        // Whatever survived is from the full result set.
        for r in &some {
            assert!(full.iter().any(|f| f.to_string() == r.to_string()));
        }
    }

    #[test]
    fn constants_unify_with_view_variables() {
        let q = parse_query("q(S) :- car(S, anderson)").unwrap();
        let views = parse_views("v(A, B) :- car(A, B)").unwrap();
        let rs = minicon_rewritings(&q, &views, true, 100);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].to_string(), "q(S) :- v(S, anderson)");
    }
}
