//! The naive GMR search of Theorem 3.1 — the baseline `CoreCover` beats.
//!
//! Compute the view tuples `T(Q, V)`, then try every combination of 1, 2,
//! … up to `n` view tuples (`n` = number of subgoals of the minimized
//! query — by \[16\] a rewriting, if any exists, needs at most `n`
//! subgoals). Each combination is tested by expanding it and searching for
//! a containment mapping from the query. All combinations of the first
//! successful size are the globally-minimal rewritings.

use crate::rewriting::{dedup_variants, Rewriting};
use crate::view_tuple::view_tuples;
use viewplan_containment::{containment_mapping, expand, minimize};
use viewplan_cq::{ConjunctiveQuery, ViewSet};
use viewplan_obs as obs;

/// Finds all globally-minimal rewritings by brute-force combination
/// search. Exponential in the number of view tuples; exists as a
/// correctness oracle and benchmark baseline for [`crate::CoreCover`].
pub fn naive_gmrs(query: &ConjunctiveQuery, views: &ViewSet) -> Vec<Rewriting> {
    let _span = obs::span("naive.run");
    let qm = minimize(query);
    let tuples = view_tuples(&qm, views);
    let n = qm.body.len();
    for size in 1..=n.min(tuples.len()) {
        let mut found: Vec<Rewriting> = Vec::new();
        let mut chosen: Vec<usize> = Vec::new();
        combos(&mut chosen, 0, size, tuples.len(), &mut |combo| {
            obs::counter!("naive.candidates").incr();
            let candidate = ConjunctiveQuery::new(
                qm.head.clone(),
                combo.iter().map(|&i| tuples[i].atom.clone()).collect(),
            );
            // By construction P^exp ⊑ Q; equivalence needs Q → P^exp.
            if let Ok(exp) = expand(&candidate, views) {
                if containment_mapping(&qm, &exp).is_some() {
                    found.push(candidate);
                }
            }
        });
        if !found.is_empty() {
            return dedup_variants(found);
        }
    }
    Vec::new()
}

/// Enumerates all `size`-element index combinations of `0..n`.
fn combos(
    chosen: &mut Vec<usize>,
    start: usize,
    size: usize,
    n: usize,
    visit: &mut dyn FnMut(&[usize]),
) {
    if chosen.len() == size {
        visit(chosen);
        return;
    }
    let needed = size - chosen.len();
    for i in start..=n.saturating_sub(needed) {
        chosen.push(i);
        combos(chosen, i + 1, size, n, visit);
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corecover::CoreCover;
    use viewplan_cq::{parse_query, parse_views};

    #[test]
    fn agrees_with_corecover_on_carlocpart() {
        let q = parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)").unwrap();
        let views = parse_views(
            "v1(M, D, C) :- car(M, D), loc(D, C).\n\
             v2(S, M, C) :- part(S, M, C).\n\
             v3(S) :- car(M, a), loc(a, C), part(S, M, C).\n\
             v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).\n\
             v5(M, D, C) :- car(M, D), loc(D, C).",
        )
        .unwrap();
        let naive = naive_gmrs(&q, &views);
        assert_eq!(naive.len(), 1);
        assert_eq!(naive[0].to_string(), "q1(S, C) :- v4(M, a, C, S)");
        let cc = CoreCover::new(&q, &views).run();
        assert_eq!(cc.rewritings().len(), naive.len());
    }

    #[test]
    fn agrees_on_example41() {
        let q = parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)").unwrap();
        let views = parse_views(
            "v1(A, B) :- a(A, B), a(B, B).\n\
             v2(C, D) :- a(C, E), b(C, D).",
        )
        .unwrap();
        let naive = naive_gmrs(&q, &views);
        assert_eq!(naive.len(), 1);
        assert_eq!(naive[0].to_string(), "q(X, Y) :- v1(X, Z), v2(Z, Y)");
    }

    #[test]
    fn finds_nothing_when_no_rewriting_exists() {
        let q = parse_query("q(X) :- a(X, Y), b(Y, X)").unwrap();
        let views = parse_views("v(A, B) :- a(A, B)").unwrap();
        assert!(naive_gmrs(&q, &views).is_empty());
    }

    #[test]
    fn combos_enumerate_without_repeats() {
        let mut seen = Vec::new();
        combos(&mut Vec::new(), 0, 2, 4, &mut |c| seen.push(c.to_vec()));
        assert_eq!(
            seen,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
    }
}
