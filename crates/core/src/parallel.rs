//! A hand-rolled scoped worker pool.
//!
//! The CoreCover pipeline is embarrassingly parallel at several stages —
//! view tuples per view, tuple-cores per tuple, verification per
//! rewriting, sweep points per query instance — but the build is offline,
//! so instead of rayon this module provides the one primitive those
//! stages need: an order-preserving [`parallel_map`] built on
//! [`std::thread::scope`].
//!
//! Workers pull item indices from a shared atomic counter (dynamic
//! scheduling: cheap items do not stall behind expensive ones) and tag
//! each result with its index; results are sorted back into input order
//! before returning. **Determinism:** the output `Vec` is exactly
//! `items.iter().map(f)` regardless of thread count or scheduling — the
//! tentpole guarantee that parallel CoreCover results are byte-identical
//! to serial ones.
//!
//! Phase attribution: the spawning thread's open span path is captured
//! and re-attached on every worker ([`obs::attach_path`]), so spans
//! opened inside `f` aggregate under the same phase-tree node a serial
//! run would use instead of dangling at the root. The spawning thread's
//! request trace (if one is installed) is carried the same way
//! ([`obs::trace::attach`]), so worker-side spans and events land under
//! the request span that spawned them.
//!
//! Budget propagation: likewise, the spawning thread's ambient
//! [`obs::Budget`] (if any) is attached on every worker, so the whole
//! pool shares one deadline/cancellation flag and stops promptly when
//! it fires. Node caps are per-search, so budgeted results keep the
//! byte-identical-to-serial guarantee; only wall-clock deadlines are
//! nondeterministic.

use viewplan_obs as obs;
use viewplan_sync::{thread, AtomicUsize, Mutex, Ordering};

/// The default thread count: the `VIEWPLAN_THREADS` environment variable
/// when set to a positive integer, otherwise 1 (serial). The CLI's
/// `--threads` flag and explicit config fields override it.
pub fn default_threads() -> usize {
    std::env::var("VIEWPLAN_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` scoped workers, returning
/// results in input order. With `threads <= 1` (or fewer than two items)
/// this is a plain serial map with no thread or lock traffic, so a
/// 1-thread configuration costs the same as the pre-pool code path.
///
/// Panics in `f` propagate to the caller when the scope joins, matching
/// the serial behavior of a panicking closure.
// lock-order: `panicked` then `collected` are only ever taken one at a
// time (never while holding the other), so no acquisition order exists to
// violate.
pub fn parallel_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let workers = threads.min(items.len());
    obs::counter!("parallel.batches").incr();
    obs::counter!("parallel.tasks").add(items.len() as u64);
    let parent_path = obs::current_path();
    let parent_budget = obs::budget::current();
    let parent_trace = obs::trace::current_context();
    let next = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    // Workers catch panics from `f` so the original payload (not the
    // scope's generic "a scoped thread panicked") reaches the caller.
    let panicked: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _phase = obs::attach_path(&parent_path);
                let _budget = obs::budget::attach(parent_budget.clone());
                let _trace = obs::trace::attach(parent_trace.as_ref());
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    // ordering: work-stealing index; only atomicity of
                    // the claim matters, results sync via `collected`.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&items[i]))) {
                        Ok(r) => local.push((i, r)),
                        Err(payload) => {
                            *panicked.lock() = Some(payload);
                            break;
                        }
                    }
                }
                collected.lock().extend(local);
            });
        }
    });
    if let Some(payload) = panicked.into_inner() {
        std::panic::resume_unwind(payload);
    }
    let mut tagged = collected.into_inner();
    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), items.len());
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_in_order() {
        let items: Vec<u64> = (0..97).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x).collect();
        for threads in [1, 2, 3, 8, 200] {
            let par = parallel_map(threads, &items, |&x| x * x);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_map(8, &empty, |&x| x).is_empty());
        assert_eq!(parallel_map(8, &[41u64], |&x| x + 1), vec![42]);
    }

    #[test]
    fn uneven_work_is_still_ordered() {
        // Make early items slow so late items finish first.
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(4, &items, |&x| {
            if x < 4 {
                thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn ambient_budget_reaches_workers() {
        let budget = obs::budget::BudgetSpec::new().node_budget(1).build();
        let _g = obs::budget::install(budget.clone());
        let items: Vec<u64> = (0..8).collect();
        let out = parallel_map(4, &items, |&x| {
            let mut m = obs::budget::Meter::start(obs::Phase::Hom);
            while m.tick() {}
            x
        });
        assert_eq!(out, items);
        // Every worker saw the spawning thread's budget: all 8 searches
        // hit the 1-node cap.
        assert_eq!(budget.abandoned(obs::Phase::Hom), 8);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<u64> = (0..16).collect();
        let _ = parallel_map(4, &items, |&x| {
            if x == 7 {
                panic!("boom");
            }
            x
        });
    }
}
