//! Per-view-set preprocessing shared across many queries.
//!
//! A serving deployment answers a *stream* of queries against one mostly
//! stable view set, but [`CoreCover`](crate::CoreCover) as originally
//! written redoes the query-independent part of its work on every call:
//! grouping the views into equivalence classes (§5.2 step 1) is a
//! quadratic-in-views pass of containment checks that depends only on the
//! view set. [`PreparedViews`] hoists that work out of the per-query path:
//! prepare once, then hand the same prepared set (read-only, so freely
//! shared across worker threads) to every
//! [`CoreCover::with_prepared_views`](crate::CoreCover::with_prepared_views)
//! run.
//!
//! The precomputed classes are exactly what a fresh run would compute
//! ([`view_equivalence_classes`] is deterministic in the view order), so a
//! prepared run's output is byte-identical to an unprepared one — the
//! serving layer's correctness story depends on this, and
//! `prepared_runs_match_fresh_runs` below pins it.

use crate::classes::view_equivalence_classes;
use viewplan_cq::ViewSet;
use viewplan_obs as obs;

/// A view set with its query-independent preprocessing done: view
/// equivalence classes and the representative view per class. Immutable
/// after construction; share by reference across threads.
///
/// Each snapshot carries an **epoch** — a monotone version number the
/// live-catalog layer in `viewplan-serve` bumps on every online
/// `add-view`/`drop-view` swap. A static deployment never touches it
/// ([`PreparedViews::prepare`] stamps epoch 0), so existing callers are
/// unaffected; a serving deployment uses the epoch to tell which catalog
/// version computed an answer (and which cache entries are still valid).
#[derive(Clone, Debug)]
pub struct PreparedViews {
    views: ViewSet,
    classes: Vec<Vec<usize>>,
    representatives: ViewSet,
    epoch: u64,
}

impl PreparedViews {
    /// Runs the per-view-set preprocessing (the §5.2 view-equivalence
    /// grouping — the quadratic pass worth amortizing across queries) at
    /// epoch 0.
    pub fn prepare(views: &ViewSet) -> PreparedViews {
        PreparedViews::prepare_with_epoch(views, 0)
    }

    /// [`PreparedViews::prepare`], stamping the snapshot with an explicit
    /// catalog epoch (used by online view DDL to version swapped
    /// snapshots).
    pub fn prepare_with_epoch(views: &ViewSet, epoch: u64) -> PreparedViews {
        let _span = obs::span("serve.prepare_views");
        let classes = view_equivalence_classes(views);
        let representatives =
            ViewSet::from_views(classes.iter().map(|c| views.as_slice()[c[0]].clone()));
        obs::counter!("serve.prepared_view_sets").incr();
        PreparedViews {
            views: views.clone(),
            classes,
            representatives,
            epoch,
        }
    }

    /// The catalog epoch this snapshot was prepared at (0 for static
    /// deployments).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The full original view set.
    pub fn views(&self) -> &ViewSet {
        &self.views
    }

    /// Equivalence classes as index lists into [`PreparedViews::views`],
    /// in first-seen order; each class's first element is its
    /// representative.
    pub fn classes(&self) -> &[Vec<usize>] {
        &self.classes
    }

    /// One representative view per class, in class order.
    pub fn representatives(&self) -> &ViewSet {
        &self.representatives
    }

    /// Number of equivalence classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoreCover, CoreCoverConfig};
    use viewplan_cq::{parse_query, parse_views};

    fn carlocpart_views() -> ViewSet {
        parse_views(
            "v1(M, D, C) :- car(M, D), loc(D, C).\n\
             v2(S, M, C) :- part(S, M, C).\n\
             v3(S) :- car(M, a), loc(a, C), part(S, M, C).\n\
             v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).\n\
             v5(M, D, C) :- car(M, D), loc(D, C).",
        )
        .unwrap()
    }

    #[test]
    fn prepare_groups_equivalent_views() {
        let views = carlocpart_views();
        let prepared = PreparedViews::prepare(&views);
        assert_eq!(prepared.class_count(), 4); // v1 ≡ v5
        assert_eq!(prepared.classes()[0], vec![0, 4]);
        assert_eq!(prepared.representatives().len(), 4);
        assert_eq!(prepared.views().len(), 5);
        assert_eq!(prepared.epoch(), 0);
        assert_eq!(PreparedViews::prepare_with_epoch(&views, 7).epoch(), 7);
    }

    #[test]
    fn prepared_runs_match_fresh_runs() {
        // The serving-layer contract: running CoreCover with prepared
        // views is byte-identical to an ordinary run.
        let views = carlocpart_views();
        let prepared = PreparedViews::prepare(&views);
        for src in [
            "q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)",
            "q(M, C) :- car(M, D), loc(D, C)",
            "q(S) :- part(S, M, C), car(M, a)",
        ] {
            let q = parse_query(src).unwrap();
            let fresh = CoreCover::new(&q, &views).run_all_minimal();
            let pre = CoreCover::with_prepared_views(&q, &prepared).run_all_minimal();
            assert_eq!(fresh.rewritings(), pre.rewritings(), "{src}");
            assert_eq!(fresh.stats, pre.stats, "{src}");
            assert_eq!(fresh.minimized_query, pre.minimized_query, "{src}");
            assert_eq!(fresh.view_tuples, pre.view_tuples, "{src}");
        }
    }

    #[test]
    fn prepared_views_respect_grouping_off() {
        // With grouping disabled the prepared classes are ignored and the
        // full view set is used, exactly as in an unprepared run.
        let views = carlocpart_views();
        let prepared = PreparedViews::prepare(&views);
        let q = parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)").unwrap();
        let config = CoreCoverConfig {
            group_equivalent_views: false,
            group_view_tuples: false,
            ..CoreCoverConfig::default()
        };
        let fresh = CoreCover::new(&q, &views).with_config(config.clone()).run();
        let pre = CoreCover::with_prepared_views(&q, &prepared)
            .with_config(config)
            .run();
        assert_eq!(fresh.stats, pre.stats);
        assert_eq!(fresh.rewritings(), pre.rewritings());
        assert_eq!(pre.stats.view_classes, 5);
    }
}
