//! Analyzer-driven view pruning (the `VP006` necessary condition).
//!
//! A view can contribute a view tuple only if its expansion admits a
//! homomorphism into the canonical database of the (minimized) query
//! (Lemma 3.2) — and a homomorphism maps each view body atom onto a
//! canonical-database fact with the **same predicate and arity**. So a
//! view whose body mentions any `(predicate, arity)` pair absent from the
//! query body provably yields *zero* view tuples: dropping it before the
//! (expensive) view-tuple construction cannot change the computed tuple
//! set, the filter candidates, the rewritings, or any downstream plan.
//! This is the cheap MiniCon-style prefilter (§4.3) that
//! `viewplan-analyze` reports as `VP006` and `CoreCover` applies as a
//! pre-pass.
//!
//! Note the condition is deliberately *conservative*: a view sharing all
//! its predicates with the query may still produce only empty-core
//! tuples, but those are M2 filter candidates (§5.1) and must **not** be
//! pruned. Only the zero-tuple case is safe to drop.

use std::collections::HashSet;
use viewplan_cq::{ConjunctiveQuery, Symbol, View};

/// The `(predicate, arity)` pairs occurring in a query body — the
/// signature a view body atom must match to be mappable at all.
pub fn body_signature(query: &ConjunctiveQuery) -> HashSet<(Symbol, usize)> {
    query
        .body
        .iter()
        .map(|a| (a.predicate, a.arity()))
        .collect()
}

/// True iff `view` provably admits no homomorphism into the canonical
/// database of a query with body signature `needed`: some body atom's
/// `(predicate, arity)` pair has no matching query subgoal. Such a view
/// produces no view tuples, so it is safe to drop before tuple
/// construction (the `VP006` pruning condition).
pub fn view_is_unusable(needed: &HashSet<(Symbol, usize)>, view: &View) -> bool {
    view.definition
        .body
        .iter()
        .any(|a| !needed.contains(&(a.predicate, a.arity())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewplan_cq::{parse_query, parse_views};

    #[test]
    fn signature_collects_predicate_arity_pairs() {
        let q = parse_query("q(X) :- e(X, Y), f(Y), e(Y, X)").unwrap();
        let sig = body_signature(&q);
        assert_eq!(sig.len(), 2);
        assert!(sig.contains(&(Symbol::new("e"), 2)));
        assert!(sig.contains(&(Symbol::new("f"), 1)));
    }

    #[test]
    fn foreign_predicate_views_are_unusable() {
        let q = parse_query("q(X) :- e(X, Y)").unwrap();
        let needed = body_signature(&q);
        let views = parse_views(
            "good(A) :- e(A, B).\n\
             bad(A) :- g(A, B).\n\
             mixed(A) :- e(A, B), g(B, A).",
        )
        .unwrap();
        let flags: Vec<bool> = views.iter().map(|v| view_is_unusable(&needed, v)).collect();
        assert_eq!(flags, [false, true, true]);
    }

    #[test]
    fn arity_mismatch_makes_a_view_unusable() {
        // Same predicate name, different arity: no atom-to-fact mapping
        // exists, so the view is as dead as a foreign-predicate one.
        let q = parse_query("q(X) :- e(X, Y)").unwrap();
        let needed = body_signature(&q);
        let views = parse_views("v(A) :- e(A, A, A)").unwrap();
        assert!(view_is_unusable(&needed, &views.as_slice()[0]));
    }
}
