//! Rewritings and variant deduplication.

use std::collections::HashMap;
use viewplan_containment::is_variant;
use viewplan_cq::{ConjunctiveQuery, Term};

/// An equivalent rewriting of a query using views — a conjunctive query
/// whose body subgoals are view literals. A plain type alias with helpers;
/// the semantic guarantee ("expansion equivalent to the query") is
/// established by the producing algorithms.
pub type Rewriting = ConjunctiveQuery;

/// A renaming-invariant signature: the sorted multiset of per-atom shapes
/// (predicate, constant positions, intra-atom variable-equality pattern).
/// Variants always share a signature, so pairwise [`is_variant`] checks
/// only run within signature buckets — `CoreCover` can emit hundreds of
/// covers, and quadratic variant checking across all of them dominated the
/// runtime before this bucketing.
fn shape_signature(q: &Rewriting) -> Vec<String> {
    let mut shapes: Vec<String> = q
        .body
        .iter()
        .map(|a| {
            let mut first_seen: HashMap<_, usize> = HashMap::new();
            let pattern: Vec<String> = a
                .terms
                .iter()
                .enumerate()
                .map(|(i, t)| match *t {
                    Term::Const(c) => format!("c{c:?}"),
                    Term::Var(v) => {
                        let k = *first_seen.entry(v).or_insert(i);
                        format!("v{k}")
                    }
                })
                .collect();
            format!("{}({})", a.predicate, pattern.join(","))
        })
        .collect();
    shapes.sort();
    shapes
}

/// Removes rewritings that are variable-renamings of an earlier one
/// (§3.3 footnote: "we assume two rewritings are the same if the only
/// difference between them is variable renamings").
pub fn dedup_variants(rewritings: Vec<Rewriting>) -> Vec<Rewriting> {
    let mut out: Vec<Rewriting> = Vec::new();
    let mut buckets: HashMap<Vec<String>, Vec<usize>> = HashMap::new();
    for r in rewritings {
        let sig = shape_signature(&r);
        let bucket = buckets.entry(sig).or_default();
        if !bucket.iter().any(|&i| is_variant(&out[i], &r)) {
            bucket.push(out.len());
            out.push(r);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewplan_cq::parse_query;

    #[test]
    fn dedup_removes_renamings_only() {
        let rs = vec![
            parse_query("q(X) :- v(X, Y)").unwrap(),
            parse_query("q(A) :- v(A, B)").unwrap(), // renaming of the first
            parse_query("q(X) :- v(X, X)").unwrap(), // different shape
        ];
        let kept = dedup_variants(rs);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn empty_input_stays_empty() {
        assert!(dedup_variants(Vec::new()).is_empty());
    }
}
