//! Rewritings and variant deduplication.

use std::collections::HashMap;
use viewplan_containment::is_variant;
use viewplan_cq::{ConjunctiveQuery, Term};

/// An equivalent rewriting of a query using views — a conjunctive query
/// whose body subgoals are view literals. A plain type alias with helpers;
/// the semantic guarantee ("expansion equivalent to the query") is
/// established by the producing algorithms.
pub type Rewriting = ConjunctiveQuery;

/// A renaming-invariant signature: the sorted multiset of per-atom shapes
/// (predicate, constant positions, intra-atom variable-equality pattern).
/// Variants always share a signature, so pairwise [`is_variant`] checks
/// only run within signature buckets — `CoreCover` can emit hundreds of
/// covers, and quadratic variant checking across all of them dominated the
/// runtime before this bucketing.
fn shape_signature(q: &Rewriting) -> Vec<String> {
    let mut shapes: Vec<String> = q
        .body
        .iter()
        .map(|a| {
            let mut first_seen: HashMap<_, usize> = HashMap::new();
            let pattern: Vec<String> = a
                .terms
                .iter()
                .enumerate()
                .map(|(i, t)| match *t {
                    Term::Const(c) => format!("c{c:?}"),
                    Term::Var(v) => {
                        let k = *first_seen.entry(v).or_insert(i);
                        format!("v{k}")
                    }
                })
                .collect();
            format!("{}({})", a.predicate, pattern.join(","))
        })
        .collect();
    shapes.sort();
    shapes
}

/// Removes rewritings that are variable-renamings of an earlier one
/// (§3.3 footnote: "we assume two rewritings are the same if the only
/// difference between them is variable renamings").
pub fn dedup_variants(rewritings: Vec<Rewriting>) -> Vec<Rewriting> {
    dedup_variants_with_map(rewritings).0
}

/// [`dedup_variants`], additionally reporting each input's fate: entry
/// `i` of the second vector is `None` when input `i` was kept, or
/// `Some(j)` when it was dropped as a renaming of (kept) input `j`.
/// Feeds the `viewplan explain` duplicate-variant verdicts.
pub fn dedup_variants_with_map(rewritings: Vec<Rewriting>) -> (Vec<Rewriting>, Vec<Option<usize>>) {
    let mut out: Vec<Rewriting> = Vec::new();
    // Input index each `out[i]` came from, for reporting in input terms.
    let mut kept_input: Vec<usize> = Vec::new();
    let mut variant_of: Vec<Option<usize>> = Vec::with_capacity(rewritings.len());
    let mut buckets: HashMap<Vec<String>, Vec<usize>> = HashMap::new();
    for (idx, r) in rewritings.into_iter().enumerate() {
        let sig = shape_signature(&r);
        let bucket = buckets.entry(sig).or_default();
        match bucket.iter().find(|&&i| is_variant(&out[i], &r)) {
            Some(&i) => variant_of.push(Some(kept_input[i])),
            None => {
                bucket.push(out.len());
                kept_input.push(idx);
                out.push(r);
                variant_of.push(None);
            }
        }
    }
    (out, variant_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewplan_cq::parse_query;

    #[test]
    fn dedup_removes_renamings_only() {
        let rs = vec![
            parse_query("q(X) :- v(X, Y)").unwrap(),
            parse_query("q(A) :- v(A, B)").unwrap(), // renaming of the first
            parse_query("q(X) :- v(X, X)").unwrap(), // different shape
        ];
        let kept = dedup_variants(rs);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn empty_input_stays_empty() {
        assert!(dedup_variants(Vec::new()).is_empty());
    }

    #[test]
    fn dedup_map_points_variants_at_their_kept_input() {
        let rs = vec![
            parse_query("q(X) :- v(X, Y)").unwrap(),
            parse_query("q(X) :- v(X, X)").unwrap(),
            parse_query("q(A) :- v(A, B)").unwrap(), // renaming of input 0
            parse_query("q(B) :- v(B, B)").unwrap(), // renaming of input 1
        ];
        let (kept, variant_of) = dedup_variants_with_map(rs);
        assert_eq!(kept.len(), 2);
        assert_eq!(variant_of, vec![None, None, Some(0), Some(1)]);
    }
}
