//! Tuple-cores (Definition 4.1, Lemma 4.2).
//!
//! The tuple-core of a view tuple `t_v` is the maximal set `G` of query
//! subgoals admitting a containment mapping `φ : G → t_v^exp` such that:
//!
//! 1. `φ` is one-to-one and is the identity on arguments of `G` that
//!    appear in `t_v`;
//! 2. distinguished variables of the query map to distinguished variables
//!    of `t_v^exp` (with (1), this forces them to appear in `t_v`);
//! 3. if a nondistinguished variable is mapped to an existential variable
//!    of the expansion, **all** query subgoals using it must be in `G`.
//!
//! # How we compute it
//!
//! Call a variable of a subgoal *local* (to this view tuple) if it is
//! nondistinguished and does not appear among `t_v`'s arguments. By
//! property (1) every non-local variable maps to itself, so subgoals
//! interact only through shared local variables. We therefore:
//!
//! * group subgoals into connected components linked by shared local
//!   variables — property (3) makes each component an all-or-nothing unit
//!   (a local variable always maps to a fresh existential or a constant of
//!   the expansion, never to a `t_v` argument, since that would collide
//!   with the identity part and break injectivity);
//! * enumerate the consistent mappings of each component into the
//!   expansion by backtracking;
//! * resolve cross-component injectivity globally (two components may not
//!   send different local variables to the same existential), maximizing
//!   the number of covered subgoals.
//!
//! Lemma 4.2 (uniqueness of the maximal core) is asserted in debug builds.

use crate::view_tuple::ViewTuple;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use viewplan_containment::expand_atom;
use viewplan_cq::{Atom, ConjunctiveQuery, Symbol, Term, ViewSet};
use viewplan_obs as obs;

/// The tuple-core of a view tuple: the covered subgoals (as indices into
/// the minimized query's body) and the mapping of local variables.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TupleCore {
    /// Indices of the covered subgoals in the minimized query's body.
    pub subgoals: BTreeSet<usize>,
    /// Images of the query's local variables in the tuple expansion
    /// (non-local variables map to themselves and are omitted).
    pub mapping: BTreeMap<Symbol, Term>,
}

impl TupleCore {
    /// The empty core.
    pub fn empty() -> TupleCore {
        TupleCore {
            subgoals: BTreeSet::new(),
            mapping: BTreeMap::new(),
        }
    }

    /// True iff no subgoal is covered.
    pub fn is_empty(&self) -> bool {
        self.subgoals.is_empty()
    }

    /// The core as a bitmask over subgoal indices (queries have ≤ 64
    /// subgoals in this system; enforced by [`tuple_core`]).
    pub fn bitmask(&self) -> u64 {
        self.subgoals.iter().fold(0u64, |m, &i| {
            // A shift by ≥ 64 would wrap silently in release builds and
            // corrupt the cover search; fail loudly instead.
            assert!(
                i < crate::error::MAX_SUBGOALS,
                "subgoal index {i} does not fit a 64-bit cover mask"
            );
            m | (1 << i)
        })
    }
}

/// One consistent way to map a whole component into the expansion:
/// the images of its local variables.
type ComponentMapping = BTreeMap<Symbol, Term>;

/// Computes the unique tuple-core of `tv` for the **minimized** query
/// (Definition 4.1 assumes minimality; pass the output of
/// [`viewplan_containment::minimize()`]).
///
/// # Panics
/// Panics if the query has more than 64 subgoals (the cover step uses
/// 64-bit masks; the paper's workloads use 8).
pub fn tuple_core(min_query: &ConjunctiveQuery, tv: &ViewTuple, views: &ViewSet) -> TupleCore {
    assert!(
        min_query.body.len() <= 64,
        "queries are limited to 64 subgoals"
    );
    let Ok(texp) = expand_atom(&tv.atom, views) else {
        return TupleCore::empty();
    };
    let tv_terms: HashSet<Term> = tv.atom.terms.iter().copied().collect();
    let distinguished = min_query.distinguished_set();
    let is_local = |v: Symbol| !distinguished.contains(&v) && !tv_terms.contains(&Term::Var(v));

    // Union-find over subgoal indices, linked by shared local variables.
    let n = min_query.body.len();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    let mut by_local: HashMap<Symbol, usize> = HashMap::new();
    for (i, atom) in min_query.body.iter().enumerate() {
        for v in atom.variables() {
            if is_local(v) {
                match by_local.get(&v) {
                    Some(&j) => {
                        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                        parent[ri] = rj;
                    }
                    None => {
                        by_local.insert(v, i);
                    }
                }
            }
        }
    }
    let mut components: HashMap<usize, Vec<usize>> = HashMap::new();
    for i in 0..n {
        let r = find(&mut parent, i);
        components.entry(r).or_default().push(i);
    }
    let mut components: Vec<Vec<usize>> = components.into_values().collect();
    components.sort(); // deterministic order

    // Enumerate each component's consistent mappings. One meter covers
    // the whole per-tuple search; truncation only *shrinks* the core
    // (an underestimated core is a subset of the true core, and covers
    // built from subsets are still valid rewritings).
    let mut meter = obs::Meter::start(obs::Phase::Hom);
    let per_component: Vec<(Vec<usize>, Vec<ComponentMapping>)> = components
        .into_iter()
        .map(|comp| {
            let mappings =
                component_mappings(min_query, &comp, &texp, &tv_terms, &is_local, &mut meter);
            (comp, mappings)
        })
        .collect();

    // Fast path: if no two components can compete for an image, every
    // component with at least one mapping joins the core (the common case;
    // the backtracking resolution below is only needed on overlap).
    let image_sets: Vec<HashSet<Term>> = per_component
        .iter()
        .map(|(_, ms)| ms.iter().flat_map(|m| m.values().copied()).collect())
        .collect();
    let mut disjoint = true;
    'outer: for i in 0..image_sets.len() {
        for j in (i + 1)..image_sets.len() {
            if image_sets[i].intersection(&image_sets[j]).next().is_some() {
                disjoint = false;
                break 'outer;
            }
        }
    }
    if disjoint {
        let mut core = TupleCore::empty();
        for (comp, mappings) in &per_component {
            if let Some(m) = mappings.first() {
                core.subgoals.extend(comp.iter().copied());
                core.mapping.extend(m.clone());
            }
        }
        return core;
    }

    // Globally resolve injectivity across components, maximizing coverage.
    let mut best: Option<(usize, TupleCore)> = None;
    let mut chosen: Vec<Option<usize>> = vec![None; per_component.len()];
    resolve(
        &per_component,
        0,
        &mut chosen,
        &mut HashSet::new(),
        &mut best,
        &mut meter,
    );
    // A budget-truncated resolution may not even reach the all-excluded
    // leaf; the empty core is the sound fallback.
    best.map(|(_, core)| core).unwrap_or_else(TupleCore::empty)
}

/// Backtracking enumeration of all consistent mappings of a component's
/// local variables; returns an empty vector when the component cannot be
/// covered at all.
fn component_mappings(
    q: &ConjunctiveQuery,
    comp: &[usize],
    texp: &[Atom],
    tv_terms: &HashSet<Term>,
    is_local: &dyn Fn(Symbol) -> bool,
    meter: &mut obs::Meter,
) -> Vec<ComponentMapping> {
    let mut results: Vec<ComponentMapping> = Vec::new();
    let mut seen: HashSet<ComponentMapping> = HashSet::new();
    let mut assignment: ComponentMapping = BTreeMap::new();
    let mut used: HashSet<Term> = HashSet::new();
    search_component(
        q,
        comp,
        0,
        texp,
        tv_terms,
        is_local,
        &mut assignment,
        &mut used,
        meter,
        &mut |m| {
            if seen.insert(m.clone()) {
                results.push(m.clone());
            }
        },
    );
    results
}

// Recursive backtracking search; the assignment/bookkeeping state is
// threaded as parameters so frames stay allocation-free.
#[allow(clippy::too_many_arguments)]
fn search_component(
    q: &ConjunctiveQuery,
    comp: &[usize],
    depth: usize,
    texp: &[Atom],
    tv_terms: &HashSet<Term>,
    is_local: &dyn Fn(Symbol) -> bool,
    assignment: &mut ComponentMapping,
    used: &mut HashSet<Term>,
    meter: &mut obs::Meter,
    emit: &mut dyn FnMut(&ComponentMapping),
) {
    if !meter.tick() {
        return;
    }
    if depth == comp.len() {
        emit(assignment);
        return;
    }
    let g = &q.body[comp[depth]];
    for target in texp {
        if target.predicate != g.predicate || target.arity() != g.arity() {
            continue;
        }
        let mut newly: Vec<Symbol> = Vec::new();
        if try_map_atom(g, target, tv_terms, is_local, assignment, used, &mut newly) {
            search_component(
                q,
                comp,
                depth + 1,
                texp,
                tv_terms,
                is_local,
                assignment,
                used,
                meter,
                emit,
            );
        }
        for v in newly {
            // `newly` records exactly the variables this frame inserted,
            // so the entry must still be present; a miss would mean the
            // backtracking bookkeeping desynced.
            debug_assert!(assignment.contains_key(&v));
            if let Some(img) = assignment.remove(&v) {
                used.remove(&img);
            }
        }
        if meter.exhausted() {
            return;
        }
    }
}

/// Attempts to map one subgoal onto one expansion atom under the
/// Definition 4.1 constraints, extending `assignment` for local variables.
fn try_map_atom(
    g: &Atom,
    target: &Atom,
    tv_terms: &HashSet<Term>,
    is_local: &dyn Fn(Symbol) -> bool,
    assignment: &mut ComponentMapping,
    used: &mut HashSet<Term>,
    newly: &mut Vec<Symbol>,
) -> bool {
    for (pt, tt) in g.terms.iter().zip(&target.terms) {
        match *pt {
            // Constants are fixed by any containment mapping.
            Term::Const(_) => {
                if pt != tt {
                    return false;
                }
            }
            Term::Var(v) if !is_local(v) => {
                // Identity required: either v appears in tv (property 1) or
                // v is distinguished, in which case property 2 + 1 force
                // φ(v) = v, which is only possible if v appears in the
                // expansion — i.e. in tv's arguments.
                if *tt != Term::Var(v) {
                    return false;
                }
                if !tv_terms.contains(&Term::Var(v)) {
                    // Distinguished variable absent from tv: property 2
                    // cannot be satisfied.
                    return false;
                }
            }
            Term::Var(v) => {
                // Local variable: must map to a term of the expansion that
                // is not a tv argument (a tv-argument image would collide
                // with the identity part under one-to-one-ness).
                if tv_terms.contains(tt) {
                    return false;
                }
                match assignment.get(&v) {
                    Some(prev) => {
                        if prev != tt {
                            return false;
                        }
                    }
                    None => {
                        // One-to-one: the image must be unused.
                        if !used.insert(*tt) {
                            return false;
                        }
                        assignment.insert(v, *tt);
                        newly.push(v);
                    }
                }
            }
        }
    }
    true
}

/// Chooses, for each component, one of its mappings or exclusion, so that
/// local-variable images stay globally one-to-one; keeps the selection
/// covering the most subgoals. Debug builds assert the maximal covered set
/// is unique (Lemma 4.2).
fn resolve(
    per_component: &[(Vec<usize>, Vec<ComponentMapping>)],
    depth: usize,
    chosen: &mut Vec<Option<usize>>,
    used: &mut HashSet<Term>,
    best: &mut Option<(usize, TupleCore)>,
    meter: &mut obs::Meter,
) {
    if !meter.tick() {
        return;
    }
    if depth == per_component.len() {
        let mut core = TupleCore::empty();
        for (c, pick) in per_component.iter().zip(chosen.iter()) {
            if let Some(m) = pick {
                core.subgoals.extend(c.0.iter().copied());
                core.mapping.extend(c.1[*m].clone());
            }
        }
        let size = core.subgoals.len();
        match best {
            None => *best = Some((size, core)),
            Some((bs, bcore)) => {
                if size > *bs {
                    *best = Some((size, core));
                } else if size == *bs && size > 0 {
                    // Lemma 4.2 uniqueness holds for complete searches;
                    // a budget-truncated mapping enumeration can leave
                    // equal-size incomparable selections behind.
                    debug_assert!(
                        bcore.subgoals == core.subgoals || obs::budget::current().is_some(),
                        "tuple-core must be unique (Lemma 4.2)"
                    );
                }
            }
        }
        return;
    }
    let (_, mappings) = &per_component[depth];
    for (mi, m) in mappings.iter().enumerate() {
        if m.values().any(|img| used.contains(img)) {
            continue;
        }
        for img in m.values() {
            used.insert(*img);
        }
        chosen[depth] = Some(mi);
        resolve(per_component, depth + 1, chosen, used, best, meter);
        chosen[depth] = None;
        for img in m.values() {
            used.remove(img);
        }
        if meter.exhausted() {
            return;
        }
    }
    // Exclusion branch (needed when the component has no mapping, and to
    // witness uniqueness in debug builds).
    resolve(per_component, depth + 1, chosen, used, best, meter);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view_tuple::view_tuples;
    use viewplan_containment::minimize;
    use viewplan_cq::{parse_query, parse_views};

    fn cores_of(q: &str, vs: &str) -> Vec<(String, Vec<usize>)> {
        let q = minimize(&parse_query(q).unwrap());
        let views = parse_views(vs).unwrap();
        view_tuples(&q, &views)
            .iter()
            .map(|t| {
                let core = tuple_core(&q, t, &views);
                (t.to_string(), core.subgoals.iter().copied().collect())
            })
            .collect()
    }

    #[test]
    fn table2_tuple_cores() {
        // Example 4.1 / Table 2.
        let cores = cores_of(
            "q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)",
            "v1(A, B) :- a(A, B), a(B, B).\n\
             v2(C, D) :- a(C, E), b(C, D).",
        );
        assert_eq!(
            cores,
            vec![
                ("v1(X, Z)".to_string(), vec![0, 1]), // a(X,Z), a(Z,Z)
                ("v1(Z, Z)".to_string(), vec![1]),    // a(Z,Z)
                ("v2(Z, Y)".to_string(), vec![2]),    // b(Z,Y)
            ]
        );
    }

    #[test]
    fn carlocpart_cores_match_section_41() {
        // §4.1: cores of v1, v2, v4, v5 are their full definitions (with D
        // replaced by a); v3(S) has an empty tuple-core.
        let cores = cores_of(
            "q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)",
            "v1(M, D, C) :- car(M, D), loc(D, C).\n\
             v2(S, M, C) :- part(S, M, C).\n\
             v3(S) :- car(M, a), loc(a, C), part(S, M, C).\n\
             v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).\n\
             v5(M, D, C) :- car(M, D), loc(D, C).",
        );
        assert_eq!(
            cores,
            vec![
                ("v1(M, a, C)".to_string(), vec![0, 1]),
                ("v2(S, M, C)".to_string(), vec![2]),
                ("v3(S)".to_string(), vec![]), // empty core!
                ("v4(M, a, C, S)".to_string(), vec![0, 1, 2]),
                ("v5(M, a, C)".to_string(), vec![0, 1]),
            ]
        );
    }

    #[test]
    fn example42_single_tuple_covers_everything() {
        // Example 4.2 with k = 3: the global view covers all 6 subgoals.
        let q = "q(X, Y) :- a1(X, Z1), b1(Z1, Y), a2(X, Z2), b2(Z2, Y), a3(X, Z3), b3(Z3, Y)";
        let vs = "v(X, Y) :- a1(X, Z1), b1(Z1, Y), a2(X, Z2), b2(Z2, Y), a3(X, Z3), b3(Z3, Y).\n\
                  v1(X, Y) :- a1(X, Z1), b1(Z1, Y).\n\
                  v2(X, Y) :- a2(X, Z2), b2(Z2, Y).";
        let cores = cores_of(q, vs);
        assert_eq!(cores[0], ("v(X, Y)".to_string(), vec![0, 1, 2, 3, 4, 5]));
        assert_eq!(cores[1], ("v1(X, Y)".to_string(), vec![0, 1]));
        assert_eq!(cores[2], ("v2(X, Y)".to_string(), vec![2, 3]));
    }

    #[test]
    fn existential_closure_empties_partial_cover() {
        // The view covers a(X) but its expansion cannot absorb b(X), and X
        // is shared: property (3) forces the whole component out.
        let cores = cores_of("q() :- a(X), b(X)", "v2(C) :- b(C).\nv3() :- b(E)");
        // v2(X): X local? X is nondistinguished; X ∈ tv args of v2(X) so
        // identity — core is {b(X)}.
        assert_eq!(cores[0], ("v2(X)".to_string(), vec![1]));
        // v3(): X is local, must map to existential E, but a(X) has no
        // image — component {a(X), b(X)} fails entirely.
        assert_eq!(cores[1], ("v3()".to_string(), vec![]));
    }

    #[test]
    fn distinguished_variable_not_in_tuple_blocks_coverage() {
        let cores = cores_of("q(X) :- a(X, Y)", "v(B) :- a(A, B)");
        // tuple is v(Y); X is distinguished but absent from the tuple.
        assert_eq!(cores[0], ("v(Y)".to_string(), vec![]));
    }

    #[test]
    fn local_variables_map_injectively() {
        // Two local variables cannot share one existential: the view has a
        // single existential E, the query needs two independent ones...
        // a(X,Y1), a(X,Y2) minimizes to a(X,Y1) first, so craft distinct
        // predicates to prevent minimization.
        let cores = cores_of("q(X) :- a(X, Y1), b(X, Y2)", "v(A) :- a(A, E), b(A, E).");
        // Expansion forces Y1 -> E and Y2 -> E: violates one-to-one; but
        // components {a(X,Y1)} and {b(X,Y2)} are separate (Y1, Y2 not
        // shared), so globally only one of them can claim E. The maximum is
        // then 1 subgoal... which would make the core ambiguous (either
        // subgoal) — precisely the situation Lemma 4.2 excludes for
        // *view tuples of minimal queries*; check the view produces no
        // tuple at all here: applying v to {a(x,y1), b(x,y2)} needs
        // a(A,E), b(A,E) with one E: no match, so no view tuple exists.
        assert!(cores.is_empty());
    }

    #[test]
    fn constants_in_query_must_match_expansion() {
        let cores = cores_of("q(X) :- a(X, c)", "v(A) :- a(A, c).\nw(B) :- a(B, d)");
        assert_eq!(cores.len(), 1);
        assert_eq!(cores[0], ("v(X)".to_string(), vec![0]));
    }

    #[test]
    fn core_can_cover_with_constant_image() {
        // Local variable mapping to a constant of the expansion: the query
        // has Y existential, the view pins that position to the constant c.
        // φ(Y) = c is a legal containment mapping.
        let cores = cores_of("q(X) :- a(X, Y)", "v(A) :- a(A, c)");
        // View tuple: applying v to {a(x, y)} — needs a(A, c): no match
        // (frozen y ≠ c). So no view tuples. The subtlety: the *tuple* can
        // never exist unless the canonical database contains the constant.
        assert!(cores.is_empty());
    }

    #[test]
    fn bitmask_reflects_subgoals() {
        let q = minimize(&parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)").unwrap());
        let views = parse_views("v1(A, B) :- a(A, B), a(B, B)").unwrap();
        let ts = view_tuples(&q, &views);
        let core = tuple_core(&q, &ts[0], &views);
        assert_eq!(core.bitmask(), 0b011);
    }
}
