//! View tuples `T(Q, V)` (§3.3).
//!
//! A view tuple is a view literal whose arguments are variables (and
//! constants) of the query. They are computed exactly as the paper
//! prescribes: freeze the minimized query into its canonical database
//! `D_Q`, evaluate every view definition over `D_Q`, and thaw the frozen
//! constants back into query variables. By Lemma 3.2 every rewriting can
//! be transformed into one that uses only view tuples, which makes
//! `T(Q, V)` the raw material of both search spaces (Theorems 3.1
//! and 5.1).

use crate::parallel::parallel_map;
use viewplan_cq::{Atom, ConjunctiveQuery, Symbol, View, ViewSet};
use viewplan_engine::{canonical_database, evaluate, unfreeze_value, Database};

/// A view tuple: a literal of view `view` whose arguments are terms of the
/// query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ViewTuple {
    /// The view this tuple instantiates.
    pub view: Symbol,
    /// The literal, e.g. `v1(M, a, C)`.
    pub atom: Atom,
}

impl std::fmt::Display for ViewTuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.atom)
    }
}

/// Computes the set of view tuples `T(Q, V)` of a (minimized) query.
///
/// The same view can contribute several tuples (Example 4.1 yields
/// `v1(X, Z)` and `v1(Z, Z)`); exact duplicates are removed. The order is
/// deterministic: views in `views` order, tuples in evaluation order.
pub fn view_tuples(min_query: &ConjunctiveQuery, views: &ViewSet) -> Vec<ViewTuple> {
    view_tuples_with_threads(min_query, views, 1)
}

/// [`view_tuples`] with the per-view evaluations spread over up to
/// `threads` workers. The per-view results are merged back in `views`
/// order with the same duplicate filter, so the output is identical to
/// the serial one for any thread count.
pub fn view_tuples_with_threads(
    min_query: &ConjunctiveQuery,
    views: &ViewSet,
    threads: usize,
) -> Vec<ViewTuple> {
    let canonical = canonical_database(min_query);
    let per_view: Vec<Vec<ViewTuple>> = parallel_map(threads, views.as_slice(), |view| {
        tuples_of_view(view, &canonical)
    });
    let mut out: Vec<ViewTuple> = Vec::new();
    for tuples in per_view {
        for vt in tuples {
            if !out.contains(&vt) {
                out.push(vt);
            }
        }
    }
    out
}

/// All tuples a single view contributes, in evaluation order (duplicates
/// from *other* views are filtered by the caller's merge).
fn tuples_of_view(view: &View, canonical: &Database) -> Vec<ViewTuple> {
    let rel = evaluate(&view.definition, canonical);
    let mut out: Vec<ViewTuple> = Vec::new();
    for tuple in &rel {
        let atom = Atom::new(
            view.name(),
            tuple.iter().map(|&v| unfreeze_value(v)).collect(),
        );
        let vt = ViewTuple {
            view: view.name(),
            atom,
        };
        if !out.contains(&vt) {
            out.push(vt);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewplan_cq::{parse_atom, parse_query, parse_views};

    fn tuples_of(q: &str, vs: &str) -> Vec<String> {
        let q = parse_query(q).unwrap();
        let views = parse_views(vs).unwrap();
        view_tuples(&q, &views)
            .iter()
            .map(|t| t.to_string())
            .collect()
    }

    #[test]
    fn carlocpart_view_tuples_match_paper() {
        // §3.3: T(Q, V) = {v1(M,a,C), v2(S,M,C), v3(S), v4(M,a,C,S), v5(M,a,C)}.
        let got = tuples_of(
            "q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)",
            "v1(M, D, C) :- car(M, D), loc(D, C).\n\
             v2(S, M, C) :- part(S, M, C).\n\
             v3(S) :- car(M, a), loc(a, C), part(S, M, C).\n\
             v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).\n\
             v5(M, D, C) :- car(M, D), loc(D, C).",
        );
        assert_eq!(
            got,
            [
                "v1(M, a, C)",
                "v2(S, M, C)",
                "v3(S)",
                "v4(M, a, C, S)",
                "v5(M, a, C)"
            ]
        );
    }

    #[test]
    fn example41_view_tuples_match_paper() {
        let got = tuples_of(
            "q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)",
            "v1(A, B) :- a(A, B), a(B, B).\n\
             v2(C, D) :- a(C, E), b(C, D).",
        );
        assert_eq!(got, ["v1(X, Z)", "v1(Z, Z)", "v2(Z, Y)"]);
    }

    #[test]
    fn view_with_no_match_produces_no_tuples() {
        let got = tuples_of("q(X) :- a(X, X)", "v(A, B) :- b(A, B)");
        assert!(got.is_empty());
    }

    #[test]
    fn constants_in_views_filter_canonical_db() {
        // The view requires dealer `a`; the query uses dealer `b`.
        let got = tuples_of("q(M) :- car(M, b)", "v(M) :- car(M, a)");
        assert!(got.is_empty());
        let got2 = tuples_of("q(M) :- car(M, a)", "v(M) :- car(M, a)");
        assert_eq!(got2, ["v(M)"]);
    }

    #[test]
    fn tuples_contain_only_query_terms() {
        let q = parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)").unwrap();
        let views = parse_views("v1(A, B) :- a(A, B), a(B, B)").unwrap();
        let expected = parse_atom("v1(X, Z)").unwrap();
        let ts = view_tuples(&q, &views);
        assert!(ts.iter().any(|t| t.atom == expected));
        let qvars: std::collections::HashSet<_> = q.variables().into_iter().collect();
        for t in &ts {
            for v in t.atom.variables() {
                assert!(qvars.contains(&v));
            }
        }
    }

    #[test]
    fn threaded_view_tuples_match_serial() {
        let q = parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)").unwrap();
        let views = parse_views(
            "v1(M, D, C) :- car(M, D), loc(D, C).\n\
             v2(S, M, C) :- part(S, M, C).\n\
             v3(S) :- car(M, a), loc(a, C), part(S, M, C).\n\
             v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).\n\
             v5(M, D, C) :- car(M, D), loc(D, C).",
        )
        .unwrap();
        let serial = view_tuples(&q, &views);
        for threads in [2, 3, 8] {
            assert_eq!(
                view_tuples_with_threads(&q, &views, threads),
                serial,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn duplicate_tuples_are_removed() {
        // Symmetric view over a symmetric pattern can produce the same
        // tuple twice.
        let got = tuples_of("q(X) :- e(X, X)", "v(A) :- e(A, A), e(A, A)");
        assert_eq!(got, ["v(X)"]);
    }
}
