//! The observability counters mirror `CoreCoverStats` exactly.
//!
//! This file holds a single test on purpose: the metrics registry is
//! process-global, and keeping the test alone in its own integration
//! binary means no other test's counter bumps can race with the
//! before/after deltas taken here.

use viewplan_core::CoreCover;
use viewplan_cq::{parse_query, parse_views};
use viewplan_obs as obs;

#[test]
fn counters_agree_with_corecover_stats() {
    obs::set_enabled(true);

    let query =
        parse_query("q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)").unwrap();
    let views = parse_views(
        "
        v1(M, D, C)    :- car(M, D), loc(D, C).
        v2(S, M, C)    :- part(S, M, C).
        v3(S)          :- car(M, anderson), loc(anderson, C), part(S, M, C).
        v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
        v5(M, D, C)    :- car(M, D), loc(D, C).
        ",
    )
    .unwrap();

    let before = |name: &str| obs::counter_value(name);
    let snapshot = [
        "corecover.runs",
        "corecover.views",
        "corecover.view_classes",
        "corecover.view_tuples",
        "corecover.representative_tuples",
        "corecover.empty_core_tuples",
        "corecover.rewritings",
    ]
    .map(|name| (name, before(name)));

    let result = CoreCover::new(&query, &views).run();
    let stats = &result.stats;

    let delta = |name: &str| {
        let (_, start) = snapshot
            .iter()
            .find(|(n, _)| *n == name)
            .expect("snapshotted");
        obs::counter_value(name) - start
    };

    assert_eq!(delta("corecover.runs"), 1);
    assert_eq!(delta("corecover.views"), stats.views as u64);
    assert_eq!(delta("corecover.view_classes"), stats.view_classes as u64);
    assert_eq!(delta("corecover.view_tuples"), stats.view_tuples as u64);
    assert_eq!(
        delta("corecover.representative_tuples"),
        stats.representative_tuples as u64
    );
    assert_eq!(
        delta("corecover.empty_core_tuples"),
        stats.empty_core_tuples as u64
    );
    assert_eq!(delta("corecover.rewritings"), stats.rewritings as u64);

    // Sanity-pin the paper's Example 1.1 numbers so the mirror cannot be
    // trivially satisfied by all-zero stats.
    assert_eq!(stats.views, 5);
    assert_eq!(stats.view_classes, 4);
    assert_eq!(stats.view_tuples, 4);
    assert_eq!(stats.representative_tuples, 3);
    assert_eq!(stats.empty_core_tuples, 1);

    // The span tree recorded the CoreCover phases.
    let tree = obs::span_tree();
    let run = tree
        .iter()
        .find(|node| node.name == "corecover.run")
        .expect("corecover.run span recorded");
    let child_names: Vec<&str> = run.children.iter().map(|c| c.name).collect();
    for phase in [
        "corecover.group_views",
        "corecover.view_tuples",
        "corecover.tuple_cores",
        "corecover.set_cover",
    ] {
        assert!(child_names.contains(&phase), "missing phase {phase}");
    }
}
