//! Phase-tree and trace attribution are independent of the thread count.
//!
//! `parallel_map` re-attaches the spawning thread's span path and trace
//! context on every worker, and workers stage closed span stats in
//! per-thread buffers that merge atomically. The observable consequence,
//! pinned here: the aggregated phase tree (names, nesting, counts) and
//! the trace span tree (the multiset of root-to-leaf name paths) of a
//! CoreCover run are identical at `threads = 1` and `threads = 8`.
//!
//! This file holds these tests alone in their own integration binary
//! because the span aggregate is process-global: another test's spans
//! interleaving mid-run would perturb the shapes compared here.

use viewplan_core::{CoreCover, CoreCoverConfig};
use viewplan_cq::{parse_query, parse_views};
use viewplan_obs as obs;

fn fixture() -> (viewplan_cq::ConjunctiveQuery, viewplan_cq::ViewSet) {
    // Example 1.1: four view tuples and several covers, so the parallel
    // stages (view tuples, tuple-cores, verification) all see real work.
    let query =
        parse_query("q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)").unwrap();
    let views = parse_views(
        "
        v1(M, D, C)    :- car(M, D), loc(D, C).
        v2(S, M, C)    :- part(S, M, C).
        v3(S)          :- car(M, anderson), loc(anderson, C), part(S, M, C).
        v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).
        v5(M, D, C)    :- car(M, D), loc(D, C).
        ",
    )
    .unwrap();
    (query, views)
}

/// The phase tree flattened to (path, count) rows; durations vary run to
/// run and are excluded.
fn tree_shape(
    nodes: &[obs::SpanNode],
    prefix: &mut Vec<&'static str>,
    out: &mut Vec<(String, u64)>,
) {
    for node in nodes {
        prefix.push(node.name);
        out.push((prefix.join("/"), node.count));
        tree_shape(&node.children, prefix, out);
        prefix.pop();
    }
}

fn run_at(threads: usize) -> (Vec<(String, u64)>, Vec<String>) {
    let (query, views) = fixture();
    obs::reset();
    let trace = obs::Trace::new();
    let shape = {
        let _t = obs::trace::install(&trace);
        let config = CoreCoverConfig {
            threads,
            ..CoreCoverConfig::default()
        };
        let _ = CoreCover::new(&query, &views).with_config(config).run();
        let mut shape = Vec::new();
        tree_shape(&obs::span_tree(), &mut Vec::new(), &mut shape);
        shape
    };
    // Trace spans: the multiset of root-to-leaf name paths. Sibling
    // *order* under a parent depends on worker scheduling; the paths do
    // not.
    let mut paths = Vec::new();
    fn walk(nodes: &[obs::TraceNode], prefix: &mut Vec<&'static str>, out: &mut Vec<String>) {
        for node in nodes {
            prefix.push(node.name);
            out.push(prefix.join("/"));
            walk(&node.children, prefix, out);
            prefix.pop();
        }
    }
    walk(&trace.tree(), &mut Vec::new(), &mut paths);
    paths.sort();
    (shape, paths)
}

#[test]
fn phase_tree_and_trace_paths_match_between_serial_and_parallel_runs() {
    obs::set_enabled(true);
    let (serial_shape, serial_paths) = run_at(1);
    let (parallel_shape, parallel_paths) = run_at(8);
    // Sanity: the serial run recorded the pipeline, not an empty tree.
    assert!(
        serial_shape
            .iter()
            .any(|(p, _)| p.contains("corecover.run")),
        "serial run recorded no corecover.run span: {serial_shape:?}"
    );
    assert!(!serial_paths.is_empty(), "serial trace recorded no spans");
    assert_eq!(
        serial_shape, parallel_shape,
        "phase tree shape differs between threads=1 and threads=8"
    );
    assert_eq!(
        serial_paths, parallel_paths,
        "trace span paths differ between threads=1 and threads=8"
    );
    obs::set_enabled(false);
}
