//! Relation statistics for cardinality estimation.
//!
//! The estimator follows the classic System-R \[22\] recipe the paper's
//! optimizer step assumes: per-relation cardinalities, per-column distinct
//! counts, independence between predicates, and
//! `|R ⋈ S| = |R|·|S| / max(d_R(v), d_S(v))` per join variable `v`.

use std::collections::HashMap;
use viewplan_cq::Symbol;
use viewplan_engine::Database;

/// Statistics for one relation.
#[derive(Clone, Debug, PartialEq)]
pub struct RelationStats {
    /// Number of tuples.
    pub cardinality: f64,
    /// Distinct values per column.
    pub distinct: Vec<f64>,
}

impl RelationStats {
    /// Uniform stats: `cardinality` tuples, every column with `d`
    /// distinct values.
    pub fn uniform(arity: usize, cardinality: f64, d: f64) -> RelationStats {
        RelationStats {
            cardinality,
            distinct: vec![d.min(cardinality); arity],
        }
    }
}

/// A catalog of relation statistics.
#[derive(Clone, Default, Debug)]
pub struct Catalog {
    stats: HashMap<Symbol, RelationStats>,
}

impl Catalog {
    /// An empty catalog (unknown relations estimate as empty).
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Measures exact statistics from a database (e.g. the materialized
    /// view database).
    pub fn from_database(db: &Database) -> Catalog {
        let mut stats = HashMap::new();
        for (name, rel) in db.iter() {
            stats.insert(
                name,
                RelationStats {
                    cardinality: rel.len() as f64,
                    distinct: (0..rel.arity())
                        .map(|c| rel.distinct_in_column(c) as f64)
                        .collect(),
                },
            );
        }
        Catalog { stats }
    }

    /// Installs statistics for a relation.
    pub fn set(&mut self, name: impl Into<Symbol>, stats: RelationStats) {
        self.stats.insert(name.into(), stats);
    }

    /// Statistics for a relation, if known.
    pub fn get(&self, name: Symbol) -> Option<&RelationStats> {
        self.stats.get(&name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_database_measures() {
        let mut db = Database::new();
        db.insert_int("r", &[&[1, 2], &[1, 3], &[2, 3]]);
        let cat = Catalog::from_database(&db);
        let s = cat.get(Symbol::new("r")).unwrap();
        assert_eq!(s.cardinality, 3.0);
        assert_eq!(s.distinct, vec![2.0, 2.0]);
    }

    #[test]
    fn uniform_caps_distinct_at_cardinality() {
        let s = RelationStats::uniform(2, 10.0, 100.0);
        assert_eq!(s.distinct, vec![10.0, 10.0]);
    }

    #[test]
    fn unknown_relation_is_none() {
        assert!(Catalog::new().get(Symbol::new("zzz")).is_none());
    }
}
