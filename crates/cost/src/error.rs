//! Typed errors for the physical-plan search.
//!
//! The plan searches are exponential in the subgoal count (`2^n` subsets
//! for the M2 dynamic program, `n!` orders for M3), so each rejects
//! rewritings wider than a hard limit. Those rejections used to be
//! `assert!` panics; they are inputs, not bugs, and flow out as
//! [`CostError`] so callers can skip the offending rewriting or report a
//! clean CLI error instead of aborting.

use std::fmt;
use viewplan_core::CoreError;
use viewplan_engine::EngineError;

/// Why the physical-plan search rejected a rewriting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CostError {
    /// The rewriting has more subgoals than the search for this cost
    /// model can enumerate.
    TooManySubgoals {
        /// Subgoals in the offending rewriting.
        subgoals: usize,
        /// The widest rewriting the search accepts.
        limit: usize,
        /// Which model's search rejected it (`"M2"` or `"M3"`).
        model: &'static str,
    },
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CostError::TooManySubgoals {
                subgoals,
                limit,
                model,
            } => write!(
                f,
                "rewriting has {subgoals} subgoals, but the {model} plan search supports at \
                 most {limit}"
            ),
        }
    }
}

impl std::error::Error for CostError {}

/// Everything [`crate::Optimizer::try_best_plan`] can fail with: the
/// rewriting generator rejected the query, or every generated rewriting
/// was too wide to plan. A too-wide rewriting is only an error when *no*
/// rewriting could be planned — otherwise it is skipped and the outcome
/// is marked truncated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlanError {
    /// The rewriting generator (CoreCover) rejected the query.
    Core(CoreError),
    /// Every generated rewriting was too wide for the plan search.
    Cost(CostError),
    /// Executing the chosen plan was rejected by the engine (an unsafe
    /// query or a plan that drops a head variable).
    Engine(EngineError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Core(e) => e.fmt(f),
            PlanError::Cost(e) => e.fmt(f),
            PlanError::Engine(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<CoreError> for PlanError {
    fn from(e: CoreError) -> PlanError {
        PlanError::Core(e)
    }
}

impl From<CostError> for PlanError {
    fn from(e: CostError) -> PlanError {
        PlanError::Cost(e)
    }
}

impl From<EngineError> for PlanError {
    fn from(e: EngineError) -> PlanError {
        PlanError::Engine(e)
    }
}
