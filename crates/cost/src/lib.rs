//! Cost models and the optimizer half of the paper's two-phase
//! architecture.
//!
//! The rewriting generator ([`viewplan_core`]) produces logical plans; this
//! crate turns them into physical plans and costs them under the three
//! models of Table 1:
//!
//! | model | physical plan | cost measure |
//! |-------|---------------|--------------|
//! | **M1** | a *set* of subgoals | number of subgoals |
//! | **M2** | a *list* of subgoals | `Σ size(gᵢ) + size(IRᵢ)` |
//! | **M3** | a list of subgoals annotated with dropped attributes | `Σ size(gᵢ) + size(GSRᵢ)` |
//!
//! * [`catalog`] — relation statistics and the Selinger-style cardinality
//!   estimator; [`oracle`] — a common size interface with an *exact*
//!   implementation (measuring a materialized view database through the
//!   engine) and an *estimated* one (catalog + independence assumption).
//! * [`m2`] — optimal join orders by dynamic programming over subgoal
//!   subsets (the all-attributes-retained IR size depends only on the
//!   prefix *set*, so Selinger DP is exact here).
//! * [`m3`] — attribute dropping: the classic supplementary-relation rule
//!   \[4\] plus the paper's §6.2 renaming heuristic, which drops a
//!   variable that still occurs in later subgoals whenever renaming its
//!   prefix occurrences preserves equivalence to the query (Example 6.1).
//! * [`optimizer`] — the facade: generate rewritings with
//!   `CoreCover`/`CoreCover*`, search plans under a chosen model, and
//!   optionally graft empty-core **filter subgoals** onto a rewriting when
//!   they pay for themselves (§5.1–5.2, rewriting `P3`).

pub mod catalog;
pub mod error;
pub mod m1;
pub mod m2;
pub mod m3;
pub mod optimizer;
pub mod oracle;
pub mod plan;

pub use catalog::{Catalog, RelationStats};
pub use error::{CostError, PlanError};
pub use m1::{m1_cost, optimal_m1_rewritings};
pub use m2::{optimal_m2_order, try_optimal_m2_order, M2_MAX_SUBGOALS};
pub use m3::{optimal_m3_plan, plan_with_order, try_optimal_m3_plan, DropPolicy, M3_MAX_SUBGOALS};
pub use optimizer::{CostModel, Optimizer, OptimizerConfig, PlanOutcome, PlannedRewriting};
pub use oracle::{EstimateOracle, ExactOracle, SizeOracle};
pub use plan::PhysicalPlan;
