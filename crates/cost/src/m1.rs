//! Cost model M1: the number of view subgoals (§3).
//!
//! Under M1 a physical plan is just the *set* of subgoals and its cost is
//! their count — a proxy for the number of joins. The optimal rewritings
//! are exactly the globally-minimal rewritings, which `CoreCover`
//! enumerates (Theorem 3.1 defines the search space, Corollary 4.1 the
//! covers ↔ GMRs correspondence), so this module is a thin wrapper.

use viewplan_core::{CoreCover, Rewriting};
use viewplan_cq::{ConjunctiveQuery, ViewSet};

/// The M1 cost of a rewriting: its number of subgoals.
pub fn m1_cost(rewriting: &Rewriting) -> usize {
    rewriting.body.len()
}

/// All M1-optimal rewritings (the GMRs), via `CoreCover`.
pub fn optimal_m1_rewritings(query: &ConjunctiveQuery, views: &ViewSet) -> Vec<Rewriting> {
    CoreCover::new(query, views).run().rewritings().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewplan_cq::{parse_query, parse_views};

    #[test]
    fn gmr_has_minimum_m1_cost() {
        let q = parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)").unwrap();
        let views = parse_views(
            "v1(M, D, C) :- car(M, D), loc(D, C).\n\
             v2(S, M, C) :- part(S, M, C).\n\
             v4(M, D, C, S) :- car(M, D), loc(D, C), part(S, M, C).",
        )
        .unwrap();
        let best = optimal_m1_rewritings(&q, &views);
        assert_eq!(best.len(), 1);
        assert_eq!(m1_cost(&best[0]), 1);
    }

    #[test]
    fn no_views_no_rewritings() {
        let q = parse_query("q(X) :- e(X, X)").unwrap();
        let views = parse_views("v(A, B) :- f(A, B)").unwrap();
        assert!(optimal_m1_rewritings(&q, &views).is_empty());
    }
}
