//! Cost model M2: sum of relation and intermediate-relation sizes (§5).
//!
//! A physical plan is an order `g1, …, gn`; its cost is
//! `Σᵢ size(gᵢ) + size(IRᵢ)` where `IRᵢ` joins the first `i` subgoals with
//! **all attributes retained**. Because `IRᵢ` then depends only on the
//! *set* of the first `i` subgoals — not their order — Selinger-style
//! dynamic programming over subsets finds a provably optimal order:
//!
//! ```text
//! cost(S) = min over g ∈ S of  cost(S \ {g}) + size(g) + size(IR(S))
//! ```

use crate::error::CostError;
use crate::oracle::SizeOracle;
use std::collections::BTreeSet;
use viewplan_cq::{Atom, Symbol};
use viewplan_obs as obs;

/// The widest rewriting [`optimal_m2_order`] accepts: the DP visits
/// `2^n` subsets, so wider inputs are rejected as
/// [`CostError::TooManySubgoals`].
pub const M2_MAX_SUBGOALS: usize = 24;

/// An optimal M2 result: the join order (indices into the body), the
/// per-prefix `IR` sizes, and the total cost.
pub type M2Order = (Vec<usize>, Vec<f64>, f64);

/// Finds an optimal M2 join order for `body`, returning the order (as
/// indices into `body`), the per-prefix `IR` sizes, and the total cost.
/// Returns `None` for an empty body.
///
/// # Panics
/// Panics if `body` has more than [`M2_MAX_SUBGOALS`] subgoals; use
/// [`try_optimal_m2_order`] to handle that case as an error.
pub fn optimal_m2_order(
    body: &[Atom],
    oracle: &mut dyn SizeOracle,
) -> Option<(Vec<usize>, Vec<f64>, f64)> {
    try_optimal_m2_order(body, oracle).unwrap_or_else(|e| panic!("{e}"))
}

/// [`optimal_m2_order`] returning an error instead of panicking on
/// too-wide rewritings. Each DP subset counts as one `Phase::Plan` node
/// against the ambient [`viewplan_obs::Budget`]; on exhaustion the
/// search abandons the rewriting and returns `Ok(None)` — a partial DP
/// table cannot seed a valid full order, so there is no partial result
/// to salvage here. The optimizer falls back to other rewritings.
pub fn try_optimal_m2_order(
    body: &[Atom],
    oracle: &mut dyn SizeOracle,
) -> Result<Option<M2Order>, CostError> {
    let n = body.len();
    if n == 0 {
        return Ok(None);
    }
    if n > M2_MAX_SUBGOALS {
        return Err(CostError::TooManySubgoals {
            subgoals: n,
            limit: M2_MAX_SUBGOALS,
            model: "M2",
        });
    }
    let mut meter = obs::Meter::start(obs::Phase::Plan);
    let full: u32 = (1u32 << n) - 1;

    // Per-subset variable sets (all attributes retained).
    let vars_of = |mask: u32| -> BTreeSet<Symbol> {
        (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .flat_map(|i| body[i].variables())
            .collect()
    };

    let sizes: Vec<f64> = body.iter().map(|g| oracle.relation_size(g)).collect();
    let mut ir = vec![0.0f64; (full as usize) + 1];
    let mut best = vec![f64::INFINITY; (full as usize) + 1];
    let mut last: Vec<Option<usize>> = vec![None; (full as usize) + 1];
    best[0] = 0.0;
    for mask in 1..=full {
        if !meter.tick() {
            return Ok(None);
        }
        let retained = vars_of(mask);
        ir[mask as usize] = oracle.intermediate_size(body, mask, &retained);
        for (g, &gsize) in sizes.iter().enumerate() {
            if mask & (1 << g) == 0 {
                continue;
            }
            let prev = mask & !(1 << g);
            let cost = best[prev as usize] + gsize + ir[mask as usize];
            if cost < best[mask as usize] {
                best[mask as usize] = cost;
                last[mask as usize] = Some(g);
            }
        }
    }

    // Reconstruct the order.
    let mut order = Vec::with_capacity(n);
    let mut mask = full;
    while mask != 0 {
        // The DP seeds best[∅] = 0, so by induction every nonempty
        // subset received a finite candidate and recorded a last
        // subgoal; a `None` here would mean the table is corrupt, in
        // which case we stop reconstructing rather than spin forever.
        debug_assert!(last[mask as usize].is_some());
        let Some(g) = last[mask as usize] else { break };
        order.push(g);
        mask &= !(1 << g);
    }
    order.reverse();
    let ir_sizes: Vec<f64> = {
        let mut acc = 0u32;
        order
            .iter()
            .map(|&g| {
                acc |= 1 << g;
                ir[acc as usize]
            })
            .collect()
    };
    Ok(Some((order, ir_sizes, best[full as usize])))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactOracle;
    use viewplan_cq::parse_query;
    use viewplan_engine::{execute_ordered, Database};

    /// A database where joining small-first is clearly better.
    fn skewed_db() -> Database {
        let mut db = Database::new();
        // big(X, Y): 100 tuples; sel(Y): 1 tuple.
        let rows: Vec<Vec<i64>> = (0..100).map(|i| vec![i, i % 10]).collect();
        for r in &rows {
            db.insert("big", r.iter().map(|&v| v.into()).collect());
        }
        db.insert_int("sel", &[&[3]]);
        db
    }

    #[test]
    fn dp_picks_selective_subgoal_first() {
        let db = skewed_db();
        let q = parse_query("q(X) :- big(X, Y), sel(Y)").unwrap();
        let mut oracle = ExactOracle::new(&db);
        let (order, ir, cost) = optimal_m2_order(&q.body, &mut oracle).unwrap();
        assert_eq!(order, vec![1, 0]); // sel first
        assert_eq!(ir, vec![1.0, 10.0]);
        // cost = size(sel) + IR1 + size(big) + IR2 = 1 + 1 + 100 + 10.
        assert_eq!(cost, 112.0);
    }

    #[test]
    fn dp_cost_matches_engine_execution() {
        let db = skewed_db();
        let q = parse_query("q(X) :- big(X, Y), sel(Y)").unwrap();
        let mut oracle = ExactOracle::new(&db);
        let (order, _, cost) = optimal_m2_order(&q.body, &mut oracle).unwrap();
        let ordered: Vec<Atom> = order.iter().map(|&i| q.body[i].clone()).collect();
        let trace = execute_ordered(&q.head, &ordered, &db);
        assert_eq!(trace.cost() as f64, cost);
    }

    #[test]
    fn dp_beats_the_bad_order() {
        let db = skewed_db();
        let q = parse_query("q(X) :- big(X, Y), sel(Y)").unwrap();
        let bad = execute_ordered(&q.head, &q.body, &db); // big first
        let mut oracle = ExactOracle::new(&db);
        let (_, _, best) = optimal_m2_order(&q.body, &mut oracle).unwrap();
        assert!(best < bad.cost() as f64);
    }

    #[test]
    fn single_subgoal_plan() {
        let db = skewed_db();
        let q = parse_query("q(Y) :- sel(Y)").unwrap();
        let mut oracle = ExactOracle::new(&db);
        let (order, ir, cost) = optimal_m2_order(&q.body, &mut oracle).unwrap();
        assert_eq!(order, vec![0]);
        assert_eq!(ir, vec![1.0]);
        assert_eq!(cost, 2.0);
    }

    #[test]
    fn empty_body_returns_none() {
        let db = Database::new();
        let mut oracle = ExactOracle::new(&db);
        assert!(optimal_m2_order(&[], &mut oracle).is_none());
    }

    #[test]
    fn too_wide_body_is_an_error_not_a_panic() {
        let body: Vec<String> = (0..25).map(|i| format!("p{i}(X{i})")).collect();
        let q = parse_query(&format!("q(X0) :- {}", body.join(", "))).unwrap();
        let db = Database::new();
        let mut oracle = ExactOracle::new(&db);
        let err = try_optimal_m2_order(&q.body, &mut oracle).unwrap_err();
        assert_eq!(
            err,
            CostError::TooManySubgoals {
                subgoals: 25,
                limit: M2_MAX_SUBGOALS,
                model: "M2",
            }
        );
    }

    #[test]
    fn exhausted_plan_budget_abandons_the_dp() {
        let db = skewed_db();
        let q = parse_query("q(X) :- big(X, Y), sel(Y)").unwrap();
        let mut oracle = ExactOracle::new(&db);
        let budget = obs::BudgetSpec::new()
            .phase_nodes(obs::Phase::Plan, 1)
            .build();
        let _g = obs::budget::install(budget.clone());
        assert!(try_optimal_m2_order(&q.body, &mut oracle)
            .unwrap()
            .is_none());
        assert_eq!(budget.abandoned(obs::Phase::Plan), 1);
    }

    #[test]
    fn three_way_join_explores_all_orders() {
        let mut db = Database::new();
        db.insert_int("a", &[&[1, 1], &[2, 2], &[3, 3]]);
        db.insert_int("b", &[&[1, 5]]);
        db.insert_int("c", &[&[5, 9], &[5, 8]]);
        let q = parse_query("q(X, W) :- a(X, Y), b(Y, Z), c(Z, W)").unwrap();
        let mut oracle = ExactOracle::new(&db);
        let (order, _, cost) = optimal_m2_order(&q.body, &mut oracle).unwrap();
        // b is the most selective start.
        assert_eq!(order[0], 1);
        assert!(cost > 0.0);
    }
}
