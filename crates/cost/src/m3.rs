//! Cost model M3: dropping nonrelevant attributes (§6).
//!
//! A physical plan annotates each subgoal with the attributes to drop
//! after it is processed; the cost replaces `IRᵢ` with the generalized
//! supplementary relation `GSRᵢ`. Two dropping rules (§6.2):
//!
//! * **supplementary** \[4\]: drop `Y` when it appears neither in the head
//!   nor in any subsequent subgoal;
//! * **renaming heuristic** (the paper's contribution): even if `Y`
//!   appears in a later subgoal, drop it whenever renaming the `Y`
//!   occurrences in the processed prefix to a fresh `Y′` leaves the
//!   rewriting's expansion equivalent to the query. We *implement* the
//!   drop as that renaming: the prefix then no longer mentions `Y`, the
//!   supplementary rule disposes of `Y′`, and the later subgoal rebinds
//!   `Y` afresh — exactly the semantics of removing the equality
//!   comparison.
//!
//! Dropping a compared variable can *increase* later GSRs (the join loses
//! a predicate), so the paper calls for a cost-based tradeoff:
//! [`DropPolicy::SmartCostBased`] branches on each legal renaming and
//! keeps the cheaper plan, [`DropPolicy::SmartAggressive`] always renames,
//! and [`DropPolicy::Supplementary`] reproduces the classic behaviour
//! (the baseline Example 6.1 beats).

use crate::error::CostError;
use crate::oracle::SizeOracle;
use crate::plan::PhysicalPlan;
use std::collections::{BTreeSet, HashSet};
use viewplan_containment::{are_equivalent, expand, minimize};
use viewplan_cq::{Atom, ConjunctiveQuery, Substitution, Symbol, Term, ViewSet};
use viewplan_obs as obs;

/// How the planner decides what to drop (§6.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropPolicy {
    /// Only the classic supplementary-relation rule.
    Supplementary,
    /// Apply every legal renaming drop.
    SmartAggressive,
    /// Branch on each legal renaming drop and keep the cheaper plan.
    SmartCostBased,
}

/// Plans a fixed subgoal order under M3, deciding drops per the policy.
/// Returns the annotated plan, the per-step `GSR` sizes, and the total
/// cost. `query` and `views` are needed for the renaming heuristic's
/// equivalence test; `order` holds indices into `rewriting.body`.
///
/// Each drop-decision node counts as one `Phase::Plan` node against the
/// ambient [`viewplan_obs::Budget`]; `None` means the budget exhausted
/// before even the mandatory no-smart-drop plan completed (unbudgeted
/// callers always get `Some`).
pub fn plan_with_order(
    query: &ConjunctiveQuery,
    views: &ViewSet,
    rewriting: &ConjunctiveQuery,
    order: &[usize],
    policy: DropPolicy,
    oracle: &mut dyn SizeOracle,
) -> Option<(PhysicalPlan, Vec<f64>, f64)> {
    let mut meter = obs::Meter::start(obs::Phase::Plan);
    plan_with_order_metered(query, views, rewriting, order, policy, oracle, &mut meter)
}

/// [`plan_with_order`] against a caller-owned meter, so a surrounding
/// order search shares one `Phase::Plan` allowance across all orders.
#[allow(clippy::too_many_arguments)]
fn plan_with_order_metered(
    query: &ConjunctiveQuery,
    views: &ViewSet,
    rewriting: &ConjunctiveQuery,
    order: &[usize],
    policy: DropPolicy,
    oracle: &mut dyn SizeOracle,
    meter: &mut obs::Meter,
) -> Option<(PhysicalPlan, Vec<f64>, f64)> {
    assert_eq!(order.len(), rewriting.body.len(), "order must be complete");
    let qm = minimize(query);
    let body: Vec<Atom> = order.iter().map(|&i| rewriting.body[i].clone()).collect();
    let mut best: Option<(PhysicalPlan, Vec<f64>, f64)> = None;
    descend(
        &qm,
        views,
        &rewriting.head,
        body,
        0,
        Vec::new(),
        Vec::new(),
        0.0,
        policy,
        oracle,
        &mut best,
        f64::INFINITY,
        meter,
    );
    best
}

/// Recursive step: process subgoals left to right; at each step apply the
/// mandatory supplementary drops, and branch on the optional renaming
/// drops per the policy.
#[allow(clippy::too_many_arguments)]
fn descend(
    qm: &ConjunctiveQuery,
    views: &ViewSet,
    head: &Atom,
    eff_body: Vec<Atom>, // effective body in execution order, renames applied
    step: usize,
    steps_so_far: Vec<(Atom, HashSet<Symbol>)>,
    gsr_so_far: Vec<f64>,
    cost_so_far: f64,
    policy: DropPolicy,
    oracle: &mut dyn SizeOracle,
    best: &mut Option<(PhysicalPlan, Vec<f64>, f64)>,
    bound: f64,
    meter: &mut obs::Meter,
) {
    if cost_so_far >= bound {
        return; // branch-and-bound against the caller-provided bound
    }
    if !meter.tick() {
        return; // budget exhausted: keep whatever `best` holds so far
    }
    let n = eff_body.len();
    if step == n {
        let plan = PhysicalPlan::annotated(steps_so_far);
        if best.as_ref().is_none_or(|(_, _, c)| cost_so_far < *c) {
            *best = Some((plan, gsr_so_far, cost_so_far));
        }
        return;
    }

    // Smart policies: collect the renaming candidates at this step —
    // variables of the prefix (after this step's atom) that occur in the
    // suffix, are not head variables, and pass the equivalence test.
    let mut variants: Vec<Vec<Atom>> = vec![eff_body.clone()];
    if policy != DropPolicy::Supplementary {
        let head_vars: HashSet<Symbol> = head.variables().collect();
        let prefix_vars: BTreeSet<Symbol> = eff_body[..=step]
            .iter()
            .flat_map(|a| a.variables())
            .collect();
        let suffix_vars: HashSet<Symbol> = eff_body[step + 1..]
            .iter()
            .flat_map(|a| a.variables())
            .collect();
        for &y in &prefix_vars {
            if head_vars.contains(&y) || !suffix_vars.contains(&y) {
                continue;
            }
            // Try renaming y in the prefix of each existing variant.
            let mut new_variants = Vec::new();
            for variant in &variants {
                obs::counter!("m3.rename_attempts").incr();
                let renamed = rename_in_prefix(variant, step, y);
                if renaming_is_equivalent(qm, views, head, &renamed) {
                    obs::counter!("m3.rename_drops").incr();
                    new_variants.push(renamed);
                }
            }
            match policy {
                DropPolicy::SmartAggressive => {
                    // Replace: always take the rename when legal.
                    if !new_variants.is_empty() {
                        variants = new_variants;
                    }
                }
                DropPolicy::SmartCostBased => variants.extend(new_variants),
                DropPolicy::Supplementary => unreachable!(),
            }
        }
    }

    for eff in variants {
        // Supplementary drops for this variant: prefix variables that are
        // neither head variables nor used by the suffix.
        let head_vars: HashSet<Symbol> = head.variables().collect();
        let prefix_vars: BTreeSet<Symbol> =
            eff[..=step].iter().flat_map(|a| a.variables()).collect();
        let suffix_vars: HashSet<Symbol> =
            eff[step + 1..].iter().flat_map(|a| a.variables()).collect();
        let already_dropped: HashSet<Symbol> = steps_so_far
            .iter()
            .flat_map(|(_, d)| d.iter().copied())
            .collect();
        let drop_now: HashSet<Symbol> = prefix_vars
            .iter()
            .copied()
            .filter(|v| {
                !head_vars.contains(v) && !suffix_vars.contains(v) && !already_dropped.contains(v)
            })
            .collect();
        let retained: BTreeSet<Symbol> = prefix_vars
            .iter()
            .copied()
            .filter(|v| !drop_now.contains(v) && !already_dropped.contains(v))
            .collect();
        obs::counter!("m3.supplementary_drops").add(drop_now.len() as u64);
        let mask: u32 = (0..=step).fold(0, |m, i| m | (1 << i));
        let gsr = oracle.intermediate_size(&eff, mask, &retained);
        let gsize = oracle.relation_size(&eff[step]);
        let mut steps = steps_so_far.clone();
        steps.push((eff[step].clone(), drop_now));
        let mut gsrs = gsr_so_far.clone();
        gsrs.push(gsr);
        let bound_now = best.as_ref().map_or(bound, |(_, _, c)| bound.min(*c));
        descend(
            qm,
            views,
            head,
            eff,
            step + 1,
            steps,
            gsrs,
            cost_so_far + gsize + gsr,
            policy,
            oracle,
            best,
            bound_now,
            meter,
        );
        if meter.exhausted() {
            return;
        }
    }
}

/// Renames `y` to a fresh variable in the first `step + 1` atoms.
fn rename_in_prefix(body: &[Atom], step: usize, y: Symbol) -> Vec<Atom> {
    let fresh = Term::Var(Symbol::fresh(&y.as_str()));
    let subst = Substitution::from_pairs([(y, fresh)]);
    body.iter()
        .enumerate()
        .map(|(i, a)| {
            if i <= step {
                a.apply(&subst)
            } else {
                a.clone()
            }
        })
        .collect()
}

/// The §6.2 test: is the renamed rewriting still an equivalent rewriting
/// of the query?
fn renaming_is_equivalent(
    qm: &ConjunctiveQuery,
    views: &ViewSet,
    head: &Atom,
    renamed_body: &[Atom],
) -> bool {
    let candidate = ConjunctiveQuery::new(head.clone(), renamed_body.to_vec());
    match expand(&candidate, views) {
        Ok(exp) => are_equivalent(&exp, qm),
        Err(_) => false,
    }
}

/// The widest rewriting [`optimal_m3_plan`] accepts: the order search is
/// factorial (with per-order drop branching on top), so wider inputs are
/// rejected as [`CostError::TooManySubgoals`].
pub const M3_MAX_SUBGOALS: usize = 8;

/// Searches all subgoal orders (branch-and-bound over permutations) for
/// the cheapest M3 plan under the policy. Returns `None` for an empty
/// body.
///
/// # Panics
/// Panics if the rewriting has more than [`M3_MAX_SUBGOALS`] subgoals;
/// use [`try_optimal_m3_plan`] to handle that case as an error.
pub fn optimal_m3_plan(
    query: &ConjunctiveQuery,
    views: &ViewSet,
    rewriting: &ConjunctiveQuery,
    policy: DropPolicy,
    oracle: &mut dyn SizeOracle,
) -> Option<(PhysicalPlan, f64)> {
    try_optimal_m3_plan(query, views, rewriting, policy, oracle).unwrap_or_else(|e| panic!("{e}"))
}

/// [`optimal_m3_plan`] returning an error instead of panicking on
/// too-wide rewritings. The whole order search draws from one
/// `Phase::Plan` allowance of the ambient [`viewplan_obs::Budget`]; on
/// exhaustion it returns the best plan found so far (possibly `None`),
/// and the budget records the abandonment.
pub fn try_optimal_m3_plan(
    query: &ConjunctiveQuery,
    views: &ViewSet,
    rewriting: &ConjunctiveQuery,
    policy: DropPolicy,
    oracle: &mut dyn SizeOracle,
) -> Result<Option<(PhysicalPlan, f64)>, CostError> {
    let n = rewriting.body.len();
    if n == 0 {
        return Ok(None);
    }
    if n > M3_MAX_SUBGOALS {
        return Err(CostError::TooManySubgoals {
            subgoals: n,
            limit: M3_MAX_SUBGOALS,
            model: "M3",
        });
    }
    let mut meter = obs::Meter::start(obs::Phase::Plan);
    let mut best: Option<(PhysicalPlan, f64)> = None;
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut used = vec![false; n];
    permute(
        query, views, rewriting, policy, oracle, &mut order, &mut used, &mut best, &mut meter,
    );
    Ok(best)
}

// Recursive permutation search over join orders; state is threaded as
// parameters to avoid a builder struct for a single call site.
#[allow(clippy::too_many_arguments)]
fn permute(
    query: &ConjunctiveQuery,
    views: &ViewSet,
    rewriting: &ConjunctiveQuery,
    policy: DropPolicy,
    oracle: &mut dyn SizeOracle,
    order: &mut Vec<usize>,
    used: &mut Vec<bool>,
    best: &mut Option<(PhysicalPlan, f64)>,
    meter: &mut obs::Meter,
) {
    let n = rewriting.body.len();
    if order.len() == n {
        let Some((plan, _, cost)) =
            plan_with_order_metered(query, views, rewriting, order, policy, oracle, meter)
        else {
            return; // budget exhausted mid-order; best-so-far stands
        };
        if best.as_ref().is_none_or(|(_, c)| cost < *c) {
            *best = Some((plan, cost));
        }
        return;
    }
    for i in 0..n {
        if used[i] {
            continue;
        }
        if meter.exhausted() {
            return;
        }
        used[i] = true;
        order.push(i);
        permute(
            query, views, rewriting, policy, oracle, order, used, best, meter,
        );
        order.pop();
        used[i] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactOracle;
    use viewplan_cq::{parse_query, parse_views};
    use viewplan_engine::{materialize_views, Database};

    /// Example 6.1 / Figure 5 setup.
    fn example61() -> (ConjunctiveQuery, ViewSet, Database) {
        let q = parse_query("q(A) :- r(A, A), t(A, B), s(B, B)").unwrap();
        let views = parse_views(
            "v1(A, B) :- r(A, A), s(B, B).\n\
             v2(A, B) :- t(A, B), s(B, B).",
        )
        .unwrap();
        let mut base = Database::new();
        base.insert_int("r", &[&[1, 1], &[2, 2], &[4, 4], &[6, 6], &[8, 8]]);
        base.insert_int("s", &[&[2, 2], &[4, 4], &[6, 6], &[8, 8]]);
        base.insert_int("t", &[&[1, 2], &[3, 4], &[5, 6], &[7, 8]]);
        let vdb = materialize_views(&views, &base);
        (q, views, vdb)
    }

    #[test]
    fn figure5_view_relations_match_paper() {
        let (_, _, vdb) = example61();
        // v1 = {⟨1,2⟩, ⟨1,4⟩, ⟨1,6⟩, ⟨1,8⟩} ∪ rows for A ∈ {2,4,6,8}… no:
        // v1(A,B) :- r(A,A), s(B,B): A ∈ {1,2,4,6,8}, B ∈ {2,4,6,8} → 20
        // pairs; the paper's figure lists only the A = 1 rows it uses.
        let v1 = vdb.get("v1".into()).unwrap();
        assert_eq!(v1.len(), 20);
        let v2 = vdb.get("v2".into()).unwrap();
        assert_eq!(v2.len(), 4);
    }

    #[test]
    fn supplementary_keeps_compared_attribute() {
        // P2 = q(A) :- v1(A,B), v2(A,B): under the supplementary rule, B
        // must be kept after v1 (it is compared in v2), so GSR1 = |v1| = 20.
        let (q, views, vdb) = example61();
        let p2 = parse_query("q(A) :- v1(A, B), v2(A, B)").unwrap();
        let mut oracle = ExactOracle::new(&vdb);
        let (plan, gsrs, _) = plan_with_order(
            &q,
            &views,
            &p2,
            &[0, 1],
            DropPolicy::Supplementary,
            &mut oracle,
        )
        .unwrap();
        assert!(plan.steps[0].drop_after.is_empty());
        assert_eq!(gsrs[0], 20.0);
    }

    #[test]
    fn renaming_heuristic_drops_compared_attribute() {
        // §6.2: renaming B in the v1 prefix keeps equivalence, so B drops
        // and GSR1 becomes the distinct A values of v1 — 5.
        let (q, views, vdb) = example61();
        let p2 = parse_query("q(A) :- v1(A, B), v2(A, B)").unwrap();
        let mut oracle = ExactOracle::new(&vdb);
        let (plan, gsrs, cost_smart) = plan_with_order(
            &q,
            &views,
            &p2,
            &[0, 1],
            DropPolicy::SmartCostBased,
            &mut oracle,
        )
        .unwrap();
        assert_eq!(gsrs[0], 5.0);
        assert!(!plan.steps[0].drop_after.is_empty());
        let (_, _, cost_supp) = plan_with_order(
            &q,
            &views,
            &p2,
            &[0, 1],
            DropPolicy::Supplementary,
            &mut oracle,
        )
        .unwrap();
        assert!(cost_smart < cost_supp);
    }

    #[test]
    fn smart_plan_answer_is_still_correct() {
        let (q, views, vdb) = example61();
        let p2 = parse_query("q(A) :- v1(A, B), v2(A, B)").unwrap();
        let mut oracle = ExactOracle::new(&vdb);
        let (plan, _, _) = plan_with_order(
            &q,
            &views,
            &p2,
            &[0, 1],
            DropPolicy::SmartAggressive,
            &mut oracle,
        )
        .unwrap();
        let trace = plan.try_execute(&p2.head, &vdb).unwrap();
        assert_eq!(
            trace.answer.as_slice(),
            [vec![viewplan_engine::Value::Int(1)]]
        );
    }

    #[test]
    fn optimal_plan_searches_both_orders() {
        let (q, views, vdb) = example61();
        let p2 = parse_query("q(A) :- v1(A, B), v2(A, B)").unwrap();
        let mut oracle = ExactOracle::new(&vdb);
        let (_, cost) =
            optimal_m3_plan(&q, &views, &p2, DropPolicy::SmartCostBased, &mut oracle).unwrap();
        // Must be at least as good as the fixed order we tested above.
        let (_, _, fixed) = plan_with_order(
            &q,
            &views,
            &p2,
            &[0, 1],
            DropPolicy::SmartCostBased,
            &mut oracle,
        )
        .unwrap();
        assert!(cost <= fixed);
    }

    #[test]
    fn too_wide_rewriting_is_an_error_not_a_panic() {
        let (q, views, vdb) = example61();
        let body: Vec<String> = (0..9).map(|i| format!("p{i}(X{i})")).collect();
        let wide = parse_query(&format!("q(X0) :- {}", body.join(", "))).unwrap();
        let mut oracle = ExactOracle::new(&vdb);
        let err = try_optimal_m3_plan(&q, &views, &wide, DropPolicy::Supplementary, &mut oracle)
            .unwrap_err();
        assert_eq!(
            err,
            CostError::TooManySubgoals {
                subgoals: 9,
                limit: M3_MAX_SUBGOALS,
                model: "M3",
            }
        );
    }

    #[test]
    fn exhausted_plan_budget_keeps_best_so_far_and_never_beats_optimal() {
        let (q, views, vdb) = example61();
        let p2 = parse_query("q(A) :- v1(A, B), v2(A, B)").unwrap();
        let mut oracle = ExactOracle::new(&vdb);
        let (_, optimal) =
            optimal_m3_plan(&q, &views, &p2, DropPolicy::SmartCostBased, &mut oracle).unwrap();
        let budget = obs::BudgetSpec::new()
            .phase_nodes(obs::Phase::Plan, 3)
            .build();
        let _g = obs::budget::install(budget.clone());
        let truncated =
            try_optimal_m3_plan(&q, &views, &p2, DropPolicy::SmartCostBased, &mut oracle).unwrap();
        // A truncated search may return nothing or a worse plan — but a
        // cost below the true optimum would mean a fabricated plan.
        if let Some((_, cost)) = truncated {
            assert!(cost >= optimal - 1e-9);
        }
        assert!(budget.abandoned(obs::Phase::Plan) > 0);
    }

    #[test]
    fn head_variables_are_never_dropped() {
        let (q, views, vdb) = example61();
        let p2 = parse_query("q(A) :- v1(A, B), v2(A, B)").unwrap();
        let mut oracle = ExactOracle::new(&vdb);
        for policy in [
            DropPolicy::Supplementary,
            DropPolicy::SmartAggressive,
            DropPolicy::SmartCostBased,
        ] {
            let (plan, _, _) =
                plan_with_order(&q, &views, &p2, &[0, 1], policy, &mut oracle).unwrap();
            for s in &plan.steps {
                assert!(!s.drop_after.contains(&Symbol::new("A")));
            }
        }
    }

    #[test]
    fn last_step_drops_everything_but_the_head() {
        let (q, views, vdb) = example61();
        let p2 = parse_query("q(A) :- v1(A, B), v2(A, B)").unwrap();
        let mut oracle = ExactOracle::new(&vdb);
        let (_, gsrs, _) = plan_with_order(
            &q,
            &views,
            &p2,
            &[0, 1],
            DropPolicy::Supplementary,
            &mut oracle,
        )
        .unwrap();
        // Final GSR keeps only A → one distinct value.
        assert_eq!(*gsrs.last().unwrap(), 1.0);
    }
}
