//! The two-phase optimizer facade (§1.1, §5.2).
//!
//! Phase 1 (the rewriting generator) produces logical plans:
//! `CoreCover` for M1, `CoreCover*` for M2/M3 — the spaces Theorems 3.1
//! and 5.1 prove sufficient. Phase 2 (this module) searches physical plans
//! for each rewriting under the chosen cost model and keeps the cheapest.
//!
//! For M2 the optimizer additionally considers **filter subgoals**: view
//! tuples with empty tuple-cores (such as `v3(S)` in the paper's running
//! example) are grafted onto a rewriting greedily while they reduce the
//! plan cost — a selective view relation can shrink the intermediate
//! relations by more than its own size (§5.1, rewriting `P3`).

use crate::error::{CostError, PlanError};
use crate::m2::try_optimal_m2_order;
use crate::m3::{try_optimal_m3_plan, DropPolicy};
use crate::oracle::SizeOracle;
use crate::plan::PhysicalPlan;
use viewplan_core::{CoreCover, CoreCoverConfig, CoreCoverResult, Rewriting};
use viewplan_cq::{Atom, ConjunctiveQuery, ViewSet};
use viewplan_obs as obs;
use viewplan_obs::Completeness;

// Single registration site per counter name (the xtask lint enforces
// this): every cost-model path funnels through these helpers.
fn note_plan_enumerated() {
    obs::counter!("cost.plans_enumerated").incr();
}

fn note_too_wide_skipped() {
    obs::counter!("cost.too_wide_skipped").incr();
}

/// Which of Table 1's cost models to optimize under.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CostModel {
    /// Number of subgoals.
    M1,
    /// Σ relation + intermediate-relation sizes (all attributes kept).
    M2,
    /// Σ relation + generalized-supplementary-relation sizes.
    M3(DropPolicy),
}

/// Optimizer knobs.
#[derive(Clone, Debug)]
pub struct OptimizerConfig {
    /// Maximum number of filter subgoals grafted onto a rewriting (M2/M3).
    pub max_filters: usize,
    /// CoreCover configuration for the rewriting generator.
    pub corecover: CoreCoverConfig,
}

impl Default for OptimizerConfig {
    fn default() -> OptimizerConfig {
        OptimizerConfig {
            max_filters: 2,
            corecover: CoreCoverConfig::default(),
        }
    }
}

/// A costed physical plan for one rewriting.
#[derive(Clone, Debug)]
pub struct PlannedRewriting {
    /// The logical plan (possibly with grafted filter subgoals).
    pub rewriting: Rewriting,
    /// The physical plan.
    pub plan: PhysicalPlan,
    /// Its cost under the requested model.
    pub cost: f64,
}

/// A full optimization run's result: the cheapest plan found (if any)
/// plus an honest completeness marker. `Truncated` means a node budget
/// cut a search short or a too-wide rewriting had to be skipped — `best`
/// is the cheapest of what *was* searched, not necessarily the optimum.
/// `DeadlineExceeded` means the wall clock fired.
#[derive(Clone, Debug)]
pub struct PlanOutcome {
    /// The cheapest plan over the rewritings that were searched.
    pub best: Option<PlannedRewriting>,
    /// Whether the search covered the whole plan space.
    pub completeness: Completeness,
}

/// The optimizer: generates rewritings and picks the best physical plan.
pub struct Optimizer<'a> {
    query: &'a ConjunctiveQuery,
    views: &'a ViewSet,
    config: OptimizerConfig,
}

impl<'a> Optimizer<'a> {
    /// Prepares an optimizer with default configuration.
    pub fn new(query: &'a ConjunctiveQuery, views: &'a ViewSet) -> Optimizer<'a> {
        Optimizer {
            query,
            views,
            config: OptimizerConfig::default(),
        }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: OptimizerConfig) -> Optimizer<'a> {
        self.config = config;
        self
    }

    /// Finds the best physical plan over all generated rewritings under
    /// `model`, costing with `oracle`. Returns `None` when the query has
    /// no equivalent rewriting over the views.
    ///
    /// # Panics
    /// Panics if the query is too wide for the rewriting generator; use
    /// [`Optimizer::try_best_plan`] to handle that case as an error.
    pub fn best_plan(
        &self,
        model: CostModel,
        oracle: &mut dyn SizeOracle,
    ) -> Option<PlannedRewriting> {
        self.try_best_plan(model, oracle)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Optimizer::best_plan`] returning an error instead of panicking
    /// when the rewriting generator rejects the query (more than 64
    /// subgoals after minimization) or every generated rewriting is too
    /// wide for the plan search.
    pub fn try_best_plan(
        &self,
        model: CostModel,
        oracle: &mut dyn SizeOracle,
    ) -> Result<Option<PlannedRewriting>, PlanError> {
        self.try_plan(model, oracle).map(|o| o.best)
    }

    /// [`Optimizer::try_best_plan`] with an honest [`Completeness`]
    /// marker. Rewritings too wide for the plan search are skipped when
    /// any alternative plans successfully (the outcome is then marked
    /// [`Completeness::Truncated`]); only when *nothing* could be
    /// planned do they surface as [`PlanError::Cost`].
    pub fn try_plan(
        &self,
        model: CostModel,
        oracle: &mut dyn SizeOracle,
    ) -> Result<PlanOutcome, PlanError> {
        let _span = obs::span("optimizer.best_plan");
        let budget_before = obs::budget::snapshot();
        let generator =
            CoreCover::new(self.query, self.views).with_config(self.config.corecover.clone());
        let result = match model {
            CostModel::M1 => generator.try_run()?,
            CostModel::M2 | CostModel::M3(_) => generator.try_run_all_minimal()?,
        };
        self.plan_generated(model, result, oracle, budget_before)
    }

    /// Phase 2 alone: picks the best physical plan from an
    /// already-generated [`CoreCoverResult`]. This is the entry point for
    /// callers that run the rewriting generator themselves — e.g. a
    /// serving layer reusing prepared views across a query stream. The
    /// caller must have generated with the space `model` requires:
    /// `run`/`try_run` (GMRs) for M1, `run_all_minimal` (CoreCover*) for
    /// M2/M3 — Theorems 3.1 and 5.1 respectively.
    pub fn try_plan_generated(
        &self,
        model: CostModel,
        result: CoreCoverResult,
        oracle: &mut dyn SizeOracle,
    ) -> Result<PlanOutcome, PlanError> {
        let _span = obs::span("optimizer.best_plan");
        self.plan_generated(model, result, oracle, obs::budget::snapshot())
    }

    fn plan_generated(
        &self,
        model: CostModel,
        result: CoreCoverResult,
        oracle: &mut dyn SizeOracle,
        budget_before: obs::budget::HitSnapshot,
    ) -> Result<PlanOutcome, PlanError> {
        let generated = result.stats.completeness;
        let planned = match model {
            CostModel::M1 => Ok((self.plan_m1(result), false)),
            CostModel::M2 => self.plan_m2(result, oracle),
            CostModel::M3(policy) => self.plan_m3(result, policy, oracle),
        };
        let (best, skipped_wide) = planned?;
        let mut completeness = generated.worst(obs::budget::completeness_since(budget_before));
        if skipped_wide {
            completeness = completeness.worst(Completeness::Truncated);
        }
        Ok(PlanOutcome { best, completeness })
    }

    fn plan_m1(&self, result: CoreCoverResult) -> Option<PlannedRewriting> {
        let r = result.rewritings().first()?.clone();
        note_plan_enumerated();
        let plan = PhysicalPlan::ordered(r.body.clone());
        let cost = plan.m1_cost() as f64;
        Some(PlannedRewriting {
            rewriting: r,
            plan,
            cost,
        })
    }

    fn plan_m2(
        &self,
        result: CoreCoverResult,
        oracle: &mut dyn SizeOracle,
    ) -> Result<(Option<PlannedRewriting>, bool), PlanError> {
        let _enum_span = obs::span("optimizer.enumerate");
        let filters: Vec<Atom> = result
            .filter_tuples()
            .iter()
            .map(|t| t.atom.clone())
            .collect();
        let mut best: Option<PlannedRewriting> = None;
        let mut skipped: Option<CostError> = None;
        for r in result.rewritings() {
            if obs::budget::cancelled() {
                break; // deadline: keep the cheapest plan found so far
            }
            // Base plan, then greedy filter grafting.
            let mut current = r.clone();
            let mut current_best = match self.m2_plan(&current, oracle) {
                Ok(Some(p)) => p,
                // Degenerate (empty-body) or budget-abandoned rewriting.
                Ok(None) => continue,
                Err(e) => {
                    skipped = Some(e);
                    note_too_wide_skipped();
                    continue;
                }
            };
            for _ in 0..self.config.max_filters {
                let mut improved = false;
                for f in &filters {
                    if current.body.contains(f) {
                        continue;
                    }
                    let mut with_f = current.clone();
                    with_f.body.push(f.clone());
                    // Grafting is a heuristic improvement; a filter that
                    // pushes the body past the DP width is just not taken.
                    if let Ok(Some(p)) = self.m2_plan(&with_f, oracle) {
                        if p.cost < current_best.cost {
                            current = with_f;
                            current_best = p;
                            improved = true;
                        }
                    }
                }
                if !improved {
                    break;
                }
            }
            if best.as_ref().is_none_or(|b| current_best.cost < b.cost) {
                best = Some(current_best);
            }
        }
        match (best, skipped) {
            (None, Some(e)) => Err(e.into()),
            (b, s) => Ok((b, s.is_some())),
        }
    }

    fn plan_m3(
        &self,
        result: CoreCoverResult,
        policy: DropPolicy,
        oracle: &mut dyn SizeOracle,
    ) -> Result<(Option<PlannedRewriting>, bool), PlanError> {
        let _enum_span = obs::span("optimizer.enumerate");
        let mut best: Option<PlannedRewriting> = None;
        let mut skipped: Option<CostError> = None;
        for r in result.rewritings() {
            if obs::budget::cancelled() {
                break; // deadline: keep the cheapest plan found so far
            }
            note_plan_enumerated();
            let (plan, cost) = match try_optimal_m3_plan(self.query, self.views, r, policy, oracle)
            {
                Ok(Some(pc)) => pc,
                Ok(None) => continue,
                Err(e) => {
                    skipped = Some(e);
                    note_too_wide_skipped();
                    continue;
                }
            };
            if best.as_ref().is_none_or(|b| cost < b.cost) {
                best = Some(PlannedRewriting {
                    rewriting: r.clone(),
                    plan,
                    cost,
                });
            }
        }
        match (best, skipped) {
            (None, Some(e)) => Err(e.into()),
            (b, s) => Ok((b, s.is_some())),
        }
    }

    fn m2_plan(
        &self,
        rewriting: &Rewriting,
        oracle: &mut dyn SizeOracle,
    ) -> Result<Option<PlannedRewriting>, CostError> {
        note_plan_enumerated();
        let Some((order, _, cost)) = try_optimal_m2_order(&rewriting.body, oracle)? else {
            return Ok(None);
        };
        let atoms: Vec<Atom> = order.iter().map(|&i| rewriting.body[i].clone()).collect();
        Ok(Some(PlannedRewriting {
            rewriting: rewriting.clone(),
            plan: PhysicalPlan::ordered(atoms),
            cost,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::ExactOracle;
    use viewplan_cq::{parse_query, parse_views};
    use viewplan_engine::{materialize_views, Database, Value};

    /// The car-loc-part schema with a database tuned so that the filter
    /// view v3 pays off (§5.1: v3 is very selective).
    fn carlocpart_setup() -> (ConjunctiveQuery, ViewSet, Database) {
        let q = parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)").unwrap();
        let views = parse_views(
            "v1(M, D, C) :- car(M, D), loc(D, C).\n\
             v2(S, M, C) :- part(S, M, C).\n\
             v3(S) :- car(M, a), loc(a, C), part(S, M, C).",
        )
        .unwrap();
        let mut base = Database::new();
        // Dealer a sells 20 makes; a has 5 cities; parts: each make sold in
        // each of a's cities by one store, plus noise stores elsewhere.
        for m in 0..20 {
            base.insert("car", vec![Value::Int(m), Value::sym("a")]);
            base.insert("car", vec![Value::Int(m), Value::sym("other")]);
        }
        for c in 0..5 {
            base.insert("loc", vec![Value::sym("a"), Value::Int(100 + c)]);
            base.insert("loc", vec![Value::sym("other"), Value::Int(200 + c)]);
        }
        // One matching store; lots of irrelevant part rows.
        base.insert(
            "part",
            vec![Value::Int(7777), Value::Int(3), Value::Int(102)],
        );
        for s in 0..200 {
            base.insert(
                "part",
                vec![Value::Int(s), Value::Int(50 + s % 7), Value::Int(900)],
            );
        }
        let vdb = materialize_views(&views, &base);
        (q, views, vdb)
    }

    #[test]
    fn m1_returns_a_gmr() {
        let (q, views, _) = carlocpart_setup();
        let db = Database::new();
        let mut oracle = ExactOracle::new(&db);
        let best = Optimizer::new(&q, &views)
            .best_plan(CostModel::M1, &mut oracle)
            .unwrap();
        assert_eq!(best.cost, 2.0); // v1 + v2 (no v4 in this view set)
    }

    #[test]
    fn m2_plan_answers_match_direct_evaluation() {
        let (q, views, vdb) = carlocpart_setup();
        let mut oracle = ExactOracle::new(&vdb);
        let best = Optimizer::new(&q, &views)
            .best_plan(CostModel::M2, &mut oracle)
            .unwrap();
        let trace = best.plan.try_execute(&best.rewriting.head, &vdb).unwrap();
        // Direct evaluation of the query over base relations:
        // q1(7777, 102) is the only answer.
        assert_eq!(
            trace.answer.as_slice(),
            [vec![Value::Int(7777), Value::Int(102)]]
        );
    }

    #[test]
    fn m2_filter_grafting_uses_v3_when_it_helps() {
        let (q, views, vdb) = carlocpart_setup();
        let mut oracle = ExactOracle::new(&vdb);
        let config = OptimizerConfig {
            max_filters: 1,
            ..OptimizerConfig::default()
        };
        let with_filters = Optimizer::new(&q, &views)
            .with_config(config)
            .best_plan(CostModel::M2, &mut oracle)
            .unwrap();
        let no_filters = OptimizerConfig {
            max_filters: 0,
            ..OptimizerConfig::default()
        };
        let without = Optimizer::new(&q, &views)
            .with_config(no_filters)
            .best_plan(CostModel::M2, &mut oracle)
            .unwrap();
        // v3 has exactly one tuple here, so starting from it collapses the
        // intermediate sizes.
        assert!(with_filters.cost <= without.cost);
        assert!(with_filters
            .rewriting
            .body
            .iter()
            .any(|a| a.predicate.as_str() == "v3"));
    }

    #[test]
    fn m3_beats_or_ties_m2_on_the_same_rewriting() {
        let (q, views, vdb) = carlocpart_setup();
        let mut oracle = ExactOracle::new(&vdb);
        let m2 = Optimizer::new(&q, &views)
            .best_plan(CostModel::M2, &mut oracle)
            .unwrap();
        let m3 = Optimizer::new(&q, &views)
            .best_plan(CostModel::M3(DropPolicy::SmartCostBased), &mut oracle)
            .unwrap();
        // GSRs are projections of IRs, so the best M3 cost can only be ≤
        // the best plain-order cost of the same rewritings (filters aside).
        assert!(m3.cost <= m2.cost + 1e-9 || m2.rewriting.body.len() > m3.rewriting.body.len());
    }

    #[test]
    fn too_wide_query_is_an_error_not_a_panic() {
        let body: Vec<String> = (0..65).map(|i| format!("p{i}(X{i})")).collect();
        let head: Vec<String> = (0..65).map(|i| format!("X{i}")).collect();
        let q = parse_query(&format!("q({}) :- {}", head.join(", "), body.join(", "))).unwrap();
        let views = parse_views("v0(A) :- p0(A)").unwrap();
        let db = Database::new();
        let mut oracle = ExactOracle::new(&db);
        let err = Optimizer::new(&q, &views)
            .try_best_plan(CostModel::M2, &mut oracle)
            .unwrap_err();
        assert_eq!(
            err,
            PlanError::Core(viewplan_core::CoreError::TooManySubgoals { subgoals: 65 })
        );
    }

    #[test]
    fn too_wide_rewriting_is_skipped_when_an_alternative_plans() {
        // Two minimal rewritings exist: one view per subgoal (9 subgoals —
        // beyond the M3 order search) and the single all-covering view.
        // The optimizer must plan the latter and mark the run truncated,
        // not panic on the former.
        let body: Vec<String> = (0..9).map(|i| format!("p{i}(X{i})")).collect();
        let q = parse_query(&format!("q(X0) :- {}", body.join(", "))).unwrap();
        let mut views_src: Vec<String> = (0..9).map(|i| format!("v{i}(X) :- p{i}(X).")).collect();
        views_src.push(format!("vall(X0) :- {}.", body.join(", ")));
        let views = parse_views(&views_src.join("\n")).unwrap();
        let db = Database::new();
        let mut oracle = ExactOracle::new(&db);
        let outcome = Optimizer::new(&q, &views)
            .try_plan(CostModel::M3(DropPolicy::Supplementary), &mut oracle)
            .unwrap();
        let best = outcome.best.unwrap();
        assert_eq!(best.rewriting.body.len(), 1);
        assert_eq!(outcome.completeness, viewplan_obs::Completeness::Truncated);
    }

    #[test]
    fn all_rewritings_too_wide_is_a_cost_error() {
        // 25 subgoals fit CoreCover's 64-bit masks but exceed the M2 DP
        // width, and the only rewriting uses all 25 singleton views.
        let body: Vec<String> = (0..25).map(|i| format!("p{i}(X{i})")).collect();
        let q = parse_query(&format!("q(X0) :- {}", body.join(", "))).unwrap();
        let views_src: Vec<String> = (0..25).map(|i| format!("v{i}(X) :- p{i}(X).")).collect();
        let views = parse_views(&views_src.join("\n")).unwrap();
        let db = Database::new();
        let mut oracle = ExactOracle::new(&db);
        let err = Optimizer::new(&q, &views)
            .try_best_plan(CostModel::M2, &mut oracle)
            .unwrap_err();
        assert_eq!(
            err,
            PlanError::Cost(CostError::TooManySubgoals {
                subgoals: 25,
                limit: crate::m2::M2_MAX_SUBGOALS,
                model: "M2",
            })
        );
    }

    #[test]
    fn no_rewriting_yields_none() {
        let q = parse_query("q(X) :- zzz(X, X)").unwrap();
        let views = parse_views("v(A, B) :- car(A, B)").unwrap();
        let db = Database::new();
        let mut oracle = ExactOracle::new(&db);
        assert!(Optimizer::new(&q, &views)
            .best_plan(CostModel::M2, &mut oracle)
            .is_none());
    }
}
