//! Size oracles: the one interface both plan searches cost against.
//!
//! [`ExactOracle`] measures sizes by actually evaluating subgoal prefixes
//! over a (view) database through the engine — the ground truth the
//! paper's cost measures are defined over. [`EstimateOracle`] predicts the
//! same quantities from a [`Catalog`] with the independence assumption, as
//! a real optimizer would. Both memoize per (subset, retained-variables)
//! key, which is what makes the subset-DP plan search cheap.

use crate::catalog::Catalog;
use std::collections::{BTreeSet, HashMap};
use viewplan_cq::{is_acyclic, Atom, ConjunctiveQuery, Symbol, Term};
use viewplan_engine::{current_engine, evaluate, Database, Engine};
use viewplan_obs as obs;

// Single registration site per counter name (the xtask lint enforces
// this): both oracles funnel their memo bookkeeping through here.
fn note_oracle_call(cache_hit: bool) {
    obs::counter!("cost.oracle_calls").incr();
    if cache_hit {
        obs::counter!("cost.oracle_cache_hits").incr();
    }
}

/// Sizes used by the M2/M3 cost measures.
pub trait SizeOracle {
    /// `size(g)`: the size of the stored relation behind subgoal `g`.
    fn relation_size(&mut self, atom: &Atom) -> f64;

    /// The size of the intermediate relation joining the subgoals of
    /// `body` selected by `mask`, projected onto `retained` (pass all
    /// variables of the subset for plain `IR`, a subset for `GSR`).
    fn intermediate_size(&mut self, body: &[Atom], mask: u32, retained: &BTreeSet<Symbol>) -> f64;
}

/// Measures sizes against a real database (exact, memoized).
pub struct ExactOracle<'a> {
    db: &'a Database,
    memo: HashMap<(Vec<Atom>, Vec<Symbol>), f64>,
}

impl<'a> ExactOracle<'a> {
    /// Builds an oracle over the given (view) database.
    pub fn new(db: &'a Database) -> ExactOracle<'a> {
        ExactOracle {
            db,
            memo: HashMap::new(),
        }
    }
}

impl SizeOracle for ExactOracle<'_> {
    fn relation_size(&mut self, atom: &Atom) -> f64 {
        self.db.get(atom.predicate).map_or(0.0, |r| r.len() as f64)
    }

    fn intermediate_size(&mut self, body: &[Atom], mask: u32, retained: &BTreeSet<Symbol>) -> f64 {
        let atoms: Vec<Atom> = (0..body.len())
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| body[i].clone())
            .collect();
        let key = (atoms.clone(), retained.iter().copied().collect::<Vec<_>>());
        if let Some(&v) = self.memo.get(&key) {
            note_oracle_call(true);
            return v;
        }
        note_oracle_call(false);
        let head = Atom::new("__ir__", retained.iter().map(|&v| Term::Var(v)).collect());
        let q = ConjunctiveQuery::new(head, atoms);
        let size = evaluate(&q, self.db).len() as f64;
        self.memo.insert(key, size);
        size
    }
}

/// Per-variable distinct-count bookkeeping for the estimator.
#[derive(Clone, Debug)]
struct Estimate {
    rows: f64,
    distinct: HashMap<Symbol, f64>,
}

/// Predicts sizes from catalog statistics (System-R style).
pub struct EstimateOracle<'a> {
    catalog: &'a Catalog,
    memo: HashMap<Vec<Atom>, Estimate>,
}

impl<'a> EstimateOracle<'a> {
    /// Builds an estimator over the given catalog.
    pub fn new(catalog: &'a Catalog) -> EstimateOracle<'a> {
        EstimateOracle {
            catalog,
            memo: HashMap::new(),
        }
    }

    /// Estimated rows and per-variable distincts for one subgoal after its
    /// local selections (constants, repeated variables).
    fn atom_estimate(&self, atom: &Atom) -> Estimate {
        let Some(stats) = self.catalog.get(atom.predicate) else {
            return Estimate {
                rows: 0.0,
                distinct: HashMap::new(),
            };
        };
        let mut rows = stats.cardinality;
        let mut seen: HashMap<Symbol, f64> = HashMap::new();
        for (i, t) in atom.terms.iter().enumerate() {
            let d = stats.distinct.get(i).copied().unwrap_or(1.0).max(1.0);
            match *t {
                Term::Const(_) => rows /= d,
                Term::Var(v) => {
                    if let Some(prev) = seen.get(&v) {
                        // Repeated variable: equality selection.
                        rows /= prev.max(d);
                    } else {
                        seen.insert(v, d);
                    }
                }
            }
        }
        let rows = rows.max(if stats.cardinality > 0.0 { 1.0 } else { 0.0 });
        let distinct = seen.into_iter().map(|(v, d)| (v, d.min(rows))).collect();
        Estimate { rows, distinct }
    }

    /// Estimated join of two sub-results on their shared variables.
    fn join(a: &Estimate, b: &Estimate) -> Estimate {
        let mut rows = a.rows * b.rows;
        let mut distinct = a.distinct.clone();
        for (&v, &db) in &b.distinct {
            match distinct.get_mut(&v) {
                Some(da) => {
                    rows /= da.max(db).max(1.0);
                    *da = da.min(db);
                }
                None => {
                    distinct.insert(v, db);
                }
            }
        }
        let rows = if a.rows == 0.0 || b.rows == 0.0 {
            0.0
        } else {
            rows.max(1.0)
        };
        for d in distinct.values_mut() {
            *d = d.min(rows.max(1.0));
        }
        Estimate { rows, distinct }
    }

    /// The memoized estimate for a subset, folding subgoals in index order
    /// (the canonical fold keeps the DP deterministic).
    fn subset_estimate(&mut self, body: &[Atom], mask: u32) -> Estimate {
        let atoms: Vec<Atom> = (0..body.len())
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| body[i].clone())
            .collect();
        if let Some(e) = self.memo.get(&atoms) {
            note_oracle_call(true);
            return e.clone();
        }
        note_oracle_call(false);
        let mut acc: Option<Estimate> = None;
        for atom in &atoms {
            let e = self.atom_estimate(atom);
            acc = Some(match acc {
                None => e,
                Some(prev) => Self::join(&prev, &e),
            });
        }
        let e = acc.unwrap_or(Estimate {
            rows: 1.0,
            distinct: HashMap::new(),
        });
        self.memo.insert(atoms, e.clone());
        e
    }
}

impl SizeOracle for EstimateOracle<'_> {
    fn relation_size(&mut self, atom: &Atom) -> f64 {
        self.catalog
            .get(atom.predicate)
            .map_or(0.0, |s| s.cardinality)
    }

    fn intermediate_size(&mut self, body: &[Atom], mask: u32, retained: &BTreeSet<Symbol>) -> f64 {
        let e = self.subset_estimate(body, mask);
        // Projection estimate: capped product of retained distincts.
        let mut cap = 1.0f64;
        let mut all_retained = true;
        for (v, d) in &e.distinct {
            if retained.contains(v) {
                cap *= d.max(1.0);
            } else {
                all_retained = false;
            }
        }
        let predicted = if all_retained {
            e.rows
        } else {
            e.rows.min(cap)
        };
        // Width-aware bound: under the Yannakakis engine an acyclic
        // subset is semijoin-reduced before joining, so no intermediate
        // can exceed what the reduced inputs support — linear in the
        // total input, never the independence-assumption product. The
        // M2/M3 searches inherit the tighter bound through this one
        // method; other engines keep the classical estimate.
        if current_engine() == Engine::Yannakakis {
            let atoms: Vec<Atom> = (0..body.len())
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| body[i].clone())
                .collect();
            if atoms.len() > 1 && is_acyclic(&atoms) {
                let input: f64 = atoms.iter().map(|a| self.atom_estimate(a).rows).sum();
                return predicted.min(input);
            }
        }
        predicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::RelationStats;
    use viewplan_cq::parse_query;

    fn body(src: &str) -> Vec<Atom> {
        parse_query(src).unwrap().body
    }

    fn all_vars(atoms: &[Atom]) -> BTreeSet<Symbol> {
        atoms.iter().flat_map(|a| a.variables()).collect()
    }

    #[test]
    fn exact_oracle_measures_prefixes() {
        let mut db = Database::new();
        db.insert_int("v1", &[&[1, 2], &[1, 4], &[1, 6], &[1, 8]]);
        db.insert_int("v2", &[&[1, 2], &[3, 4], &[5, 6], &[7, 8]]);
        let b = body("q(A) :- v1(A, B), v2(A, B)");
        let mut o = ExactOracle::new(&db);
        assert_eq!(o.relation_size(&b[0]), 4.0);
        let full = all_vars(&b);
        assert_eq!(o.intermediate_size(&b, 0b01, &full), 4.0);
        // v1 ⋈ v2 on (A, B): only (1,2) matches.
        assert_eq!(o.intermediate_size(&b, 0b11, &full), 1.0);
        // GSR: project the v1 prefix onto A only → one value.
        let a_only: BTreeSet<Symbol> = [Symbol::new("A")].into_iter().collect();
        assert_eq!(o.intermediate_size(&b, 0b01, &a_only), 1.0);
    }

    #[test]
    fn estimate_oracle_join_formula() {
        let mut cat = Catalog::new();
        cat.set("r", RelationStats::uniform(2, 100.0, 10.0));
        cat.set("s", RelationStats::uniform(2, 50.0, 10.0));
        let b = body("q(X, Z) :- r(X, Y), s(Y, Z)");
        let mut o = EstimateOracle::new(&cat);
        let full = all_vars(&b);
        // |r ⋈ s| = 100·50 / max(10,10) = 500.
        assert_eq!(o.intermediate_size(&b, 0b11, &full), 500.0);
    }

    #[test]
    fn estimate_selection_on_constant() {
        let mut cat = Catalog::new();
        cat.set("r", RelationStats::uniform(2, 100.0, 10.0));
        let b = body("q(X) :- r(X, c)");
        let mut o = EstimateOracle::new(&cat);
        let full = all_vars(&b);
        assert_eq!(o.intermediate_size(&b, 0b1, &full), 10.0);
    }

    #[test]
    fn estimate_projection_caps_by_distincts() {
        let mut cat = Catalog::new();
        cat.set("r", RelationStats::uniform(2, 100.0, 5.0));
        let b = body("q(X) :- r(X, Y)");
        let mut o = EstimateOracle::new(&cat);
        let x_only: BTreeSet<Symbol> = [Symbol::new("X")].into_iter().collect();
        // Projecting 100 rows onto a 5-distinct column → 5.
        assert_eq!(o.intermediate_size(&b, 0b1, &x_only), 5.0);
    }

    #[test]
    fn unknown_relation_estimates_zero() {
        let cat = Catalog::new();
        let b = body("q(X) :- nope(X, Y)");
        let mut o = EstimateOracle::new(&cat);
        assert_eq!(o.relation_size(&b[0]), 0.0);
        assert_eq!(o.intermediate_size(&b, 0b1, &all_vars(&b)), 0.0);
    }

    #[test]
    fn repeated_variable_selection_estimate() {
        let mut cat = Catalog::new();
        cat.set("r", RelationStats::uniform(2, 100.0, 10.0));
        let b = body("q(X) :- r(X, X)");
        let mut o = EstimateOracle::new(&cat);
        assert_eq!(o.intermediate_size(&b, 0b1, &all_vars(&b)), 10.0);
    }

    #[test]
    fn yannakakis_engine_caps_acyclic_intermediates_linearly() {
        let mut cat = Catalog::new();
        cat.set("r", RelationStats::uniform(2, 100.0, 10.0));
        cat.set("s", RelationStats::uniform(2, 50.0, 10.0));
        let b = body("q(X, Z) :- r(X, Y), s(Y, Z)");
        let mut o = EstimateOracle::new(&cat);
        let full = all_vars(&b);
        // Classical estimate (see `estimate_oracle_join_formula`): 500.
        // Under Yannakakis the acyclic chain is semijoin-reduced first,
        // so the intermediate is bounded by the input: 100 + 50.
        let _g = viewplan_engine::install(Engine::Yannakakis);
        assert_eq!(o.intermediate_size(&b, 0b11, &full), 150.0);
    }

    #[test]
    fn yannakakis_engine_keeps_cyclic_estimates() {
        let mut cat = Catalog::new();
        for p in ["r", "s", "t"] {
            cat.set(p, RelationStats::uniform(2, 100.0, 10.0));
        }
        let b = body("q(A) :- r(A, B), s(B, C), t(C, A)");
        let mut o = EstimateOracle::new(&cat);
        let full = all_vars(&b);
        let ambient = o.intermediate_size(&b, 0b111, &full);
        let mut o2 = EstimateOracle::new(&cat);
        let _g = viewplan_engine::install(Engine::Yannakakis);
        // The triangle is cyclic: no reduction, no cap.
        assert_eq!(o2.intermediate_size(&b, 0b111, &full), ambient);
    }
}
