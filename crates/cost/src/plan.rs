//! Physical plans.

use std::collections::HashSet;
use std::fmt;
use viewplan_cq::{Atom, Symbol};
use viewplan_engine::{
    try_execute_annotated, AnnotatedStep, Database, EngineError, ExecutionTrace,
};

/// A physical plan: an ordered list of subgoals, each annotated with the
/// attributes to drop after it is processed (Table 1's M3 plans; with all
/// annotations empty this is an M2 plan, and forgetting the order gives
/// the M1 plan).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhysicalPlan {
    /// The execution steps in order.
    pub steps: Vec<AnnotatedStep>,
}

impl PhysicalPlan {
    /// An M2 plan: the given subgoal order with no dropping.
    pub fn ordered(atoms: Vec<Atom>) -> PhysicalPlan {
        PhysicalPlan {
            steps: atoms
                .into_iter()
                .map(|atom| AnnotatedStep {
                    atom,
                    drop_after: HashSet::new(),
                })
                .collect(),
        }
    }

    /// An M3 plan with explicit per-step drop sets.
    pub fn annotated(steps: Vec<(Atom, HashSet<Symbol>)>) -> PhysicalPlan {
        PhysicalPlan {
            steps: steps
                .into_iter()
                .map(|(atom, drop_after)| AnnotatedStep { atom, drop_after })
                .collect(),
        }
    }

    /// Number of subgoals — the M1 cost of this plan.
    pub fn m1_cost(&self) -> usize {
        self.steps.len()
    }

    /// Executes the plan against a (view) database, reporting the exact
    /// per-step sizes and the answer. Fails if the plan drops a head
    /// variable or never binds one (an unsafe rewriting).
    pub fn try_execute(&self, head: &Atom, db: &Database) -> Result<ExecutionTrace, EngineError> {
        try_execute_annotated(head, &self.steps, db)
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                f.write_str(" ⋈ ")?;
            }
            write!(f, "{}", step.atom)?;
            if !step.drop_after.is_empty() {
                let mut drops: Vec<String> = step.drop_after.iter().map(|v| v.as_str()).collect();
                drops.sort();
                write!(f, " [drop {}]", drops.join(", "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewplan_cq::parse_query;

    #[test]
    fn display_shows_order_and_drops() {
        let q = parse_query("q(A) :- v1(A, B), v2(A, C)").unwrap();
        let plan = PhysicalPlan::annotated(vec![
            (q.body[0].clone(), [Symbol::new("B")].into_iter().collect()),
            (q.body[1].clone(), HashSet::new()),
        ]);
        assert_eq!(plan.to_string(), "v1(A, B) [drop B] ⋈ v2(A, C)");
        assert_eq!(plan.m1_cost(), 2);
    }

    #[test]
    fn execute_matches_engine() {
        let q = parse_query("q(A) :- v1(A, B)").unwrap();
        let mut db = Database::new();
        db.insert_int("v1", &[&[1, 2], &[3, 4]]);
        let plan = PhysicalPlan::ordered(q.body.clone());
        let trace = plan.try_execute(&q.head, &db).unwrap();
        assert_eq!(trace.answer.len(), 2);
        assert_eq!(trace.intermediate_sizes, [2]);
    }
}
