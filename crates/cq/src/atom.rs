//! Atoms (subgoals): a predicate applied to a list of terms.

use crate::subst::Substitution;
use crate::symbol::Symbol;
use crate::term::Term;
use std::fmt;

/// An atom `p(t1, …, tk)` — a query head or a body subgoal.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Atom {
    /// The predicate (base-relation or view) name.
    pub predicate: Symbol,
    /// The argument list; positions matter, names do not.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Builds an atom from a predicate name and terms.
    pub fn new(predicate: impl Into<Symbol>, terms: Vec<Term>) -> Atom {
        Atom {
            predicate: predicate.into(),
            terms,
        }
    }

    /// Number of arguments.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over the variables of this atom, in argument order, with
    /// repetitions.
    pub fn variables(&self) -> impl Iterator<Item = Symbol> + '_ {
        self.terms.iter().filter_map(|t| t.as_var())
    }

    /// True iff `v` occurs among the arguments.
    pub fn contains_var(&self, v: Symbol) -> bool {
        self.variables().any(|x| x == v)
    }

    /// Applies a substitution to every argument.
    pub fn apply(&self, subst: &Substitution) -> Atom {
        Atom {
            predicate: self.predicate,
            terms: self.terms.iter().map(|t| subst.apply(*t)).collect(),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom() -> Atom {
        Atom::new("car", vec![Term::var("M"), Term::cst("anderson")])
    }

    #[test]
    fn arity_and_vars() {
        let a = atom();
        assert_eq!(a.arity(), 2);
        assert_eq!(a.variables().count(), 1);
        assert!(a.contains_var(Symbol::new("M")));
        assert!(!a.contains_var(Symbol::new("anderson")));
    }

    #[test]
    fn display() {
        assert_eq!(atom().to_string(), "car(M, anderson)");
    }

    #[test]
    fn apply_substitution() {
        let mut s = Substitution::new();
        s.bind(Symbol::new("M"), Term::cst("honda"));
        let a = atom().apply(&s);
        assert_eq!(a.to_string(), "car(honda, anderson)");
    }

    #[test]
    fn repeated_variables_are_iterated_with_repetition() {
        let a = Atom::new("e", vec![Term::var("X"), Term::var("X")]);
        assert_eq!(a.variables().count(), 2);
    }
}
