//! Parse errors with source positions.

use std::fmt;

/// An error produced while parsing the Datalog-style query syntax.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub column: usize,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, column: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new(3, 7, "expected ')'");
        assert_eq!(e.to_string(), "parse error at 3:7: expected ')'");
    }
}
