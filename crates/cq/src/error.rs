//! Parse errors with source positions.

use crate::span::Span;
use std::fmt;

/// An error produced while parsing the Datalog-style query syntax.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub column: usize,
    /// Byte range of the offending token (empty at end of input).
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    pub(crate) fn new(line: usize, column: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            line,
            column,
            span: Span::new(0, 0, line, column),
            message: message.into(),
        }
    }

    pub(crate) fn spanned(span: Span, message: impl Into<String>) -> ParseError {
        ParseError {
            line: span.line,
            column: span.column,
            span,
            message: message.into(),
        }
    }

    /// Builds a parse error at an explicit position. Primarily for
    /// adapters wrapping other syntaxes into `ParseError` (e.g. the
    /// extended-query comparison parser).
    pub fn at(line: usize, column: usize, message: impl Into<String>) -> ParseError {
        ParseError::new(line, column, message)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new(3, 7, "expected ')'");
        assert_eq!(e.to_string(), "parse error at 3:7: expected ')'");
    }

    #[test]
    fn spanned_errors_carry_their_byte_range() {
        let e = ParseError::spanned(Span::new(10, 14, 2, 3), "boom");
        assert_eq!((e.line, e.column), (2, 3));
        assert_eq!((e.span.start, e.span.end), (10, 14));
    }
}
