//! The query hypergraph: GYO ear-removal, join forests, and a
//! hypertree-width estimate.
//!
//! A conjunctive query's *hypergraph* has one node per variable and one
//! hyperedge per subgoal (the set of variables the subgoal mentions). The
//! GYO (Graham / Yu–Özsoyoğlu) reduction repeatedly removes an **ear** —
//! an edge whose variables shared with the rest of the hypergraph are all
//! covered by a single *witness* edge. The query is **acyclic** iff the
//! reduction consumes every edge; the witness links then form a **join
//! forest**, and the removal order is a valid bottom-up semijoin
//! schedule. Acyclicity is what makes both containment checking
//! (semijoins instead of the exponential homomorphism search) and
//! evaluation (Yannakakis' algorithm, no intermediate blowup) run in
//! polynomial time — the structure exploited throughout the acyclic fast
//! path.
//!
//! For cyclic queries, [`hypertree_width_estimate`] keeps running GYO
//! past the stuck point by greedily merging the two most-overlapping
//! edges into one cluster; the largest cluster ever removed is a cheap
//! upper-bound proxy for the hypertree width (1 iff acyclic). The
//! blowup predictor (VP007) and the cost estimators consult it: width 1
//! means intermediate results can be kept linear in the input.
//!
//! The module also hosts the `VIEWPLAN_ACYCLIC` switch that gates the
//! containment fast path, mirroring the engine-selection switch: a
//! process default (env or [`set_acyclic_default`]) plus a thread-local
//! override ([`install_acyclic`]) for scoped experiments and tests.

use crate::atom::Atom;
use crate::symbol::Symbol;
use std::cell::Cell;
use std::collections::BTreeSet;
use viewplan_sync::{AtomicU8, Ordering};

/// The witness structure GYO leaves behind on an acyclic hypergraph.
///
/// Indices refer to positions in the edge list handed to [`gyo_forest`]
/// (for [`join_forest`], positions in the query body).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JoinForest {
    /// `parent[e]` is the witness edge that covered `e`'s shared
    /// variables when `e` was removed — `None` for roots (the last edge
    /// of a connected component, or an edge sharing no variables with
    /// the rest).
    pub parent: Vec<Option<usize>>,
    /// Ear-removal order: every edge appears before its parent, so
    /// iterating `order` is a valid bottom-up semijoin schedule and the
    /// reverse is a valid top-down one.
    pub order: Vec<usize>,
}

impl JoinForest {
    /// The root edges (those with no parent).
    pub fn roots(&self) -> impl Iterator<Item = usize> + '_ {
        self.parent
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.is_none().then_some(i))
    }
}

/// Runs GYO ear-removal over variable-set edges. Returns the join forest
/// iff the hypergraph is acyclic.
///
/// Deterministic: each pass removes the lowest-indexed ear, witnessed by
/// the lowest-indexed covering edge, so the forest (and hence every
/// downstream semijoin schedule) is stable across runs.
pub fn gyo_forest(edges: &[BTreeSet<Symbol>]) -> Option<JoinForest> {
    let n = edges.len();
    let mut alive = vec![true; n];
    let mut parent = vec![None; n];
    let mut order = Vec::with_capacity(n);
    let mut remaining = n;
    while remaining > 0 {
        let Some((ear, witness)) = find_ear(edges, &alive) else {
            return None; // stuck: the remainder is cyclic
        };
        alive[ear] = false;
        parent[ear] = witness;
        order.push(ear);
        remaining -= 1;
    }
    Some(JoinForest { parent, order })
}

/// The lowest-indexed alive ear and its witness, if any edge currently
/// qualifies.
fn find_ear(edges: &[BTreeSet<Symbol>], alive: &[bool]) -> Option<(usize, Option<usize>)> {
    for e in 0..edges.len() {
        if !alive[e] {
            continue;
        }
        // Variables of `e` shared with any *other* alive edge.
        let shared: BTreeSet<Symbol> = edges[e]
            .iter()
            .copied()
            .filter(|v| {
                edges
                    .iter()
                    .enumerate()
                    .any(|(o, vars)| o != e && alive[o] && vars.contains(v))
            })
            .collect();
        if shared.is_empty() {
            // Isolated (or last-of-component) edge: an ear with no
            // witness — a root of the forest.
            return Some((e, None));
        }
        let witness = (0..edges.len())
            .find(|&w| w != e && alive[w] && shared.iter().all(|v| edges[w].contains(v)));
        if let Some(w) = witness {
            return Some((e, Some(w)));
        }
    }
    None
}

/// The variable hyperedge of one atom.
pub fn atom_vars(atom: &Atom) -> BTreeSet<Symbol> {
    atom.variables().collect()
}

/// GYO over a query body: the join forest iff the body is acyclic.
pub fn join_forest(body: &[Atom]) -> Option<JoinForest> {
    let edges: Vec<BTreeSet<Symbol>> = body.iter().map(atom_vars).collect();
    gyo_forest(&edges)
}

/// True iff the body's hypergraph is acyclic (GYO consumes every edge).
pub fn is_acyclic(body: &[Atom]) -> bool {
    join_forest(body).is_some()
}

/// A cheap upper-bound proxy for the hypertree width of a body: run GYO,
/// and whenever it gets stuck, merge the two alive edges sharing the
/// most variables into one cluster and continue. The answer is the
/// largest number of original edges in any removed cluster — `1` iff
/// the body is acyclic, and e.g. `2` for a triangle. An empty body has
/// width `0`.
pub fn hypertree_width_estimate(body: &[Atom]) -> usize {
    let mut edges: Vec<BTreeSet<Symbol>> = body.iter().map(atom_vars).collect();
    // How many original atoms each current edge has absorbed.
    let mut weight: Vec<usize> = vec![1; edges.len()];
    let mut alive = vec![true; edges.len()];
    let mut remaining = edges.len();
    let mut width = 0usize;
    while remaining > 0 {
        if let Some((ear, _)) = find_ear(&edges, &alive) {
            alive[ear] = false;
            remaining -= 1;
            width = width.max(weight[ear]);
            continue;
        }
        // Stuck: merge the most-overlapping alive pair (lowest indices
        // on ties) and retry. Each merge lowers the edge count, so the
        // loop terminates.
        let (mut best, mut best_overlap) = (None, 0usize);
        for a in 0..edges.len() {
            if !alive[a] {
                continue;
            }
            for b in (a + 1)..edges.len() {
                if !alive[b] {
                    continue;
                }
                let overlap = edges[a].intersection(&edges[b]).count();
                if best.is_none() || overlap > best_overlap {
                    best = Some((a, b));
                    best_overlap = overlap;
                }
            }
        }
        // A stuck hypergraph has ≥ 2 alive edges (a lone edge is always
        // an ear), so a pair always exists.
        let Some((a, b)) = best else { break };
        let vars_b = std::mem::take(&mut edges[b]);
        edges[a].extend(vars_b);
        weight[a] += weight[b];
        alive[b] = false;
        remaining -= 1;
    }
    width
}

// ---------------------------------------------------------------------
// The `VIEWPLAN_ACYCLIC` switch gating the containment fast path.
//
// Same shape as the engine selector: a process-wide default settable
// programmatically or via the environment, plus a thread-local override
// with RAII restore for scoped use in tests and differential harnesses.

/// Process default: 0 = unset (consult `VIEWPLAN_ACYCLIC`, then on),
/// 1 = on, 2 = off.
static DEFAULT_ACYCLIC: AtomicU8 = AtomicU8::new(0);

thread_local! {
    static ACYCLIC_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Sets the process-wide default for the acyclic containment fast path
/// (overridden per-thread by [`install_acyclic`]).
pub fn set_acyclic_default(on: bool) {
    // ordering: standalone flag, no other memory published alongside it.
    DEFAULT_ACYCLIC.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// The process-wide default: an explicit [`set_acyclic_default`] wins,
/// then `VIEWPLAN_ACYCLIC` (`off`/`0`/`false` disable), then on.
pub fn acyclic_default() -> bool {
    // ordering: standalone flag; racing initializers write the same value.
    match DEFAULT_ACYCLIC.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = match std::env::var("VIEWPLAN_ACYCLIC") {
                Ok(v) => !matches!(
                    v.trim().to_ascii_lowercase().as_str(),
                    "off" | "0" | "false"
                ),
                Err(_) => true,
            };
            // Cache so the env var is consulted once per process.
            // ordering: standalone flag, idempotent write.
            DEFAULT_ACYCLIC.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Whether the acyclic containment fast path is enabled on this thread.
pub fn acyclic_enabled() -> bool {
    ACYCLIC_OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(acyclic_default)
}

/// Restores the previous thread-local switch state on drop.
pub struct AcyclicGuard {
    previous: Option<bool>,
}

/// Forces the fast path on or off for the current thread until the
/// returned guard drops.
pub fn install_acyclic(on: bool) -> AcyclicGuard {
    let previous = ACYCLIC_OVERRIDE.with(|o| o.replace(Some(on)));
    AcyclicGuard { previous }
}

impl Drop for AcyclicGuard {
    fn drop(&mut self) {
        let previous = self.previous;
        ACYCLIC_OVERRIDE.with(|o| o.set(previous));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn body(src: &str) -> Vec<Atom> {
        parse_query(src).unwrap().body
    }

    #[test]
    fn chain_is_acyclic_with_a_path_forest() {
        let b = body("q(A, D) :- r(A, B), s(B, C), t(C, D)");
        let f = join_forest(&b).expect("chains are acyclic");
        // Deterministic removal: ends at a single root.
        assert_eq!(f.order.len(), 3);
        assert_eq!(f.roots().count(), 1);
        // Every non-root's parent is removed after it.
        for (i, &e) in f.order.iter().enumerate() {
            if let Some(p) = f.parent[e] {
                let p_at = f.order.iter().position(|&x| x == p).unwrap();
                assert!(p_at > i, "parent {p} removed before child {e}");
            }
        }
        assert_eq!(hypertree_width_estimate(&b), 1);
    }

    #[test]
    fn star_is_acyclic() {
        let b = body("q(A, B, C, D) :- r(A, B), r(A, C), r(A, D)");
        assert!(is_acyclic(&b));
        assert_eq!(hypertree_width_estimate(&b), 1);
    }

    #[test]
    fn triangle_is_cyclic_with_width_two() {
        let b = body("q(A, B, C) :- r(A, B), s(B, C), t(C, A)");
        assert!(join_forest(&b).is_none());
        assert_eq!(hypertree_width_estimate(&b), 2);
    }

    #[test]
    fn triangle_with_pendant_edge_is_still_cyclic() {
        let b = body("q(A) :- r(A, B), s(B, C), t(C, A), u(C, D)");
        assert!(!is_acyclic(&b));
        assert_eq!(hypertree_width_estimate(&b), 2);
    }

    #[test]
    fn disconnected_components_form_a_forest() {
        let b = body("q(A, C) :- r(A, B), s(C, D)");
        let f = join_forest(&b).expect("a cartesian product is acyclic");
        assert_eq!(f.roots().count(), 2);
    }

    #[test]
    fn constant_only_atom_is_an_isolated_ear() {
        let b = body("q(X) :- r(X, Y), guard(a, b)");
        let f = join_forest(&b).expect("ground atoms never create cycles");
        assert_eq!(f.roots().count(), 2);
    }

    #[test]
    fn self_loop_and_duplicate_edges_are_acyclic() {
        // An edge contained in another is always an ear.
        let b = body("q(X, Y) :- e(X, X), e(X, Y), e(X, Y)");
        assert!(is_acyclic(&b));
    }

    #[test]
    fn empty_body_is_trivially_acyclic() {
        let f = gyo_forest(&[]).unwrap();
        assert!(f.order.is_empty());
        assert_eq!(hypertree_width_estimate(&[]), 0);
    }

    #[test]
    fn larger_cycle_is_detected() {
        let b = body("q(A) :- r(A, B), r(B, C), r(C, D), r(D, A)");
        assert!(!is_acyclic(&b));
        assert!(hypertree_width_estimate(&b) >= 2);
    }

    #[test]
    fn switch_default_and_override_nest() {
        // The default is on (no env in tests, or whatever the harness
        // set) — the override must win and restore.
        let outer = acyclic_enabled();
        {
            let _g = install_acyclic(false);
            assert!(!acyclic_enabled());
            {
                let _g2 = install_acyclic(true);
                assert!(acyclic_enabled());
            }
            assert!(!acyclic_enabled());
        }
        assert_eq!(acyclic_enabled(), outer);
    }
}
