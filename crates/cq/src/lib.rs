//! Conjunctive-query data model for `viewplan`.
//!
//! This crate provides the logical vocabulary used throughout the
//! reproduction of *"Generating Efficient Plans for Queries Using Views"*
//! (Li, Afrati, Ullman; SIGMOD 2001):
//!
//! * interned [`Symbol`]s so terms are `Copy` and cheap to hash,
//! * [`Term`]s (variables and constants), [`Atom`]s, and safe
//!   [`ConjunctiveQuery`]s (select-project-join queries),
//! * [`View`]s (named conjunctive queries over base relations) and
//!   [`ViewSet`]s,
//! * [`Substitution`]s (the variable mappings used by containment
//!   mappings, expansions, and canonical databases),
//! * a Datalog-style [`parser`] following the paper's convention that
//!   names beginning with a lower-case letter are constants/predicates and
//!   names beginning with an upper-case letter are variables.
//!
//! # Example
//!
//! The paper's running "car-loc-part" query (Example 1.1):
//!
//! ```
//! use viewplan_cq::parse_query;
//!
//! let q = parse_query(
//!     "q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)",
//! ).unwrap();
//! assert_eq!(q.body.len(), 3);
//! assert!(q.is_safe());
//! ```

pub mod atom;
pub mod error;
pub mod hypergraph;
pub mod parser;
pub mod query;
pub mod span;
pub mod subst;
pub mod symbol;
pub mod term;
pub mod view;

pub use atom::Atom;
pub use error::ParseError;
pub use hypergraph::{
    acyclic_default, acyclic_enabled, hypertree_width_estimate, install_acyclic, is_acyclic,
    join_forest, set_acyclic_default, AcyclicGuard, JoinForest,
};
pub use parser::{parse_atom, parse_program, parse_query, parse_views, Program, RuleSpans};
pub use query::ConjunctiveQuery;
pub use span::Span;
pub use subst::Substitution;
pub use symbol::Symbol;
pub use term::{Constant, Term};
pub use view::{View, ViewSet};
