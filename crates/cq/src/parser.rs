//! Datalog-style parser for queries and view definitions.
//!
//! Grammar (following the paper's notation, §2.1):
//!
//! ```text
//! program  := rule (rule)*
//! rule     := atom ":-" atom ("," atom)* "."?
//! atom     := ident "(" terms? ")"
//! terms    := term ("," term)*
//! term     := IDENT | INTEGER
//! ```
//!
//! Identifiers beginning with an upper-case letter are **variables**;
//! identifiers beginning with a lower-case letter are **constants** (in
//! term position) or predicate names (in predicate position). `%` and `#`
//! start line comments.
//!
//! Every token carries a byte-range [`Span`]; the parser merges them so
//! each parsed rule records the span of its head and of every body atom
//! (see [`RuleSpans`]), letting diagnostics underline the offending atom.

use crate::atom::Atom;
use crate::error::ParseError;
use crate::query::ConjunctiveQuery;
use crate::span::Span;
use crate::term::Term;
use crate::view::{View, ViewSet};

/// A parsed program: a list of rules in source order, plus the source
/// spans of each rule's head and body atoms (parallel to `rules`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    /// The rules, each a safe conjunctive query.
    pub rules: Vec<ConjunctiveQuery>,
    /// Per-rule atom spans; `spans[i]` describes `rules[i]`.
    pub spans: Vec<RuleSpans>,
}

/// Source spans for one rule: where the head and each body atom sit in
/// the original text. `body[j]` covers the rule's j-th body atom.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RuleSpans {
    /// Span of the head atom.
    pub head: Span,
    /// Span of each body atom, in body order.
    pub body: Vec<Span>,
}

impl RuleSpans {
    /// The whole rule, head through last body atom.
    pub fn rule(&self) -> Span {
        self.body.iter().fold(self.head, |acc, s| acc.merge(*s))
    }
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Int(i64),
    LParen,
    RParen,
    Comma,
    Implies,
    Dot,
}

struct Lexer<'a> {
    src: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            chars: src.char_indices().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> Option<(usize, char)> {
        let next = self.chars.next();
        if let Some((_, c)) = next {
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        next
    }

    fn err_at(&self, start: usize, len: usize, msg: impl Into<String>) -> ParseError {
        ParseError::spanned(Span::new(start, start + len, self.line, self.col), msg)
    }

    /// Tokenizes the whole input, attaching the byte span of each token.
    fn tokenize(mut self) -> Result<Vec<(Tok, Span)>, ParseError> {
        let mut out = Vec::new();
        while let Some(&(i, c)) = self.chars.peek() {
            let (line, col) = (self.line, self.col);
            let span = |end: usize| Span::new(i, end, line, col);
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '%' | '#' => {
                    while let Some(&(_, c)) = self.chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                '(' => {
                    self.bump();
                    out.push((Tok::LParen, span(i + 1)));
                }
                ')' => {
                    self.bump();
                    out.push((Tok::RParen, span(i + 1)));
                }
                ',' => {
                    self.bump();
                    out.push((Tok::Comma, span(i + 1)));
                }
                '.' => {
                    self.bump();
                    out.push((Tok::Dot, span(i + 1)));
                }
                ':' => {
                    self.bump();
                    match self.chars.peek() {
                        Some(&(_, '-')) => {
                            self.bump();
                            out.push((Tok::Implies, span(i + 2)));
                        }
                        _ => return Err(self.err_at(i, 1, "expected '-' after ':'")),
                    }
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    let mut end = i + c.len_utf8();
                    self.bump();
                    while let Some(&(j, c)) = self.chars.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            end = j + c.len_utf8();
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    out.push((Tok::Ident(self.src[start..end].to_string()), span(end)));
                }
                c if c.is_ascii_digit() || c == '-' => {
                    let start = i;
                    let mut end = i + c.len_utf8();
                    self.bump();
                    let mut saw_digit = c.is_ascii_digit();
                    while let Some(&(j, c)) = self.chars.peek() {
                        if c.is_ascii_digit() {
                            saw_digit = true;
                            end = j + c.len_utf8();
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    if !saw_digit {
                        return Err(self.err_at(start, end - start, "expected digits after '-'"));
                    }
                    let text = &self.src[start..end];
                    let value = text.parse::<i64>().map_err(|_| {
                        self.err_at(start, end - start, format!("integer out of range: {text}"))
                    })?;
                    out.push((Tok::Int(value), span(end)));
                }
                other => {
                    return Err(self.err_at(
                        i,
                        other.len_utf8(),
                        format!("unexpected character {other:?}"),
                    ))
                }
            }
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<(Tok, Span)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    /// The span of the current token — or, at end of input, an empty
    /// span just past the last token.
    fn position(&self) -> Span {
        match self.toks.get(self.pos) {
            Some(&(_, s)) => s,
            None => match self.toks.last() {
                Some(&(_, s)) => Span::new(s.end, s.end, s.line, s.column + s.len()),
                None => Span::new(0, 0, 1, 1),
            },
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::spanned(self.position(), msg)
    }

    fn bump(&mut self) -> Option<(Tok, Span)> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<Span, ParseError> {
        match self.bump() {
            Some((t, s)) if t == want => Ok(s),
            Some((t, s)) => Err(ParseError::spanned(
                s,
                format!("expected {what}, found {t:?}"),
            )),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some((Tok::Ident(name), span)) => {
                let Some(first) = name.chars().next() else {
                    return Err(ParseError::spanned(span, "empty identifier"));
                };
                if first.is_ascii_uppercase() {
                    Ok(Term::var(&name))
                } else {
                    Ok(Term::cst(&name))
                }
            }
            Some((Tok::Int(i), _)) => Ok(Term::int(i)),
            Some((t, s)) => Err(ParseError::spanned(
                s,
                format!("expected term, found {t:?}"),
            )),
            None => Err(self.err("expected term, found end of input")),
        }
    }

    /// Parses one atom and returns it with the span from its predicate
    /// name through its closing parenthesis.
    fn atom(&mut self) -> Result<(Atom, Span), ParseError> {
        let (name, name_span) = match self.bump() {
            Some((Tok::Ident(name), span)) => {
                let Some(first) = name.chars().next() else {
                    return Err(ParseError::spanned(span, "empty identifier"));
                };
                if first.is_ascii_uppercase() {
                    return Err(ParseError::spanned(
                        span,
                        format!("predicate names must start lower-case, found {name:?}"),
                    ));
                }
                (name, span)
            }
            Some((t, s)) => {
                return Err(ParseError::spanned(
                    s,
                    format!("expected predicate name, found {t:?}"),
                ))
            }
            None => return Err(self.err("expected predicate name, found end of input")),
        };
        self.expect(Tok::LParen, "'('")?;
        let mut terms = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                terms.push(self.term()?);
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.bump();
                    }
                    _ => break,
                }
            }
        }
        let close = self.expect(Tok::RParen, "')'")?;
        Ok((Atom::new(name.as_str(), terms), name_span.merge(close)))
    }

    fn rule(&mut self) -> Result<(ConjunctiveQuery, RuleSpans), ParseError> {
        let (head, head_span) = self.atom()?;
        self.expect(Tok::Implies, "':-'")?;
        let mut body = Vec::new();
        let mut body_spans = Vec::new();
        let (first, first_span) = self.atom()?;
        body.push(first);
        body_spans.push(first_span);
        while self.peek() == Some(&Tok::Comma) {
            self.bump();
            let (a, s) = self.atom()?;
            body.push(a);
            body_spans.push(s);
        }
        if self.peek() == Some(&Tok::Dot) {
            self.bump();
        }
        let q = ConjunctiveQuery::new(head, body);
        if !q.is_safe() {
            return Err(ParseError::spanned(
                head_span,
                format!("unsafe rule (head variable not in body): {q}"),
            ));
        }
        Ok((
            q,
            RuleSpans {
                head: head_span,
                body: body_spans,
            },
        ))
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut rules = Vec::new();
        let mut spans = Vec::new();
        while self.peek().is_some() {
            let (q, s) = self.rule()?;
            rules.push(q);
            spans.push(s);
        }
        Ok(Program { rules, spans })
    }
}

fn parser(src: &str) -> Result<Parser, ParseError> {
    Ok(Parser {
        toks: Lexer::new(src).tokenize()?,
        pos: 0,
    })
}

/// Parses a whole program (one rule per `:-` clause, `.`-terminated or
/// newline-separated).
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    parser(src)?.program()
}

/// Parses a single rule as a conjunctive query.
pub fn parse_query(src: &str) -> Result<ConjunctiveQuery, ParseError> {
    let mut p = parser(src)?;
    let (q, _) = p.rule()?;
    if p.peek().is_some() {
        return Err(p.err("trailing input after rule"));
    }
    Ok(q)
}

/// Parses a program and wraps each rule as a view definition.
pub fn parse_views(src: &str) -> Result<ViewSet, ParseError> {
    let program = parse_program(src)?;
    Ok(ViewSet::from_views(
        program.rules.into_iter().map(View::new),
    ))
}

/// Parses a single atom such as `car(M, anderson)` (used for view-tuple
/// literals in tests).
pub fn parse_atom(src: &str) -> Result<Atom, ParseError> {
    let mut p = parser(src)?;
    let (a, _) = p.atom()?;
    if p.peek().is_some() {
        return Err(p.err("trailing input after atom"));
    }
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_car_loc_part() {
        let q =
            parse_query("q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)").unwrap();
        assert_eq!(q.head.predicate.as_str(), "q1");
        assert_eq!(q.body.len(), 3);
        assert_eq!(q.body[0].terms[1], Term::cst("anderson"));
        assert_eq!(q.body[2].terms[0], Term::var("S"));
    }

    #[test]
    fn parses_program_with_comments_and_dots() {
        let p = parse_program(
            "% the five views of Example 1.1\n\
             v1(M, D, C) :- car(M, D), loc(D, C).\n\
             v3(S) :- car(M, a), loc(a, C), part(S, M, C). # inline trailing\n",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[1].head.arity(), 1);
    }

    #[test]
    fn program_spans_cover_each_atom() {
        let src = "q(X) :- a(X, Y), b(Y, X)";
        let p = parse_program(src).unwrap();
        assert_eq!(p.spans.len(), 1);
        let spans = &p.spans[0];
        assert_eq!(spans.head.slice(src), "q(X)");
        assert_eq!(spans.body[0].slice(src), "a(X, Y)");
        assert_eq!(spans.body[1].slice(src), "b(Y, X)");
        assert_eq!((spans.body[1].line, spans.body[1].column), (1, 18));
        assert_eq!(spans.rule().slice(src), src);
    }

    #[test]
    fn spans_track_lines() {
        let src = "% comment\nq(X) :-\n  a(X),\n  b(X).\n";
        let p = parse_program(src).unwrap();
        let spans = &p.spans[0];
        assert_eq!((spans.head.line, spans.head.column), (2, 1));
        assert_eq!((spans.body[0].line, spans.body[0].column), (3, 3));
        assert_eq!((spans.body[1].line, spans.body[1].column), (4, 3));
        assert_eq!(spans.body[1].slice(src), "b(X)");
    }

    #[test]
    fn parses_integers_and_negatives() {
        let q = parse_query("q(X) :- r(X, 7), s(-3, X)").unwrap();
        assert_eq!(q.body[0].terms[1], Term::int(7));
        assert_eq!(q.body[1].terms[0], Term::int(-3));
    }

    #[test]
    fn rejects_unsafe_rule() {
        let e = parse_query("q(X, Y) :- a(X)").unwrap_err();
        assert!(e.message.contains("unsafe"));
        // The error points at the head atom that exports the unbound var.
        assert_eq!((e.span.start, e.span.end), (0, 7));
    }

    #[test]
    fn rejects_uppercase_predicate() {
        assert!(parse_query("q(X) :- Foo(X)").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_query("q(X) :- a(X) extra").is_err());
        assert!(parse_atom("a(X) b").is_err());
    }

    #[test]
    fn rejects_bad_tokens_with_position() {
        let e = parse_program("q(X) :- a(X), @(X)").unwrap_err();
        assert_eq!(e.line, 1);
        assert_eq!(e.column, 15);
        assert_eq!((e.span.start, e.span.end), (14, 15));
        assert!(e.message.contains("unexpected character"));
    }

    #[test]
    fn rejects_lone_colon_and_bare_minus() {
        assert!(parse_query("q(X) : a(X)").is_err());
        assert!(parse_query("q(X) :- a(-)").is_err());
    }

    #[test]
    fn zero_arity_atoms_parse() {
        let a = parse_atom("done()").unwrap();
        assert_eq!(a.arity(), 0);
    }

    #[test]
    fn views_round_trip_through_display() {
        let src = "v1(M, D, C) :- car(M, D), loc(D, C)";
        let vs = parse_views(src).unwrap();
        let printed = vs.to_string();
        let reparsed = parse_views(&printed).unwrap();
        assert_eq!(vs, reparsed);
    }
}
