//! Datalog-style parser for queries and view definitions.
//!
//! Grammar (following the paper's notation, §2.1):
//!
//! ```text
//! program  := rule (rule)*
//! rule     := atom ":-" atom ("," atom)* "."?
//! atom     := ident "(" terms? ")"
//! terms    := term ("," term)*
//! term     := IDENT | INTEGER
//! ```
//!
//! Identifiers beginning with an upper-case letter are **variables**;
//! identifiers beginning with a lower-case letter are **constants** (in
//! term position) or predicate names (in predicate position). `%` and `#`
//! start line comments.

use crate::atom::Atom;
use crate::error::ParseError;
use crate::query::ConjunctiveQuery;
use crate::term::Term;
use crate::view::{View, ViewSet};

/// A parsed program: a list of rules in source order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Program {
    /// The rules, each a safe conjunctive query.
    pub rules: Vec<ConjunctiveQuery>,
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Int(i64),
    LParen,
    RParen,
    Comma,
    Implies,
    Dot,
}

struct Lexer<'a> {
    src: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            chars: src.char_indices().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> Option<(usize, char)> {
        let next = self.chars.next();
        if let Some((_, c)) = next {
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        next
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.line, self.col, msg)
    }

    /// Tokenizes the whole input, attaching the position of each token.
    fn tokenize(mut self) -> Result<Vec<(Tok, usize, usize)>, ParseError> {
        let mut out = Vec::new();
        while let Some(&(i, c)) = self.chars.peek() {
            let (line, col) = (self.line, self.col);
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '%' | '#' => {
                    while let Some(&(_, c)) = self.chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                '(' => {
                    self.bump();
                    out.push((Tok::LParen, line, col));
                }
                ')' => {
                    self.bump();
                    out.push((Tok::RParen, line, col));
                }
                ',' => {
                    self.bump();
                    out.push((Tok::Comma, line, col));
                }
                '.' => {
                    self.bump();
                    out.push((Tok::Dot, line, col));
                }
                ':' => {
                    self.bump();
                    match self.chars.peek() {
                        Some(&(_, '-')) => {
                            self.bump();
                            out.push((Tok::Implies, line, col));
                        }
                        _ => return Err(self.err("expected '-' after ':'")),
                    }
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let start = i;
                    let mut end = i + c.len_utf8();
                    self.bump();
                    while let Some(&(j, c)) = self.chars.peek() {
                        if c.is_ascii_alphanumeric() || c == '_' {
                            end = j + c.len_utf8();
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    out.push((Tok::Ident(self.src[start..end].to_string()), line, col));
                }
                c if c.is_ascii_digit() || c == '-' => {
                    let start = i;
                    let mut end = i + c.len_utf8();
                    self.bump();
                    let mut saw_digit = c.is_ascii_digit();
                    while let Some(&(j, c)) = self.chars.peek() {
                        if c.is_ascii_digit() {
                            saw_digit = true;
                            end = j + c.len_utf8();
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    if !saw_digit {
                        return Err(self.err("expected digits after '-'"));
                    }
                    let text = &self.src[start..end];
                    let value = text
                        .parse::<i64>()
                        .map_err(|_| self.err(format!("integer out of range: {text}")))?;
                    out.push((Tok::Int(value), line, col));
                }
                other => return Err(self.err(format!("unexpected character {other:?}"))),
            }
        }
        Ok(out)
    }
}

struct Parser {
    toks: Vec<(Tok, usize, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _, _)| t)
    }

    fn position(&self) -> (usize, usize) {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|&(_, l, c)| (l, c))
            .unwrap_or((1, 1))
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let (l, c) = self.position();
        ParseError::new(l, c, msg)
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(t, _, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok, what: &str) -> Result<(), ParseError> {
        match self.bump() {
            Some(t) if t == want => Ok(()),
            Some(t) => Err(self.err(format!("expected {what}, found {t:?}"))),
            None => Err(self.err(format!("expected {what}, found end of input"))),
        }
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.bump() {
            Some(Tok::Ident(name)) => {
                let first = name.chars().next().expect("identifier is nonempty");
                if first.is_ascii_uppercase() {
                    Ok(Term::var(&name))
                } else {
                    Ok(Term::cst(&name))
                }
            }
            Some(Tok::Int(i)) => Ok(Term::int(i)),
            Some(t) => Err(self.err(format!("expected term, found {t:?}"))),
            None => Err(self.err("expected term, found end of input")),
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let name = match self.bump() {
            Some(Tok::Ident(name)) => {
                let first = name.chars().next().expect("identifier is nonempty");
                if first.is_ascii_uppercase() {
                    return Err(self.err(format!(
                        "predicate names must start lower-case, found {name:?}"
                    )));
                }
                name
            }
            Some(t) => return Err(self.err(format!("expected predicate name, found {t:?}"))),
            None => return Err(self.err("expected predicate name, found end of input")),
        };
        self.expect(Tok::LParen, "'('")?;
        let mut terms = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                terms.push(self.term()?);
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.bump();
                    }
                    _ => break,
                }
            }
        }
        self.expect(Tok::RParen, "')'")?;
        Ok(Atom::new(name.as_str(), terms))
    }

    fn rule(&mut self) -> Result<ConjunctiveQuery, ParseError> {
        let head = self.atom()?;
        self.expect(Tok::Implies, "':-'")?;
        let mut body = vec![self.atom()?];
        while self.peek() == Some(&Tok::Comma) {
            self.bump();
            body.push(self.atom()?);
        }
        if self.peek() == Some(&Tok::Dot) {
            self.bump();
        }
        let q = ConjunctiveQuery::new(head, body);
        if !q.is_safe() {
            return Err(self.err(format!("unsafe rule (head variable not in body): {q}")));
        }
        Ok(q)
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut rules = Vec::new();
        while self.peek().is_some() {
            rules.push(self.rule()?);
        }
        Ok(Program { rules })
    }
}

fn parser(src: &str) -> Result<Parser, ParseError> {
    Ok(Parser {
        toks: Lexer::new(src).tokenize()?,
        pos: 0,
    })
}

/// Parses a whole program (one rule per `:-` clause, `.`-terminated or
/// newline-separated).
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    parser(src)?.program()
}

/// Parses a single rule as a conjunctive query.
pub fn parse_query(src: &str) -> Result<ConjunctiveQuery, ParseError> {
    let mut p = parser(src)?;
    let q = p.rule()?;
    if p.peek().is_some() {
        return Err(p.err("trailing input after rule"));
    }
    Ok(q)
}

/// Parses a program and wraps each rule as a view definition.
pub fn parse_views(src: &str) -> Result<ViewSet, ParseError> {
    let program = parse_program(src)?;
    Ok(ViewSet::from_views(
        program.rules.into_iter().map(View::new),
    ))
}

/// Parses a single atom such as `car(M, anderson)` (used for view-tuple
/// literals in tests).
pub fn parse_atom(src: &str) -> Result<Atom, ParseError> {
    let mut p = parser(src)?;
    let a = p.atom()?;
    if p.peek().is_some() {
        return Err(p.err("trailing input after atom"));
    }
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_car_loc_part() {
        let q =
            parse_query("q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)").unwrap();
        assert_eq!(q.head.predicate.as_str(), "q1");
        assert_eq!(q.body.len(), 3);
        assert_eq!(q.body[0].terms[1], Term::cst("anderson"));
        assert_eq!(q.body[2].terms[0], Term::var("S"));
    }

    #[test]
    fn parses_program_with_comments_and_dots() {
        let p = parse_program(
            "% the five views of Example 1.1\n\
             v1(M, D, C) :- car(M, D), loc(D, C).\n\
             v3(S) :- car(M, a), loc(a, C), part(S, M, C). # inline trailing\n",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[1].head.arity(), 1);
    }

    #[test]
    fn parses_integers_and_negatives() {
        let q = parse_query("q(X) :- r(X, 7), s(-3, X)").unwrap();
        assert_eq!(q.body[0].terms[1], Term::int(7));
        assert_eq!(q.body[1].terms[0], Term::int(-3));
    }

    #[test]
    fn rejects_unsafe_rule() {
        let e = parse_query("q(X, Y) :- a(X)").unwrap_err();
        assert!(e.message.contains("unsafe"));
    }

    #[test]
    fn rejects_uppercase_predicate() {
        assert!(parse_query("q(X) :- Foo(X)").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_query("q(X) :- a(X) extra").is_err());
        assert!(parse_atom("a(X) b").is_err());
    }

    #[test]
    fn rejects_bad_tokens_with_position() {
        let e = parse_program("q(X) :- a(X), @(X)").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("unexpected character"));
    }

    #[test]
    fn rejects_lone_colon_and_bare_minus() {
        assert!(parse_query("q(X) : a(X)").is_err());
        assert!(parse_query("q(X) :- a(-)").is_err());
    }

    #[test]
    fn zero_arity_atoms_parse() {
        let a = parse_atom("done()").unwrap();
        assert_eq!(a.arity(), 0);
    }

    #[test]
    fn views_round_trip_through_display() {
        let src = "v1(M, D, C) :- car(M, D), loc(D, C)";
        let vs = parse_views(src).unwrap();
        let printed = vs.to_string();
        let reparsed = parse_views(&printed).unwrap();
        assert_eq!(vs, reparsed);
    }
}
