//! Conjunctive queries (select-project-join queries).

use crate::atom::Atom;
use crate::subst::Substitution;
use crate::symbol::Symbol;
use crate::term::Term;
use std::collections::HashSet;
use std::fmt;

/// A conjunctive query `h(X̄) :- g1(X̄1), …, gk(X̄k)`.
///
/// Following the paper (Section 2.1) queries are *safe*: every variable in
/// the head must also appear in the body. A variable is **distinguished**
/// if it appears in the head; other body variables are existential.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ConjunctiveQuery {
    /// The head atom.
    pub head: Atom,
    /// The body subgoals; duplicates carry no meaning under set semantics
    /// but are preserved as written.
    pub body: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Builds a query from a head and body.
    pub fn new(head: Atom, body: Vec<Atom>) -> ConjunctiveQuery {
        ConjunctiveQuery { head, body }
    }

    /// True iff every head variable occurs in the body (safety, §2.1).
    pub fn is_safe(&self) -> bool {
        let body_vars: HashSet<Symbol> = self.body.iter().flat_map(Atom::variables).collect();
        self.head.variables().all(|v| body_vars.contains(&v))
    }

    /// The distinguished variables (those in the head), deduplicated, in
    /// order of first occurrence.
    pub fn distinguished_vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for v in self.head.variables() {
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }

    /// The set of distinguished variables.
    pub fn distinguished_set(&self) -> HashSet<Symbol> {
        self.head.variables().collect()
    }

    /// All variables of the query (head then body), deduplicated, in order
    /// of first occurrence.
    pub fn variables(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for v in self
            .head
            .variables()
            .chain(self.body.iter().flat_map(Atom::variables))
        {
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }

    /// The existential (non-distinguished) variables, in order of first
    /// occurrence in the body.
    pub fn existential_vars(&self) -> Vec<Symbol> {
        let dist = self.distinguished_set();
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for v in self.body.iter().flat_map(Atom::variables) {
            if !dist.contains(&v) && seen.insert(v) {
                out.push(v);
            }
        }
        out
    }

    /// Applies a substitution to the head and every body atom.
    pub fn apply(&self, subst: &Substitution) -> ConjunctiveQuery {
        ConjunctiveQuery {
            head: self.head.apply(subst),
            body: self.body.iter().map(|a| a.apply(subst)).collect(),
        }
    }

    /// Returns a copy with every existential variable renamed to a fresh
    /// variable. Used when expanding views so that existential variables of
    /// different view occurrences never collide (Definition 2.2).
    pub fn freshen_existentials(&self) -> ConjunctiveQuery {
        let mut subst = Substitution::new();
        for v in self.existential_vars() {
            subst.bind(v, Term::Var(Symbol::fresh(&v.as_str())));
        }
        self.apply(&subst)
    }

    /// Returns a copy with the body atom at `index` removed.
    pub fn without_subgoal(&self, index: usize) -> ConjunctiveQuery {
        let mut body = self.body.clone();
        body.remove(index);
        ConjunctiveQuery {
            head: self.head.clone(),
            body,
        }
    }

    /// Returns a copy with exact duplicate body atoms removed (set
    /// semantics), preserving first occurrences.
    pub fn dedup_subgoals(&self) -> ConjunctiveQuery {
        let mut seen = HashSet::new();
        let body = self
            .body
            .iter()
            .filter(|a| seen.insert((*a).clone()))
            .cloned()
            .collect();
        ConjunctiveQuery {
            head: self.head.clone(),
            body,
        }
    }

    /// The distinct predicate names used in the body.
    pub fn body_predicates(&self) -> HashSet<Symbol> {
        self.body.iter().map(|a| a.predicate).collect()
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        if self.body.is_empty() {
            return f.write_str("true");
        }
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn carlocpart() -> ConjunctiveQuery {
        parse_query("q1(S, C) :- car(M, anderson), loc(anderson, C), part(S, M, C)").unwrap()
    }

    #[test]
    fn safety() {
        assert!(carlocpart().is_safe());
        let unsafe_q = ConjunctiveQuery::new(
            Atom::new("q", vec![Term::var("X"), Term::var("Y")]),
            vec![Atom::new("a", vec![Term::var("X")])],
        );
        assert!(!unsafe_q.is_safe());
    }

    #[test]
    fn variable_partition() {
        let q = carlocpart();
        let dist: Vec<String> = q.distinguished_vars().iter().map(|v| v.as_str()).collect();
        assert_eq!(dist, ["S", "C"]);
        let exist: Vec<String> = q.existential_vars().iter().map(|v| v.as_str()).collect();
        assert_eq!(exist, ["M"]);
        assert_eq!(q.variables().len(), 3);
    }

    #[test]
    fn freshen_existentials_only_touches_existentials() {
        let q = carlocpart();
        let f = q.freshen_existentials();
        assert_eq!(f.head, q.head);
        // S and C survive, M is renamed.
        assert!(f.body[0].terms[0] != Term::var("M"));
        assert!(f.body[0].terms[0].is_var());
        assert_eq!(f.body[2].terms[0], Term::var("S"));
        // The fresh variable is used consistently across subgoals.
        assert_eq!(f.body[0].terms[0], f.body[2].terms[1]);
    }

    #[test]
    fn without_subgoal_and_dedup() {
        let q = carlocpart();
        assert_eq!(q.without_subgoal(1).body.len(), 2);
        let dup = parse_query("q(X) :- a(X), a(X), b(X)").unwrap();
        assert_eq!(dup.dedup_subgoals().body.len(), 2);
    }

    #[test]
    fn display_round_trip() {
        let q = carlocpart();
        let printed = q.to_string();
        let reparsed = parse_query(&printed).unwrap();
        assert_eq!(q, reparsed);
    }

    #[test]
    fn empty_body_displays_true() {
        let q = ConjunctiveQuery::new(Atom::new("q", vec![]), vec![]);
        assert_eq!(q.to_string(), "q() :- true");
    }
}
