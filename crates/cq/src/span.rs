//! Byte-range source spans.
//!
//! The tokenizer attaches a [`Span`] to every token and the parser
//! merges them into per-atom spans, so downstream diagnostics (the
//! `viewplan-analyze` checks and `viewplan check`) can underline the
//! exact source text of an offending atom instead of pointing at a
//! single line/column.

/// A half-open byte range `start..end` into the parsed source, plus the
/// 1-based line and column of its first byte.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Span {
    /// Byte offset of the first byte (inclusive).
    pub start: usize,
    /// Byte offset one past the last byte (exclusive).
    pub end: usize,
    /// 1-based line of `start`.
    pub line: usize,
    /// 1-based column of `start`.
    pub column: usize,
}

impl Span {
    /// A span over `start..end` beginning at `line`:`column`.
    pub fn new(start: usize, end: usize, line: usize, column: usize) -> Span {
        Span {
            start,
            end,
            line,
            column,
        }
    }

    /// The smallest span covering both `self` and `other`. The
    /// line/column anchor comes from whichever span starts first.
    pub fn merge(self, other: Span) -> Span {
        let (first, _) = if self.start <= other.start {
            (self, other)
        } else {
            (other, self)
        };
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: first.line,
            column: first.column,
        }
    }

    /// Number of bytes covered.
    pub fn len(&self) -> usize {
        self.end.saturating_sub(self.start)
    }

    /// True when the span covers no bytes (e.g. an end-of-input marker).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// The covered slice of `src`, or `""` when out of bounds (a span
    /// from a different source string).
    pub fn slice<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both_and_keeps_earliest_anchor() {
        let a = Span::new(4, 9, 1, 5);
        let b = Span::new(12, 20, 2, 3);
        let m = a.merge(b);
        assert_eq!(m, Span::new(4, 20, 1, 5));
        // Merge is symmetric.
        assert_eq!(b.merge(a), m);
    }

    #[test]
    fn slice_is_bounds_checked() {
        let s = Span::new(2, 5, 1, 3);
        assert_eq!(s.slice("abcdef"), "cde");
        assert_eq!(s.slice("ab"), "");
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(Span::new(7, 7, 1, 8).is_empty());
    }
}
