//! Substitutions: finite maps from variables to terms.
//!
//! Substitutions are the workhorse behind containment mappings
//! (Chandra–Merlin), view expansion, canonical-database freezing, and the
//! variable renaming in the paper's M3 attribute-dropping heuristic.

use crate::symbol::Symbol;
use crate::term::Term;
use std::collections::HashMap;
use std::fmt;

/// A mapping from variable symbols to terms. Variables not in the map are
/// left unchanged by [`Substitution::apply`]; constants are always fixed
/// (as containment mappings require).
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Substitution {
    map: HashMap<Symbol, Term>,
}

impl Substitution {
    /// The empty substitution.
    pub fn new() -> Substitution {
        Substitution::default()
    }

    /// Builds a substitution from `(variable, target)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Symbol, Term)>) -> Substitution {
        Substitution {
            map: pairs.into_iter().collect(),
        }
    }

    /// Binds `var` to `target`, returning the previous binding if any.
    pub fn bind(&mut self, var: Symbol, target: Term) -> Option<Term> {
        self.map.insert(var, target)
    }

    /// Removes the binding for `var`.
    pub fn unbind(&mut self, var: Symbol) -> Option<Term> {
        self.map.remove(&var)
    }

    /// The image of `var`, if bound.
    pub fn get(&self, var: Symbol) -> Option<Term> {
        self.map.get(&var).copied()
    }

    /// Applies the substitution to a single term.
    pub fn apply(&self, term: Term) -> Term {
        match term {
            Term::Var(v) => self.map.get(&v).copied().unwrap_or(term),
            Term::Const(_) => term,
        }
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True iff nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over the bindings in an unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, Term)> + '_ {
        self.map.iter().map(|(&v, &t)| (v, t))
    }

    /// True iff the substitution is injective on its domain **and** no two
    /// distinct domain variables map to the same term. Used when checking
    /// the one-to-one property of tuple-core mappings (Definition 4.1).
    pub fn is_injective(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.map.len());
        self.map.values().all(|t| seen.insert(*t))
    }

    /// Composes `self` then `other`: `(other ∘ self)(x) = other(self(x))`.
    /// Variables bound only in `other` are included as well, so the result
    /// behaves like applying `self` first and `other` second to any term.
    pub fn then(&self, other: &Substitution) -> Substitution {
        let mut out = HashMap::with_capacity(self.map.len() + other.map.len());
        for (&v, &t) in &self.map {
            out.insert(v, other.apply(t));
        }
        for (&v, &t) in &other.map {
            out.entry(v).or_insert(t);
        }
        Substitution { map: out }
    }
}

impl fmt::Display for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut entries: Vec<_> = self.map.iter().collect();
        entries.sort_by_key(|(v, _)| v.as_str());
        f.write_str("{")?;
        for (i, (v, t)) in entries.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v} -> {t}")?;
        }
        f.write_str("}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_leaves_unbound_and_constants_fixed() {
        let mut s = Substitution::new();
        s.bind(Symbol::new("X"), Term::var("Y"));
        assert_eq!(s.apply(Term::var("X")), Term::var("Y"));
        assert_eq!(s.apply(Term::var("Z")), Term::var("Z"));
        assert_eq!(s.apply(Term::cst("a")), Term::cst("a"));
    }

    #[test]
    fn injectivity() {
        let mut s = Substitution::new();
        s.bind(Symbol::new("X"), Term::var("A"));
        s.bind(Symbol::new("Y"), Term::var("B"));
        assert!(s.is_injective());
        s.bind(Symbol::new("Z"), Term::var("A"));
        assert!(!s.is_injective());
    }

    #[test]
    fn composition_applies_left_then_right() {
        let mut s1 = Substitution::new();
        s1.bind(Symbol::new("X"), Term::var("Y"));
        let mut s2 = Substitution::new();
        s2.bind(Symbol::new("Y"), Term::cst("a"));
        s2.bind(Symbol::new("W"), Term::cst("b"));
        let c = s1.then(&s2);
        assert_eq!(c.apply(Term::var("X")), Term::cst("a"));
        assert_eq!(c.apply(Term::var("Y")), Term::cst("a"));
        assert_eq!(c.apply(Term::var("W")), Term::cst("b"));
    }

    #[test]
    fn display_is_sorted_and_stable() {
        let s = Substitution::from_pairs([
            (Symbol::new("B"), Term::cst("b")),
            (Symbol::new("A"), Term::cst("a")),
        ]);
        assert_eq!(s.to_string(), "{A -> a, B -> b}");
    }

    #[test]
    fn bind_and_unbind_round_trip() {
        let mut s = Substitution::new();
        assert!(s.is_empty());
        s.bind(Symbol::new("X"), Term::int(1));
        assert_eq!(s.len(), 1);
        assert_eq!(s.unbind(Symbol::new("X")), Some(Term::int(1)));
        assert!(s.is_empty());
    }
}
