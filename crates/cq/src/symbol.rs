//! Interned string symbols.
//!
//! All identifiers in the system — predicate names, variable names, and
//! symbolic constants — are interned into a process-global table so that a
//! [`Symbol`] is a `Copy` 32-bit handle. Homomorphism search (the hot loop
//! of containment checking) compares and hashes symbols millions of times;
//! interning keeps that loop free of string traffic, per the perf-book
//! guidance on avoiding allocation in hot paths.

use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;
use viewplan_sync::RwLock;

/// An interned string. Two symbols are equal iff their source strings are
/// equal. Resolution back to the string is only needed for display.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    lookup: HashMap<Box<str>, u32>,
    strings: Vec<Box<str>>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            lookup: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s`, returning its stable handle.
    // lock-order: the single interner lock, read then write, strictly
    // sequentially — the read guard's scope closes before the write
    // acquisition, so the two are never held together.
    pub fn new(s: &str) -> Symbol {
        // Fast path: already interned.
        {
            let rd = interner().read();
            if let Some(&id) = rd.lookup.get(s) {
                return Symbol(id);
            }
        }
        let mut wr = interner().write();
        if let Some(&id) = wr.lookup.get(s) {
            return Symbol(id);
        }
        let id = u32::try_from(wr.strings.len()).expect("symbol table overflow");
        let boxed: Box<str> = s.into();
        wr.strings.push(boxed.clone());
        wr.lookup.insert(boxed, id);
        Symbol(id)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> String {
        interner().read().strings[self.0 as usize].to_string()
    }

    /// Raw handle, usable as a dense index (e.g. in per-run scratch tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// A symbol guaranteed distinct from every symbol interned so far,
    /// derived from `base` (used for fresh-variable generation).
    // lock-order: interner read guards only, each dropped before the next
    // acquisition (`drop(rd)` precedes the `Symbol::new` write path), so
    // the lock is never held re-entrantly.
    pub fn fresh(base: &str) -> Symbol {
        // Candidate names `base#k`; `#` cannot appear in parsed identifiers,
        // so a fresh symbol can never collide with user input, only with
        // previously generated fresh symbols — hence the loop.
        let mut k = interner().read().strings.len();
        loop {
            let candidate = format!("{base}#{k}");
            let rd = interner().read();
            if !rd.lookup.contains_key(candidate.as_str()) {
                drop(rd);
                return Symbol::new(&candidate);
            }
            k += 1;
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&interner().read().strings[self.0 as usize])
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let a = Symbol::new("car");
        let b = Symbol::new("car");
        let c = Symbol::new("loc");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "car");
        assert_eq!(c.as_str(), "loc");
    }

    #[test]
    fn display_round_trips() {
        let s = Symbol::new("part");
        assert_eq!(format!("{s}"), "part");
        assert_eq!(format!("{s:?}"), "part");
    }

    #[test]
    fn fresh_symbols_are_distinct() {
        let base = Symbol::new("X");
        let f1 = Symbol::fresh("X");
        let f2 = Symbol::fresh("X");
        assert_ne!(f1, base);
        assert_ne!(f2, base);
        assert_ne!(f1, f2);
    }

    #[test]
    fn fresh_never_collides_with_existing() {
        // Pre-intern a name of the shape fresh() would generate.
        let taken = Symbol::new("Y#0");
        let f = Symbol::fresh("Y");
        assert_ne!(f, taken);
    }

    #[test]
    fn symbols_are_ordered_deterministically_by_intern_order() {
        let a = Symbol::new("zzz_order_a");
        let b = Symbol::new("zzz_order_b");
        assert!(a < b);
    }
}
