//! Terms: variables and constants.

use crate::symbol::Symbol;
use std::fmt;

/// A constant appearing in a query, view, or database tuple.
///
/// The paper's examples use symbolic constants (`anderson`) and small
/// integers (the Figure 5 database); we support both natively so workloads
/// and the relational engine share one value space.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Constant {
    /// A symbolic constant such as `anderson`.
    Sym(Symbol),
    /// An integer constant such as `7`.
    Int(i64),
}

impl Constant {
    /// Symbolic constant from a string.
    pub fn sym(s: &str) -> Constant {
        Constant::Sym(Symbol::new(s))
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Sym(s) => write!(f, "{s}"),
            Constant::Int(i) => write!(f, "{i}"),
        }
    }
}

impl From<i64> for Constant {
    fn from(i: i64) -> Constant {
        Constant::Int(i)
    }
}

/// An argument of an atom: either a variable or a constant.
///
/// Following the paper (Section 2.1), names beginning with an upper-case
/// letter denote variables, names beginning with a lower-case letter denote
/// constants.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A variable such as `X`.
    Var(Symbol),
    /// A constant such as `anderson` or `7`.
    Const(Constant),
}

impl Term {
    /// Variable term from a name.
    pub fn var(name: &str) -> Term {
        Term::Var(Symbol::new(name))
    }

    /// Symbolic-constant term from a name.
    pub fn cst(name: &str) -> Term {
        Term::Const(Constant::sym(name))
    }

    /// Integer-constant term.
    pub fn int(i: i64) -> Term {
        Term::Const(Constant::Int(i))
    }

    /// The variable symbol, if this term is a variable.
    pub fn as_var(self) -> Option<Symbol> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if this term is a constant.
    pub fn as_const(self) -> Option<Constant> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }

    /// True iff this term is a variable.
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_constructors() {
        assert!(Term::var("X").is_var());
        assert!(!Term::cst("a").is_var());
        assert_eq!(Term::int(3).as_const(), Some(Constant::Int(3)));
        assert_eq!(Term::var("X").as_var(), Some(Symbol::new("X")));
        assert_eq!(Term::var("X").as_const(), None);
        assert_eq!(Term::cst("a").as_var(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Term::var("X").to_string(), "X");
        assert_eq!(Term::cst("anderson").to_string(), "anderson");
        assert_eq!(Term::int(-4).to_string(), "-4");
    }

    #[test]
    fn constants_with_same_content_are_equal() {
        assert_eq!(Term::cst("a"), Term::cst("a"));
        assert_ne!(Term::cst("a"), Term::var("a"));
        assert_ne!(Term::int(1), Term::int(2));
    }
}
