//! Views: named conjunctive queries over the base relations.

use crate::atom::Atom;
use crate::query::ConjunctiveQuery;
use crate::symbol::Symbol;
use std::collections::HashMap;
use std::fmt;

/// A materialized view `v(Ȳ) :- body over base relations` (closed-world:
/// the view relation holds *exactly* the tuples computed by the
/// definition).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct View {
    /// The view's definition; its head predicate is the view name.
    pub definition: ConjunctiveQuery,
}

impl View {
    /// Wraps a definition as a view.
    pub fn new(definition: ConjunctiveQuery) -> View {
        View { definition }
    }

    /// The view name (head predicate of the definition).
    pub fn name(&self) -> Symbol {
        self.definition.head.predicate
    }

    /// Arity of the view relation.
    pub fn arity(&self) -> usize {
        self.definition.head.arity()
    }

    /// The head atom of the definition.
    pub fn head(&self) -> &Atom {
        &self.definition.head
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.definition)
    }
}

/// An ordered collection of views with name lookup.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct ViewSet {
    views: Vec<View>,
    by_name: HashMap<Symbol, usize>,
}

impl ViewSet {
    /// An empty view set.
    pub fn new() -> ViewSet {
        ViewSet::default()
    }

    /// Builds a view set; later views with a duplicate name shadow earlier
    /// ones in name lookup but are kept in iteration order.
    pub fn from_views(views: impl IntoIterator<Item = View>) -> ViewSet {
        let mut vs = ViewSet::new();
        for v in views {
            vs.push(v);
        }
        vs
    }

    /// Appends a view.
    pub fn push(&mut self, view: View) {
        self.by_name.insert(view.name(), self.views.len());
        self.views.push(view);
    }

    /// Looks up a view by name.
    pub fn get(&self, name: Symbol) -> Option<&View> {
        self.by_name.get(&name).map(|&i| &self.views[i])
    }

    /// Number of views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Iterates over the views in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, View> {
        self.views.iter()
    }

    /// The views as a slice.
    pub fn as_slice(&self) -> &[View] {
        &self.views
    }
}

impl<'a> IntoIterator for &'a ViewSet {
    type Item = &'a View;
    type IntoIter = std::slice::Iter<'a, View>;

    fn into_iter(self) -> Self::IntoIter {
        self.views.iter()
    }
}

impl fmt::Display for ViewSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for v in &self.views {
            writeln!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_views;

    fn views() -> ViewSet {
        parse_views(
            "v1(M, D, C) :- car(M, D), loc(D, C).\n\
             v2(S, M, C) :- part(S, M, C).",
        )
        .unwrap()
    }

    #[test]
    fn lookup_by_name() {
        let vs = views();
        assert_eq!(vs.len(), 2);
        let v1 = vs.get(Symbol::new("v1")).unwrap();
        assert_eq!(v1.arity(), 3);
        assert_eq!(v1.definition.body.len(), 2);
        assert!(vs.get(Symbol::new("nope")).is_none());
    }

    #[test]
    fn iteration_order_is_insertion_order() {
        let vs = views();
        let names: Vec<String> = vs.iter().map(|v| v.name().as_str()).collect();
        assert_eq!(names, ["v1", "v2"]);
    }

    #[test]
    fn shadowing_keeps_latest_in_lookup() {
        let mut vs = views();
        let replacement = crate::parser::parse_query("v1(X) :- part(X, X, X)").unwrap();
        vs.push(View::new(replacement));
        assert_eq!(vs.len(), 3);
        assert_eq!(vs.get(Symbol::new("v1")).unwrap().arity(), 1);
    }
}
