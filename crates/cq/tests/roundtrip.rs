//! Property-based round-trip tests: printing a query and re-parsing it
//! must reproduce the query exactly, and the parser must never panic on
//! arbitrary input.

use proptest::prelude::*;
use viewplan_cq::{parse_program, parse_query, Atom, ConjunctiveQuery, Symbol, Term};

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        3 => (0..8usize).prop_map(|i| Term::var(&format!("X{i}"))),
        1 => (0..4usize).prop_map(|i| Term::cst(&format!("k{i}"))),
        1 => any::<i64>().prop_map(Term::int),
    ]
}

fn arb_query() -> impl Strategy<Value = ConjunctiveQuery> {
    let atom = ((0..5usize), prop::collection::vec(arb_term(), 0..4))
        .prop_map(|(p, ts)| Atom::new(format!("pred{p}").as_str(), ts));
    prop::collection::vec(atom, 1..5).prop_map(|body| {
        // Head: all body variables (safety by construction).
        let mut vars: Vec<Symbol> = Vec::new();
        for a in &body {
            for v in a.variables() {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        ConjunctiveQuery::new(
            Atom::new("q", vars.into_iter().map(Term::Var).collect()),
            body,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Display → parse is the identity on queries.
    #[test]
    fn query_display_parse_round_trip(q in arb_query()) {
        let printed = q.to_string();
        let reparsed = parse_query(&printed).unwrap();
        prop_assert_eq!(q, reparsed);
    }

    /// Multi-rule programs round-trip too.
    #[test]
    fn program_round_trip(qs in prop::collection::vec(arb_query(), 1..4)) {
        let printed: String = qs.iter().map(|q| format!("{q}.\n")).collect();
        let prog = parse_program(&printed).unwrap();
        prop_assert_eq!(prog.rules, qs);
    }

    /// The parser returns errors, never panics, on arbitrary input.
    #[test]
    fn parser_never_panics(garbage in "\\PC{0,60}") {
        let _ = parse_query(&garbage);
        let _ = parse_program(&garbage);
    }

    /// Structured-looking garbage is also safe.
    #[test]
    fn near_miss_inputs_are_safe(
        head in "[a-z][a-z0-9_]{0,6}",
        args in prop::collection::vec("[A-Za-z0-9_]{1,4}", 0..4),
        junk in "[(),.:\\- ]{0,12}",
    ) {
        let src = format!("{head}({}) :- {head}({}){junk}", args.join(","), args.join(","));
        let _ = parse_query(&src);
    }
}
