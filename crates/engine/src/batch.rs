//! The columnar batch executor.
//!
//! Implements the same bindings-table pipeline as the row executor in
//! [`crate::eval`], but batch-at-a-time over struct-of-arrays data
//! ([`crate::ColumnarRelation`]): a selection vector filters the stored
//! relation column-by-column, a hash index specialized by key shape is
//! built over the surviving rows, and probing gathers output *columns*
//! in tight per-column loops the compiler can auto-vectorize. Output row
//! order is probe order × build insertion order — exactly the row
//! engine's order — so traces, answers, and counters are byte-identical
//! (the differential suite at the workspace root enforces this).

use crate::columnar::{Column, ColumnarRelation};
use crate::database::Database;
use crate::error::EngineError;
use crate::eval::{head_columns, note_arity_mismatch, note_join, plan_slots, Slot, Table};
use crate::relation::{Relation, Tuple};
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use viewplan_cq::{Atom, Symbol};
use viewplan_obs as obs;

/// Counter funnel for one batch join: build-side rows fed to the hash
/// index, dictionary-encoded key columns encountered, and output rows.
fn note_batch_join(build_rows: usize, dict_columns: usize, out_rows: usize) {
    obs::counter!("engine.batch_joins").incr();
    obs::counter!("engine.batch_build_rows").add(build_rows as u64);
    obs::counter!("engine.batch_dict_columns").add(dict_columns as u64);
    obs::histogram!("engine.batch_output_rows").record(out_rows as u64);
}

/// The bindings table in columnar form: one `Vec<Value>` per variable,
/// all of length `len`.
pub(crate) struct ColumnarBindings {
    vars: Vec<Symbol>,
    len: usize,
    cols: Vec<Vec<Value>>,
}

/// The hash index over the build side, specialized by key shape. Bucket
/// contents are row indices in relation insertion order.
enum JoinIndex {
    /// No bound columns: every selected row matches (Cartesian product).
    Cross(Vec<u32>),
    /// One bound column, dictionary-encoded: hash interned symbols.
    Sym(HashMap<Symbol, Vec<u32>>),
    /// One bound column, mixed values.
    One(HashMap<Value, Vec<u32>>),
    /// Several bound columns: composite key.
    Multi(HashMap<Vec<Value>, Vec<u32>>),
}

/// Shrinks `sel` to the rows whose column `col` equals the constant `v`.
fn filter_fixed(sel: &mut Vec<u32>, col: &Column, v: Value) {
    match (col, v) {
        (Column::Syms(syms), Value::Sym(s)) => sel.retain(|&r| syms[r as usize] == s),
        // A non-symbol constant never matches an all-symbol column.
        (Column::Syms(_), _) => sel.clear(),
        (Column::Values(vals), _) => sel.retain(|&r| vals[r as usize] == v),
    }
}

/// Shrinks `sel` to the rows where columns `a` and `b` hold equal values
/// (an intra-atom repeated variable).
fn filter_same(sel: &mut Vec<u32>, a: &Column, b: &Column) {
    match (a, b) {
        (Column::Syms(x), Column::Syms(y)) => sel.retain(|&r| x[r as usize] == y[r as usize]),
        _ => sel.retain(|&r| a.value(r as usize) == b.value(r as usize)),
    }
}

/// Builds the hash index over the selected rows, keyed by the values at
/// `key_positions`; buckets keep selection (= insertion) order.
fn build_index(rel: &ColumnarRelation, sel: Vec<u32>, key_positions: &[usize]) -> JoinIndex {
    match *key_positions {
        [] => JoinIndex::Cross(sel),
        [i] => match rel.column(i) {
            Column::Syms(syms) => {
                let mut map: HashMap<Symbol, Vec<u32>> = HashMap::new();
                for &r in &sel {
                    map.entry(syms[r as usize]).or_default().push(r);
                }
                JoinIndex::Sym(map)
            }
            Column::Values(vals) => {
                let mut map: HashMap<Value, Vec<u32>> = HashMap::new();
                for &r in &sel {
                    map.entry(vals[r as usize]).or_default().push(r);
                }
                JoinIndex::One(map)
            }
        },
        ref many => {
            let mut map: HashMap<Vec<Value>, Vec<u32>> = HashMap::new();
            for &r in &sel {
                let key: Vec<Value> = many
                    .iter()
                    .map(|&i| rel.column(i).value(r as usize))
                    .collect();
                map.entry(key).or_default().push(r);
            }
            JoinIndex::Multi(map)
        }
    }
}

impl ColumnarBindings {
    /// Probes the index with every bindings row in order, producing
    /// `(probe_row, build_row)` pairs in probe-major order.
    fn probe(&self, index: &JoinIndex, key_cols: &[usize]) -> Vec<(u32, u32)> {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let mut emit = |p: usize, bucket: &[u32]| {
            pairs.extend(bucket.iter().map(|&b| (p as u32, b)));
        };
        match index {
            JoinIndex::Cross(rows) => {
                for p in 0..self.len {
                    emit(p, rows);
                }
            }
            JoinIndex::Sym(map) => {
                let col = &self.cols[key_cols[0]];
                for (p, v) in col.iter().enumerate() {
                    // Only symbols can match an all-symbol build column.
                    if let Value::Sym(s) = v {
                        if let Some(bucket) = map.get(s) {
                            emit(p, bucket);
                        }
                    }
                }
            }
            JoinIndex::One(map) => {
                let col = &self.cols[key_cols[0]];
                for (p, v) in col.iter().enumerate() {
                    if let Some(bucket) = map.get(v) {
                        emit(p, bucket);
                    }
                }
            }
            JoinIndex::Multi(map) => {
                let mut key = Vec::with_capacity(key_cols.len());
                for p in 0..self.len {
                    key.clear();
                    key.extend(key_cols.iter().map(|&c| self.cols[c][p]));
                    if let Some(bucket) = map.get(&key) {
                        emit(p, bucket);
                    }
                }
            }
        }
        pairs
    }
}

impl Table for ColumnarBindings {
    fn unit() -> ColumnarBindings {
        ColumnarBindings {
            vars: Vec::new(),
            len: 1,
            cols: Vec::new(),
        }
    }

    fn row_count(&self) -> usize {
        self.len
    }

    fn join(self, atom: &Atom, db: &Database) -> ColumnarBindings {
        let empty = Relation::new(atom.arity());
        let rel = db.get(atom.predicate).unwrap_or(&empty);
        let slots = plan_slots(atom, &self.vars);

        // Same relation-level skip as the row engine: a stored arity that
        // differs from the atom's matches nothing. Also guards the column
        // accesses below, which index by atom position.
        let mismatched = rel.arity() != atom.arity();
        note_arity_mismatch(if mismatched { rel.len() } else { 0 });

        // Bound positions pair the atom-side key position with the
        // bindings-side column, in slot order (the row engine's key order).
        let bound: Vec<(usize, usize)> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                Slot::Bound(c) => Some((i, *c)),
                _ => None,
            })
            .collect();
        let key_positions: Vec<usize> = bound.iter().map(|&(i, _)| i).collect();
        let key_cols: Vec<usize> = bound.iter().map(|&(_, c)| c).collect();

        let (index, build_rows, dict_columns) = if mismatched {
            (JoinIndex::Cross(Vec::new()), 0, 0)
        } else {
            let crel = rel.columnar();
            // Selection vector: ascending row indices surviving the
            // constant and repeated-variable filters, one column at a time.
            let mut sel: Vec<u32> = (0..crel.len() as u32).collect();
            for (i, slot) in slots.iter().enumerate() {
                match *slot {
                    Slot::Fixed(v) => filter_fixed(&mut sel, crel.column(i), v),
                    Slot::SameAs(j) => filter_same(&mut sel, crel.column(i), crel.column(j)),
                    _ => {}
                }
            }
            let dict = key_positions
                .iter()
                .filter(|&&i| crel.column(i).is_dictionary())
                .count();
            let build_rows = sel.len();
            (build_index(crel, sel, &key_positions), build_rows, dict)
        };

        let pairs = self.probe(&index, &key_cols);

        // Extend the schema with the new variables in argument order.
        let mut vars = self.vars.clone();
        let mut new_positions = Vec::new();
        for (i, slot) in slots.iter().enumerate() {
            if let Slot::New(v) = slot {
                vars.push(*v);
                new_positions.push(i);
            }
        }

        // Column-wise gathers: one tight loop per output column.
        let mut cols: Vec<Vec<Value>> = Vec::with_capacity(vars.len());
        for old in &self.cols {
            cols.push(pairs.iter().map(|&(p, _)| old[p as usize]).collect());
        }
        if mismatched {
            // No pairs exist; the new columns are empty (and the stored
            // relation's columns cannot be indexed by atom position).
            cols.extend(new_positions.iter().map(|_| Vec::new()));
        } else {
            let crel = rel.columnar();
            for &i in &new_positions {
                cols.push(match crel.column(i) {
                    Column::Syms(syms) => pairs
                        .iter()
                        .map(|&(_, b)| Value::Sym(syms[b as usize]))
                        .collect(),
                    Column::Values(vals) => pairs.iter().map(|&(_, b)| vals[b as usize]).collect(),
                });
            }
        }

        note_join(self.len, pairs.len());
        note_batch_join(build_rows, dict_columns, pairs.len());
        ColumnarBindings {
            vars,
            len: pairs.len(),
            cols,
        }
    }

    fn project_away(self, drop: &HashSet<Symbol>) -> ColumnarBindings {
        let keep: Vec<usize> = (0..self.vars.len())
            .filter(|&i| !drop.contains(&self.vars[i]))
            .collect();
        let vars: Vec<Symbol> = keep.iter().map(|&i| self.vars[i]).collect();
        // Keep-first dedup over the projected rows, then gather the
        // survivors column by column.
        let mut seen = HashSet::new();
        let mut survivors: Vec<u32> = Vec::new();
        for row in 0..self.len {
            let projected: Tuple = keep.iter().map(|&i| self.cols[i][row]).collect();
            if seen.insert(projected) {
                survivors.push(row as u32);
            }
        }
        let cols: Vec<Vec<Value>> = keep
            .iter()
            .map(|&i| {
                survivors
                    .iter()
                    .map(|&r| self.cols[i][r as usize])
                    .collect()
            })
            .collect();
        ColumnarBindings {
            vars,
            len: survivors.len(),
            cols,
        }
    }

    fn project_head(&self, head: &Atom) -> Result<Relation, EngineError> {
        if self.len == 0 {
            return Ok(Relation::new(head.arity()));
        }
        let cols = head_columns(head, &self.vars)?;
        let mut out = Relation::new(head.arity());
        for row in 0..self.len {
            out.insert(
                cols.iter()
                    .map(|c| match c {
                        Ok(i) => self.cols[*i][row],
                        Err(v) => *v,
                    })
                    .collect(),
            );
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_fixed_clears_on_kind_mismatch() {
        let col = Column::Syms(vec![Symbol::new("a"), Symbol::new("b")]);
        let mut sel = vec![0, 1];
        filter_fixed(&mut sel, &col, Value::Int(3));
        assert!(sel.is_empty());
    }

    #[test]
    fn filter_fixed_symbol_fast_path() {
        let col = Column::Syms(vec![Symbol::new("a"), Symbol::new("b"), Symbol::new("a")]);
        let mut sel = vec![0, 1, 2];
        filter_fixed(&mut sel, &col, Value::sym("a"));
        assert_eq!(sel, [0, 2]);
    }

    #[test]
    fn filter_same_mixed_columns() {
        let a = Column::Values(vec![Value::Int(1), Value::Int(2)]);
        let b = Column::Values(vec![Value::Int(1), Value::Int(3)]);
        let mut sel = vec![0, 1];
        filter_same(&mut sel, &a, &b);
        assert_eq!(sel, [0]);
    }

    #[test]
    fn unit_table_has_one_row_and_no_columns() {
        let t = ColumnarBindings::unit();
        assert_eq!(t.row_count(), 1);
        assert!(t.vars.is_empty());
    }
}
