//! Canonical databases (§3.3).
//!
//! The canonical database `D_Q` of a query `Q` freezes each variable into a
//! distinct constant and treats the body subgoals as the only tuples. The
//! paper then applies the view definitions to `D_Q` and restores the
//! introduced constants back to variables to obtain the **view tuples**
//! `T(Q, V)` — the building blocks of every rewriting the search spaces of
//! Theorems 3.1 and 5.1 contain.

use crate::database::Database;
use crate::value::Value;
use viewplan_cq::{ConjunctiveQuery, Term};

/// Freezes a term: variables become [`Value::Frozen`] markers carrying
/// their own name; constants become ordinary values.
pub fn freeze_term(t: Term) -> Value {
    match t {
        Term::Var(v) => Value::Frozen(v),
        Term::Const(c) => Value::from_constant(c),
    }
}

/// Thaws a value back into a term (the "restore each introduced constant
/// back to the original variable" step of §3.3).
pub fn unfreeze_value(v: Value) -> Term {
    v.to_term()
}

/// Builds the canonical database `D_Q` of a query: one tuple per body
/// subgoal, with variables frozen.
pub fn canonical_database(q: &ConjunctiveQuery) -> Database {
    let mut db = Database::new();
    for atom in &q.body {
        db.insert(
            atom.predicate,
            atom.terms.iter().map(|&t| freeze_term(t)).collect(),
        );
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use viewplan_cq::{parse_query, Symbol};

    #[test]
    fn carlocpart_canonical_database() {
        // §3.3: D_Q = {car(m, a), loc(a, c), part(s, m, c)}.
        let q = parse_query("q1(S, C) :- car(M, a), loc(a, C), part(S, M, C)").unwrap();
        let db = canonical_database(&q);
        let car = db.get("car".into()).unwrap();
        assert_eq!(car.len(), 1);
        assert_eq!(
            car.as_slice()[0],
            vec![Value::Frozen(Symbol::new("M")), Value::sym("a")]
        );
        assert_eq!(db.get("part".into()).unwrap().as_slice()[0].len(), 3);
    }

    #[test]
    fn freezing_round_trips() {
        assert_eq!(unfreeze_value(freeze_term(Term::var("X"))), Term::var("X"));
        assert_eq!(unfreeze_value(freeze_term(Term::cst("a"))), Term::cst("a"));
        assert_eq!(unfreeze_value(freeze_term(Term::int(3))), Term::int(3));
    }

    #[test]
    fn query_applied_to_own_canonical_database_yields_frozen_head() {
        // Q(D_Q) always contains the frozen head tuple — the classic
        // canonical-database property underlying Chandra–Merlin.
        let q = parse_query("q(X, Z) :- e(X, Y), e(Y, Z)").unwrap();
        let db = canonical_database(&q);
        let ans = evaluate(&q, &db);
        let frozen_head: Vec<Value> = q.head.terms.iter().map(|&t| freeze_term(t)).collect();
        assert!(ans.contains(&frozen_head));
    }

    #[test]
    fn duplicate_subgoals_collapse_in_canonical_database() {
        let q = parse_query("q(X) :- e(X, X), e(X, X)").unwrap();
        let db = canonical_database(&q);
        assert_eq!(db.get("e".into()).unwrap().len(), 1);
    }

    #[test]
    fn repeated_variables_freeze_to_equal_values() {
        let q = parse_query("q(X) :- e(X, X)").unwrap();
        let db = canonical_database(&q);
        let t = &db.get("e".into()).unwrap().as_slice()[0];
        assert_eq!(t[0], t[1]);
    }
}
