//! Struct-of-arrays relation storage for the columnar engine.
//!
//! A [`ColumnarRelation`] holds the same tuples as its row-major
//! [`Relation`](crate::Relation) twin, one `Vec` per attribute, in the
//! same (insertion) row order. Columns whose every value is a symbolic
//! constant use the dictionary-encoded [`Column::Syms`] fast path:
//! [`Symbol`] is already a process-interned `u32`, so selections and
//! hash-join keys on such columns compare and hash plain integers
//! instead of full [`Value`] enums. Mixed columns (integers, frozen
//! variables, Skolem witnesses) fall back to [`Column::Values`].

use crate::relation::{Relation, Tuple};
use crate::value::Value;
use viewplan_cq::Symbol;

/// One attribute's values, in row order.
#[derive(Clone, Debug)]
pub enum Column {
    /// Dictionary fast path: every value in the column is `Value::Sym`.
    Syms(Vec<Symbol>),
    /// The general case: any mix of value kinds.
    Values(Vec<Value>),
}

impl Column {
    /// The value at `row`.
    #[inline]
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Syms(s) => Value::Sym(s[row]),
            Column::Values(v) => v[row],
        }
    }

    /// True iff this column is dictionary-encoded.
    pub fn is_dictionary(&self) -> bool {
        matches!(self, Column::Syms(_))
    }
}

/// A relation transposed into per-attribute columns.
#[derive(Clone, Debug)]
pub struct ColumnarRelation {
    len: usize,
    columns: Vec<Column>,
}

impl ColumnarRelation {
    /// Transposes a row-major relation. Columns that are all-symbol
    /// dictionary-encode; the row order is preserved exactly.
    pub fn from_relation(rel: &Relation) -> ColumnarRelation {
        let arity = rel.arity();
        let len = rel.len();
        let rows = rel.as_slice();
        let columns = (0..arity)
            .map(|c| {
                let all_syms = rows.iter().all(|t| matches!(t[c], Value::Sym(_)));
                if all_syms {
                    Column::Syms(
                        rows.iter()
                            .map(|t| match t[c] {
                                Value::Sym(s) => s,
                                // Checked all-Sym just above.
                                _ => unreachable!("non-Sym in an all-Sym column"),
                            })
                            .collect(),
                    )
                } else {
                    Column::Values(rows.iter().map(|t| t[c]).collect())
                }
            })
            .collect();
        ColumnarRelation { len, columns }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns (the relation arity).
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The column at attribute position `i`.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// How many columns are dictionary-encoded.
    pub fn dictionary_columns(&self) -> usize {
        self.columns.iter().filter(|c| c.is_dictionary()).count()
    }

    /// Materializes row `row` back into a tuple (tests and debugging).
    pub fn row(&self, row: usize) -> Tuple {
        self.columns.iter().map(|c| c.value(row)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transposition_preserves_rows_and_order() {
        let mut r = Relation::new(2);
        r.insert(vec![Value::sym("a"), Value::Int(1)]);
        r.insert(vec![Value::sym("b"), Value::Int(2)]);
        let c = ColumnarRelation::from_relation(&r);
        assert_eq!(c.len(), 2);
        assert_eq!(c.arity(), 2);
        assert_eq!(c.row(0), vec![Value::sym("a"), Value::Int(1)]);
        assert_eq!(c.row(1), vec![Value::sym("b"), Value::Int(2)]);
    }

    #[test]
    fn all_symbol_columns_dictionary_encode() {
        let mut r = Relation::new(2);
        r.insert(vec![Value::sym("a"), Value::Int(1)]);
        r.insert(vec![Value::sym("b"), Value::sym("c")]);
        let c = ColumnarRelation::from_relation(&r);
        assert!(c.column(0).is_dictionary());
        assert!(!c.column(1).is_dictionary());
        assert_eq!(c.dictionary_columns(), 1);
    }

    #[test]
    fn empty_relation_columns_are_dictionary() {
        // Vacuously all-Sym: the fast path costs nothing and stays valid.
        let c = ColumnarRelation::from_relation(&Relation::new(3));
        assert!(c.is_empty());
        assert_eq!(c.dictionary_columns(), 3);
    }
}
