//! Databases: named relations.

use crate::error::EngineError;
use crate::relation::{Relation, Tuple};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use viewplan_cq::Symbol;

/// A database instance: a map from relation names to relations.
#[derive(Clone, Default, PartialEq, Debug)]
pub struct Database {
    relations: HashMap<Symbol, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// The relation for `name`, if present.
    pub fn get(&self, name: Symbol) -> Option<&Relation> {
        self.relations.get(&name)
    }

    /// The relation for `name`, creating an empty one of the given arity
    /// on first touch. Requesting an existing relation at a different
    /// arity is rejected: handing back the mismatched relation would make
    /// the conflicting facts silently disappear downstream.
    pub fn try_get_or_create(
        &mut self,
        name: Symbol,
        arity: usize,
    ) -> Result<&mut Relation, EngineError> {
        let rel = self
            .relations
            .entry(name)
            .or_insert_with(|| Relation::new(arity));
        if rel.arity() != arity {
            return Err(EngineError::ArityConflict {
                relation: name,
                existing: rel.arity(),
                requested: arity,
            });
        }
        Ok(rel)
    }

    /// Infallible twin of [`Database::try_get_or_create`] for callers with
    /// schema-checked input.
    ///
    /// # Panics
    /// Panics if the relation exists at a different arity.
    pub fn get_or_create(&mut self, name: Symbol, arity: usize) -> &mut Relation {
        if let Some(existing) = self.relations.get(&name) {
            assert!(
                existing.arity() == arity,
                "relation {name} has arity {}, conflicting with requested arity {arity}",
                existing.arity()
            );
        }
        self.relations
            .entry(name)
            .or_insert_with(|| Relation::new(arity))
    }

    /// Replaces (or installs) a whole relation.
    pub fn set(&mut self, name: Symbol, relation: Relation) {
        self.relations.insert(name, relation);
    }

    /// Inserts one tuple into relation `name` (creating it if needed),
    /// rejecting tuples whose arity conflicts with the stored relation.
    pub fn try_insert(
        &mut self,
        name: impl Into<Symbol>,
        tuple: Tuple,
    ) -> Result<bool, EngineError> {
        let name = name.into();
        let arity = tuple.len();
        Ok(self.try_get_or_create(name, arity)?.insert(tuple))
    }

    /// Inserts one tuple into relation `name` (creating it if needed).
    ///
    /// # Panics
    /// Panics if the relation exists at a different arity.
    pub fn insert(&mut self, name: impl Into<Symbol>, tuple: Tuple) -> bool {
        let name = name.into();
        let arity = tuple.len();
        self.get_or_create(name, arity).insert(tuple)
    }

    /// Bulk-inserts rows of symbolic constants — convenient for examples
    /// and tests.
    pub fn insert_sym(&mut self, name: impl Into<Symbol>, rows: &[&[&str]]) {
        let name = name.into();
        for row in rows {
            self.insert(name, row.iter().map(|s| Value::sym(s)).collect());
        }
    }

    /// Bulk-inserts rows of integers.
    pub fn insert_int(&mut self, name: impl Into<Symbol>, rows: &[&[i64]]) {
        let name = name.into();
        for row in rows {
            self.insert(name, row.iter().map(|&i| Value::Int(i)).collect());
        }
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True iff there are no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterates over `(name, relation)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Relation)> {
        self.relations.iter().map(|(&n, r)| (n, r))
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names: Vec<Symbol> = self.relations.keys().copied().collect();
        names.sort_by_key(|s| s.as_str());
        for name in names {
            writeln!(f, "{name}:")?;
            write!(f, "{}", self.relations[&name])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut db = Database::new();
        db.insert_sym("car", &[&["honda", "anderson"]]);
        db.insert_int("nums", &[&[1, 2], &[3, 4]]);
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(Symbol::new("car")).unwrap().len(), 1);
        assert_eq!(db.get(Symbol::new("nums")).unwrap().len(), 2);
        assert!(db.get(Symbol::new("missing")).is_none());
        assert_eq!(db.total_tuples(), 3);
    }

    #[test]
    fn arity_conflict_is_a_typed_error() {
        let mut db = Database::new();
        db.insert_int("r", &[&[1, 2]]);
        let err = db.try_get_or_create(Symbol::new("r"), 3);
        assert!(matches!(
            err,
            Err(EngineError::ArityConflict {
                existing: 2,
                requested: 3,
                ..
            })
        ));
        let err = db.try_insert("r", vec![Value::Int(1)]);
        assert!(matches!(err, Err(EngineError::ArityConflict { .. })));
        // Matching arity still works.
        assert!(db
            .try_insert("r", vec![Value::Int(3), Value::Int(4)])
            .unwrap());
    }

    #[test]
    #[should_panic(expected = "conflicting")]
    fn get_or_create_panics_on_arity_conflict() {
        let mut db = Database::new();
        db.insert_int("r", &[&[1, 2]]);
        db.get_or_create(Symbol::new("r"), 1);
    }

    #[test]
    fn set_replaces() {
        let mut db = Database::new();
        db.insert_int("r", &[&[1]]);
        db.set(Symbol::new("r"), Relation::new(1));
        assert!(db.get(Symbol::new("r")).unwrap().is_empty());
    }

    #[test]
    fn display_is_deterministic() {
        let mut db = Database::new();
        db.insert_int("b", &[&[1]]);
        db.insert_int("a", &[&[2]]);
        let s = db.to_string();
        assert!(s.find("a:").unwrap() < s.find("b:").unwrap());
    }
}
