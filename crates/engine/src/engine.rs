//! Engine selection: the row-at-a-time executor vs. the columnar batch
//! executor.
//!
//! Both engines compute identical results — answer relations in the same
//! insertion order, [`crate::ExecutionTrace`]s with the same per-step
//! sizes, the same `engine.*` counters — which the differential suite at
//! the workspace root enforces. Selection is therefore purely a
//! performance knob:
//!
//! * the **process default** comes from [`set_default_engine`] (the CLI
//!   `--engine` flag) or the `VIEWPLAN_ENGINE` environment variable
//!   (`row` | `columnar`), falling back to [`Engine::Columnar`];
//! * a **thread-scoped override** ([`install`]) pins the engine for one
//!   call stack — the serving layer uses it so each request honors its
//!   [`ServeConfig`](../../viewplan_serve/struct.ServeConfig.html), and
//!   the differential tests use it to run both engines side by side.

use std::cell::Cell;
use viewplan_sync::{AtomicU8, Ordering};

/// Which executor [`crate::evaluate`] and the `execute_*` entry points
/// run on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Engine {
    /// The original tuple-at-a-time multiway hash join.
    Row,
    /// Struct-of-arrays batch execution: selection vectors, columnar
    /// hash join build/probe, column-wise gathers.
    Columnar,
    /// Yannakakis evaluation for acyclic queries: semijoin-reduce the
    /// stored relations along the GYO join forest, then join with no
    /// intermediate blowup. Cyclic queries fall back to the columnar
    /// executor.
    Yannakakis,
}

impl Engine {
    /// Parses an engine name as used by `--engine` / `VIEWPLAN_ENGINE`.
    pub fn from_name(name: &str) -> Option<Engine> {
        match name {
            "row" => Some(Engine::Row),
            "columnar" => Some(Engine::Columnar),
            "yannakakis" => Some(Engine::Yannakakis),
            _ => None,
        }
    }

    /// The CLI-facing name (`"row"` / `"columnar"` / `"yannakakis"`).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Row => "row",
            Engine::Columnar => "columnar",
            Engine::Yannakakis => "yannakakis",
        }
    }
}

impl std::fmt::Display for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// 0 = unset (consult `VIEWPLAN_ENGINE`), 1 = row, 2 = columnar,
/// 3 = yannakakis.
static DEFAULT_ENGINE: AtomicU8 = AtomicU8::new(0);

thread_local! {
    static OVERRIDE: Cell<Option<Engine>> = const { Cell::new(None) };
}

/// Sets the process-wide default engine (what the CLI `--engine` flag
/// does). Thread-scoped [`install`] overrides still win.
pub fn set_default_engine(engine: Engine) {
    let code = match engine {
        Engine::Row => 1,
        Engine::Columnar => 2,
        Engine::Yannakakis => 3,
    };
    // ordering: standalone configuration flag set before workers spawn.
    DEFAULT_ENGINE.store(code, Ordering::Relaxed);
}

/// The process-wide default engine: the value of [`set_default_engine`]
/// if called, else `VIEWPLAN_ENGINE` (`row` | `columnar` | `yannakakis`),
/// else [`Engine::Columnar`].
pub fn default_engine() -> Engine {
    // ordering: standalone configuration flag; stale reads only see the
    // previous default, never a torn value.
    match DEFAULT_ENGINE.load(Ordering::Relaxed) {
        1 => Engine::Row,
        2 => Engine::Columnar,
        3 => Engine::Yannakakis,
        _ => std::env::var("VIEWPLAN_ENGINE")
            .ok()
            .and_then(|s| Engine::from_name(&s))
            .unwrap_or(Engine::Columnar),
    }
}

/// The engine the current thread's evaluations run on: the innermost
/// [`install`]ed override, else the process default.
pub fn current_engine() -> Engine {
    OVERRIDE.with(|o| o.get()).unwrap_or_else(default_engine)
}

/// Pins `engine` for the current thread until the returned guard drops.
/// Nests: dropping restores the previous override.
pub fn install(engine: Engine) -> EngineGuard {
    let previous = OVERRIDE.with(|o| o.replace(Some(engine)));
    EngineGuard { previous }
}

/// Restores the previous thread-scoped engine override on drop.
#[must_use = "dropping the guard immediately uninstalls the engine override"]
pub struct EngineGuard {
    previous: Option<Engine>,
}

impl Drop for EngineGuard {
    fn drop(&mut self) {
        OVERRIDE.with(|o| o.set(self.previous));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for e in [Engine::Row, Engine::Columnar, Engine::Yannakakis] {
            assert_eq!(Engine::from_name(e.name()), Some(e));
        }
        assert_eq!(Engine::from_name("vectorised"), None);
    }

    #[test]
    fn install_overrides_and_restores() {
        let ambient = current_engine();
        {
            let _g = install(Engine::Row);
            assert_eq!(current_engine(), Engine::Row);
            {
                let _g2 = install(Engine::Columnar);
                assert_eq!(current_engine(), Engine::Columnar);
            }
            assert_eq!(current_engine(), Engine::Row);
        }
        assert_eq!(current_engine(), ambient);
    }
}
