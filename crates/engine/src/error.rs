//! Typed errors for query evaluation and plan execution.
//!
//! The engine sits under programmatic callers (the cost oracles, the
//! serving layer, the extended algorithms) that can hand it queries the
//! parser never vetted — an unsafe head, a plan that drops a head
//! variable, facts whose arity disagrees with an existing relation.
//! Those are *input* defects, not engine bugs, so they flow out as
//! [`EngineError`] values instead of panics; the documented-`# Panics`
//! convenience wrappers ([`crate::evaluate`] and friends) remain for
//! callers with pre-validated input.

use std::fmt;
use viewplan_cq::Symbol;

/// Why the engine rejected a query, plan, or insertion.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// A head variable never entered the bindings schema: the query is
    /// unsafe (the variable occurs in no body subgoal), so no answer
    /// tuple can be built for it.
    UnboundHeadVariable {
        /// The offending head variable.
        var: Symbol,
    },
    /// An annotated plan projects away a head variable before the end —
    /// such a plan can no longer compute the query answer.
    HeadVariableDropped {
        /// The dropped head variable.
        var: Symbol,
    },
    /// A relation was requested (or inserted into) at an arity that
    /// conflicts with the arity it already has.
    ArityConflict {
        /// The relation name.
        relation: Symbol,
        /// The arity the stored relation has.
        existing: usize,
        /// The arity the caller asked for.
        requested: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EngineError::UnboundHeadVariable { var } => write!(
                f,
                "head variable {var} is not bound by any body subgoal (unsafe query)"
            ),
            EngineError::HeadVariableDropped { var } => write!(
                f,
                "plan drops head variable {var} — cannot compute the answer"
            ),
            EngineError::ArityConflict {
                relation,
                existing,
                requested,
            } => write!(
                f,
                "relation {relation} has arity {existing}, conflicting with requested arity \
                 {requested}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}
