//! Conjunctive-query evaluation by multiway hash join.
//!
//! Evaluation maintains a *bindings table*: an ordered variable schema plus
//! a set of distinct rows. Each step hash-joins the table with the next
//! subgoal's relation; constants and repeated variables inside a subgoal
//! act as selections. Because all variables are retained and inputs are
//! sets, rows stay distinct without re-deduplication — except in
//! [`execute_annotated`] plans, where dropping attributes (cost model M3)
//! can merge rows and the table is re-deduplicated.
//!
//! Two executors implement this pipeline: the row-at-a-time [`Bindings`]
//! table in this module, and the columnar batch executor in
//! [`crate::batch`]. Both run the *same* driver loops below, so join
//! order, counter updates, trace sizes, and answer insertion order are
//! identical by construction; [`crate::engine::current_engine`] picks
//! which one runs.

use crate::database::Database;
use crate::engine::{current_engine, Engine};
use crate::error::EngineError;
use crate::relation::{Relation, Tuple};
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use viewplan_cq::{Atom, ConjunctiveQuery, Symbol, Term};
use viewplan_obs as obs;

/// The sole panic site for the documented-`# Panics` wrappers around the
/// fallible entry points.
pub(crate) fn engine_panic(e: EngineError) -> ! {
    panic!("{e}")
}

/// Counter funnel for one hash-join step, shared by both executors so the
/// metric names register at a single site.
pub(crate) fn note_join(probe_rows: usize, out_rows: usize) {
    obs::counter!("engine.joins").incr();
    obs::counter!("engine.join_probes").add(probe_rows as u64);
    obs::histogram!("engine.intermediate_rows").record(out_rows as u64);
}

/// Records tuples skipped because the stored relation's arity differs from
/// the subgoal's (a schema violation that would otherwise vanish silently).
/// Called with 0 on clean joins so the counter always exists in snapshots.
pub(crate) fn note_arity_mismatch(skipped: usize) {
    obs::counter!("engine.arity_mismatch_skips").add(skipped as u64);
}

/// Records the generalized-supplementary-relation size after one annotated
/// step.
pub(crate) fn note_gsr(rows: usize) {
    obs::histogram!("engine.gsr_rows").record(rows as u64);
}

/// The bindings table carried through a multiway join (row executor).
#[derive(Clone, Debug)]
struct Bindings {
    vars: Vec<Symbol>,
    rows: Vec<Tuple>,
}

/// How each argument position of the current subgoal relates to the
/// bindings table.
pub(crate) enum Slot {
    /// Must equal this constant.
    Fixed(Value),
    /// Must equal the value in this bindings column.
    Bound(usize),
    /// First occurrence of a new variable: extend the schema.
    New(Symbol),
    /// Repeated occurrence of a new variable first seen at this earlier
    /// position of the same atom.
    SameAs(usize),
}

pub(crate) fn plan_slots(atom: &Atom, vars: &[Symbol]) -> Vec<Slot> {
    let mut slots = Vec::with_capacity(atom.arity());
    let mut local: HashMap<Symbol, usize> = HashMap::new();
    for (i, t) in atom.terms.iter().enumerate() {
        let slot = match *t {
            Term::Const(c) => Slot::Fixed(Value::from_constant(c)),
            Term::Var(v) => {
                if let Some(col) = vars.iter().position(|&x| x == v) {
                    Slot::Bound(col)
                } else if let Some(&pos) = local.get(&v) {
                    Slot::SameAs(pos)
                } else {
                    local.insert(v, i);
                    Slot::New(v)
                }
            }
        };
        slots.push(slot);
    }
    slots
}

/// Maps each head term to either a bindings column or a constant, failing
/// on head variables the plan never bound (unsafe queries).
pub(crate) fn head_columns(
    head: &Atom,
    vars: &[Symbol],
) -> Result<Vec<Result<usize, Value>>, EngineError> {
    head.terms
        .iter()
        .map(|t| match *t {
            Term::Var(v) => match vars.iter().position(|&x| x == v) {
                Some(col) => Ok(Ok(col)),
                None => Err(EngineError::UnboundHeadVariable { var: v }),
            },
            Term::Const(c) => Ok(Err(Value::from_constant(c))),
        })
        .collect()
}

/// One executor's bindings table: the interface the shared evaluation and
/// plan-execution drivers run against. Implementations must produce rows
/// in the same order (probe order × build insertion order) so traces and
/// answers are engine-independent.
pub(crate) trait Table: Sized {
    /// The unit table: empty schema, one empty row.
    fn unit() -> Self;
    /// Number of rows currently in the table.
    fn row_count(&self) -> usize;
    /// Hash-joins the table with one subgoal. A missing relation is
    /// treated as empty (closed world).
    fn join(self, atom: &Atom, db: &Database) -> Self;
    /// Removes the given variables from the schema and deduplicates rows
    /// (keep-first).
    fn project_away(self, drop: &HashSet<Symbol>) -> Self;
    /// Projects the table onto the head atom, in row order.
    fn project_head(&self, head: &Atom) -> Result<Relation, EngineError>;
}

impl Table for Bindings {
    fn unit() -> Bindings {
        Bindings {
            vars: Vec::new(),
            rows: vec![Vec::new()],
        }
    }

    fn row_count(&self) -> usize {
        self.rows.len()
    }

    fn join(self, atom: &Atom, db: &Database) -> Bindings {
        let empty = Relation::new(atom.arity());
        let rel = db.get(atom.predicate).unwrap_or(&empty);
        let slots = plan_slots(atom, &self.vars);

        // An atom whose arity differs from the stored relation matches
        // nothing (no fact can map onto it); relations have uniform arity,
        // so the whole relation is skipped — and counted, loudly.
        let mismatched = rel.arity() != atom.arity();
        note_arity_mismatch(if mismatched { rel.len() } else { 0 });

        // Filter the relation on constants and intra-atom repeats, and
        // index it by the values at bound positions.
        let bound_positions: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| matches!(s, Slot::Bound(_)).then_some(i))
            .collect();
        let mut index: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
        if !mismatched {
            'tuples: for tuple in rel {
                for (i, slot) in slots.iter().enumerate() {
                    match slot {
                        Slot::Fixed(v) if tuple[i] != *v => continue 'tuples,
                        Slot::SameAs(j) if tuple[i] != tuple[*j] => continue 'tuples,
                        _ => {}
                    }
                }
                let key: Vec<Value> = bound_positions.iter().map(|&i| tuple[i]).collect();
                index.entry(key).or_default().push(tuple);
            }
        }

        // Extend the schema with the new variables in argument order.
        let mut vars = self.vars.clone();
        let mut new_positions = Vec::new();
        for (i, slot) in slots.iter().enumerate() {
            if let Slot::New(v) = slot {
                vars.push(*v);
                new_positions.push(i);
            }
        }

        let bound_cols: Vec<usize> = slots
            .iter()
            .filter_map(|s| match s {
                Slot::Bound(c) => Some(*c),
                _ => None,
            })
            .collect();

        let mut rows = Vec::new();
        let mut key = Vec::with_capacity(bound_cols.len());
        for row in &self.rows {
            key.clear();
            key.extend(bound_cols.iter().map(|&c| row[c]));
            if let Some(matches) = index.get(&key) {
                for tuple in matches {
                    let mut extended = row.clone();
                    extended.extend(new_positions.iter().map(|&i| tuple[i]));
                    rows.push(extended);
                }
            }
        }
        note_join(self.rows.len(), rows.len());
        Bindings { vars, rows }
    }

    fn project_away(self, drop: &HashSet<Symbol>) -> Bindings {
        let keep: Vec<usize> = (0..self.vars.len())
            .filter(|&i| !drop.contains(&self.vars[i]))
            .collect();
        let vars: Vec<Symbol> = keep.iter().map(|&i| self.vars[i]).collect();
        let mut seen = HashSet::new();
        let mut rows = Vec::new();
        for row in self.rows {
            let projected: Tuple = keep.iter().map(|&i| row[i]).collect();
            if seen.insert(projected.clone()) {
                rows.push(projected);
            }
        }
        Bindings { vars, rows }
    }

    fn project_head(&self, head: &Atom) -> Result<Relation, EngineError> {
        if self.rows.is_empty() {
            // An empty join may have stopped before every head variable
            // entered the schema; the projection is empty regardless.
            return Ok(Relation::new(head.arity()));
        }
        let cols = head_columns(head, &self.vars)?;
        let mut out = Relation::new(head.arity());
        for row in &self.rows {
            out.insert(
                cols.iter()
                    .map(|c| match c {
                        Ok(i) => row[*i],
                        Err(v) => *v,
                    })
                    .collect(),
            );
        }
        Ok(out)
    }
}

/// Evaluates a conjunctive query over a database, returning the distinct
/// answer relation. Subgoals are joined in a greedy order (smallest
/// relation first, then most-connected) purely as an internal heuristic —
/// the answer is order-independent.
pub fn try_evaluate(q: &ConjunctiveQuery, db: &Database) -> Result<Relation, EngineError> {
    obs::counter!("engine.evaluations").incr();
    match current_engine() {
        Engine::Row => evaluate_with::<Bindings>(q, db),
        Engine::Columnar => evaluate_with::<crate::batch::ColumnarBindings>(q, db),
        Engine::Yannakakis => {
            crate::yannakakis::evaluate_reduced::<crate::batch::ColumnarBindings>(q, db)
        }
    }
}

/// Infallible twin of [`try_evaluate`] for pre-validated queries.
///
/// # Panics
/// Panics if a head variable is not bound by any body subgoal (the query
/// is unsafe) and the join result is nonempty.
pub fn evaluate(q: &ConjunctiveQuery, db: &Database) -> Relation {
    match try_evaluate(q, db) {
        Ok(rel) => rel,
        Err(e) => engine_panic(e),
    }
}

pub(crate) fn evaluate_with<T: Table>(
    q: &ConjunctiveQuery,
    db: &Database,
) -> Result<Relation, EngineError> {
    let order = greedy_order(&q.body, db);
    evaluate_in_order_with::<T>(&q.head, &q.body, &order, db)
}

/// The core join loop: fold the subgoals in exactly `order`, early-exit on
/// an empty table, project the head. Shared by the greedy-order path above
/// and the Yannakakis executor (which joins semijoin-reduced relations in
/// the order the *original* relations dictate, keeping answers
/// byte-identical across engines).
pub(crate) fn evaluate_in_order_with<T: Table>(
    head: &Atom,
    body: &[Atom],
    order: &[usize],
    db: &Database,
) -> Result<Relation, EngineError> {
    let mut table = T::unit();
    for &idx in order {
        table = table.join(&body[idx], db);
        if table.row_count() == 0 {
            break;
        }
    }
    table.project_head(head)
}

/// Greedy join order: start from the smallest relation; repeatedly take the
/// subgoal sharing a variable with the bound set (smallest relation on
/// ties), falling back to the smallest unconnected subgoal (Cartesian
/// product) when the query is disconnected.
pub(crate) fn greedy_order(body: &[Atom], db: &Database) -> Vec<usize> {
    let size = |a: &Atom| db.get(a.predicate).map_or(0, Relation::len);
    let mut remaining: Vec<usize> = (0..body.len()).collect();
    let mut order = Vec::with_capacity(body.len());
    let mut bound: HashSet<Symbol> = HashSet::new();
    while !remaining.is_empty() {
        let Some(pick) = remaining
            .iter()
            .enumerate()
            .min_by_key(|&(_, &i)| {
                let connected = body[i].variables().any(|v| bound.contains(&v));
                // Connected subgoals first (0 beats 1), then by size.
                (
                    if connected || order.is_empty() { 0 } else { 1 },
                    size(&body[i]),
                )
            })
            .map(|(pos, _)| pos)
        else {
            break;
        };
        let i = remaining.swap_remove(pick);
        bound.extend(body[i].variables());
        order.push(i);
    }
    order
}

/// The record of executing a physical plan: per-step view-relation sizes
/// and intermediate-relation sizes, plus the final answer.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutionTrace {
    /// `size(g_i)` for each subgoal, in execution order.
    pub subgoal_sizes: Vec<usize>,
    /// `size(IR_i)` (or `size(GSR_i)` for annotated plans) after each step.
    pub intermediate_sizes: Vec<usize>,
    /// The final answer, projected on the head.
    pub answer: Relation,
}

impl ExecutionTrace {
    /// The M2-style cost of this execution:
    /// `Σ (size(g_i) + size(IR_i))` (Table 1).
    pub fn cost(&self) -> usize {
        self.subgoal_sizes.iter().sum::<usize>() + self.intermediate_sizes.iter().sum::<usize>()
    }
}

/// Executes the body subgoals in exactly the given order, with all
/// attributes retained — the physical plans of cost model M2. Records
/// `size(g_i)` and `size(IR_i)` for each step.
pub fn try_execute_ordered(
    head: &Atom,
    body: &[Atom],
    db: &Database,
) -> Result<ExecutionTrace, EngineError> {
    let steps: Vec<AnnotatedStep> = body
        .iter()
        .map(|a| AnnotatedStep {
            atom: a.clone(),
            drop_after: HashSet::new(),
        })
        .collect();
    try_execute_annotated(head, &steps, db)
}

/// Infallible twin of [`try_execute_ordered`] for pre-validated plans.
///
/// # Panics
/// Panics if a head variable is not bound by any subgoal and the join
/// result is nonempty.
pub fn execute_ordered(head: &Atom, body: &[Atom], db: &Database) -> ExecutionTrace {
    match try_execute_ordered(head, body, db) {
        Ok(trace) => trace,
        Err(e) => engine_panic(e),
    }
}

/// One step of an M3 physical plan: a subgoal and the attributes to drop
/// after it is processed (the `X_i` annotation of §2.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnnotatedStep {
    /// The subgoal joined at this step.
    pub atom: Atom,
    /// Variables projected away after this step.
    pub drop_after: HashSet<Symbol>,
}

/// Executes an annotated plan (cost model M3): joins each step's subgoal,
/// then projects away its `drop_after` variables and re-deduplicates. The
/// recorded intermediate sizes are the generalized-supplementary-relation
/// sizes `size(GSR_i)`.
///
/// Fails with [`EngineError::HeadVariableDropped`] if a step drops a head
/// variable (the plan can no longer compute the answer) and with
/// [`EngineError::UnboundHeadVariable`] if a nonempty result reaches a
/// head variable no subgoal ever bound.
pub fn try_execute_annotated(
    head: &Atom,
    steps: &[AnnotatedStep],
    db: &Database,
) -> Result<ExecutionTrace, EngineError> {
    let _span = obs::span("engine.execute_plan");
    match current_engine() {
        Engine::Row => execute_annotated_with::<Bindings>(head, steps, db),
        // Annotated plans encode their own join order and attribute drops
        // (the cost models' ground truth), so Yannakakis — whose whole
        // point is choosing the semijoin schedule itself — delegates to
        // the columnar driver: traces stay byte-identical by construction.
        Engine::Columnar | Engine::Yannakakis => {
            execute_annotated_with::<crate::batch::ColumnarBindings>(head, steps, db)
        }
    }
}

/// Infallible twin of [`try_execute_annotated`] for pre-validated plans.
///
/// # Panics
/// Panics if a head variable is dropped before the end, or never bound —
/// such a plan cannot compute the query answer and is a planner bug.
pub fn execute_annotated(head: &Atom, steps: &[AnnotatedStep], db: &Database) -> ExecutionTrace {
    match try_execute_annotated(head, steps, db) {
        Ok(trace) => trace,
        Err(e) => engine_panic(e),
    }
}

fn execute_annotated_with<T: Table>(
    head: &Atom,
    steps: &[AnnotatedStep],
    db: &Database,
) -> Result<ExecutionTrace, EngineError> {
    let mut table = T::unit();
    let mut subgoal_sizes = Vec::with_capacity(steps.len());
    let mut intermediate_sizes = Vec::with_capacity(steps.len());
    for step in steps {
        subgoal_sizes.push(db.get(step.atom.predicate).map_or(0, Relation::len));
        table = table.join(&step.atom, db);
        if !step.drop_after.is_empty() {
            // Scan head terms (not the drop set) so the reported variable
            // is deterministic.
            if let Some(var) = head
                .terms
                .iter()
                .find_map(|t| t.as_var().filter(|v| step.drop_after.contains(v)))
            {
                return Err(EngineError::HeadVariableDropped { var });
            }
            table = table.project_away(&step.drop_after);
        }
        note_gsr(table.row_count());
        intermediate_sizes.push(table.row_count());
    }
    Ok(ExecutionTrace {
        subgoal_sizes,
        intermediate_sizes,
        answer: table.project_head(head)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::install;
    use viewplan_cq::parse_query;

    fn figure5_db() -> Database {
        // The base relations of Figure 5 / Example 6.1.
        let mut db = Database::new();
        db.insert_int("r", &[&[1, 1], &[2, 2], &[4, 4], &[6, 6], &[8, 8]]);
        db.insert_int("s", &[&[2, 2], &[4, 4], &[6, 6], &[8, 8]]);
        db.insert_int("t", &[&[1, 2], &[3, 4], &[5, 6], &[7, 8]]);
        db
    }

    /// Runs `f` under both engines and asserts equal results.
    fn both_engines<R: PartialEq + std::fmt::Debug>(f: impl Fn() -> R) -> R {
        let row = {
            let _g = install(Engine::Row);
            f()
        };
        let col = {
            let _g = install(Engine::Columnar);
            f()
        };
        assert_eq!(row, col, "row and columnar engines disagree");
        col
    }

    #[test]
    fn evaluates_single_subgoal_with_selection() {
        let db = figure5_db();
        let q = parse_query("q(X) :- r(X, X)").unwrap();
        assert_eq!(both_engines(|| evaluate(&q, &db)).len(), 5);
        let q2 = parse_query("q(Y) :- t(1, Y)").unwrap();
        let ans = both_engines(|| evaluate(&q2, &db));
        assert_eq!(ans.as_slice(), [vec![Value::Int(2)]]);
    }

    #[test]
    fn evaluates_join() {
        let db = figure5_db();
        // t(A,B), s(B,B): pairs where t's target is an s self-loop.
        let q = parse_query("q(A, B) :- t(A, B), s(B, B)").unwrap();
        let ans = both_engines(|| evaluate(&q, &db));
        assert_eq!(ans.len(), 4);
        assert!(ans.contains(&[Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn example61_answer() {
        // Q: q(A) :- r(A,A), t(A,B), s(B,B) over Figure 5 gives A ∈ {1}.
        let db = figure5_db();
        let q = parse_query("q(A) :- r(A, A), t(A, B), s(B, B)").unwrap();
        let ans = both_engines(|| evaluate(&q, &db));
        assert_eq!(ans.as_slice(), [vec![Value::Int(1)]]);
    }

    #[test]
    fn missing_relation_gives_empty_answer() {
        let db = figure5_db();
        let q = parse_query("q(X) :- nope(X, X)").unwrap();
        assert!(both_engines(|| evaluate(&q, &db)).is_empty());
    }

    #[test]
    fn cartesian_product_when_disconnected() {
        let db = figure5_db();
        let q = parse_query("q(A, B) :- r(A, A), s(B, B)").unwrap();
        assert_eq!(both_engines(|| evaluate(&q, &db)).len(), 20);
    }

    #[test]
    fn constants_in_head_are_emitted() {
        let db = figure5_db();
        let q = parse_query("q(7, X) :- r(X, X)").unwrap();
        let ans = both_engines(|| evaluate(&q, &db));
        assert!(ans.iter().all(|t| t[0] == Value::Int(7)));
    }

    #[test]
    fn duplicate_answers_are_collapsed() {
        let db = figure5_db();
        // Project t onto its first column twice over: still 4 tuples, but
        // project to a single column with collisions across B.
        let q = parse_query("q(B) :- t(A, B)").unwrap();
        assert_eq!(both_engines(|| evaluate(&q, &db)).len(), 4);
        let q2 = parse_query("q() :- t(A, B)").unwrap();
        assert_eq!(both_engines(|| evaluate(&q2, &db)).len(), 1);
    }

    #[test]
    fn symbolic_join_exercises_dictionary_columns() {
        let mut db = Database::new();
        db.insert_sym("car", &[&["honda", "anderson"], &["bmw", "smith"]]);
        db.insert_sym("loc", &[&["anderson", "palo_alto"], &["smith", "mp"]]);
        let q = parse_query("q(M, C) :- car(M, P), loc(P, C)").unwrap();
        let ans = both_engines(|| evaluate(&q, &db));
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&[Value::sym("honda"), Value::sym("palo_alto")]));
    }

    #[test]
    fn execute_ordered_reports_intermediate_sizes() {
        let db = figure5_db();
        let q = parse_query("q(A) :- r(A, A), t(A, B), s(B, B)").unwrap();
        let trace = both_engines(|| execute_ordered(&q.head, &q.body, &db));
        assert_eq!(trace.subgoal_sizes, [5, 4, 4]);
        // IR1 = r self-loops: 5; IR2 = r ⋈ t on A: {1}×{(1,2)} → (1,2); also
        // (2,?) t(2,..)? t has no first-col 2 → just (1,2). Wait: r pairs are
        // (1..8 evens +1); t first columns are odd {1,3,5,7} so only A=1.
        assert_eq!(trace.intermediate_sizes[0], 5);
        assert_eq!(trace.intermediate_sizes[1], 1);
        assert_eq!(trace.intermediate_sizes[2], 1);
        assert_eq!(trace.answer.as_slice(), [vec![Value::Int(1)]]);
        assert_eq!(trace.cost(), 5 + 4 + 4 + 5 + 1 + 1);
    }

    #[test]
    fn execute_annotated_drops_attributes() {
        // Example 6.1's winning plan: after v1(A,B), drop B.
        let mut db = Database::new();
        db.insert_int("v1", &[&[1, 2], &[1, 4], &[1, 6], &[1, 8]]);
        db.insert_int("v2", &[&[1, 2], &[3, 4], &[5, 6], &[7, 8]]);
        let q = parse_query("q(A) :- v1(A, B), v2(A, C)").unwrap();
        let drop_b: HashSet<Symbol> = [Symbol::new("B")].into_iter().collect();
        let steps = vec![
            AnnotatedStep {
                atom: q.body[0].clone(),
                drop_after: drop_b,
            },
            AnnotatedStep {
                atom: q.body[1].clone(),
                drop_after: [Symbol::new("C")].into_iter().collect(),
            },
        ];
        let trace = both_engines(|| execute_annotated(&q.head, &steps, &db));
        // GSR1 = {1} (B dropped) — the paper's point: one tuple, not four.
        assert_eq!(trace.intermediate_sizes[0], 1);
        assert_eq!(trace.answer.as_slice(), [vec![Value::Int(1)]]);
    }

    #[test]
    fn dropping_head_variable_is_a_typed_error() {
        let mut db = Database::new();
        db.insert_int("v1", &[&[1, 2]]);
        let q = parse_query("q(A) :- v1(A, B)").unwrap();
        let steps = vec![AnnotatedStep {
            atom: q.body[0].clone(),
            drop_after: [Symbol::new("A")].into_iter().collect(),
        }];
        let err = both_engines(|| try_execute_annotated(&q.head, &steps, &db));
        assert_eq!(
            err,
            Err(EngineError::HeadVariableDropped {
                var: Symbol::new("A")
            })
        );
    }

    #[test]
    #[should_panic(expected = "head variable")]
    fn dropping_head_variable_panics() {
        let mut db = Database::new();
        db.insert_int("v1", &[&[1, 2]]);
        let q = parse_query("q(A) :- v1(A, B)").unwrap();
        let steps = vec![AnnotatedStep {
            atom: q.body[0].clone(),
            drop_after: [Symbol::new("A")].into_iter().collect(),
        }];
        execute_annotated(&q.head, &steps, &db);
    }

    /// An unsafe query (head variable absent from the body). The parser
    /// rejects these, but programmatic callers can hand them to the
    /// engine directly.
    fn unsafe_query(body: &str) -> ConjunctiveQuery {
        let parsed = parse_query(&format!("q(A) :- {body}")).unwrap();
        ConjunctiveQuery::new(Atom::new("q", vec![Term::var("X")]), parsed.body)
    }

    #[test]
    fn unbound_head_variable_is_a_typed_error() {
        let db = figure5_db();
        // X never occurs in the body: unsafe. The body is satisfiable, so
        // the error fires (with an empty body relation it would not).
        let q = unsafe_query("r(A, A)");
        let err = both_engines(|| try_evaluate(&q, &db));
        assert_eq!(
            err,
            Err(EngineError::UnboundHeadVariable {
                var: Symbol::new("X")
            })
        );
    }

    #[test]
    fn unbound_head_variable_over_empty_body_is_empty() {
        // The join stops empty before the head is consulted — the answer
        // is empty regardless, so no error.
        let db = Database::new();
        let q = unsafe_query("nope(A, A)");
        let ans = both_engines(|| try_evaluate(&q, &db));
        assert_eq!(ans, Ok(Relation::new(1)));
    }

    #[test]
    fn arity_mismatch_counts_skipped_tuples() {
        obs::set_enabled(true);
        let mut db = Database::new();
        // Store q-ary facts under `r`, then query `r` at arity 3.
        db.insert_int("r", &[&[1, 1], &[2, 2]]);
        let q = parse_query("q(X) :- r(X, Y, Z)").unwrap();
        let before = obs::counter_value("engine.arity_mismatch_skips");
        let ans = both_engines(|| evaluate(&q, &db));
        assert!(ans.is_empty());
        let after = obs::counter_value("engine.arity_mismatch_skips");
        // Two tuples skipped per engine run (both_engines runs twice).
        assert_eq!(after - before, 4);
    }

    #[test]
    fn repeated_variable_across_subgoals_joins() {
        let mut db = Database::new();
        db.insert_int("e", &[&[1, 2], &[2, 3], &[3, 1]]);
        let q = parse_query("q(X, Z) :- e(X, Y), e(Y, Z)").unwrap();
        let ans = both_engines(|| evaluate(&q, &db));
        assert_eq!(ans.len(), 3);
        assert!(ans.contains(&[Value::Int(1), Value::Int(3)]));
    }

    #[test]
    fn empty_body_returns_unit() {
        let db = Database::new();
        let q = viewplan_cq::ConjunctiveQuery::new(Atom::new("q", vec![]), vec![]);
        let ans = both_engines(|| evaluate(&q, &db));
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn answer_insertion_order_is_engine_independent() {
        let db = figure5_db();
        let q = parse_query("q(A, B) :- t(A, B), s(B, B)").unwrap();
        let row = {
            let _g = install(Engine::Row);
            evaluate(&q, &db)
        };
        let col = {
            let _g = install(Engine::Columnar);
            evaluate(&q, &db)
        };
        // Stronger than set equality: byte-identical tuple order.
        assert_eq!(row.as_slice(), col.as_slice());
    }
}
