//! Conjunctive-query evaluation by multiway hash join.
//!
//! Evaluation maintains a *bindings table*: an ordered variable schema plus
//! a set of distinct rows. Each step hash-joins the table with the next
//! subgoal's relation; constants and repeated variables inside a subgoal
//! act as selections. Because all variables are retained and inputs are
//! sets, rows stay distinct without re-deduplication — except in
//! [`execute_annotated`] plans, where dropping attributes (cost model M3)
//! can merge rows and the table is re-deduplicated.

use crate::database::Database;
use crate::relation::{Relation, Tuple};
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use viewplan_cq::{Atom, ConjunctiveQuery, Symbol, Term};
use viewplan_obs as obs;

/// The bindings table carried through a multiway join.
#[derive(Clone, Debug)]
struct Bindings {
    vars: Vec<Symbol>,
    rows: Vec<Tuple>,
}

impl Bindings {
    fn unit() -> Bindings {
        Bindings {
            vars: Vec::new(),
            rows: vec![Vec::new()],
        }
    }

    fn col(&self, v: Symbol) -> Option<usize> {
        self.vars.iter().position(|&x| x == v)
    }
}

/// How each argument position of the current subgoal relates to the
/// bindings table.
enum Slot {
    /// Must equal this constant.
    Fixed(Value),
    /// Must equal the value in this bindings column.
    Bound(usize),
    /// First occurrence of a new variable: extend the schema.
    New,
    /// Repeated occurrence of a new variable first seen at this earlier
    /// position of the same atom.
    SameAs(usize),
}

fn plan_slots(atom: &Atom, bindings: &Bindings) -> Vec<Slot> {
    let mut slots = Vec::with_capacity(atom.arity());
    let mut local: HashMap<Symbol, usize> = HashMap::new();
    for (i, t) in atom.terms.iter().enumerate() {
        let slot = match *t {
            Term::Const(c) => Slot::Fixed(Value::from_constant(c)),
            Term::Var(v) => {
                if let Some(col) = bindings.col(v) {
                    Slot::Bound(col)
                } else if let Some(&pos) = local.get(&v) {
                    Slot::SameAs(pos)
                } else {
                    local.insert(v, i);
                    Slot::New
                }
            }
        };
        slots.push(slot);
    }
    slots
}

/// Joins the bindings table with one subgoal. A missing relation is treated
/// as empty (closed world).
fn join_atom(bindings: Bindings, atom: &Atom, db: &Database) -> Bindings {
    let empty = Relation::new(atom.arity());
    let rel = db.get(atom.predicate).unwrap_or(&empty);
    let slots = plan_slots(atom, &bindings);

    // Filter the relation on constants and intra-atom repeats, and index it
    // by the values at bound positions.
    let bound_positions: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| matches!(s, Slot::Bound(_)).then_some(i))
        .collect();
    let mut index: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::new();
    'tuples: for tuple in rel {
        // An atom whose arity differs from the stored relation matches
        // nothing (it cannot map onto any fact) — skip rather than index
        // out of bounds on the narrower side.
        if tuple.len() != slots.len() {
            continue;
        }
        for (i, slot) in slots.iter().enumerate() {
            match slot {
                Slot::Fixed(v) if tuple[i] != *v => continue 'tuples,
                Slot::SameAs(j) if tuple[i] != tuple[*j] => continue 'tuples,
                _ => {}
            }
        }
        let key: Vec<Value> = bound_positions.iter().map(|&i| tuple[i]).collect();
        index.entry(key).or_default().push(tuple);
    }

    // Extend the schema with the new variables in argument order.
    let mut vars = bindings.vars.clone();
    let new_positions: Vec<usize> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| matches!(s, Slot::New).then_some(i))
        .collect();
    for &i in &new_positions {
        vars.push(atom.terms[i].as_var().expect("New slot is a variable"));
    }

    let bound_cols: Vec<usize> = slots
        .iter()
        .filter_map(|s| match s {
            Slot::Bound(c) => Some(*c),
            _ => None,
        })
        .collect();

    let mut rows = Vec::new();
    let mut key = Vec::with_capacity(bound_cols.len());
    for row in &bindings.rows {
        key.clear();
        key.extend(bound_cols.iter().map(|&c| row[c]));
        if let Some(matches) = index.get(&key) {
            for tuple in matches {
                let mut extended = row.clone();
                extended.extend(new_positions.iter().map(|&i| tuple[i]));
                rows.push(extended);
            }
        }
    }
    obs::counter!("engine.joins").incr();
    obs::counter!("engine.join_probes").add(bindings.rows.len() as u64);
    obs::histogram!("engine.intermediate_rows").record(rows.len() as u64);
    Bindings { vars, rows }
}

fn project_head(head: &Atom, bindings: &Bindings) -> Relation {
    if bindings.rows.is_empty() {
        // An empty join may have stopped before every head variable entered
        // the schema; the projection is empty regardless.
        return Relation::new(head.arity());
    }
    let cols: Vec<Result<usize, Value>> = head
        .terms
        .iter()
        .map(|t| match *t {
            Term::Var(v) => Ok(bindings
                .col(v)
                .expect("head variable must survive to the end of the plan")),
            Term::Const(c) => Err(Value::from_constant(c)),
        })
        .collect();
    let mut out = Relation::new(head.arity());
    for row in &bindings.rows {
        out.insert(
            cols.iter()
                .map(|c| match c {
                    Ok(i) => row[*i],
                    Err(v) => *v,
                })
                .collect(),
        );
    }
    out
}

/// Evaluates a conjunctive query over a database, returning the distinct
/// answer relation. Subgoals are joined in a greedy order (smallest
/// relation first, then most-connected) purely as an internal heuristic —
/// the answer is order-independent.
pub fn evaluate(q: &ConjunctiveQuery, db: &Database) -> Relation {
    obs::counter!("engine.evaluations").incr();
    let order = greedy_order(&q.body, db);
    let mut bindings = Bindings::unit();
    for idx in order {
        bindings = join_atom(bindings, &q.body[idx], db);
        if bindings.rows.is_empty() {
            break;
        }
    }
    project_head(&q.head, &bindings)
}

/// Greedy join order: start from the smallest relation; repeatedly take the
/// subgoal sharing a variable with the bound set (smallest relation on
/// ties), falling back to the smallest unconnected subgoal (Cartesian
/// product) when the query is disconnected.
fn greedy_order(body: &[Atom], db: &Database) -> Vec<usize> {
    let size = |a: &Atom| db.get(a.predicate).map_or(0, Relation::len);
    let mut remaining: Vec<usize> = (0..body.len()).collect();
    let mut order = Vec::with_capacity(body.len());
    let mut bound: HashSet<Symbol> = HashSet::new();
    while !remaining.is_empty() {
        let pick = remaining
            .iter()
            .enumerate()
            .min_by_key(|&(_, &i)| {
                let connected = body[i].variables().any(|v| bound.contains(&v));
                // Connected subgoals first (0 beats 1), then by size.
                (
                    if connected || order.is_empty() { 0 } else { 1 },
                    size(&body[i]),
                )
            })
            .map(|(pos, _)| pos)
            .expect("remaining is nonempty");
        let i = remaining.swap_remove(pick);
        bound.extend(body[i].variables());
        order.push(i);
    }
    order
}

/// The record of executing a physical plan: per-step view-relation sizes
/// and intermediate-relation sizes, plus the final answer.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecutionTrace {
    /// `size(g_i)` for each subgoal, in execution order.
    pub subgoal_sizes: Vec<usize>,
    /// `size(IR_i)` (or `size(GSR_i)` for annotated plans) after each step.
    pub intermediate_sizes: Vec<usize>,
    /// The final answer, projected on the head.
    pub answer: Relation,
}

impl ExecutionTrace {
    /// The M2-style cost of this execution:
    /// `Σ (size(g_i) + size(IR_i))` (Table 1).
    pub fn cost(&self) -> usize {
        self.subgoal_sizes.iter().sum::<usize>() + self.intermediate_sizes.iter().sum::<usize>()
    }
}

/// Executes the body subgoals in exactly the given order, with all
/// attributes retained — the physical plans of cost model M2. Records
/// `size(g_i)` and `size(IR_i)` for each step.
pub fn execute_ordered(head: &Atom, body: &[Atom], db: &Database) -> ExecutionTrace {
    let steps: Vec<AnnotatedStep> = body
        .iter()
        .map(|a| AnnotatedStep {
            atom: a.clone(),
            drop_after: HashSet::new(),
        })
        .collect();
    execute_annotated(head, &steps, db)
}

/// One step of an M3 physical plan: a subgoal and the attributes to drop
/// after it is processed (the `X_i` annotation of §2.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnnotatedStep {
    /// The subgoal joined at this step.
    pub atom: Atom,
    /// Variables projected away after this step.
    pub drop_after: HashSet<Symbol>,
}

/// Executes an annotated plan (cost model M3): joins each step's subgoal,
/// then projects away its `drop_after` variables and re-deduplicates. The
/// recorded intermediate sizes are the generalized-supplementary-relation
/// sizes `size(GSR_i)`.
///
/// # Panics
/// Panics if a head variable is dropped before the end — such a plan can
/// no longer compute the query answer and is a planner bug.
pub fn execute_annotated(head: &Atom, steps: &[AnnotatedStep], db: &Database) -> ExecutionTrace {
    let _span = obs::span("engine.execute_plan");
    let mut bindings = Bindings::unit();
    let mut subgoal_sizes = Vec::with_capacity(steps.len());
    let mut intermediate_sizes = Vec::with_capacity(steps.len());
    for step in steps {
        subgoal_sizes.push(db.get(step.atom.predicate).map_or(0, Relation::len));
        bindings = join_atom(bindings, &step.atom, db);
        if !step.drop_after.is_empty() {
            for v in &step.drop_after {
                assert!(
                    !head.contains_var(*v),
                    "plan drops head variable {v} — cannot compute the answer"
                );
            }
            bindings = project_away(bindings, &step.drop_after);
        }
        obs::histogram!("engine.gsr_rows").record(bindings.rows.len() as u64);
        intermediate_sizes.push(bindings.rows.len());
    }
    ExecutionTrace {
        subgoal_sizes,
        intermediate_sizes,
        answer: project_head(head, &bindings),
    }
}

/// Removes the given variables from the schema and deduplicates rows.
fn project_away(bindings: Bindings, drop: &HashSet<Symbol>) -> Bindings {
    let keep: Vec<usize> = (0..bindings.vars.len())
        .filter(|&i| !drop.contains(&bindings.vars[i]))
        .collect();
    let vars: Vec<Symbol> = keep.iter().map(|&i| bindings.vars[i]).collect();
    let mut seen = HashSet::new();
    let mut rows = Vec::new();
    for row in bindings.rows {
        let projected: Tuple = keep.iter().map(|&i| row[i]).collect();
        if seen.insert(projected.clone()) {
            rows.push(projected);
        }
    }
    Bindings { vars, rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewplan_cq::parse_query;

    fn figure5_db() -> Database {
        // The base relations of Figure 5 / Example 6.1.
        let mut db = Database::new();
        db.insert_int("r", &[&[1, 1], &[2, 2], &[4, 4], &[6, 6], &[8, 8]]);
        db.insert_int("s", &[&[2, 2], &[4, 4], &[6, 6], &[8, 8]]);
        db.insert_int("t", &[&[1, 2], &[3, 4], &[5, 6], &[7, 8]]);
        db
    }

    #[test]
    fn evaluates_single_subgoal_with_selection() {
        let db = figure5_db();
        let q = parse_query("q(X) :- r(X, X)").unwrap();
        assert_eq!(evaluate(&q, &db).len(), 5);
        let q2 = parse_query("q(Y) :- t(1, Y)").unwrap();
        let ans = evaluate(&q2, &db);
        assert_eq!(ans.as_slice(), [vec![Value::Int(2)]]);
    }

    #[test]
    fn evaluates_join() {
        let db = figure5_db();
        // t(A,B), s(B,B): pairs where t's target is an s self-loop.
        let q = parse_query("q(A, B) :- t(A, B), s(B, B)").unwrap();
        let ans = evaluate(&q, &db);
        assert_eq!(ans.len(), 4);
        assert!(ans.contains(&[Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn example61_answer() {
        // Q: q(A) :- r(A,A), t(A,B), s(B,B) over Figure 5 gives A ∈ {1}.
        let db = figure5_db();
        let q = parse_query("q(A) :- r(A, A), t(A, B), s(B, B)").unwrap();
        let ans = evaluate(&q, &db);
        assert_eq!(ans.as_slice(), [vec![Value::Int(1)]]);
    }

    #[test]
    fn missing_relation_gives_empty_answer() {
        let db = figure5_db();
        let q = parse_query("q(X) :- nope(X, X)").unwrap();
        assert!(evaluate(&q, &db).is_empty());
    }

    #[test]
    fn cartesian_product_when_disconnected() {
        let db = figure5_db();
        let q = parse_query("q(A, B) :- r(A, A), s(B, B)").unwrap();
        assert_eq!(evaluate(&q, &db).len(), 20);
    }

    #[test]
    fn constants_in_head_are_emitted() {
        let db = figure5_db();
        let q = parse_query("q(7, X) :- r(X, X)").unwrap();
        let ans = evaluate(&q, &db);
        assert!(ans.iter().all(|t| t[0] == Value::Int(7)));
    }

    #[test]
    fn duplicate_answers_are_collapsed() {
        let db = figure5_db();
        // Project t onto its first column twice over: still 4 tuples, but
        // project to a single column with collisions across B.
        let q = parse_query("q(B) :- t(A, B)").unwrap();
        assert_eq!(evaluate(&q, &db).len(), 4);
        let q2 = parse_query("q() :- t(A, B)").unwrap();
        assert_eq!(evaluate(&q2, &db).len(), 1);
    }

    #[test]
    fn execute_ordered_reports_intermediate_sizes() {
        let db = figure5_db();
        let q = parse_query("q(A) :- r(A, A), t(A, B), s(B, B)").unwrap();
        let trace = execute_ordered(&q.head, &q.body, &db);
        assert_eq!(trace.subgoal_sizes, [5, 4, 4]);
        // IR1 = r self-loops: 5; IR2 = r ⋈ t on A: {1}×{(1,2)} → (1,2); also
        // (2,?) t(2,..)? t has no first-col 2 → just (1,2). Wait: r pairs are
        // (1..8 evens +1); t first columns are odd {1,3,5,7} so only A=1.
        assert_eq!(trace.intermediate_sizes[0], 5);
        assert_eq!(trace.intermediate_sizes[1], 1);
        assert_eq!(trace.intermediate_sizes[2], 1);
        assert_eq!(trace.answer.as_slice(), [vec![Value::Int(1)]]);
        assert_eq!(trace.cost(), 5 + 4 + 4 + 5 + 1 + 1);
    }

    #[test]
    fn execute_annotated_drops_attributes() {
        // Example 6.1's winning plan: after v1(A,B), drop B.
        let mut db = Database::new();
        db.insert_int("v1", &[&[1, 2], &[1, 4], &[1, 6], &[1, 8]]);
        db.insert_int("v2", &[&[1, 2], &[3, 4], &[5, 6], &[7, 8]]);
        let q = parse_query("q(A) :- v1(A, B), v2(A, C)").unwrap();
        let drop_b: HashSet<Symbol> = [Symbol::new("B")].into_iter().collect();
        let steps = vec![
            AnnotatedStep {
                atom: q.body[0].clone(),
                drop_after: drop_b,
            },
            AnnotatedStep {
                atom: q.body[1].clone(),
                drop_after: [Symbol::new("C")].into_iter().collect(),
            },
        ];
        let trace = execute_annotated(&q.head, &steps, &db);
        // GSR1 = {1} (B dropped) — the paper's point: one tuple, not four.
        assert_eq!(trace.intermediate_sizes[0], 1);
        assert_eq!(trace.answer.as_slice(), [vec![Value::Int(1)]]);
    }

    #[test]
    #[should_panic(expected = "head variable")]
    fn dropping_head_variable_panics() {
        let mut db = Database::new();
        db.insert_int("v1", &[&[1, 2]]);
        let q = parse_query("q(A) :- v1(A, B)").unwrap();
        let steps = vec![AnnotatedStep {
            atom: q.body[0].clone(),
            drop_after: [Symbol::new("A")].into_iter().collect(),
        }];
        execute_annotated(&q.head, &steps, &db);
    }

    #[test]
    fn repeated_variable_across_subgoals_joins() {
        let mut db = Database::new();
        db.insert_int("e", &[&[1, 2], &[2, 3], &[3, 1]]);
        let q = parse_query("q(X, Z) :- e(X, Y), e(Y, Z)").unwrap();
        let ans = evaluate(&q, &db);
        assert_eq!(ans.len(), 3);
        assert!(ans.contains(&[Value::Int(1), Value::Int(3)]));
    }

    #[test]
    fn empty_body_returns_unit() {
        let db = Database::new();
        let q = viewplan_cq::ConjunctiveQuery::new(Atom::new("q", vec![]), vec![]);
        let ans = evaluate(&q, &db);
        assert_eq!(ans.len(), 1);
    }
}
