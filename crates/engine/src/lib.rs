//! An in-memory relational engine for conjunctive queries.
//!
//! The paper's architecture is two-phase: a *rewriting generator* produces
//! logical plans over materialized views, and an *optimizer* turns one into
//! a physical plan that joins the stored view relations. This crate is the
//! storage-and-execution substrate both phases stand on:
//!
//! * [`Relation`], [`Database`] — set-semantics relations over [`Value`]s,
//!   with a lazily-cached columnar ([`ColumnarRelation`]) twin;
//! * [`evaluate`] — multiway hash-join evaluation of a conjunctive query,
//!   on either the row-at-a-time executor or the columnar batch executor
//!   ([`Engine`], selected by `--engine` / `VIEWPLAN_ENGINE`; both produce
//!   byte-identical answers and traces);
//! * [`materialize_views`] — compute view relations from base relations
//!   (the closed-world assumption: views hold *exactly* these tuples);
//! * [`canonical_database`] — the frozen database `D_Q` of §3.3, with
//!   [`Value::Frozen`] values that restore to the query's variables;
//! * [`execute_ordered`] / [`execute_annotated`] — run a join order (with
//!   optional attribute dropping) and report every intermediate-relation
//!   size, the ground truth for cost models M2 and M3.
//!
//! # Example
//!
//! ```
//! use viewplan_cq::parse_query;
//! use viewplan_engine::{Database, evaluate};
//!
//! let mut db = Database::new();
//! db.insert_sym("car", &[&["honda", "anderson"], &["bmw", "smith"]]);
//! db.insert_sym("loc", &[&["anderson", "palo_alto"]]);
//! let q = parse_query("q(M, C) :- car(M, anderson), loc(anderson, C)").unwrap();
//! let ans = evaluate(&q, &db);
//! assert_eq!(ans.len(), 1);
//! ```

mod batch;
pub mod canonical;
pub mod columnar;
pub mod database;
pub mod engine;
pub mod error;
pub mod eval;
pub mod materialize;
pub mod relation;
pub mod value;
pub mod yannakakis;

pub use canonical::{canonical_database, freeze_term, unfreeze_value};
pub use columnar::{Column, ColumnarRelation};
pub use database::Database;
pub use engine::{
    current_engine, default_engine, install, set_default_engine, Engine, EngineGuard,
};
pub use error::EngineError;
pub use eval::{
    evaluate, execute_annotated, execute_ordered, try_evaluate, try_execute_annotated,
    try_execute_ordered, AnnotatedStep, ExecutionTrace,
};
pub use materialize::materialize_views;
pub use relation::{Relation, Tuple};
pub use value::Value;
pub use yannakakis::reduced_tuple_count;
