//! View materialization under the closed-world assumption.
//!
//! In the closed-world model (§1, §2.1) each view relation holds *exactly*
//! the tuples its definition computes from the base relations — this is
//! what makes equivalent rewritings answer-preserving and distinguishes the
//! setting from open-world source descriptions.

use crate::database::Database;
use crate::eval::evaluate;
use viewplan_cq::ViewSet;

/// Computes every view over `base`, returning a database keyed by view
/// name. Views whose definitions mention other views are *not* supported
/// (the paper defines views over base relations only); such a view simply
/// evaluates over whatever relations `base` provides.
pub fn materialize_views(views: &ViewSet, base: &Database) -> Database {
    let mut out = Database::new();
    for view in views {
        let rel = evaluate(&view.definition, base);
        out.set(view.name(), rel);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use viewplan_cq::parse_views;

    fn carlocpart_base() -> Database {
        let mut db = Database::new();
        db.insert_sym(
            "car",
            &[
                &["honda", "anderson"],
                &["bmw", "anderson"],
                &["ford", "smith"],
            ],
        );
        db.insert_sym(
            "loc",
            &[&["anderson", "palo_alto"], &["smith", "menlo_park"]],
        );
        db.insert_sym(
            "part",
            &[
                &["store1", "honda", "palo_alto"],
                &["store2", "ford", "menlo_park"],
                &["store3", "honda", "sunnyvale"],
            ],
        );
        db
    }

    #[test]
    fn materializes_example_views() {
        let views = parse_views(
            "v1(M, D, C) :- car(M, D), loc(D, C).\n\
             v2(S, M, C) :- part(S, M, C).\n\
             v3(S) :- car(M, a), loc(a, C), part(S, M, C).",
        )
        .unwrap();
        let base = carlocpart_base();
        let vdb = materialize_views(&views, &base);
        // v1: every car joined with its dealer's cities.
        assert_eq!(vdb.get("v1".into()).unwrap().len(), 3);
        // v2 is a copy of part.
        assert_eq!(vdb.get("v2".into()).unwrap().len(), 3);
        // v3: dealer "a" does not exist, so empty.
        assert!(vdb.get("v3".into()).unwrap().is_empty());
    }

    #[test]
    fn identical_definitions_give_identical_relations() {
        // V1 and V5 of Example 1.1 have the same definition; closed world
        // means their relations are always equal.
        let views = parse_views(
            "v1(M, D, C) :- car(M, D), loc(D, C).\n\
             v5(M, D, C) :- car(M, D), loc(D, C).",
        )
        .unwrap();
        let base = carlocpart_base();
        let vdb = materialize_views(&views, &base);
        assert_eq!(vdb.get("v1".into()), vdb.get("v5".into()));
    }

    #[test]
    fn constants_in_view_definitions_select() {
        let views = parse_views("honda_stores(S) :- part(S, honda, C)").unwrap();
        let vdb = materialize_views(&views, &carlocpart_base());
        let r = vdb.get("honda_stores".into()).unwrap();
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[Value::sym("store1")]));
        assert!(r.contains(&[Value::sym("store3")]));
    }
}
