//! Set-semantics relations.

use crate::columnar::ColumnarRelation;
use crate::value::Value;
use std::collections::HashSet;
use std::fmt;
use std::sync::OnceLock;

/// A database tuple.
pub type Tuple = Vec<Value>;

/// A relation: a set of distinct tuples of a fixed arity.
///
/// Conjunctive queries have set semantics (§2), so insertion deduplicates.
/// Tuples are also kept in insertion order in a `Vec` for deterministic
/// iteration (the paper's experiments average over generated workloads;
/// determinism keeps runs reproducible).
#[derive(Clone, Debug)]
pub struct Relation {
    arity: usize,
    tuples: Vec<Tuple>,
    index: HashSet<Tuple>,
    /// Lazily-built struct-of-arrays twin for the columnar engine,
    /// invalidated on insertion.
    columnar: OnceLock<ColumnarRelation>,
}

/// Relations compare as *sets*: same arity and same tuples, regardless of
/// insertion order.
impl PartialEq for Relation {
    fn eq(&self, other: &Relation) -> bool {
        self.arity == other.arity && self.index == other.index
    }
}

impl Eq for Relation {}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            tuples: Vec::new(),
            index: HashSet::new(),
            columnar: OnceLock::new(),
        }
    }

    /// Builds a relation from rows; panics if a row's arity mismatches.
    pub fn from_rows(arity: usize, rows: impl IntoIterator<Item = Tuple>) -> Relation {
        let mut r = Relation::new(arity);
        for row in rows {
            r.insert(row);
        }
        r
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Inserts a tuple; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics if the tuple's length differs from the relation's arity —
    /// schema violations are programming errors, not data errors.
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        assert_eq!(
            tuple.len(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            tuple.len(),
            self.arity
        );
        if self.index.insert(tuple.clone()) {
            self.tuples.push(tuple);
            self.columnar.take();
            true
        } else {
            false
        }
    }

    /// The columnar (struct-of-arrays) view of this relation, built on
    /// first use and cached until the next insertion.
    pub fn columnar(&self) -> &ColumnarRelation {
        self.columnar
            .get_or_init(|| ColumnarRelation::from_relation(self))
    }

    /// True iff `tuple` is in the relation.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        self.index.contains(tuple)
    }

    /// Number of distinct tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterates over the tuples in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// The tuples as a slice.
    pub fn as_slice(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of distinct values in column `col` (used by the cost
    /// estimator's independence-assumption selectivity model).
    pub fn distinct_in_column(&self, col: usize) -> usize {
        assert!(col < self.arity, "column {col} out of range");
        self.tuples
            .iter()
            .map(|t| t[col])
            .collect::<HashSet<_>>()
            .len()
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "-- {} tuple(s), arity {}", self.len(), self.arity)?;
        for t in &self.tuples {
            f.write_str("  (")?;
            for (i, v) in t.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{v}")?;
            }
            writeln!(f, ")")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Relation {
    type Item = &'a Tuple;
    type IntoIter = std::slice::Iter<'a, Tuple>;

    fn into_iter(self) -> Self::IntoIter {
        self.tuples.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn insertion_deduplicates() {
        let mut r = Relation::new(2);
        assert!(r.insert(t(&[1, 2])));
        assert!(!r.insert(t(&[1, 2])));
        assert!(r.insert(t(&[2, 1])));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&t(&[1, 2])));
        assert!(!r.contains(&t(&[3, 3])));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(t(&[1]));
    }

    #[test]
    fn distinct_in_column() {
        let r = Relation::from_rows(2, vec![t(&[1, 2]), t(&[1, 3]), t(&[2, 3])]);
        assert_eq!(r.distinct_in_column(0), 2);
        assert_eq!(r.distinct_in_column(1), 2);
    }

    #[test]
    fn iteration_is_insertion_ordered() {
        let r = Relation::from_rows(1, vec![t(&[3]), t(&[1]), t(&[2]), t(&[1])]);
        let got: Vec<i64> = r
            .iter()
            .map(|row| match row[0] {
                Value::Int(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, [3, 1, 2]);
    }

    #[test]
    fn columnar_cache_invalidates_on_insert() {
        let mut r = Relation::new(1);
        r.insert(t(&[1]));
        assert_eq!(r.columnar().len(), 1);
        r.insert(t(&[2]));
        assert_eq!(r.columnar().len(), 2);
        assert_eq!(r.columnar().row(1), t(&[2]));
    }

    #[test]
    fn zero_arity_relation_holds_at_most_one_tuple() {
        let mut r = Relation::new(0);
        assert!(r.insert(vec![]));
        assert!(!r.insert(vec![]));
        assert_eq!(r.len(), 1);
    }
}

#[cfg(test)]
mod equality_tests {
    use super::*;

    #[test]
    fn relations_compare_as_sets() {
        let a = Relation::from_rows(1, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        let b = Relation::from_rows(1, vec![vec![Value::Int(2)], vec![Value::Int(1)]]);
        assert_eq!(a, b);
        let c = Relation::from_rows(1, vec![vec![Value::Int(1)]]);
        assert_ne!(a, c);
        let d = Relation::new(2);
        assert_ne!(Relation::new(1), d);
    }
}
