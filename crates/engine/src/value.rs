//! Runtime values stored in relations.

use std::fmt;
use viewplan_cq::{Constant, Symbol, Term};

/// A value in a database tuple.
///
/// `Frozen` values arise only in canonical databases (§3.3): freezing a
/// query turns each variable `X` into a distinct constant that remembers
/// which variable it came from, so the "restore introduced constants back
/// to variables" step of view-tuple construction is a tag flip.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Value {
    /// A symbolic constant such as `anderson`.
    Sym(Symbol),
    /// An integer constant.
    Int(i64),
    /// The frozen image of query variable `X` in a canonical database.
    Frozen(Symbol),
    /// An opaque functional (Skolem) value, produced only by the
    /// inverse-rule algorithm when reconstructing base relations from view
    /// instances: the witness for an existential view variable. The `u32`
    /// indexes the run's Skolem table; two Skolem values are equal iff they
    /// denote the same function application.
    Skolem(u32),
}

impl Value {
    /// Symbolic value from a string.
    pub fn sym(s: &str) -> Value {
        Value::Sym(Symbol::new(s))
    }

    /// Converts a query constant into a value.
    pub fn from_constant(c: Constant) -> Value {
        match c {
            Constant::Sym(s) => Value::Sym(s),
            Constant::Int(i) => Value::Int(i),
        }
    }

    /// Converts back to a term: ordinary values become constants, frozen
    /// values thaw into their original variable.
    ///
    /// # Panics
    /// Panics on [`Value::Skolem`] — Skolem witnesses exist only inside
    /// the inverse-rule evaluation and never flow back into queries.
    pub fn to_term(self) -> Term {
        match self {
            Value::Sym(s) => Term::Const(Constant::Sym(s)),
            Value::Int(i) => Term::Const(Constant::Int(i)),
            Value::Frozen(v) => Term::Var(v),
            Value::Skolem(id) => panic!("Skolem value f#{id} has no term form"),
        }
    }

    /// True iff this is a Skolem witness.
    pub fn is_skolem(self) -> bool {
        matches!(self, Value::Skolem(_))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Sym(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Frozen(v) => write!(f, "⟨{v}⟩"),
            Value::Skolem(id) => write!(f, "f#{id}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::sym(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_round_trips() {
        assert_eq!(
            Value::from_constant(Constant::sym("a")).to_term(),
            Term::cst("a")
        );
        assert_eq!(
            Value::from_constant(Constant::Int(5)).to_term(),
            Term::int(5)
        );
        assert_eq!(Value::Frozen(Symbol::new("X")).to_term(), Term::var("X"));
    }

    #[test]
    fn frozen_differs_from_symbolic_with_same_name() {
        assert_ne!(Value::Frozen(Symbol::new("a")), Value::sym("a"));
    }

    #[test]
    fn display() {
        assert_eq!(Value::sym("a").to_string(), "a");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Frozen(Symbol::new("X")).to_string(), "⟨X⟩");
        assert_eq!(Value::Skolem(3).to_string(), "f#3");
    }

    #[test]
    #[should_panic(expected = "no term form")]
    fn skolem_has_no_term_form() {
        Value::Skolem(0).to_term();
    }

    #[test]
    fn skolem_detection() {
        assert!(Value::Skolem(1).is_skolem());
        assert!(!Value::Int(1).is_skolem());
    }
}
