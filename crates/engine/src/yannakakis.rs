//! Yannakakis evaluation for acyclic queries.
//!
//! The classical guarantee: an acyclic conjunctive query can be answered
//! with intermediates bounded by input + output, never the exponential
//! blowup an unlucky join order produces. The algorithm semijoin-reduces
//! the stored relations along the GYO join forest — a bottom-up pass
//! (each ear filters its witness) followed by a top-down pass (each
//! witness filters its ears) — after which *every remaining tuple
//! participates in at least one answer*. Joining the reduced relations
//! then does exactly the work the answer requires.
//!
//! Byte-identity with the other engines is preserved by construction:
//!
//! * the join order is computed by the shared greedy heuristic over the
//!   **original** relation sizes (reduction shrinks relations, which
//!   would otherwise reorder the plan and hence the answer rows);
//! * the final joins run through the same [`Table`] driver loop the row
//!   and columnar engines use, over the reduced relations. Semijoins
//!   only delete tuples that occur in **no** answer and `retain` keeps
//!   relative order, so the surviving probe-order × build-order row
//!   sequence — and therefore the answer relation, byte for byte — is
//!   unchanged;
//! * each subgoal's reduced relation is registered under a private
//!   per-atom name (`__yk{i}`), so self-joins reduce each occurrence
//!   independently without clobbering the shared base relation.
//!
//! Cyclic queries (GYO gets stuck) fall back to the ordinary columnar
//! driver; `engine.yannakakis_reductions` / `engine.yannakakis_fallbacks`
//! count the routing.

use crate::database::Database;
use crate::error::EngineError;
use crate::eval::{
    evaluate_in_order_with, evaluate_with, greedy_order, note_arity_mismatch, plan_slots, Slot,
    Table,
};
use crate::relation::{Relation, Tuple};
use crate::value::Value;
use std::collections::HashSet;
use viewplan_cq::{join_forest, Atom, ConjunctiveQuery, Symbol};
use viewplan_obs as obs;

// Single registration site per counter name (the xtask lint): both
// outcomes of the acyclicity routing decision funnel through here.
fn note_routing(reduced: bool) {
    if reduced {
        obs::counter!("engine.yannakakis_reductions").incr();
    } else {
        obs::counter!("engine.yannakakis_fallbacks").incr();
    }
}

/// Evaluates `q` by semijoin reduction along its join forest, falling
/// back to the plain driver when the body is cyclic. The answer relation
/// is byte-identical (row order included) to the other engines'.
pub(crate) fn evaluate_reduced<T: Table>(
    q: &ConjunctiveQuery,
    db: &Database,
) -> Result<Relation, EngineError> {
    let Some(forest) = join_forest(&q.body) else {
        note_routing(false);
        return evaluate_with::<T>(q, db);
    };
    note_routing(true);

    // The join order the other engines would use — over the *original*
    // relation sizes, fixed before reduction shrinks anything.
    let order = greedy_order(&q.body, db);

    // Per-atom variable schemas (first-occurrence positions) and
    // candidate relations: the stored tuples surviving the atom's
    // constant and repeated-variable selections, exactly the rows the
    // driver's join would admit.
    let mut var_pos: Vec<Vec<(Symbol, usize)>> = Vec::with_capacity(q.body.len());
    let mut relations: Vec<Vec<Tuple>> = Vec::with_capacity(q.body.len());
    let empty_answer = || Ok(Relation::new(q.head.arity()));
    for atom in &q.body {
        let slots = plan_slots(atom, &[]);
        var_pos.push(
            slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    Slot::New(v) => Some((*v, i)),
                    _ => None,
                })
                .collect(),
        );
        let stored = db.get(atom.predicate);
        let mismatched = stored.is_some_and(|rel| rel.arity() != atom.arity());
        note_arity_mismatch(if mismatched {
            stored.map_or(0, Relation::len)
        } else {
            0
        });
        let rows: Vec<Tuple> = match stored {
            Some(rel) if !mismatched => rel
                .iter()
                .filter(|tuple| {
                    slots.iter().enumerate().all(|(i, s)| match s {
                        Slot::Fixed(v) => tuple[i] == *v,
                        Slot::SameAs(j) => tuple[i] == tuple[*j],
                        _ => true,
                    })
                })
                .cloned()
                .collect(),
            _ => Vec::new(),
        };
        if rows.is_empty() {
            // An unsatisfiable subgoal empties the whole join, exactly as
            // the driver's early-exit would.
            return empty_answer();
        }
        relations.push(rows);
    }

    // Full reduction: bottom-up (ear filters witness), then top-down
    // (witness filters ear). Afterwards every remaining tuple joins
    // through to at least one complete row.
    for &ear in &forest.order {
        if let Some(parent) = forest.parent[ear] {
            if semijoin(&mut relations, &var_pos, parent, ear) {
                return empty_answer();
            }
        }
    }
    for &ear in forest.order.iter().rev() {
        if let Some(parent) = forest.parent[ear] {
            if semijoin(&mut relations, &var_pos, ear, parent) {
                return empty_answer();
            }
        }
    }

    // Re-point each subgoal at its reduced relation (private per-atom
    // names keep self-join occurrences independent) and run the shared
    // driver loop in the pre-reduction order.
    let mut reduced_db = Database::new();
    let mut body = Vec::with_capacity(q.body.len());
    for (i, atom) in q.body.iter().enumerate() {
        let name = Symbol::new(&format!("__yk{i}"));
        reduced_db.set(
            name,
            Relation::from_rows(atom.arity(), std::mem::take(&mut relations[i])),
        );
        body.push(Atom::new(name, atom.terms.clone()));
    }
    evaluate_in_order_with::<T>(&q.head, &body, &order, &reduced_db)
}

/// Semijoin `relations[keep] ⋉ relations[filter]` on their shared
/// variables, in place. Returns `true` when `keep` empties (the query
/// answer is empty).
fn semijoin(
    relations: &mut [Vec<Tuple>],
    var_pos: &[Vec<(Symbol, usize)>],
    keep: usize,
    filter: usize,
) -> bool {
    let shared: Vec<(usize, usize)> = var_pos[keep]
        .iter()
        .filter_map(|&(v, kp)| {
            var_pos[filter]
                .iter()
                .find(|&&(w, _)| w == v)
                .map(|&(_, fp)| (kp, fp))
        })
        .collect();
    if shared.is_empty() {
        // Variable-disjoint edges only gate nonemptiness, and both sides
        // are nonempty here (empty relations return early).
        return false;
    }
    let keys: HashSet<Vec<Value>> = relations[filter]
        .iter()
        .map(|t| shared.iter().map(|&(_, fp)| t[fp]).collect())
        .collect();
    relations[keep].retain(|t| {
        let key: Vec<Value> = shared.iter().map(|&(kp, _)| t[kp]).collect();
        keys.contains(&key)
    });
    relations[keep].is_empty()
}

/// The total tuple count the reduction leaves behind for `q` — the
/// quantity the acyclicity bound promises stays linear. Exposed for the
/// cost layer's width-aware estimates and for tests; `None` when the
/// body is cyclic.
pub fn reduced_tuple_count(q: &ConjunctiveQuery, db: &Database) -> Option<usize> {
    let forest = join_forest(&q.body)?;
    let mut var_pos: Vec<Vec<(Symbol, usize)>> = Vec::with_capacity(q.body.len());
    let mut relations: Vec<Vec<Tuple>> = Vec::with_capacity(q.body.len());
    for atom in &q.body {
        let slots = plan_slots(atom, &[]);
        var_pos.push(
            slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    Slot::New(v) => Some((*v, i)),
                    _ => None,
                })
                .collect(),
        );
        let rows: Vec<Tuple> = match db.get(atom.predicate) {
            Some(rel) if rel.arity() == atom.arity() => rel
                .iter()
                .filter(|tuple| {
                    slots.iter().enumerate().all(|(i, s)| match s {
                        Slot::Fixed(v) => tuple[i] == *v,
                        Slot::SameAs(j) => tuple[i] == tuple[*j],
                        _ => true,
                    })
                })
                .cloned()
                .collect(),
            _ => Vec::new(),
        };
        if rows.is_empty() {
            return Some(0);
        }
        relations.push(rows);
    }
    for &ear in &forest.order {
        if let Some(parent) = forest.parent[ear] {
            if semijoin(&mut relations, &var_pos, parent, ear) {
                return Some(0);
            }
        }
    }
    for &ear in forest.order.iter().rev() {
        if let Some(parent) = forest.parent[ear] {
            if semijoin(&mut relations, &var_pos, ear, parent) {
                return Some(0);
            }
        }
    }
    Some(relations.iter().map(Vec::len).sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{install, Engine};
    use crate::eval::evaluate;
    use crate::value::Value;
    use viewplan_cq::parse_query;

    /// Evaluates under all three engines and asserts byte-identical
    /// answers (tuple order included); returns the Yannakakis answer.
    fn all_engines(q: &ConjunctiveQuery, db: &Database) -> Relation {
        let row = {
            let _g = install(Engine::Row);
            evaluate(q, db)
        };
        let col = {
            let _g = install(Engine::Columnar);
            evaluate(q, db)
        };
        let yan = {
            let _g = install(Engine::Yannakakis);
            evaluate(q, db)
        };
        assert_eq!(row.as_slice(), col.as_slice(), "row vs columnar order");
        assert_eq!(row.as_slice(), yan.as_slice(), "row vs yannakakis order");
        yan
    }

    fn chain_db() -> Database {
        let mut db = Database::new();
        db.insert_int("r", &[&[1, 2], &[2, 3], &[3, 4], &[9, 9]]);
        db.insert_int("s", &[&[2, 5], &[3, 6], &[7, 7]]);
        db.insert_int("t", &[&[5, 8], &[6, 8]]);
        db
    }

    #[test]
    fn acyclic_chain_matches_other_engines() {
        let db = chain_db();
        let q = parse_query("q(A, D) :- r(A, B), s(B, C), t(C, D)").unwrap();
        let ans = all_engines(&q, &db);
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&[Value::Int(1), Value::Int(8)]));
        assert!(ans.contains(&[Value::Int(2), Value::Int(8)]));
    }

    #[test]
    fn reduction_and_fallback_counters_route() {
        obs::set_enabled(true);
        let db = chain_db();
        let _g = install(Engine::Yannakakis);
        let before_fast = obs::counter_value("engine.yannakakis_reductions");
        let before_slow = obs::counter_value("engine.yannakakis_fallbacks");
        let acyclic = parse_query("q(A) :- r(A, B), s(B, C)").unwrap();
        evaluate(&acyclic, &db);
        assert_eq!(
            obs::counter_value("engine.yannakakis_reductions"),
            before_fast + 1
        );
        let cyclic = parse_query("q(A) :- r(A, B), s(B, C), t(C, A)").unwrap();
        evaluate(&cyclic, &db);
        assert_eq!(
            obs::counter_value("engine.yannakakis_fallbacks"),
            before_slow + 1
        );
    }

    #[test]
    fn cyclic_triangle_falls_back_and_agrees() {
        let mut db = Database::new();
        db.insert_int("e", &[&[1, 2], &[2, 3], &[3, 1], &[2, 1]]);
        let q = parse_query("q(A, B, C) :- e(A, B), e(B, C), e(C, A)").unwrap();
        let ans = all_engines(&q, &db);
        assert!(ans.contains(&[Value::Int(1), Value::Int(2), Value::Int(3)]));
    }

    #[test]
    fn empty_relation_gives_empty_answer_everywhere() {
        let mut db = chain_db();
        db.set(Symbol::new("s"), Relation::new(2));
        let q = parse_query("q(A, D) :- r(A, B), s(B, C), t(C, D)").unwrap();
        assert!(all_engines(&q, &db).is_empty());
        // Missing relation behaves like an empty one.
        let q2 = parse_query("q(A, B) :- nope(A, B)").unwrap();
        assert!(all_engines(&q2, &db).is_empty());
    }

    #[test]
    fn self_join_occurrences_reduce_independently() {
        let mut db = Database::new();
        db.insert_int("e", &[&[1, 2], &[2, 3], &[3, 4], &[5, 6]]);
        let q = parse_query("q(X, Z) :- e(X, Y), e(Y, Z)").unwrap();
        let ans = all_engines(&q, &db);
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&[Value::Int(1), Value::Int(3)]));
        assert!(ans.contains(&[Value::Int(2), Value::Int(4)]));
    }

    #[test]
    fn constants_and_repeats_filter_candidates() {
        let mut db = Database::new();
        db.insert_int("r", &[&[1, 1], &[1, 2], &[2, 2]]);
        db.insert_int("s", &[&[1, 7], &[2, 8]]);
        let q = parse_query("q(Y) :- r(X, X), s(X, Y)").unwrap();
        let ans = all_engines(&q, &db);
        assert_eq!(ans.len(), 2);
        let q2 = parse_query("q(Y) :- r(1, X), s(X, Y)").unwrap();
        let ans2 = all_engines(&q2, &db);
        assert_eq!(ans2.len(), 2);
    }

    #[test]
    fn star_query_reduces_to_participating_tuples_only() {
        let mut db = Database::new();
        // Hub 1 joins everywhere; hub 9's spokes dangle (no b/c partner).
        db.insert_int("a", &[&[1, 10], &[9, 11]]);
        db.insert_int("b", &[&[1, 20], &[1, 21]]);
        db.insert_int("c", &[&[1, 30]]);
        let q = parse_query("q(X, P, R, S) :- a(X, P), b(X, R), c(X, S)").unwrap();
        let ans = all_engines(&q, &db);
        assert_eq!(ans.len(), 2);
        // Full reduction drops the dangling a(9, 11) spoke.
        assert_eq!(reduced_tuple_count(&q, &db), Some(4));
    }

    #[test]
    fn reduced_tuple_count_is_none_for_cyclic_bodies() {
        let db = chain_db();
        let q = parse_query("q(A) :- r(A, B), s(B, C), t(C, A)").unwrap();
        assert_eq!(reduced_tuple_count(&q, &db), None);
    }

    #[test]
    fn empty_body_yields_unit_row() {
        let db = Database::new();
        let q = ConjunctiveQuery::new(Atom::new("q", vec![]), vec![]);
        assert_eq!(all_engines(&q, &db).len(), 1);
    }

    #[test]
    fn disconnected_components_cross_product() {
        let db = chain_db();
        let q = parse_query("q(A, C) :- r(A, A), s(C, C)").unwrap();
        let ans = all_engines(&q, &db);
        assert_eq!(ans.as_slice(), [vec![Value::Int(9), Value::Int(7)]]);
    }

    #[test]
    fn arity_mismatch_still_counts_skips() {
        obs::set_enabled(true);
        let mut db = Database::new();
        db.insert_int("r", &[&[1, 1], &[2, 2]]);
        let q = parse_query("q(X) :- r(X, Y, Z)").unwrap();
        let before = obs::counter_value("engine.arity_mismatch_skips");
        let _g = install(Engine::Yannakakis);
        assert!(evaluate(&q, &db).is_empty());
        let after = obs::counter_value("engine.arity_mismatch_skips");
        assert_eq!(after - before, 2);
    }
}
