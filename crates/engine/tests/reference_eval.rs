//! Differential testing of the hash-join evaluator against a naive
//! nested-loop reference implementation.
//!
//! The reference enumerates every combination of body-atom tuples and
//! checks variable consistency directly — quadratic-or-worse and obviously
//! correct. The engine must agree on every randomly generated query and
//! database.

use proptest::prelude::*;
use std::collections::HashMap;
use viewplan_cq::{Atom, ConjunctiveQuery, Symbol, Term};
use viewplan_engine::{evaluate, Database, Relation, Tuple, Value};

/// Obviously-correct nested-loop evaluation.
fn reference_evaluate(q: &ConjunctiveQuery, db: &Database) -> Relation {
    fn recurse(
        q: &ConjunctiveQuery,
        db: &Database,
        depth: usize,
        binding: &mut HashMap<Symbol, Value>,
        out: &mut Relation,
    ) {
        if depth == q.body.len() {
            let row: Tuple = q
                .head
                .terms
                .iter()
                .map(|t| match *t {
                    Term::Var(v) => binding[&v],
                    Term::Const(c) => Value::from_constant(c),
                })
                .collect();
            out.insert(row);
            return;
        }
        let atom = &q.body[depth];
        let Some(rel) = db.get(atom.predicate) else {
            return;
        };
        'tuples: for tuple in rel {
            if tuple.len() != atom.arity() {
                continue;
            }
            let mut added: Vec<Symbol> = Vec::new();
            for (t, &val) in atom.terms.iter().zip(tuple) {
                match *t {
                    Term::Const(c) => {
                        if Value::from_constant(c) != val {
                            for v in added.drain(..) {
                                binding.remove(&v);
                            }
                            continue 'tuples;
                        }
                    }
                    Term::Var(v) => match binding.get(&v) {
                        Some(&prev) if prev != val => {
                            for v in added.drain(..) {
                                binding.remove(&v);
                            }
                            continue 'tuples;
                        }
                        Some(_) => {}
                        None => {
                            binding.insert(v, val);
                            added.push(v);
                        }
                    },
                }
            }
            recurse(q, db, depth + 1, binding, out);
            for v in added {
                binding.remove(&v);
            }
        }
    }
    let mut out = Relation::new(q.head.arity());
    recurse(q, db, 0, &mut HashMap::new(), &mut out);
    out
}

/// Strategy: a small random query over ≤ 3 binary/ternary predicates with
/// shared variables and occasional constants.
fn arb_query() -> impl Strategy<Value = ConjunctiveQuery> {
    let term = prop_oneof![
        5 => (0..4usize).prop_map(|i| Term::var(&format!("V{i}"))),
        1 => (0..3i64).prop_map(Term::int),
    ];
    let atom = ((0..3usize), prop::collection::vec(term, 1..=3))
        .prop_map(|(p, ts)| Atom::new(format!("rel{}_{}", p, ts.len()).as_str(), ts));
    prop::collection::vec(atom, 1..=4).prop_map(|body| {
        let mut vars: Vec<Symbol> = Vec::new();
        for a in &body {
            for v in a.variables() {
                if !vars.contains(&v) {
                    vars.push(v);
                }
            }
        }
        let head_terms: Vec<Term> = vars.into_iter().map(Term::Var).collect();
        ConjunctiveQuery::new(Atom::new("out", head_terms), body)
    })
}

/// Strategy: a database assigning 0–8 random rows to each predicate the
/// query mentions.
fn arb_db(q: &ConjunctiveQuery) -> impl Strategy<Value = Database> {
    let preds: Vec<(Symbol, usize)> = {
        let mut seen = std::collections::HashSet::new();
        q.body
            .iter()
            .filter(|a| seen.insert(a.predicate))
            .map(|a| (a.predicate, a.arity()))
            .collect()
    };
    let tables: Vec<_> = preds
        .into_iter()
        .map(|(name, arity)| {
            prop::collection::vec(prop::collection::vec(0i64..4, arity), 0..8)
                .prop_map(move |rows| (name, rows))
        })
        .collect();
    tables.prop_map(|tables| {
        let mut db = Database::new();
        for (name, rows) in tables {
            for row in rows {
                db.insert(name, row.into_iter().map(Value::Int).collect());
            }
        }
        db
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn hash_join_matches_nested_loop(
        (q, db) in arb_query().prop_flat_map(|q| {
            let db = arb_db(&q);
            (Just(q), db)
        })
    ) {
        let fast = evaluate(&q, &db);
        let slow = reference_evaluate(&q, &db);
        prop_assert_eq!(fast, slow);
    }
}

#[test]
fn reference_sanity() {
    // The reference itself on a known case.
    let q = viewplan_cq::parse_query("out(X, Z) :- e(X, Y), e(Y, Z)").unwrap();
    let mut db = Database::new();
    db.insert_int("e", &[&[1, 2], &[2, 3]]);
    let r = reference_evaluate(&q, &db);
    assert_eq!(r.len(), 1);
    assert!(r.contains(&[Value::Int(1), Value::Int(3)]));
}
