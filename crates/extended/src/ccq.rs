//! Conditional conjunctive queries: a relational part plus a conjunction
//! of comparisons.
//!
//! Containment follows Klug's test: `Q1 ⊑ Q2` iff for **every** total
//! ordering of `Q1`'s terms consistent with `Q1`'s constraints, some
//! containment mapping from `Q2`'s relational part into `Q1`'s maps
//! `Q2`'s constraints to implied ones. Total orderings are weak orders
//! (ordered partitions with ties) of the relevant terms — exponential in
//! their count, so the test takes an explicit bound and reports `None`
//! (unknown) when the instance exceeds it. The homomorphism-only check
//! (one ordering: the constraints themselves) is available as a fast sound
//! approximation through the same API with `max_terms = 0`.

use crate::constraints::ConstraintSet;
use std::collections::HashSet;
use viewplan_containment::{head_bindings, HomomorphismSearch};
use viewplan_cq::{Atom, ConjunctiveQuery, Substitution, Symbol, Term};
use viewplan_engine::{evaluate, Database, Relation, Value};

/// A conjunctive query with comparison predicates.
#[derive(Clone, PartialEq, Debug)]
pub struct ConditionalQuery {
    /// The relational (select-project-join) part.
    pub relational: ConjunctiveQuery,
    /// The comparison conjunction.
    pub constraints: ConstraintSet,
}

impl ConditionalQuery {
    /// Wraps a plain conjunctive query (no comparisons).
    pub fn plain(q: ConjunctiveQuery) -> ConditionalQuery {
        ConditionalQuery {
            relational: q,
            constraints: ConstraintSet::new(),
        }
    }

    /// Builds a conditional query; all comparison variables must occur in
    /// the relational body (range restriction).
    ///
    /// # Panics
    /// Panics on a range-restriction violation — comparisons over unbound
    /// variables have no semantics.
    pub fn new(relational: ConjunctiveQuery, constraints: ConstraintSet) -> ConditionalQuery {
        let body_vars: HashSet<Symbol> =
            relational.body.iter().flat_map(|a| a.variables()).collect();
        for v in constraints.variables() {
            assert!(
                body_vars.contains(&v),
                "comparison variable {v} does not occur in the relational body"
            );
        }
        ConditionalQuery {
            relational,
            constraints,
        }
    }

    /// Every term of the query (head, body, and constraint operands).
    pub fn terms(&self) -> Vec<Term> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        let mut push = |t: Term| {
            if seen.insert(t) {
                out.push(t);
            }
        };
        for t in &self.relational.head.terms {
            push(*t);
        }
        for a in &self.relational.body {
            for t in &a.terms {
                push(*t);
            }
        }
        for c in self.constraints.iter() {
            push(c.lhs);
            push(c.rhs);
        }
        out
    }
}

impl std::fmt::Display for ConditionalQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.relational)?;
        if !self.constraints.is_empty() {
            write!(f, ", {}", self.constraints)?;
        }
        Ok(())
    }
}

/// Evaluates a conditional query: the relational part runs through the
/// engine with all variables retained, rows failing a comparison are
/// filtered, and the result is projected on the head.
pub fn evaluate_conditional(q: &ConditionalQuery, db: &Database) -> Relation {
    if q.constraints.is_empty() {
        return evaluate(&q.relational, db);
    }
    // Evaluate with a wide head carrying every variable.
    let vars = q.relational.variables();
    let wide_head = Atom::new("__wide__", vars.iter().map(|&v| Term::Var(v)).collect());
    let wide = ConjunctiveQuery::new(wide_head, q.relational.body.clone());
    let rows = evaluate(&wide, db);
    let mut out = Relation::new(q.relational.head.arity());
    for row in &rows {
        let lookup =
            |v: Symbol| -> Option<Value> { vars.iter().position(|&x| x == v).map(|i| row[i]) };
        let keep = q
            .constraints
            .iter()
            .all(|c| c.eval(&lookup).unwrap_or(false));
        if keep {
            out.insert(
                q.relational
                    .head
                    .terms
                    .iter()
                    .map(|t| match *t {
                        Term::Var(v) => lookup(v).expect("head variable is bound (safety)"),
                        Term::Const(c) => Value::from_constant(c),
                    })
                    .collect(),
            );
        }
    }
    out
}

/// Klug's containment test for conditional queries.
///
/// Returns `Some(true)` / `Some(false)` when decided, or `None` when the
/// number of relevant terms exceeds `max_terms` (the weak-order
/// enumeration is exponential; 7 terms ≈ 47k orderings is a comfortable
/// default). Comparison-free inputs short-circuit to the classical
/// (polynomially-checkable-in-practice) containment mapping test.
pub fn is_contained_with_comparisons(
    q1: &ConditionalQuery,
    q2: &ConditionalQuery,
    max_terms: usize,
) -> Option<bool> {
    if q1.constraints.is_empty() && q2.constraints.is_empty() {
        return Some(viewplan_containment::is_contained_in(
            &q1.relational,
            &q2.relational,
        ));
    }
    if !q1.constraints.is_satisfiable() {
        // An unsatisfiable query is empty, hence contained in everything.
        return Some(true);
    }
    // Relevant terms: everything in Q1 plus the constants of Q2's
    // comparisons (their relative position matters for φ(C2)).
    let mut terms = q1.terms();
    for c in q2.constraints.iter() {
        for t in [c.lhs, c.rhs] {
            if matches!(t, Term::Const(_)) && !terms.contains(&t) {
                terms.push(t);
            }
        }
    }
    if terms.len() > max_terms {
        return None;
    }
    // Incompatible heads (different predicate, arity, or conflicting
    // constants) mean Q2 can never map onto Q1: decidedly not contained —
    // distinct from the "instance too large" None.
    let Some(initial) = head_bindings(&q2.relational, &q1.relational) else {
        return Some(false);
    };
    let mut all_orders_ok = true;
    for_each_weak_order(&terms, &mut |tau| {
        // τ must be consistent with C1 and with constant semantics.
        let total = tau.conjoin(&q1.constraints);
        if !total.is_satisfiable() {
            return true; // inconsistent ordering: skip, keep going
        }
        // Some hom must map C2 into relations implied by τ (+C1).
        let mut found = false;
        HomomorphismSearch::with_initial(&q2.relational.body, &q1.relational.body, initial.clone())
            .for_each(|phi| {
                let mapped = apply_to_constraints(&q2.constraints, phi);
                if total.implies_all(&mapped) {
                    found = true;
                    true // stop hom enumeration
                } else {
                    false
                }
            });
        if !found {
            all_orders_ok = false;
            return false; // counterexample ordering found: stop
        }
        true
    });
    Some(all_orders_ok)
}

/// Equivalence under comparisons (both directions of Klug's test).
pub fn are_equivalent_with_comparisons(
    q1: &ConditionalQuery,
    q2: &ConditionalQuery,
    max_terms: usize,
) -> Option<bool> {
    let a = is_contained_with_comparisons(q1, q2, max_terms)?;
    if !a {
        return Some(false);
    }
    is_contained_with_comparisons(q2, q1, max_terms)
}

fn apply_to_constraints(cs: &ConstraintSet, phi: &Substitution) -> ConstraintSet {
    cs.apply(phi)
}

/// Enumerates weak orders (ordered set partitions) of `terms` as
/// constraint sets: blocks are equal internally, consecutive blocks are
/// strictly increasing. `visit` returning `false` aborts; the function
/// returns whether enumeration ran to completion.
pub(crate) fn for_each_weak_order(
    terms: &[Term],
    visit: &mut dyn FnMut(&ConstraintSet) -> bool,
) -> bool {
    fn recurse(
        remaining: &[Term],
        blocks: &mut Vec<Vec<Term>>,
        visit: &mut dyn FnMut(&ConstraintSet) -> bool,
    ) -> bool {
        let Some((&first, rest)) = remaining.split_first() else {
            // Emit the weak order as constraints.
            let mut cs = ConstraintSet::new();
            for block in blocks.iter() {
                for pair in block.windows(2) {
                    cs.push(crate::comparison::Comparison::eq(pair[0], pair[1]));
                }
            }
            for pair in blocks.windows(2) {
                if let (Some(&a), Some(&b)) = (pair[0].last(), pair[1].first()) {
                    cs.push(crate::comparison::Comparison::lt(a, b));
                }
            }
            return visit(&cs);
        };
        // Insert `first` into an existing block…
        for i in 0..blocks.len() {
            blocks[i].push(first);
            if !recurse(rest, blocks, visit) {
                blocks[i].pop();
                return false;
            }
            blocks[i].pop();
        }
        // …or as a new block in any gap.
        for i in 0..=blocks.len() {
            blocks.insert(i, vec![first]);
            if !recurse(rest, blocks, visit) {
                blocks.remove(i);
                return false;
            }
            blocks.remove(i);
        }
        true
    }
    recurse(terms, &mut Vec::new(), visit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparison::Comparison;
    use viewplan_cq::parse_query;

    fn v(name: &str) -> Term {
        Term::var(name)
    }

    fn ccq(src: &str, cs: Vec<Comparison>) -> ConditionalQuery {
        ConditionalQuery::new(
            parse_query(src).unwrap(),
            ConstraintSet::from_comparisons(cs),
        )
    }

    #[test]
    fn evaluation_filters_by_comparisons() {
        let mut db = Database::new();
        db.insert_int("r", &[&[1, 2], &[3, 3], &[5, 4]]);
        let q = ccq("q(X, Y) :- r(X, Y)", vec![Comparison::le(v("X"), v("Y"))]);
        let ans = evaluate_conditional(&q, &db);
        assert_eq!(ans.len(), 2); // (1,2) and (3,3)
        assert!(ans.contains(&[Value::Int(1), Value::Int(2)]));
        assert!(!ans.contains(&[Value::Int(5), Value::Int(4)]));
    }

    #[test]
    fn strict_comparison_excludes_ties() {
        let mut db = Database::new();
        db.insert_int("r", &[&[1, 2], &[3, 3]]);
        let q = ccq("q(X, Y) :- r(X, Y)", vec![Comparison::lt(v("X"), v("Y"))]);
        assert_eq!(evaluate_conditional(&q, &db).len(), 1);
    }

    #[test]
    fn plain_queries_fall_back_to_classical_containment() {
        let q1 = ConditionalQuery::plain(parse_query("q(X) :- e(X, Y), e(Y, Z)").unwrap());
        let q2 = ConditionalQuery::plain(parse_query("q(X) :- e(X, Y)").unwrap());
        assert_eq!(is_contained_with_comparisons(&q1, &q2, 7), Some(true));
        assert_eq!(is_contained_with_comparisons(&q2, &q1, 7), Some(false));
    }

    #[test]
    fn stronger_constraints_are_contained_in_weaker() {
        // q1: r(X, Y), X < Y  ⊑  q2: r(X, Y), X ≤ Y.
        let q1 = ccq("q(X, Y) :- r(X, Y)", vec![Comparison::lt(v("X"), v("Y"))]);
        let q2 = ccq("q(X, Y) :- r(X, Y)", vec![Comparison::le(v("X"), v("Y"))]);
        assert_eq!(is_contained_with_comparisons(&q1, &q2, 7), Some(true));
        assert_eq!(is_contained_with_comparisons(&q2, &q1, 7), Some(false));
    }

    #[test]
    fn unsatisfiable_query_is_contained_in_everything() {
        let empty = ccq("q(X) :- r(X, X)", vec![Comparison::lt(v("X"), v("X"))]);
        let any = ConditionalQuery::plain(parse_query("q(X) :- s(X)").unwrap());
        assert_eq!(is_contained_with_comparisons(&empty, &any, 7), Some(true));
    }

    #[test]
    fn klug_case_split_containment() {
        // The classic case-split: r(X, Y) ⊑ "r(X, Y), X ≤ Y ∪ …" needs
        // unions; but r(X, Y), X ≤ X is trivially contained in plain.
        // Proper single-CQ test: Q1: r(X, Y) with no constraints is NOT
        // contained in Q2: r(X, Y), X ≤ Y.
        let q1 = ConditionalQuery::plain(parse_query("q(X, Y) :- r(X, Y)").unwrap());
        let q2 = ccq("q(X, Y) :- r(X, Y)", vec![Comparison::le(v("X"), v("Y"))]);
        assert_eq!(is_contained_with_comparisons(&q1, &q2, 7), Some(false));
    }

    #[test]
    fn comparisons_can_enable_extra_homomorphisms() {
        // Q1: r(X, Y), X = Y (both columns equal) is contained in
        // Q2: r(A, B), A ≤ B even though the identity hom needs the
        // ordering knowledge X = Y ⊨ A ≤ B.
        let q1 = ccq("q(X, Y) :- r(X, Y)", vec![Comparison::eq(v("X"), v("Y"))]);
        let q2 = ccq("q(A, B) :- r(A, B)", vec![Comparison::le(v("A"), v("B"))]);
        assert_eq!(is_contained_with_comparisons(&q1, &q2, 7), Some(true));
    }

    #[test]
    fn too_many_terms_reports_unknown() {
        let q1 = ccq(
            "q(A, B, C, D) :- r(A, B), r(C, D)",
            vec![Comparison::le(v("A"), v("B"))],
        );
        let q2 = ccq(
            "q(A, B, C, D) :- r(A, B), r(C, D)",
            vec![Comparison::le(v("A"), v("B"))],
        );
        assert_eq!(is_contained_with_comparisons(&q1, &q2, 2), None);
        // With a sufficient bound it decides (the identity homomorphism
        // works under every ordering).
        assert_eq!(is_contained_with_comparisons(&q1, &q2, 5), Some(true));
    }

    #[test]
    fn weak_order_counts_are_ordered_bell_numbers() {
        for (n, expected) in [(1usize, 1usize), (2, 3), (3, 13)] {
            let terms: Vec<Term> = (0..n).map(|i| Term::var(&format!("W{i}"))).collect();
            let mut count = 0;
            for_each_weak_order(&terms, &mut |_| {
                count += 1;
                true
            });
            assert_eq!(count, expected, "n = {n}");
        }
    }

    #[test]
    fn equivalence_with_comparisons() {
        // X < Y and ¬(Y ≤ X) formulations coincide here: X < Y vs X ≤ Y ∧ X ≠ Y.
        let q1 = ccq("q(X, Y) :- r(X, Y)", vec![Comparison::lt(v("X"), v("Y"))]);
        let q2 = ccq(
            "q(X, Y) :- r(X, Y)",
            vec![
                Comparison::le(v("X"), v("Y")),
                Comparison::ne(v("X"), v("Y")),
            ],
        );
        assert_eq!(are_equivalent_with_comparisons(&q1, &q2, 7), Some(true));
    }

    #[test]
    #[should_panic(expected = "does not occur")]
    fn range_restriction_is_enforced() {
        ccq("q(X) :- r(X, X)", vec![Comparison::lt(v("Z"), v("X"))]);
    }
}

#[cfg(test)]
mod head_compat_tests {
    use super::*;
    use crate::comparison::Comparison;
    use viewplan_cq::parse_query;

    /// Regression: incompatible heads decide "not contained" (Some(false)),
    /// never "unknown" (None).
    #[test]
    fn incompatible_heads_are_decidedly_not_contained() {
        let q1 = ConditionalQuery::new(
            parse_query("q(X, Y) :- r(X, Y)").unwrap(),
            ConstraintSet::from_comparisons([Comparison::le(Term::var("X"), Term::var("Y"))]),
        );
        let different_arity = ConditionalQuery::plain(parse_query("q(X) :- r(X, X)").unwrap());
        assert_eq!(
            is_contained_with_comparisons(&q1, &different_arity, 7),
            Some(false)
        );
        let different_name = ConditionalQuery::plain(parse_query("p(X, Y) :- r(X, Y)").unwrap());
        assert_eq!(
            is_contained_with_comparisons(&q1, &different_name, 7),
            Some(false)
        );
    }
}
