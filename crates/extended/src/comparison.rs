//! Comparison atoms: built-in predicates over query terms.

use std::fmt;
use viewplan_cq::{Constant, Substitution, Symbol, Term};
use viewplan_engine::Value;

/// A comparison operator. The order predicates (`<`, `≤`) are interpreted
/// over a dense linear order covering all values. The symbolic-reasoning
/// side ([`crate::constraints`]) treats symbolic constants as
/// *uninterpreted points* of that order (their relative position is
/// unknown), which keeps implication sound while the runtime order fixes
/// them by name — a deliberately conservative split.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CompOp {
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
}

impl CompOp {
    /// The operator with its arguments swapped (`a < b` ⇔ `b >` …); used
    /// to normalize `>`/`≥` at construction sites.
    pub fn flipped(self) -> CompOp {
        // Lt/Le flip sides; Eq/Ne are symmetric.
        self
    }

    /// Evaluates the operator on two runtime values. The runtime order is
    /// *total*, matching the dense-total-order theory the containment test
    /// assumes: integers by value, then symbolic constants by name, then
    /// frozen values by name (integers sort below symbols, symbols below
    /// frozen values — an arbitrary but fixed convention).
    pub fn eval(self, a: Value, b: Value) -> bool {
        match self {
            CompOp::Eq => a == b,
            CompOp::Ne => a != b,
            CompOp::Lt => value_cmp(a, b) == std::cmp::Ordering::Less,
            CompOp::Le => value_cmp(a, b) != std::cmp::Ordering::Greater,
        }
    }
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Eq => "=",
            CompOp::Ne => "!=",
        })
    }
}

/// The total runtime order used by `<`/`≤` (see [`CompOp::eval`]).
pub fn value_cmp(a: Value, b: Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x.cmp(&y),
        (Value::Int(_), _) => Ordering::Less,
        (_, Value::Int(_)) => Ordering::Greater,
        (Value::Sym(x), Value::Sym(y)) => x.as_str().cmp(&y.as_str()),
        (Value::Sym(_), _) => Ordering::Less,
        (_, Value::Sym(_)) => Ordering::Greater,
        (Value::Frozen(x), Value::Frozen(y)) => x.as_str().cmp(&y.as_str()),
        (Value::Frozen(_), _) => Ordering::Less,
        (_, Value::Frozen(_)) => Ordering::Greater,
        // Skolem witnesses (inverse-rule evaluation) order by identifier.
        (Value::Skolem(x), Value::Skolem(y)) => x.cmp(&y),
    }
}

/// A comparison atom `lhs op rhs`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Comparison {
    /// Left operand.
    pub lhs: Term,
    /// Operator.
    pub op: CompOp,
    /// Right operand.
    pub rhs: Term,
}

impl Comparison {
    /// `lhs < rhs`.
    pub fn lt(lhs: Term, rhs: Term) -> Comparison {
        Comparison {
            lhs,
            op: CompOp::Lt,
            rhs,
        }
    }

    /// `lhs ≤ rhs`.
    pub fn le(lhs: Term, rhs: Term) -> Comparison {
        Comparison {
            lhs,
            op: CompOp::Le,
            rhs,
        }
    }

    /// `lhs = rhs`.
    pub fn eq(lhs: Term, rhs: Term) -> Comparison {
        Comparison {
            lhs,
            op: CompOp::Eq,
            rhs,
        }
    }

    /// `lhs ≠ rhs`.
    pub fn ne(lhs: Term, rhs: Term) -> Comparison {
        Comparison {
            lhs,
            op: CompOp::Ne,
            rhs,
        }
    }

    /// The variables mentioned.
    pub fn variables(&self) -> impl Iterator<Item = Symbol> {
        [self.lhs, self.rhs].into_iter().filter_map(Term::as_var)
    }

    /// Applies a substitution to both operands.
    pub fn apply(&self, subst: &Substitution) -> Comparison {
        Comparison {
            lhs: subst.apply(self.lhs),
            op: self.op,
            rhs: subst.apply(self.rhs),
        }
    }

    /// Evaluates against a variable binding (variables not bound evaluate
    /// to `None`, i.e. "unknown").
    pub fn eval(&self, lookup: &dyn Fn(Symbol) -> Option<Value>) -> Option<bool> {
        let v = |t: Term| -> Option<Value> {
            match t {
                Term::Var(x) => lookup(x),
                Term::Const(Constant::Int(i)) => Some(Value::Int(i)),
                Term::Const(Constant::Sym(s)) => Some(Value::Sym(s)),
            }
        };
        Some(self.op.eval(v(self.lhs)?, v(self.rhs)?))
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operators_evaluate_on_integers() {
        assert!(CompOp::Lt.eval(Value::Int(1), Value::Int(2)));
        assert!(!CompOp::Lt.eval(Value::Int(2), Value::Int(2)));
        assert!(CompOp::Le.eval(Value::Int(2), Value::Int(2)));
        assert!(CompOp::Eq.eval(Value::Int(3), Value::Int(3)));
        assert!(CompOp::Ne.eval(Value::Int(3), Value::Int(4)));
    }

    #[test]
    fn symbols_order_totally_by_name() {
        assert!(CompOp::Lt.eval(Value::sym("a"), Value::sym("b")));
        assert!(CompOp::Le.eval(Value::sym("a"), Value::sym("a")));
        assert!(!CompOp::Lt.eval(Value::sym("b"), Value::sym("a")));
        assert!(CompOp::Eq.eval(Value::sym("a"), Value::sym("a")));
        assert!(CompOp::Ne.eval(Value::sym("a"), Value::sym("b")));
        // Integers sort below symbols (fixed convention).
        assert!(CompOp::Lt.eval(Value::Int(999), Value::sym("a")));
    }

    #[test]
    fn comparison_eval_with_bindings() {
        let c = Comparison::le(Term::var("C"), Term::var("D"));
        let lookup = |v: Symbol| -> Option<Value> {
            match v.as_str().as_str() {
                "C" => Some(Value::Int(1)),
                "D" => Some(Value::Int(5)),
                _ => None,
            }
        };
        assert_eq!(c.eval(&lookup), Some(true));
        let c2 = Comparison::lt(Term::var("D"), Term::var("C"));
        assert_eq!(c2.eval(&lookup), Some(false));
        let unknown = Comparison::lt(Term::var("Z"), Term::int(3));
        assert_eq!(unknown.eval(&lookup), None);
    }

    #[test]
    fn constants_evaluate_without_bindings() {
        let c = Comparison::lt(Term::int(1), Term::int(2));
        assert_eq!(c.eval(&|_| None), Some(true));
    }

    #[test]
    fn display() {
        assert_eq!(
            Comparison::le(Term::var("C"), Term::var("D")).to_string(),
            "C <= D"
        );
        assert_eq!(
            Comparison::ne(Term::var("X"), Term::int(0)).to_string(),
            "X != 0"
        );
    }

    #[test]
    fn apply_substitution() {
        let c = Comparison::lt(Term::var("X"), Term::var("Y"));
        let s = Substitution::from_pairs([(Symbol::new("X"), Term::int(7))]);
        assert_eq!(c.apply(&s).to_string(), "7 < Y");
    }
}
