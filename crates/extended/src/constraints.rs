//! Conjunctions of comparisons: satisfiability and implication over a
//! dense linear order.
//!
//! The decision procedures are the classic order-constraint closure:
//! equalities are merged first; `≤`/`<` become edges of a graph whose
//! transitive closure (Floyd–Warshall over the {≤, <} semiring) exposes
//! every implied order relation; a cycle containing a strict edge is
//! unsatisfiable, a non-strict cycle forces equality; disequalities are
//! checked against the forced equalities; integer constants carry their
//! natural order, and distinct constants are implicitly disequal. The
//! order is *dense* (think rationals), so `x < y` never implies the
//! existence of integers between — matching the semantics query
//! containment with comparisons is defined over.

use crate::comparison::{CompOp, Comparison};
use std::collections::{HashMap, HashSet};
use std::fmt;
use viewplan_cq::{Constant, Substitution, Symbol, Term};

/// A conjunction of comparison atoms.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct ConstraintSet {
    comparisons: Vec<Comparison>,
}

/// Pairwise order knowledge in the closure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Rel {
    /// Nothing known.
    None,
    /// `≤` derivable.
    Le,
    /// `<` derivable.
    Lt,
}

impl Rel {
    fn join(self, other: Rel) -> Rel {
        match (self, other) {
            (Rel::None, _) | (_, Rel::None) => Rel::None,
            (Rel::Lt, _) | (_, Rel::Lt) => Rel::Lt,
            _ => Rel::Le,
        }
    }

    fn strengthen(self, other: Rel) -> Rel {
        match (self, other) {
            (Rel::Lt, _) | (_, Rel::Lt) => Rel::Lt,
            (Rel::Le, _) | (_, Rel::Le) => Rel::Le,
            _ => Rel::None,
        }
    }
}

/// The solved form of a constraint set.
struct Solved {
    nodes: Vec<Term>,
    index: HashMap<Term, usize>,
    rel: Vec<Vec<Rel>>,
    /// Disequalities between node indices (symmetric pairs).
    ne: HashSet<(usize, usize)>,
    /// Union-find representative per node (for explicit equalities).
    rep: Vec<usize>,
    unsat: bool,
}

impl ConstraintSet {
    /// The empty (trivially true) constraint set.
    pub fn new() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// Builds from comparisons.
    pub fn from_comparisons(cs: impl IntoIterator<Item = Comparison>) -> ConstraintSet {
        ConstraintSet {
            comparisons: cs.into_iter().collect(),
        }
    }

    /// Adds one comparison.
    pub fn push(&mut self, c: Comparison) {
        self.comparisons.push(c);
    }

    /// The comparisons, as written.
    pub fn iter(&self) -> std::slice::Iter<'_, Comparison> {
        self.comparisons.iter()
    }

    /// True iff no comparison is present.
    pub fn is_empty(&self) -> bool {
        self.comparisons.is_empty()
    }

    /// Number of comparisons.
    pub fn len(&self) -> usize {
        self.comparisons.len()
    }

    /// The variables mentioned anywhere.
    pub fn variables(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for c in &self.comparisons {
            for v in c.variables() {
                if seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Applies a substitution to every comparison.
    pub fn apply(&self, subst: &Substitution) -> ConstraintSet {
        ConstraintSet {
            comparisons: self.comparisons.iter().map(|c| c.apply(subst)).collect(),
        }
    }

    /// Conjoins two sets.
    pub fn conjoin(&self, other: &ConstraintSet) -> ConstraintSet {
        let mut out = self.clone();
        out.comparisons.extend(other.comparisons.iter().copied());
        out
    }

    /// True iff some assignment over the dense order satisfies all
    /// comparisons.
    pub fn is_satisfiable(&self) -> bool {
        !self.solve().unsat
    }

    /// True iff every satisfying assignment of `self` also satisfies `c`.
    /// An unsatisfiable set implies everything.
    pub fn implies(&self, c: &Comparison) -> bool {
        let mut solved = self.solve();
        if solved.unsat {
            return true;
        }
        solved.implies(c)
    }

    /// True iff `self` implies every comparison in `other`.
    pub fn implies_all(&self, other: &ConstraintSet) -> bool {
        let mut solved = self.solve();
        if solved.unsat {
            return true;
        }
        other.comparisons.iter().all(|c| solved.implies(c))
    }

    fn solve(&self) -> Solved {
        let mut solved = Solved::new();
        // Install every term (so implication queries about seen terms have
        // nodes) and the explicit constraints.
        for c in &self.comparisons {
            solved.touch(c.lhs);
            solved.touch(c.rhs);
        }
        // Equalities first (union-find).
        for c in &self.comparisons {
            if c.op == CompOp::Eq {
                solved.merge(c.lhs, c.rhs);
            }
        }
        // Order edges and disequalities on representatives.
        for c in &self.comparisons {
            match c.op {
                CompOp::Eq => {}
                CompOp::Le => solved.add_edge(c.lhs, c.rhs, Rel::Le),
                CompOp::Lt => solved.add_edge(c.lhs, c.rhs, Rel::Lt),
                CompOp::Ne => solved.add_ne(c.lhs, c.rhs),
            }
        }
        solved.close();
        solved
    }
}

impl Solved {
    fn new() -> Solved {
        Solved {
            nodes: Vec::new(),
            index: HashMap::new(),
            rel: Vec::new(),
            ne: HashSet::new(),
            rep: Vec::new(),
            unsat: false,
        }
    }

    fn touch(&mut self, t: Term) -> usize {
        if let Some(&i) = self.index.get(&t) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(t);
        self.index.insert(t, i);
        self.rep.push(i);
        for row in &mut self.rel {
            row.push(Rel::None);
        }
        self.rel.push(vec![Rel::None; self.nodes.len()]);
        self.rel[i][i] = Rel::Le;
        i
    }

    fn find(&mut self, i: usize) -> usize {
        if self.rep[i] != i {
            let r = self.find(self.rep[i]);
            self.rep[i] = r;
            r
        } else {
            i
        }
    }

    fn merge(&mut self, a: Term, b: Term) {
        let (ia, ib) = (self.touch(a), self.touch(b));
        let (ra, rb) = (self.find(ia), self.find(ib));
        if ra == rb {
            return;
        }
        // Equating distinct constants is unsatisfiable.
        if let (Term::Const(ca), Term::Const(cb)) = (self.nodes[ra], self.nodes[rb]) {
            if ca != cb {
                self.unsat = true;
                return;
            }
        }
        // Prefer a constant representative.
        let (winner, loser) = if matches!(self.nodes[ra], Term::Const(_)) {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.rep[loser] = winner;
    }

    fn add_edge(&mut self, a: Term, b: Term, r: Rel) {
        let (ia, ib) = (self.touch(a), self.touch(b));
        let (ra, rb) = (self.find(ia), self.find(ib));
        self.rel[ra][rb] = self.rel[ra][rb].strengthen(r);
    }

    fn add_ne(&mut self, a: Term, b: Term) {
        let (ia, ib) = (self.touch(a), self.touch(b));
        let (ra, rb) = (self.find(ia), self.find(ib));
        if ra == rb {
            self.unsat = true;
            return;
        }
        self.ne.insert((ra.min(rb), ra.max(rb)));
    }

    /// Installs constant-order edges, runs the transitive closure, and
    /// checks consistency.
    fn close(&mut self) {
        if self.unsat {
            return;
        }
        // Natural order among integer constants; distinct constants are
        // disequal (symbolic ones only disequal, not ordered).
        let reps: Vec<usize> = (0..self.nodes.len())
            .map(|i| self.find(i))
            .collect::<HashSet<_>>()
            .into_iter()
            .collect();
        for (k, &i) in reps.iter().enumerate() {
            for &j in reps.iter().skip(k + 1) {
                if let (Term::Const(ci), Term::Const(cj)) = (self.nodes[i], self.nodes[j]) {
                    if ci != cj {
                        self.ne.insert((i.min(j), i.max(j)));
                    }
                    if let (Constant::Int(x), Constant::Int(y)) = (ci, cj) {
                        if x < y {
                            self.rel[i][j] = self.rel[i][j].strengthen(Rel::Lt);
                        } else if y < x {
                            self.rel[j][i] = self.rel[j][i].strengthen(Rel::Lt);
                        }
                    }
                }
            }
        }
        // Floyd–Warshall over the {None, Le, Lt} semiring, on
        // representatives (non-representatives inherit via find()).
        let n = self.nodes.len();
        for k in 0..n {
            for i in 0..n {
                if self.rel[i][k] == Rel::None {
                    continue;
                }
                for j in 0..n {
                    let through = self.rel[i][k].join(self.rel[k][j]);
                    if through != Rel::None {
                        self.rel[i][j] = self.rel[i][j].strengthen(through);
                    }
                }
            }
        }
        // Strict cycle → unsat.
        for i in 0..n {
            if self.rel[i][i] == Rel::Lt {
                self.unsat = true;
                return;
            }
        }
        // Forced equality vs disequality / distinct constants.
        for i in 0..n {
            for j in (i + 1)..n {
                let equal_forced = self.find(i) == self.find(j)
                    || (self.rel[i][j] == Rel::Le && self.rel[j][i] == Rel::Le);
                if equal_forced {
                    if self.ne.contains(&(i.min(j), i.max(j))) {
                        self.unsat = true;
                        return;
                    }
                    if let (Term::Const(ci), Term::Const(cj)) = (self.nodes[i], self.nodes[j]) {
                        if ci != cj {
                            self.unsat = true;
                            return;
                        }
                    }
                }
            }
        }
    }

    fn lookup(&mut self, t: Term) -> Option<usize> {
        self.index.get(&t).copied().map(|i| self.find(i))
    }

    /// Order knowledge between two terms; unseen terms only relate to
    /// themselves and to constants.
    fn relation(&mut self, a: Term, b: Term) -> Rel {
        if a == b {
            return Rel::Le;
        }
        // Constant-vs-constant is decidable without the graph.
        if let (Term::Const(Constant::Int(x)), Term::Const(Constant::Int(y))) = (a, b) {
            return match x.cmp(&y) {
                std::cmp::Ordering::Less => Rel::Lt,
                std::cmp::Ordering::Equal => Rel::Le,
                std::cmp::Ordering::Greater => Rel::None,
            };
        }
        let (Some(ia), Some(ib)) = (self.lookup(a), self.lookup(b)) else {
            return Rel::None;
        };
        if ia == ib {
            return Rel::Le;
        }
        self.rel[ia][ib]
    }

    fn equal(&mut self, a: Term, b: Term) -> bool {
        if a == b {
            return true;
        }
        match (self.lookup(a), self.lookup(b)) {
            (Some(ia), Some(ib)) => {
                ia == ib || (self.rel[ia][ib] == Rel::Le && self.rel[ib][ia] == Rel::Le)
            }
            _ => false,
        }
    }

    fn not_equal(&mut self, a: Term, b: Term) -> bool {
        // Distinct constants.
        if let (Term::Const(ca), Term::Const(cb)) = (a, b) {
            if ca != cb {
                return true;
            }
        }
        if self.relation(a, b) == Rel::Lt || self.relation(b, a) == Rel::Lt {
            return true;
        }
        match (self.lookup(a), self.lookup(b)) {
            (Some(ia), Some(ib)) if ia != ib => self.ne.contains(&(ia.min(ib), ia.max(ib))),
            _ => false,
        }
    }

    fn implies(&mut self, c: &Comparison) -> bool {
        match c.op {
            CompOp::Eq => self.equal(c.lhs, c.rhs),
            CompOp::Ne => self.not_equal(c.lhs, c.rhs),
            CompOp::Le => self.equal(c.lhs, c.rhs) || self.relation(c.lhs, c.rhs) != Rel::None,
            CompOp::Lt => self.relation(c.lhs, c.rhs) == Rel::Lt,
        }
    }
}

impl fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.comparisons.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> Term {
        Term::var(name)
    }

    #[test]
    fn empty_set_is_satisfiable_and_implies_nothing_strict() {
        let cs = ConstraintSet::new();
        assert!(cs.is_satisfiable());
        assert!(!cs.implies(&Comparison::lt(v("X"), v("Y"))));
        assert!(cs.implies(&Comparison::le(v("X"), v("X"))));
        assert!(cs.implies(&Comparison::eq(v("X"), v("X"))));
    }

    #[test]
    fn transitivity_of_order() {
        let cs = ConstraintSet::from_comparisons([
            Comparison::le(v("X"), v("Y")),
            Comparison::lt(v("Y"), v("Z")),
        ]);
        assert!(cs.is_satisfiable());
        assert!(cs.implies(&Comparison::lt(v("X"), v("Z"))));
        assert!(cs.implies(&Comparison::le(v("X"), v("Z"))));
        assert!(cs.implies(&Comparison::ne(v("X"), v("Z"))));
        assert!(!cs.implies(&Comparison::lt(v("Z"), v("X"))));
    }

    #[test]
    fn strict_cycle_is_unsatisfiable() {
        let cs = ConstraintSet::from_comparisons([
            Comparison::lt(v("X"), v("Y")),
            Comparison::le(v("Y"), v("X")),
        ]);
        assert!(!cs.is_satisfiable());
        // Ex falso: implies everything.
        assert!(cs.implies(&Comparison::lt(v("A"), v("B"))));
    }

    #[test]
    fn nonstrict_cycle_forces_equality() {
        let cs = ConstraintSet::from_comparisons([
            Comparison::le(v("X"), v("Y")),
            Comparison::le(v("Y"), v("X")),
        ]);
        assert!(cs.is_satisfiable());
        assert!(cs.implies(&Comparison::eq(v("X"), v("Y"))));
        assert!(cs.implies(&Comparison::le(v("Y"), v("X"))));
        assert!(!cs.implies(&Comparison::lt(v("X"), v("Y"))));
    }

    #[test]
    fn forced_equality_conflicts_with_disequality() {
        let cs = ConstraintSet::from_comparisons([
            Comparison::le(v("X"), v("Y")),
            Comparison::le(v("Y"), v("X")),
            Comparison::ne(v("X"), v("Y")),
        ]);
        assert!(!cs.is_satisfiable());
    }

    #[test]
    fn explicit_equality_merges() {
        let cs = ConstraintSet::from_comparisons([
            Comparison::eq(v("X"), v("Y")),
            Comparison::lt(v("Y"), v("Z")),
        ]);
        assert!(cs.implies(&Comparison::lt(v("X"), v("Z"))));
        let bad = ConstraintSet::from_comparisons([
            Comparison::eq(v("X"), v("Y")),
            Comparison::ne(v("Y"), v("X")),
        ]);
        assert!(!bad.is_satisfiable());
    }

    #[test]
    fn integer_constants_are_ordered() {
        let cs = ConstraintSet::from_comparisons([
            Comparison::le(v("X"), Term::int(3)),
            Comparison::le(Term::int(5), v("Y")),
        ]);
        assert!(cs.implies(&Comparison::lt(v("X"), v("Y"))));
        assert!(cs.implies(&Comparison::ne(v("X"), v("Y"))));
    }

    #[test]
    fn equating_distinct_constants_is_unsat() {
        let cs = ConstraintSet::from_comparisons([Comparison::eq(Term::int(1), Term::int(2))]);
        assert!(!cs.is_satisfiable());
        let cs2 = ConstraintSet::from_comparisons([
            Comparison::eq(v("X"), Term::int(1)),
            Comparison::eq(v("X"), Term::int(2)),
        ]);
        assert!(!cs2.is_satisfiable());
        let sym = ConstraintSet::from_comparisons([
            Comparison::eq(v("X"), Term::cst("a")),
            Comparison::eq(v("X"), Term::cst("b")),
        ]);
        assert!(!sym.is_satisfiable());
    }

    #[test]
    fn sandwich_between_constants_forces_value() {
        let cs = ConstraintSet::from_comparisons([
            Comparison::le(Term::int(3), v("X")),
            Comparison::le(v("X"), Term::int(3)),
        ]);
        assert!(cs.is_satisfiable());
        assert!(cs.implies(&Comparison::eq(v("X"), Term::int(3))));
        // Dense order: 3 ≤ X ≤ 4 does NOT force X ∈ {3, 4}.
        let dense = ConstraintSet::from_comparisons([
            Comparison::lt(Term::int(3), v("X")),
            Comparison::lt(v("X"), Term::int(4)),
        ]);
        assert!(dense.is_satisfiable());
    }

    #[test]
    fn distinct_symbolic_constants_are_disequal_but_unordered() {
        let cs = ConstraintSet::new();
        assert!(cs.implies(&Comparison::ne(Term::cst("a"), Term::cst("b"))));
        assert!(!cs.implies(&Comparison::lt(Term::cst("a"), Term::cst("b"))));
    }

    #[test]
    fn implication_of_whole_sets() {
        let strong = ConstraintSet::from_comparisons([
            Comparison::lt(v("X"), v("Y")),
            Comparison::lt(v("Y"), v("Z")),
        ]);
        let weak = ConstraintSet::from_comparisons([
            Comparison::le(v("X"), v("Z")),
            Comparison::ne(v("X"), v("Y")),
        ]);
        assert!(strong.implies_all(&weak));
        assert!(!weak.implies_all(&strong));
    }

    #[test]
    fn substitution_application() {
        let cs = ConstraintSet::from_comparisons([Comparison::le(v("C"), v("D"))]);
        let s = Substitution::from_pairs([(Symbol::new("C"), v("U")), (Symbol::new("D"), v("W"))]);
        assert_eq!(cs.apply(&s).to_string(), "U <= W");
    }
}
