//! The inverse-rule algorithm (Duschka & Genesereth \[9\], Qian \[21\]) —
//! the other classic answering-queries-using-views method the paper's
//! related work names.
//!
//! Each view definition is inverted: for `v(X̄) :- p1(…), …, pk(…)`, every
//! body atom yields a rule `pi(…) :- v(X̄)` whose existential variables
//! become **Skolem witnesses** `f_{v,Y}(X̄)`. Applying the inverse rules to
//! a view instance reconstructs a (partial, Skolem-populated) base
//! database; evaluating the query over it and discarding answers that
//! still contain a witness yields exactly the *certain answers* — the same
//! maximally-contained semantics as the MiniCon union, computed bottom-up
//! instead of by rewriting.

use std::collections::HashMap;
use viewplan_cq::{ConjunctiveQuery, Symbol, Term, ViewSet};
use viewplan_engine::{evaluate, Database, Relation, Tuple, Value};

/// Interns Skolem applications `f_{view,var}(args…)` into opaque ids so
/// values stay `Copy`.
#[derive(Default)]
struct SkolemTable {
    map: HashMap<(Symbol, Symbol, Tuple), u32>,
}

impl SkolemTable {
    fn witness(&mut self, view: Symbol, var: Symbol, args: &Tuple) -> Value {
        let next = self.map.len() as u32;
        let id = *self.map.entry((view, var, args.clone())).or_insert(next);
        Value::Skolem(id)
    }
}

/// Reconstructs base relations from a view instance via the inverse rules.
/// Exposed for inspection and tests; [`certain_answers`] is the main entry
/// point.
pub fn invert_views(views: &ViewSet, view_db: &Database) -> Database {
    let mut skolems = SkolemTable::default();
    let mut base = Database::new();
    for view in views {
        let Some(rel) = view_db.get(view.name()) else {
            continue;
        };
        let head = &view.definition.head;
        'tuples: for tuple in rel {
            // Bind head variables from the tuple (repeated head variables
            // must agree; head constants must match).
            let mut binding: HashMap<Symbol, Value> = HashMap::new();
            for (t, &val) in head.terms.iter().zip(tuple) {
                match *t {
                    Term::Const(c) => {
                        if Value::from_constant(c) != val {
                            continue 'tuples; // not derivable from this view
                        }
                    }
                    Term::Var(v) => match binding.get(&v) {
                        Some(&prev) if prev != val => continue 'tuples,
                        _ => {
                            binding.insert(v, val);
                        }
                    },
                }
            }
            for atom in &view.definition.body {
                let derived: Tuple = atom
                    .terms
                    .iter()
                    .map(|t| match *t {
                        Term::Const(c) => Value::from_constant(c),
                        Term::Var(v) => match binding.get(&v) {
                            Some(&val) => val,
                            None => skolems.witness(view.name(), v, tuple),
                        },
                    })
                    .collect();
                base.insert(atom.predicate, derived);
            }
        }
    }
    base
}

/// The certain answers to `query` given only the view instance `view_db`:
/// evaluate over the inverted base relations and drop any answer
/// containing a Skolem witness.
pub fn certain_answers(query: &ConjunctiveQuery, views: &ViewSet, view_db: &Database) -> Relation {
    let base = invert_views(views, view_db);
    let raw = evaluate(query, &base);
    let mut out = Relation::new(raw.arity());
    for row in &raw {
        if !row.iter().any(|v| v.is_skolem()) {
            out.insert(row.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_contained::maximally_contained_rewriting;
    use crate::ucq::evaluate_union;
    use viewplan_cq::{parse_query, parse_views};
    use viewplan_engine::materialize_views;

    #[test]
    fn inversion_reconstructs_known_positions() {
        let views = parse_views("v(A) :- e(A, B)").unwrap();
        let mut vdb = Database::new();
        vdb.insert_int("v", &[&[1], &[2]]);
        let base = invert_views(&views, &vdb);
        let e = base.get("e".into()).unwrap();
        assert_eq!(e.len(), 2);
        // First column known, second a Skolem witness.
        for row in e {
            assert!(!row[0].is_skolem());
            assert!(row[1].is_skolem());
        }
        // Distinct tuples get distinct witnesses.
        let w: std::collections::HashSet<_> = e.iter().map(|r| r[1]).collect();
        assert_eq!(w.len(), 2);
    }

    #[test]
    fn same_tuple_same_witness() {
        // The Skolem function is a function: the same view tuple always
        // produces the same witness, so joins through it succeed.
        let views = parse_views("v(A) :- e(A, B), f(B)").unwrap();
        let mut vdb = Database::new();
        vdb.insert_int("v", &[&[1]]);
        let base = invert_views(&views, &vdb);
        let e = base.get("e".into()).unwrap().as_slice()[0].clone();
        let f = base.get("f".into()).unwrap().as_slice()[0].clone();
        assert_eq!(e[1], f[0]);
    }

    #[test]
    fn certain_answers_match_the_direct_answer_when_views_suffice() {
        let q = parse_query("q(X, Y) :- e(X, Z), f(Z, Y)").unwrap();
        let views = parse_views(
            "ve(A, B) :- e(A, B).\n\
             vf(A, B) :- f(A, B).",
        )
        .unwrap();
        let mut base = Database::new();
        base.insert_int("e", &[&[1, 2], &[3, 4]]);
        base.insert_int("f", &[&[2, 9], &[4, 8], &[5, 7]]);
        let vdb = materialize_views(&views, &base);
        let certain = certain_answers(&q, &views, &vdb);
        assert_eq!(certain, evaluate(&q, &base));
    }

    #[test]
    fn skolem_blocked_joins_are_not_certain() {
        // The view hides the join variable: e's second column is a
        // witness, f is not derivable at all, so nothing is certain.
        let q = parse_query("q(X) :- e(X, Z), f(Z)").unwrap();
        let views = parse_views("ve(A) :- e(A, B)").unwrap();
        let mut base = Database::new();
        base.insert_int("e", &[&[1, 2]]);
        base.insert_int("f", &[&[2]]);
        let vdb = materialize_views(&views, &base);
        assert!(certain_answers(&q, &views, &vdb).is_empty());
    }

    #[test]
    fn skolems_can_join_within_one_view() {
        // Both occurrences of the hidden variable come from the same view,
        // so the witness joins with itself and the answer IS certain.
        let q = parse_query("q(X) :- e(X, Z), f(Z)").unwrap();
        let views = parse_views("v(A) :- e(A, B), f(B)").unwrap();
        let mut base = Database::new();
        base.insert_int("e", &[&[1, 2]]);
        base.insert_int("f", &[&[2]]);
        let vdb = materialize_views(&views, &base);
        let certain = certain_answers(&q, &views, &vdb);
        assert_eq!(certain.len(), 1);
    }

    #[test]
    fn agrees_with_the_minicon_union() {
        // Inverse rules and the maximally-contained MiniCon union compute
        // the same certain answers.
        let q = parse_query("q(X, Y) :- e(X, Y)").unwrap();
        let views = parse_views(
            "va(A, B) :- e(A, B), red(A).\n\
             vb(A, B) :- e(A, B), blue(A).",
        )
        .unwrap();
        let mut base = Database::new();
        base.insert_int("e", &[&[1, 2], &[3, 4], &[5, 6]]);
        base.insert_int("red", &[&[1]]);
        base.insert_int("blue", &[&[3]]);
        let vdb = materialize_views(&views, &base);
        let via_inverse = certain_answers(&q, &views, &vdb);
        let union = maximally_contained_rewriting(&q, &views, 100).unwrap();
        let via_union = evaluate_union(&union, &vdb);
        assert_eq!(via_inverse, via_union);
        assert_eq!(via_inverse.len(), 2);
    }

    #[test]
    fn head_constants_restrict_inversion() {
        let views = parse_views("v(a, X) :- e(X)").unwrap();
        let mut vdb = Database::new();
        vdb.insert_sym("v", &[&["a", "x"], &["b", "y"]]);
        let base = invert_views(&views, &vdb);
        // Only the tuple matching the head constant derives anything;
        // ⟨b, y⟩ cannot come from this view (closed world would forbid it,
        // but inverse rules must simply skip it).
        assert_eq!(base.get("e".into()).unwrap().len(), 1);
    }

    #[test]
    fn repeated_head_variables_must_agree() {
        let views = parse_views("v(A, A) :- e(A)").unwrap();
        let mut vdb = Database::new();
        vdb.insert_int("v", &[&[1, 1], &[1, 2]]);
        let base = invert_views(&views, &vdb);
        assert_eq!(base.get("e".into()).unwrap().len(), 1);
    }

    #[test]
    fn random_workloads_certain_answers_are_sound_and_complete_enough() {
        use viewplan_workload::{generate, random_database, WorkloadConfig};
        for seed in 0..6 {
            let w = generate(&WorkloadConfig::chain(15, 1, seed));
            let mut base = Database::new();
            for (name, rows) in random_database(&w.query, 25, 30, seed ^ 0x77) {
                for row in rows {
                    base.insert(name, row.into_iter().map(Value::Int).collect());
                }
            }
            let vdb = materialize_views(&w.views, &base);
            let certain = certain_answers(&w.query, &w.views, &vdb);
            let direct = evaluate(&w.query, &base);
            // Soundness: certain ⊆ direct.
            for row in &certain {
                assert!(direct.contains(row), "unsound certain answer (seed {seed})");
            }
            // Completeness against equivalence: when an equivalent
            // rewriting exists, certain answers are the full answer.
            let cc = viewplan_core::CoreCover::new(&w.query, &w.views).run();
            if !cc.rewritings().is_empty() {
                assert_eq!(certain, direct, "equivalent rewriting exists (seed {seed})");
            }
        }
    }
}
