//! The paper's §8 extensions ("Conclusion and Discussion"): built-in
//! comparison predicates and rewritings that are **unions of conjunctive
//! queries**, plus maximally-contained rewritings.
//!
//! §8 closes with an example the base system cannot express:
//!
//! ```text
//! Q:  q(X, Y, U, W) :- p(X, Y), r(U, W), r(W, U)
//! V1: v1(A, B, C, D) :- p(A, B), r(C, D), C ≤ D
//! V2: v2(E, F)       :- r(E, F)
//!
//! P1: q(X, Y, U, W) :- v1(X, Y, U, W), v2(W, U)
//!     q(X, Y, U, W) :- v1(X, Y, W, U), v2(U, W)     (a union of 2 CQs)
//! P2: q(X, Y, U, W) :- v1(X, Y, C, D), v2(U, W), v2(W, U)
//! ```
//!
//! This crate supplies the machinery to state, evaluate, and reason about
//! such rewritings:
//!
//! * [`comparison`] — comparison atoms (`<`, `≤`, `=`, `≠`) over query
//!   terms;
//! * [`constraints`] — conjunctions of comparisons with satisfiability and
//!   implication over a dense linear order (difference-constraint closure
//!   plus disequalities);
//! * [`ccq`] — conditional conjunctive queries (CQ + constraint set):
//!   evaluation through the engine and a sound containment test that is
//!   complete up to a documented linearization bound (Klug's test);
//! * [`ucq`] — unions of (conditional) conjunctive queries: evaluation,
//!   containment, equivalence, and branch minimization;
//! * [`max_contained`] — maximally-contained rewritings as UCQs for the
//!   comparison-free case, built from MiniCon combinations — the other
//!   extension direction §8 names;
//! * [`inverse_rules`] — the inverse-rule algorithm \[9, 21\] computing
//!   the same certain answers bottom-up with Skolem witnesses;
//! * [`parse`] — comparison syntax (`"C <= D"`) on top of the base
//!   grammar.

pub mod ccq;
pub mod comparison;
pub mod constraints;
pub mod inverse_rules;
pub mod max_contained;
pub mod parse;
pub mod ucq;

pub use ccq::{
    are_equivalent_with_comparisons, evaluate_conditional, is_contained_with_comparisons,
    ConditionalQuery,
};
pub use comparison::{CompOp, Comparison};
pub use constraints::ConstraintSet;
pub use inverse_rules::{certain_answers, invert_views};
pub use max_contained::maximally_contained_rewriting;
pub use parse::{parse_comparison, parse_conditional};
pub use ucq::{
    evaluate_union, is_contained_in_union, is_ucq_contained_in, is_ucq_equivalent, minimize_union,
    union_matches_query, UnionQuery,
};
