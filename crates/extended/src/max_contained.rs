//! Maximally-contained rewritings — the second extension direction §8
//! names ("the case where we want to find maximally-contained rewritings
//! of the query").
//!
//! When no equivalent rewriting exists, the best the views can do is a
//! union of contained rewritings that is contained in the query and
//! contains every other contained rewriting. For conjunctive queries and
//! views without comparisons, the union of all MiniCon combinations is
//! maximally contained (Pottinger & Levy); we build exactly that union,
//! drop branches subsumed by others, and (closed world) evaluate it over
//! the materialized views.

use crate::ucq::UnionQuery;
use viewplan_containment::{expand, is_contained_in};
use viewplan_core::minicon_rewritings;
use viewplan_cq::{ConjunctiveQuery, ViewSet};

/// Builds the maximally-contained rewriting of `query` using `views`, as a
/// union of conjunctive queries over the view predicates. Returns `None`
/// when no contained rewriting exists at all. `limit` caps the number of
/// MiniCon combinations considered.
///
/// Redundant branches are pruned by **expansion** subsumption: syntactic
/// containment over the view predicates would miss a branch subsumed by a
/// differently-named but semantically wider view (closed world makes the
/// expansions the ground truth). Branch-wise subsumption is complete here
/// because the expansions are plain conjunctive queries.
pub fn maximally_contained_rewriting(
    query: &ConjunctiveQuery,
    views: &ViewSet,
    limit: usize,
) -> Option<UnionQuery> {
    let branches = minicon_rewritings(query, views, false, limit);
    if branches.is_empty() {
        return None;
    }
    let expansions: Vec<ConjunctiveQuery> = branches
        .iter()
        .map(|b| expand(b, views).expect("MiniCon emits literals of known views"))
        .collect();
    let mut keep = vec![true; branches.len()];
    for i in 0..branches.len() {
        let subsumed = (0..branches.len()).any(|j| {
            j != i
                && keep[j]
                && is_contained_in(&expansions[i], &expansions[j])
                // Tie-break mutual containment by index so one survives.
                && (!is_contained_in(&expansions[j], &expansions[i]) || j < i)
        });
        if subsumed {
            keep[i] = false;
        }
    }
    Some(UnionQuery::plain(
        branches
            .into_iter()
            .zip(&keep)
            .filter(|&(_, &k)| k)
            .map(|(b, _)| b)
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ccq::ConditionalQuery;
    use crate::ucq::{evaluate_union, is_contained_in_union};
    use viewplan_containment::{expand, is_contained_in};
    use viewplan_cq::{parse_query, parse_views};
    use viewplan_engine::{evaluate, materialize_views, Database, Value};

    #[test]
    fn union_of_contained_rewritings() {
        // Two partial paths cover different parts of the data; no
        // equivalent rewriting exists, but each is contained.
        let q = parse_query("q(X, Y) :- e(X, Y)").unwrap();
        let views = parse_views(
            "va(A, B) :- e(A, B), red(A).\n\
             vb(A, B) :- e(A, B), blue(A).",
        )
        .unwrap();
        let u = maximally_contained_rewriting(&q, &views, 100).unwrap();
        assert_eq!(u.branches.len(), 2);
        // Every branch expansion is contained in the query.
        for b in &u.branches {
            let exp = expand(&b.relational, &views).unwrap();
            assert!(is_contained_in(&exp, &q));
        }
    }

    #[test]
    fn evaluates_to_a_subset_of_the_query_answer() {
        let q = parse_query("q(X, Y) :- e(X, Y)").unwrap();
        let views = parse_views(
            "va(A, B) :- e(A, B), red(A).\n\
             vb(A, B) :- e(A, B), blue(A).",
        )
        .unwrap();
        let u = maximally_contained_rewriting(&q, &views, 100).unwrap();
        let mut base = Database::new();
        base.insert_int("e", &[&[1, 2], &[3, 4], &[5, 6]]);
        base.insert_int("red", &[&[1]]);
        base.insert_int("blue", &[&[3]]);
        let vdb = materialize_views(&views, &base);
        let got = evaluate_union(&u, &vdb);
        // Certain answers: (1,2) via red, (3,4) via blue; (5,6) is lost.
        assert_eq!(got.len(), 2);
        assert!(got.contains(&[Value::Int(1), Value::Int(2)]));
        assert!(got.contains(&[Value::Int(3), Value::Int(4)]));
        let full = evaluate(&q, &base);
        assert_eq!(full.len(), 3);
    }

    #[test]
    fn equals_the_query_when_an_equivalent_rewriting_exists() {
        let q = parse_query("q(X, Y) :- e(X, Z), f(Z, Y)").unwrap();
        let views = parse_views(
            "ve(A, B) :- e(A, B).\n\
             vf(A, B) :- f(A, B).",
        )
        .unwrap();
        let u = maximally_contained_rewriting(&q, &views, 100).unwrap();
        let mut base = Database::new();
        base.insert_int("e", &[&[1, 2], &[3, 4]]);
        base.insert_int("f", &[&[2, 9], &[4, 8]]);
        let vdb = materialize_views(&views, &base);
        let got = evaluate_union(&u, &vdb);
        let want = evaluate(&q, &base);
        assert_eq!(got, want);
    }

    #[test]
    fn no_contained_rewriting_gives_none() {
        let q = parse_query("q(X) :- e(X, Y)").unwrap();
        let views = parse_views("v(B) :- e(A, B)").unwrap();
        assert!(maximally_contained_rewriting(&q, &views, 100).is_none());
    }

    #[test]
    fn subsumed_branches_are_dropped() {
        // The narrow view's rewriting is contained in the wide view's.
        let q = parse_query("q(X, Y) :- e(X, Y)").unwrap();
        let views = parse_views(
            "wide(A, B) :- e(A, B).\n\
             narrow(A, B) :- e(A, B), red(A).",
        )
        .unwrap();
        let u = maximally_contained_rewriting(&q, &views, 100).unwrap();
        assert_eq!(u.branches.len(), 1);
        assert_eq!(u.branches[0].relational.body[0].predicate.as_str(), "wide");
    }

    #[test]
    fn maximality_every_contained_candidate_is_inside_the_union() {
        let q = parse_query("q(X, Y) :- e(X, Y)").unwrap();
        let views = parse_views(
            "va(A, B) :- e(A, B), red(A).\n\
             vb(A, B) :- e(A, B), blue(A).",
        )
        .unwrap();
        let u = maximally_contained_rewriting(&q, &views, 100).unwrap();
        // Hand-rolled contained rewritings over the view vocabulary must be
        // contained in the union (as queries over the view predicates).
        for src in [
            "q(X, Y) :- va(X, Y)",
            "q(X, Y) :- vb(X, Y)",
            "q(X, Y) :- va(X, Y), vb(X, Z)",
        ] {
            let cand = ConditionalQuery::plain(parse_query(src).unwrap());
            assert_eq!(is_contained_in_union(&cand, &u, 0), Some(true), "{src}");
        }
    }
}
