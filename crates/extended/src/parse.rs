//! Parsing helpers for conditional queries.
//!
//! The base grammar (in `viewplan-cq`) has no comparison syntax; this
//! module layers a tiny parser for comparison strings (`"C <= D"`,
//! `"X != 3"`) and a convenience constructor for whole conditional
//! queries.

use crate::ccq::ConditionalQuery;
use crate::comparison::{CompOp, Comparison};
use crate::constraints::ConstraintSet;
use viewplan_cq::{parse_query, ParseError, Term};

fn parse_term(src: &str) -> Result<Term, ParseError> {
    let src = src.trim();
    if src.is_empty() {
        return Err(err("empty term in comparison".to_string()));
    }
    if let Ok(i) = src.parse::<i64>() {
        return Ok(Term::int(i));
    }
    let first = src.chars().next().expect("nonempty");
    let valid = src.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if !valid || !(first.is_ascii_alphabetic() || first == '_') {
        return Err(err(format!("bad term {src:?} in comparison")));
    }
    if first.is_ascii_uppercase() {
        Ok(Term::var(src))
    } else {
        Ok(Term::cst(src))
    }
}

fn err(message: String) -> ParseError {
    ParseError::at(1, 1, message)
}

/// Parses one comparison such as `"C <= D"`, `"X < 3"`, `"A = b"`,
/// `"A != B"`. `>` and `>=` are accepted and normalized by swapping the
/// operands.
pub fn parse_comparison(src: &str) -> Result<Comparison, ParseError> {
    // Two-character operators first so "<=" does not lex as "<" + "=".
    for (symbol, op, flip) in [
        ("<=", CompOp::Le, false),
        (">=", CompOp::Le, true),
        ("!=", CompOp::Ne, false),
        ("<", CompOp::Lt, false),
        (">", CompOp::Lt, true),
        ("=", CompOp::Eq, false),
    ] {
        if let Some(pos) = src.find(symbol) {
            let (l, r) = (
                parse_term(&src[..pos])?,
                parse_term(&src[pos + symbol.len()..])?,
            );
            let (lhs, rhs) = if flip { (r, l) } else { (l, r) };
            return Ok(Comparison { lhs, op, rhs });
        }
    }
    Err(err(format!("no comparison operator in {src:?}")))
}

/// Parses a conditional query from a relational rule plus comparison
/// strings: `parse_conditional("q(X, Y) :- r(X, Y)", &["X <= Y"])`.
pub fn parse_conditional(
    relational: &str,
    comparisons: &[&str],
) -> Result<ConditionalQuery, ParseError> {
    let q = parse_query(relational)?;
    let cs = comparisons
        .iter()
        .map(|c| parse_comparison(c))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ConditionalQuery::new(
        q,
        ConstraintSet::from_comparisons(cs),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_operators() {
        assert_eq!(parse_comparison("C <= D").unwrap().to_string(), "C <= D");
        assert_eq!(parse_comparison("C < D").unwrap().to_string(), "C < D");
        assert_eq!(parse_comparison("C = D").unwrap().to_string(), "C = D");
        assert_eq!(parse_comparison("C != D").unwrap().to_string(), "C != D");
    }

    #[test]
    fn flips_reversed_operators() {
        assert_eq!(parse_comparison("C > D").unwrap().to_string(), "D < C");
        assert_eq!(parse_comparison("C >= D").unwrap().to_string(), "D <= C");
    }

    #[test]
    fn parses_constants() {
        assert_eq!(parse_comparison("X < 3").unwrap().to_string(), "X < 3");
        assert_eq!(parse_comparison("-2 <= X").unwrap().to_string(), "-2 <= X");
        assert_eq!(parse_comparison("X = abc").unwrap().to_string(), "X = abc");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_comparison("no operator here").is_err());
        assert!(parse_comparison("X <").is_err());
        assert!(parse_comparison("<= Y").is_err());
        assert!(parse_comparison("X ** Y").is_err());
    }

    #[test]
    fn conditional_query_round_trip() {
        let q = parse_conditional("q(X, Y) :- r(X, Y)", &["X <= Y", "X != 0"]).unwrap();
        assert_eq!(q.to_string(), "q(X, Y) :- r(X, Y), X <= Y, X != 0");
    }

    #[test]
    fn conditional_rejects_unbound_comparison_vars() {
        let out =
            std::panic::catch_unwind(|| parse_conditional("q(X) :- r(X, X)", &["Z < X"]).unwrap());
        assert!(out.is_err());
    }
}
