//! Unions of (conditional) conjunctive queries — the rewriting shape §8
//! shows is unavoidable once views carry comparisons.
//!
//! Containment of a CQ in a UCQ is branch-wise for comparison-free
//! queries (Sagiv–Yannakakis); with comparisons the complete test refines
//! by total orderings, exactly like Klug's single-CQ test: for every
//! consistent ordering of the left query's terms, *some* branch must
//! admit a valid containment mapping — different orderings may be served
//! by different branches, which is precisely why a union can be equivalent
//! to a query none of whose single branches is.

use crate::ccq::{
    evaluate_conditional, for_each_weak_order, is_contained_with_comparisons, ConditionalQuery,
};
use std::collections::HashSet;
use viewplan_containment::{head_bindings, HomomorphismSearch};
use viewplan_cq::{ConjunctiveQuery, Term};
use viewplan_engine::{Database, Relation};

/// A union of conditional conjunctive queries with a common head shape.
#[derive(Clone, PartialEq, Debug)]
pub struct UnionQuery {
    /// The branches; all heads must share predicate and arity.
    pub branches: Vec<ConditionalQuery>,
}

impl UnionQuery {
    /// Builds a union, checking head compatibility.
    ///
    /// # Panics
    /// Panics if branches disagree on head predicate or arity, or if the
    /// union is empty.
    pub fn new(branches: Vec<ConditionalQuery>) -> UnionQuery {
        assert!(!branches.is_empty(), "a union needs at least one branch");
        let head = &branches[0].relational.head;
        for b in &branches[1..] {
            assert_eq!(
                (b.relational.head.predicate, b.relational.head.arity()),
                (head.predicate, head.arity()),
                "union branches must share the head shape"
            );
        }
        UnionQuery { branches }
    }

    /// A union of plain conjunctive queries.
    pub fn plain(branches: Vec<ConjunctiveQuery>) -> UnionQuery {
        UnionQuery::new(branches.into_iter().map(ConditionalQuery::plain).collect())
    }

    /// True iff no branch carries comparisons.
    pub fn is_comparison_free(&self) -> bool {
        self.branches.iter().all(|b| b.constraints.is_empty())
    }
}

impl std::fmt::Display for UnionQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, b) in self.branches.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

/// Evaluates the union: the set union of the branch answers.
pub fn evaluate_union(u: &UnionQuery, db: &Database) -> Relation {
    let mut out = Relation::new(u.branches[0].relational.head.arity());
    for b in &u.branches {
        for row in &evaluate_conditional(b, db) {
            out.insert(row.clone());
        }
    }
    out
}

/// Containment of one conditional CQ in a union. Complete via the
/// ordering-refinement test; `None` when the term count exceeds
/// `max_terms`.
pub fn is_contained_in_union(
    q: &ConditionalQuery,
    u: &UnionQuery,
    max_terms: usize,
) -> Option<bool> {
    // Fast path: contained in a single branch.
    for b in &u.branches {
        if is_contained_with_comparisons(q, b, max_terms) == Some(true) {
            return Some(true);
        }
    }
    if q.constraints.is_empty() && u.is_comparison_free() {
        // Sagiv–Yannakakis: branch-wise containment is complete, and it
        // just failed.
        return Some(false);
    }
    if !q.constraints.is_satisfiable() {
        return Some(true);
    }
    // Ordering refinement across branches.
    let mut terms = q.terms();
    for b in &u.branches {
        for c in b.constraints.iter() {
            for t in [c.lhs, c.rhs] {
                if matches!(t, Term::Const(_)) && !terms.contains(&t) {
                    terms.push(t);
                }
            }
        }
    }
    if terms.len() > max_terms {
        return None;
    }
    let initials: Vec<Option<_>> = u
        .branches
        .iter()
        .map(|b| head_bindings(&b.relational, &q.relational))
        .collect();
    let mut ok = true;
    for_each_weak_order(&terms, &mut |tau| {
        let total = tau.conjoin(&q.constraints);
        if !total.is_satisfiable() {
            return true;
        }
        let mut served = false;
        for (b, initial) in u.branches.iter().zip(&initials) {
            let Some(initial) = initial else { continue };
            HomomorphismSearch::with_initial(
                &b.relational.body,
                &q.relational.body,
                initial.clone(),
            )
            .for_each(|phi| {
                if total.implies_all(&b.constraints.apply(phi)) {
                    served = true;
                    true
                } else {
                    false
                }
            });
            if served {
                break;
            }
        }
        if !served {
            ok = false;
            return false;
        }
        true
    });
    Some(ok)
}

/// UCQ ⊑ UCQ: every branch of `u1` contained in `u2`.
pub fn is_ucq_contained_in(u1: &UnionQuery, u2: &UnionQuery, max_terms: usize) -> Option<bool> {
    let mut all = true;
    for b in &u1.branches {
        match is_contained_in_union(b, u2, max_terms) {
            Some(true) => {}
            Some(false) => {
                all = false;
                break;
            }
            None => return None,
        }
    }
    Some(all)
}

/// UCQ equivalence (both containments).
pub fn is_ucq_equivalent(u1: &UnionQuery, u2: &UnionQuery, max_terms: usize) -> Option<bool> {
    match is_ucq_contained_in(u1, u2, max_terms)? {
        false => Some(false),
        true => is_ucq_contained_in(u2, u1, max_terms),
    }
}

/// Removes branches contained in the union of the remaining ones; the
/// result is equivalent to the input with no redundant branch (given the
/// term bound holds throughout — undecided branches are conservatively
/// kept).
pub fn minimize_union(u: &UnionQuery, max_terms: usize) -> UnionQuery {
    let mut keep: Vec<bool> = vec![true; u.branches.len()];
    for i in 0..u.branches.len() {
        let others: Vec<ConditionalQuery> = u
            .branches
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i && keep[j])
            .map(|(_, b)| b.clone())
            .collect();
        if others.is_empty() {
            continue;
        }
        let rest = UnionQuery::new(others);
        if is_contained_in_union(&u.branches[i], &rest, max_terms) == Some(true) {
            keep[i] = false;
        }
    }
    UnionQuery::new(
        u.branches
            .iter()
            .zip(&keep)
            .filter(|&(_, &k)| k)
            .map(|(b, _)| b.clone())
            .collect(),
    )
}

/// A convenience assertion used by tests: answers of `u` equal the
/// answers of `q` over the given database.
pub fn union_matches_query(u: &UnionQuery, q: &ConditionalQuery, db: &Database) -> bool {
    let a = evaluate_union(u, db);
    let b = evaluate_conditional(q, db);
    let sa: HashSet<_> = a.iter().cloned().collect();
    let sb: HashSet<_> = b.iter().cloned().collect();
    sa == sb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparison::Comparison;
    use crate::constraints::ConstraintSet;
    use viewplan_cq::parse_query;
    use viewplan_engine::Value;

    fn v(name: &str) -> Term {
        Term::var(name)
    }

    fn ccq(src: &str, cs: Vec<Comparison>) -> ConditionalQuery {
        ConditionalQuery::new(
            parse_query(src).unwrap(),
            ConstraintSet::from_comparisons(cs),
        )
    }

    /// The canonical case split: r(X, Y) ≡ (r(X,Y), X ≤ Y) ∪ (r(X,Y), Y ≤ X),
    /// but is contained in neither branch alone.
    fn case_split() -> (ConditionalQuery, UnionQuery) {
        let q = ConditionalQuery::plain(parse_query("q(X, Y) :- r(X, Y)").unwrap());
        let u = UnionQuery::new(vec![
            ccq("q(X, Y) :- r(X, Y)", vec![Comparison::le(v("X"), v("Y"))]),
            ccq("q(X, Y) :- r(X, Y)", vec![Comparison::le(v("Y"), v("X"))]),
        ]);
        (q, u)
    }

    #[test]
    fn union_containment_needs_the_case_split() {
        let (q, u) = case_split();
        // Not contained in either single branch…
        for b in &u.branches {
            assert_eq!(is_contained_with_comparisons(&q, b, 7), Some(false));
        }
        // …but contained in the union (different orderings pick different
        // branches).
        assert_eq!(is_contained_in_union(&q, &u, 7), Some(true));
        // And conversely each branch ⊑ q, so the union is equivalent.
        let uq = UnionQuery::new(vec![q.clone()]);
        assert_eq!(is_ucq_equivalent(&u, &uq, 7), Some(true));
    }

    #[test]
    fn union_evaluation_is_set_union() {
        let (q, u) = case_split();
        let mut db = Database::new();
        db.insert_int("r", &[&[1, 2], &[5, 4], &[3, 3]]);
        assert!(union_matches_query(&u, &q, &db));
        assert_eq!(evaluate_union(&u, &db).len(), 3);
    }

    #[test]
    fn comparison_free_branchwise_is_complete() {
        let q = ConditionalQuery::plain(parse_query("q(X) :- e(X, X)").unwrap());
        let u = UnionQuery::plain(vec![
            parse_query("q(X) :- e(X, Y)").unwrap(),
            parse_query("q(X) :- f(X)").unwrap(),
        ]);
        assert_eq!(is_contained_in_union(&q, &u, 7), Some(true));
        let not = ConditionalQuery::plain(parse_query("q(X) :- g(X)").unwrap());
        assert_eq!(is_contained_in_union(&not, &u, 7), Some(false));
    }

    #[test]
    fn minimize_union_drops_subsumed_branches() {
        let u = UnionQuery::plain(vec![
            parse_query("q(X) :- e(X, Y)").unwrap(),
            parse_query("q(X) :- e(X, X)").unwrap(), // ⊑ first branch
            parse_query("q(X) :- f(X)").unwrap(),
        ]);
        let m = minimize_union(&u, 7);
        assert_eq!(m.branches.len(), 2);
    }

    #[test]
    fn minimize_keeps_the_case_split() {
        let (_, u) = case_split();
        // Neither branch is contained in the other: both stay.
        assert_eq!(minimize_union(&u, 7).branches.len(), 2);
    }

    #[test]
    fn ucq_containment_respects_direction() {
        let narrow = UnionQuery::new(vec![ccq(
            "q(X, Y) :- r(X, Y)",
            vec![Comparison::lt(v("X"), v("Y"))],
        )]);
        let (_, wide) = case_split();
        assert_eq!(is_ucq_contained_in(&narrow, &wide, 7), Some(true));
        assert_eq!(is_ucq_contained_in(&wide, &narrow, 7), Some(false));
    }

    #[test]
    fn three_way_case_split_with_equality() {
        // r(X,Y) ≡ (X < Y) ∪ (X = Y) ∪ (Y < X).
        let q = ConditionalQuery::plain(parse_query("q(X, Y) :- r(X, Y)").unwrap());
        let u = UnionQuery::new(vec![
            ccq("q(X, Y) :- r(X, Y)", vec![Comparison::lt(v("X"), v("Y"))]),
            ccq("q(X, Y) :- r(X, Y)", vec![Comparison::eq(v("X"), v("Y"))]),
            ccq("q(X, Y) :- r(X, Y)", vec![Comparison::lt(v("Y"), v("X"))]),
        ]);
        assert_eq!(is_contained_in_union(&q, &u, 7), Some(true));
        let mut db = Database::new();
        db.insert_int("r", &[&[1, 9], &[9, 1], &[4, 4]]);
        assert!(union_matches_query(&u, &q, &db));
    }

    #[test]
    fn evaluation_with_symbolic_values() {
        // The runtime order is total over all values (symbols by name), so
        // the case split covers symbolic tuples too — the union stays
        // equivalent to the plain query on mixed data.
        let (q, u) = case_split();
        let mut db = Database::new();
        db.insert("r", vec![Value::sym("alpha"), Value::sym("alpha")]);
        db.insert("r", vec![Value::sym("beta"), Value::sym("alpha")]);
        db.insert("r", vec![Value::Int(3), Value::sym("zed")]);
        assert!(union_matches_query(&u, &q, &db));
        assert_eq!(evaluate_union(&u, &db).len(), 3);
    }
}
