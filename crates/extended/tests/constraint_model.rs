//! Model-based testing of the constraint solver: satisfiability and
//! implication are cross-checked against brute-force enumeration of
//! assignments over a small rational-like domain.
//!
//! The domain uses half-integers (0, ½, 1, …) so that strict sandwiches
//! between adjacent integers have witnesses — approximating the dense
//! order the solver reasons over. With constraints drawn over k ≤ 4
//! variables and constants in {0, 1, 2}, any satisfiable set has a model
//! in this grid (order constraints only care about relative positions, of
//! which there are finitely many).

use proptest::prelude::*;
use viewplan_cq::Term;
use viewplan_extended::{CompOp, Comparison, ConstraintSet};

const VARS: [&str; 4] = ["A", "B", "C", "D"];
/// Half-integer grid covering the constants {0, 1, 2} with gaps.
const GRID: [i64; 9] = [-1, 0, 1, 2, 3, 4, 5, 6, 7]; // doubled values: -½, 0, ½, 1, …

fn doubled(t: Term, assignment: &[i64; 4]) -> Option<i64> {
    match t {
        Term::Var(v) => VARS
            .iter()
            .position(|&name| v.as_str() == name)
            .map(|i| assignment[i]),
        Term::Const(viewplan_cq::Constant::Int(i)) => Some(2 * i), // constants live at even grid points
        Term::Const(_) => None,
    }
}

fn holds(c: &Comparison, assignment: &[i64; 4]) -> bool {
    let (Some(a), Some(b)) = (doubled(c.lhs, assignment), doubled(c.rhs, assignment)) else {
        return false;
    };
    match c.op {
        CompOp::Lt => a < b,
        CompOp::Le => a <= b,
        CompOp::Eq => a == b,
        CompOp::Ne => a != b,
    }
}

fn brute_force_models(cs: &ConstraintSet) -> Vec<[i64; 4]> {
    let mut models = Vec::new();
    for a in GRID {
        for b in GRID {
            for c in GRID {
                for d in GRID {
                    let assignment = [a, b, c, d];
                    if cs.iter().all(|cmp| holds(cmp, &assignment)) {
                        models.push(assignment);
                    }
                }
            }
        }
    }
    models
}

fn arb_comparison() -> impl Strategy<Value = Comparison> {
    let term = prop_oneof![
        3 => (0..4usize).prop_map(|i| Term::var(VARS[i])),
        1 => (0..3i64).prop_map(Term::int),
    ];
    (term.clone(), 0..4usize, term).prop_map(|(l, op, r)| Comparison {
        lhs: l,
        op: [CompOp::Lt, CompOp::Le, CompOp::Eq, CompOp::Ne][op],
        rhs: r,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Solver satisfiability agrees with brute force over the grid.
    #[test]
    fn satisfiability_matches_models(
        cs in prop::collection::vec(arb_comparison(), 0..6)
    ) {
        let set = ConstraintSet::from_comparisons(cs);
        let has_model = !brute_force_models(&set).is_empty();
        prop_assert_eq!(set.is_satisfiable(), has_model, "{}", set);
    }

    /// If the solver claims `cs ⊨ c`, every grid model of `cs` satisfies
    /// `c` (soundness of implication).
    #[test]
    fn implication_is_sound(
        cs in prop::collection::vec(arb_comparison(), 0..5),
        c in arb_comparison(),
    ) {
        let set = ConstraintSet::from_comparisons(cs);
        if set.implies(&c) {
            for m in brute_force_models(&set) {
                prop_assert!(holds(&c, &m), "{} should imply {} but model {:?} fails", set, c, m);
            }
        }
    }

    /// Completeness on the grid: if every model satisfies `c` AND the set
    /// is satisfiable, the solver should usually detect the implication.
    /// (The grid is finite while the theory is dense, so grid-validity can
    /// overshoot — e.g. nothing lies strictly between adjacent grid points
    /// — hence this checks the contrapositive only for *robust* witnesses:
    /// when some model falsifies `c`, the solver must NOT claim
    /// implication.)
    #[test]
    fn no_false_implications(
        cs in prop::collection::vec(arb_comparison(), 0..5),
        c in arb_comparison(),
    ) {
        let set = ConstraintSet::from_comparisons(cs);
        let falsified = brute_force_models(&set).into_iter().any(|m| !holds(&c, &m));
        if falsified {
            prop_assert!(!set.implies(&c), "{} claims to imply {}", set, c);
        }
    }
}
