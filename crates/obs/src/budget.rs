//! Cooperative budgets: deadlines, per-phase node caps, fault injection.
//!
//! Every hot loop in the rewriting pipeline — homomorphism search,
//! cover enumeration, M2/M3 plan search — is worst-case exponential. A
//! service cannot hang on an adversarial query; it must return the best
//! answer found within a budget, labeled as such. This module provides
//! the shared mechanism:
//!
//! * [`Budget`] — a cheap, clonable (`Arc`-backed) handle carrying an
//!   optional wall-clock deadline and per-phase **per-search** node caps.
//! * [`install`] / [`attach`] / [`current`] — an ambient thread-local
//!   current budget. The CLI installs one around a command; the worker
//!   pool (`parallel_map` in `viewplan-core`) captures the spawning
//!   thread's budget and re-attaches it on every worker, so the whole
//!   pool observes one deadline and stops promptly when it fires.
//! * [`Meter`] — the per-search countdown ticked at backtrack points.
//!   One `Meter` is created per search (per homomorphism check, per
//!   cover enumeration, per plan search); each `tick()` is a decrement
//!   and compare, with the wall clock polled only every
//!   [`DEADLINE_CHECK_INTERVAL`] ticks.
//! * [`Completeness`] — the three-valued honesty marker threaded through
//!   results: `Complete`, `Truncated` (a count cap or node cap fired),
//!   `DeadlineExceeded` (the wall clock fired; takes precedence).
//! * [`Fault`] — deterministic fault injection
//!   (`VIEWPLAN_FAULT=phase:nth`) forcing budget exhaustion at the nth
//!   search of a chosen phase, so degradation paths are testable without
//!   real slowness.
//!
//! **Determinism.** Node caps are per-search, not global: every
//! individual search truncates at the same node regardless of what other
//! threads are doing, so node-budgeted results are identical at any
//! thread count. Deadlines are shared wall-clock state and therefore
//! nondeterministic; results under `--timeout-ms` are labeled as such.
//!
//! **Soundness of degradation.** A truncated homomorphism search can
//! only *miss* homomorphisms, never fabricate one. Downstream this
//! always errs in the safe direction: minimization keeps subgoals it
//! could not prove redundant (result stays equivalent), view equivalence
//! classes split rather than merge, tuple-cores are underestimated
//! (subsets of the true core still yield valid covers), and rewriting
//! verification drops candidates it cannot confirm instead of asserting.
//! Truncated verdicts are never written to the containment cache.
//!
//! Exhaustion events are counted on the budget handle (always) and in
//! the obs counter registry (`budget.deadline_hits`,
//! `budget.node_budget_hits`, `budget.abandoned.{hom,cover,plan}`) when
//! stats collection is on.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::{Duration, Instant};
use viewplan_sync::{AtomicBool, AtomicU64, Ordering};

/// How many `Meter::tick`s pass between wall-clock / cancellation polls.
/// Node caps are still exact; only deadline detection is amortized.
pub const DEADLINE_CHECK_INTERVAL: u64 = 128;

/// The metered pipeline phases. Used to index per-phase node caps and
/// abandoned-search counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Homomorphism / containment search nodes.
    Hom,
    /// Set-cover enumeration and MiniCon combination nodes.
    Cover,
    /// Plan search nodes (M2 subset DP, M3 permutations/descent).
    Plan,
}

impl Phase {
    fn idx(self) -> usize {
        self as usize
    }

    /// The phase's short name, as used in counters and `VIEWPLAN_FAULT`.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Hom => "hom",
            Phase::Cover => "cover",
            Phase::Plan => "plan",
        }
    }
}

/// How complete a result is. `Complete` means no budget event truncated
/// any search that fed the result; `Truncated` means a node cap or count
/// cap fired; `DeadlineExceeded` means the wall clock fired (and takes
/// precedence over `Truncated` when both happened).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Completeness {
    /// Every search ran to completion.
    #[default]
    Complete,
    /// A node or count cap fired; the result is a deterministic subset.
    Truncated,
    /// The wall-clock deadline fired; the result is best-so-far and
    /// nondeterministic.
    DeadlineExceeded,
}

impl Completeness {
    /// True unless the marker is [`Completeness::Complete`].
    pub fn is_incomplete(self) -> bool {
        self != Completeness::Complete
    }

    /// Combines two markers, keeping the more severe
    /// (`DeadlineExceeded` > `Truncated` > `Complete`).
    pub fn worst(self, other: Completeness) -> Completeness {
        use Completeness::*;
        match (self, other) {
            (DeadlineExceeded, _) | (_, DeadlineExceeded) => DeadlineExceeded,
            (Truncated, _) | (_, Truncated) => Truncated,
            (Complete, Complete) => Complete,
        }
    }

    /// Stable lowercase label (`complete` / `truncated` /
    /// `deadline_exceeded`) for CLI notes, JSON, and CSV columns.
    pub fn label(self) -> &'static str {
        match self {
            Completeness::Complete => "complete",
            Completeness::Truncated => "truncated",
            Completeness::DeadlineExceeded => "deadline_exceeded",
        }
    }
}

impl std::fmt::Display for Completeness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Where an injected fault fires.
///
/// The first four points live in the rewriting pipeline and are consumed
/// by [`Meter`] through the ambient budget. The serving points
/// (`Accept`/`Read`/`Write`/`Swap`) are consumed by the network layer in
/// `viewplan-serve` instead — they share the `VIEWPLAN_FAULT` syntax and
/// the fire-exactly-once countdown, but never trip a search meter (see
/// [`FaultPoint::is_serving`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultPoint {
    /// Exhaust the nth homomorphism search at its first node.
    Hom,
    /// Exhaust the nth cover/combine search at its first node.
    Cover,
    /// Exhaust the nth plan search at its first node.
    Plan,
    /// Fire the deadline at the nth metered search (any phase).
    Deadline,
    /// Drop the nth accepted network connection before reading a frame.
    Accept,
    /// Abort the connection after the nth successful frame read.
    Read,
    /// Abort the connection instead of writing the nth response frame.
    Write,
    /// Fail the nth catalog epoch swap (the DDL errors; traffic is
    /// untouched and the old epoch keeps serving).
    Swap,
}

impl FaultPoint {
    /// True for the serving-layer points, which the budget meters must
    /// ignore (they are injected by the network front-end, not by search
    /// loops).
    pub fn is_serving(self) -> bool {
        matches!(
            self,
            FaultPoint::Accept | FaultPoint::Read | FaultPoint::Write | FaultPoint::Swap
        )
    }
}

/// A deterministic injected fault: at the `nth` (1-based) search of the
/// chosen point, force budget exhaustion. Parsed from
/// `VIEWPLAN_FAULT=phase:nth` (e.g. `hom:3`, `deadline:1`) or built
/// programmatically for tests. Deterministic at 1 thread; with more
/// workers the trigger ordering races (the *effects* stay well-formed).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fault {
    /// Which metering point triggers the fault.
    pub point: FaultPoint,
    /// 1-based index of the triggering search.
    pub nth: u64,
}

impl Fault {
    /// Parses `phase:nth`, e.g. `hom:3`, `cover:1`, `plan:2`,
    /// `deadline:1`.
    pub fn parse(s: &str) -> Result<Fault, String> {
        let (point, nth) = s
            .split_once(':')
            .ok_or_else(|| format!("expected phase:nth, got `{s}`"))?;
        let point = match point {
            "hom" => FaultPoint::Hom,
            "cover" => FaultPoint::Cover,
            "plan" => FaultPoint::Plan,
            "deadline" => FaultPoint::Deadline,
            "accept" => FaultPoint::Accept,
            "read" => FaultPoint::Read,
            "write" => FaultPoint::Write,
            "swap" => FaultPoint::Swap,
            other => {
                return Err(format!(
                    "unknown fault point `{other}` (expected hom, cover, plan, deadline, \
                     accept, read, write, or swap)"
                ))
            }
        };
        let nth: u64 = nth
            .parse()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("fault index must be a positive integer, got `{nth}`"))?;
        Ok(Fault { point, nth })
    }

    /// Reads `VIEWPLAN_FAULT` from the environment; `Ok(None)` when
    /// unset or empty.
    pub fn from_env() -> Result<Option<Fault>, String> {
        match std::env::var("VIEWPLAN_FAULT") {
            Ok(s) if !s.is_empty() => Fault::parse(&s)
                .map(Some)
                .map_err(|e| format!("VIEWPLAN_FAULT: {e}")),
            _ => Ok(None),
        }
    }
}

/// The shared state behind a [`Budget`] handle.
struct Inner {
    /// Absolute wall-clock deadline, if any.
    deadline: Option<Instant>,
    /// Per-phase, per-search node caps (`u64::MAX` = unlimited).
    node_caps: [u64; 3],
    /// Set once the deadline fires (or [`Budget::cancel`] is called);
    /// every meter polls it so all workers stop promptly.
    cancelled: AtomicBool,
    /// Whether cancellation came from the deadline (vs. an explicit
    /// cancel), for completeness classification.
    deadline_fired: AtomicBool,
    /// Number of searches abandoned because the deadline/cancel fired.
    deadline_hits: AtomicU64,
    /// Number of searches abandoned because a node cap ran out.
    node_hits: AtomicU64,
    /// Abandoned-search counts per phase (either cause).
    abandoned: [AtomicU64; 3],
    /// Optional injected fault.
    fault: Option<Fault>,
    /// Countdown to the fault trigger; fires on the 1 → 0 transition.
    fault_countdown: AtomicU64,
}

/// A snapshot of a budget's exhaustion counters, used to classify the
/// completeness of one run when a budget handle outlives it.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct HitSnapshot {
    /// Searches abandoned because the deadline fired or the budget was
    /// cancelled.
    pub deadline_hits: u64,
    /// Searches abandoned because a per-search node cap ran out.
    pub node_hits: u64,
}

/// A cheap, clonable budget handle. Create with [`BudgetSpec::build`],
/// make it ambient with [`install`], and observe it from hot loops
/// through [`Meter`].
#[derive(Clone)]
pub struct Budget {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Budget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Budget")
            .field("deadline", &self.inner.deadline)
            .field("node_caps", &self.inner.node_caps)
            .field("cancelled", &self.cancelled())
            .finish()
    }
}

/// Declarative description of a budget; `build` turns it into a live
/// [`Budget`] (fixing the deadline relative to now).
#[derive(Clone, Copy, Debug, Default)]
pub struct BudgetSpec {
    timeout: Option<Duration>,
    hom_nodes: Option<u64>,
    cover_nodes: Option<u64>,
    plan_nodes: Option<u64>,
    fault: Option<Fault>,
}

impl BudgetSpec {
    /// An empty spec: no deadline, no caps, no fault.
    pub fn new() -> BudgetSpec {
        BudgetSpec::default()
    }

    /// Sets the wall-clock timeout.
    pub fn timeout(mut self, timeout: Duration) -> BudgetSpec {
        self.timeout = Some(timeout);
        self
    }

    /// Sets the wall-clock timeout in milliseconds.
    pub fn timeout_ms(self, ms: u64) -> BudgetSpec {
        self.timeout(Duration::from_millis(ms))
    }

    /// Caps the timeout at `cap`: the resulting spec times out at the
    /// smaller of its configured timeout and `cap`. The serving layer
    /// clamps each request's budget to its remaining network deadline
    /// this way, so a request never computes past the point where its
    /// client stops listening.
    pub fn clamp_timeout(mut self, cap: Duration) -> BudgetSpec {
        self.timeout = Some(self.timeout.map_or(cap, |t| t.min(cap)));
        self
    }

    /// Sets the same per-search node cap for all three phases.
    pub fn node_budget(mut self, nodes: u64) -> BudgetSpec {
        self.hom_nodes = Some(nodes);
        self.cover_nodes = Some(nodes);
        self.plan_nodes = Some(nodes);
        self
    }

    /// Sets the per-search node cap for one phase.
    pub fn phase_nodes(mut self, phase: Phase, nodes: u64) -> BudgetSpec {
        match phase {
            Phase::Hom => self.hom_nodes = Some(nodes),
            Phase::Cover => self.cover_nodes = Some(nodes),
            Phase::Plan => self.plan_nodes = Some(nodes),
        }
        self
    }

    /// Injects a deterministic fault.
    pub fn fault(mut self, fault: Fault) -> BudgetSpec {
        self.fault = Some(fault);
        self
    }

    /// True when the spec constrains nothing (no deadline, caps, or
    /// fault) — callers can skip installing a budget entirely.
    pub fn is_unlimited(&self) -> bool {
        self.timeout.is_none()
            && self.hom_nodes.is_none()
            && self.cover_nodes.is_none()
            && self.plan_nodes.is_none()
            && self.fault.is_none()
    }

    /// Builds the live budget; the deadline (if any) starts counting now.
    pub fn build(self) -> Budget {
        Budget {
            inner: Arc::new(Inner {
                deadline: self.timeout.map(|t| Instant::now() + t),
                node_caps: [
                    self.hom_nodes.unwrap_or(u64::MAX),
                    self.cover_nodes.unwrap_or(u64::MAX),
                    self.plan_nodes.unwrap_or(u64::MAX),
                ],
                cancelled: AtomicBool::new(false),
                deadline_fired: AtomicBool::new(false),
                deadline_hits: AtomicU64::new(0),
                node_hits: AtomicU64::new(0),
                abandoned: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
                fault_countdown: AtomicU64::new(self.fault.map_or(0, |f| f.nth)),
                fault: self.fault,
            }),
        }
    }
}

impl Budget {
    /// A budget that never exhausts (useful as a fault-injection
    /// carrier).
    pub fn unlimited() -> Budget {
        BudgetSpec::new().build()
    }

    /// True once the deadline fired or [`Budget::cancel`] was called.
    /// Polls the clock (and latches the flag) if a deadline is set.
    pub fn cancelled(&self) -> bool {
        // ordering: latched one-way flag; a late observation only delays
        // the stop, it cannot un-cancel.
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.fire_deadline();
                return true;
            }
        }
        false
    }

    /// Cancels the budget explicitly (counts as a deadline-style stop
    /// for completeness purposes: the result is nondeterministic
    /// best-so-far).
    pub fn cancel(&self) {
        self.fire_deadline();
    }

    fn fire_deadline(&self) {
        // ordering: deadline_fired is written before cancelled so a
        // cancelled_by_deadline observer under SC sees the cause with the
        // effect; both flags are one-way latches, so relaxed suffices for
        // the stop itself (a miss only delays it).
        self.inner.deadline_fired.store(true, Ordering::Relaxed);
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// `(deadline_hits, node_hits)` so far — searches abandoned by the
    /// wall clock vs. by node caps.
    pub fn hits(&self) -> HitSnapshot {
        HitSnapshot {
            // ordering: monotone tallies; completeness_since compares
            // before/after snapshots of the same counters.
            deadline_hits: self.inner.deadline_hits.load(Ordering::Relaxed),
            // ordering: as above.
            node_hits: self.inner.node_hits.load(Ordering::Relaxed),
        }
    }

    /// Searches abandoned in `phase` (either cause).
    pub fn abandoned(&self, phase: Phase) -> u64 {
        // ordering: monotone tally read.
        self.inner.abandoned[phase.idx()].load(Ordering::Relaxed)
    }

    /// Classifies everything since `before` (see [`Budget::hits`]).
    /// An explicitly cancelled or deadline-expired budget reports
    /// `DeadlineExceeded` even if no meter observed it yet.
    pub fn completeness_since(&self, before: HitSnapshot) -> Completeness {
        let now = self.hits();
        if now.deadline_hits > before.deadline_hits || self.cancelled_by_deadline() {
            Completeness::DeadlineExceeded
        } else if now.node_hits > before.node_hits {
            Completeness::Truncated
        } else {
            Completeness::Complete
        }
    }

    fn cancelled_by_deadline(&self) -> bool {
        // ordering: one-way latch written in fire_deadline before
        // cancelled; see the note there.
        self.cancelled() && self.inner.deadline_fired.load(Ordering::Relaxed)
    }

    /// Records one abandoned search. `by_deadline` selects which hit
    /// counter (and obs counter) it lands in.
    fn note_abandoned(&self, phase: Phase, by_deadline: bool) {
        // ordering: the per-phase tally is bumped before the cause
        // counter, so hits() never exceeds the abandoned total under SC
        // (pinned by the model_budget interleaving test); each counter is
        // monotone, so relaxed suffices per site.
        self.inner.abandoned[phase.idx()].fetch_add(1, Ordering::Relaxed);
        if by_deadline {
            // ordering: monotone tally; see above.
            self.inner.deadline_hits.fetch_add(1, Ordering::Relaxed);
            crate::counter!("budget.deadline_hits").incr();
        } else {
            // ordering: monotone tally; see above.
            self.inner.node_hits.fetch_add(1, Ordering::Relaxed);
            crate::counter!("budget.node_budget_hits").incr();
        }
        match phase {
            Phase::Hom => crate::counter!("budget.abandoned.hom").incr(),
            Phase::Cover => crate::counter!("budget.abandoned.cover").incr(),
            Phase::Plan => crate::counter!("budget.abandoned.plan").incr(),
        }
        crate::trace_event!(
            "budget.truncated",
            ("phase", phase.name()),
            ("by_deadline", by_deadline)
        );
    }

    /// Decrements the fault countdown if this search matches the fault
    /// point; true when the fault fires on this search.
    fn fault_fires(&self, phase: Phase) -> Option<FaultPoint> {
        let fault = self.inner.fault?;
        let matches = match fault.point {
            FaultPoint::Hom => phase == Phase::Hom,
            FaultPoint::Cover => phase == Phase::Cover,
            FaultPoint::Plan => phase == Phase::Plan,
            FaultPoint::Deadline => true,
            // Serving-layer points belong to the network front-end; a
            // budget that happens to carry one never trips a meter.
            FaultPoint::Accept | FaultPoint::Read | FaultPoint::Write | FaultPoint::Swap => false,
        };
        if !matches {
            return None;
        }
        // Fires exactly once, on the 1 → 0 transition.
        let fired = self
            .inner
            .fault_countdown
            // ordering: the RMW itself is atomic, which is all the
            // exactly-once 1 -> 0 transition needs.
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok_and(|prev| prev == 1);
        fired.then_some(fault.point)
    }
}

// ---------------------------------------------------------------------
// Ambient (thread-local) current budget.
// ---------------------------------------------------------------------

thread_local! {
    static CURRENT: RefCell<Option<Budget>> = const { RefCell::new(None) };
}

/// Restores the previously installed budget on drop.
pub struct BudgetGuard {
    prev: Option<Budget>,
    // Thread-locals make this guard meaningless on another thread.
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Installs `budget` as the current thread's ambient budget until the
/// guard drops.
pub fn install(budget: Budget) -> BudgetGuard {
    attach(Some(budget))
}

/// Installs an optional budget (worker threads attach the spawning
/// thread's `current()`, which may be `None`).
pub fn attach(budget: Option<Budget>) -> BudgetGuard {
    let prev = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), budget));
    BudgetGuard {
        prev,
        _not_send: std::marker::PhantomData,
    }
}

/// The current thread's ambient budget, if any.
pub fn current() -> Option<Budget> {
    CURRENT.with(|c| c.borrow().clone())
}

/// True when an ambient budget exists and has been cancelled (deadline
/// fired or explicit cancel). Loop heads outside metered searches
/// (minimization rounds, per-rewriting planning) poll this to stop
/// early.
pub fn cancelled() -> bool {
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(|b| b.cancelled()))
}

/// [`Budget::hits`] of the current budget (zeroes when none).
pub fn snapshot() -> HitSnapshot {
    CURRENT.with(|c| c.borrow().as_ref().map(|b| b.hits()).unwrap_or_default())
}

/// Completeness of the work since `before` under the current budget
/// ([`Completeness::Complete`] when no budget is installed).
pub fn completeness_since(before: HitSnapshot) -> Completeness {
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .map(|b| b.completeness_since(before))
            .unwrap_or_default()
    })
}

// ---------------------------------------------------------------------
// Meter: the per-search countdown.
// ---------------------------------------------------------------------

/// Per-search budget countdown. Create one per search with
/// [`Meter::start`]; call [`Meter::tick`] at each node — `false` means
/// stop now (record best-so-far and unwind). After the search,
/// [`Meter::exhausted`] distinguishes truncation from completion.
pub struct Meter {
    budget: Option<Budget>,
    phase: Phase,
    /// Nodes left before the cap fires.
    remaining: u64,
    /// Ticks left before the next wall-clock / cancellation poll.
    until_check: u64,
    exhausted: bool,
    /// Whether exhaustion was the deadline's doing.
    by_deadline: bool,
}

impl Meter {
    /// Starts a meter for one search in `phase` against the ambient
    /// budget (a no-op meter when none is installed). Checks for
    /// cancellation and injected faults immediately, so an
    /// already-expired budget exhausts every subsequent search at its
    /// first tick.
    pub fn start(phase: Phase) -> Meter {
        let budget = current();
        let mut meter = match budget {
            None => Meter {
                budget: None,
                phase,
                remaining: u64::MAX,
                until_check: u64::MAX,
                exhausted: false,
                by_deadline: false,
            },
            Some(b) => Meter {
                remaining: b.inner.node_caps[phase.idx()],
                until_check: DEADLINE_CHECK_INTERVAL,
                budget: Some(b),
                phase,
                exhausted: false,
                by_deadline: false,
            },
        };
        if let Some(b) = meter.budget.clone() {
            match b.fault_fires(phase) {
                Some(FaultPoint::Deadline) => {
                    b.cancel();
                    meter.exhaust(true);
                }
                Some(_) => meter.exhaust(false),
                None => {
                    if b.cancelled() {
                        meter.exhaust(true);
                    }
                }
            }
        }
        meter
    }

    /// A meter that never exhausts (for callers that must opt out of
    /// budgeting, e.g. post-hoc verification in tests).
    pub fn unlimited() -> Meter {
        Meter {
            budget: None,
            phase: Phase::Hom,
            remaining: u64::MAX,
            until_check: u64::MAX,
            exhausted: false,
            by_deadline: false,
        }
    }

    /// Accounts one search node. Returns `true` to continue, `false`
    /// to stop the search now (the meter records the abandonment on
    /// first refusal).
    #[inline]
    pub fn tick(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        let Some(budget) = &self.budget else {
            return true;
        };
        if self.remaining == 0 {
            self.exhaust(false);
            return false;
        }
        self.remaining -= 1;
        self.until_check -= 1;
        if self.until_check == 0 {
            self.until_check = DEADLINE_CHECK_INTERVAL;
            if budget.cancelled() {
                self.exhaust(true);
                return false;
            }
        }
        true
    }

    /// True once the meter has refused a tick (the search was
    /// truncated).
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    fn exhaust(&mut self, by_deadline: bool) {
        if self.exhausted {
            return;
        }
        self.exhausted = true;
        self.by_deadline = by_deadline;
        if let Some(b) = &self.budget {
            b.note_abandoned(self.phase, by_deadline);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Thread-locals isolate most state, but obs counters are
    /// process-global; tests that read them serialize here.
    fn no_budget() {
        assert!(current().is_none(), "test leaked an ambient budget");
    }

    #[test]
    fn no_budget_meter_is_free() {
        no_budget();
        let mut m = Meter::start(Phase::Hom);
        for _ in 0..10_000 {
            assert!(m.tick());
        }
        assert!(!m.exhausted());
    }

    #[test]
    fn node_cap_exhausts_at_the_cap() {
        no_budget();
        let budget = BudgetSpec::new().node_budget(10).build();
        let _g = install(budget.clone());
        let mut m = Meter::start(Phase::Hom);
        let mut ticks = 0;
        while m.tick() {
            ticks += 1;
        }
        assert_eq!(ticks, 10);
        assert!(m.exhausted());
        assert_eq!(budget.abandoned(Phase::Hom), 1);
        assert_eq!(budget.hits().node_hits, 1);
        assert_eq!(budget.hits().deadline_hits, 0);
        assert_eq!(
            budget.completeness_since(HitSnapshot::default()),
            Completeness::Truncated
        );
    }

    #[test]
    fn expired_deadline_exhausts_immediately() {
        no_budget();
        let budget = BudgetSpec::new().timeout(Duration::from_millis(0)).build();
        let _g = install(budget.clone());
        std::thread::sleep(Duration::from_millis(2));
        let mut m = Meter::start(Phase::Cover);
        assert!(!m.tick());
        assert!(m.exhausted());
        assert_eq!(budget.hits().deadline_hits, 1);
        assert_eq!(
            budget.completeness_since(HitSnapshot::default()),
            Completeness::DeadlineExceeded
        );
    }

    #[test]
    fn cancel_stops_future_meters() {
        no_budget();
        let budget = Budget::unlimited();
        let _g = install(budget.clone());
        let mut before = Meter::start(Phase::Plan);
        assert!(before.tick());
        budget.cancel();
        let mut after = Meter::start(Phase::Plan);
        assert!(!after.tick());
        // A running meter notices at the next poll boundary.
        let mut i = 0u64;
        while before.tick() {
            i += 1;
            assert!(i <= DEADLINE_CHECK_INTERVAL, "running meter never stopped");
        }
    }

    #[test]
    fn budget_is_shared_across_clones_and_threads() {
        no_budget();
        let budget = BudgetSpec::new().node_budget(5).build();
        let handle = budget.clone();
        std::thread::spawn(move || {
            let _g = install(handle.clone());
            let mut m = Meter::start(Phase::Hom);
            while m.tick() {}
        })
        .join()
        .unwrap();
        assert_eq!(budget.abandoned(Phase::Hom), 1);
    }

    #[test]
    fn guard_restores_previous_budget() {
        no_budget();
        let outer = BudgetSpec::new().node_budget(100).build();
        let _g1 = install(outer);
        {
            let inner = BudgetSpec::new().node_budget(1).build();
            let _g2 = install(inner);
            let mut m = Meter::start(Phase::Hom);
            assert!(m.tick());
            assert!(!m.tick());
        }
        let mut m = Meter::start(Phase::Hom);
        for _ in 0..100 {
            assert!(m.tick());
        }
    }

    #[test]
    fn fault_parse_round_trips() {
        assert_eq!(
            Fault::parse("hom:3"),
            Ok(Fault {
                point: FaultPoint::Hom,
                nth: 3
            })
        );
        assert_eq!(
            Fault::parse("deadline:1"),
            Ok(Fault {
                point: FaultPoint::Deadline,
                nth: 1
            })
        );
        assert!(Fault::parse("hom").is_err());
        assert!(Fault::parse("hom:0").is_err());
        assert!(Fault::parse("hom:x").is_err());
        assert!(Fault::parse("warp:1").is_err());
    }

    #[test]
    fn serving_fault_points_parse_but_never_trip_meters() {
        no_budget();
        for (src, point) in [
            ("accept:2", FaultPoint::Accept),
            ("read:1", FaultPoint::Read),
            ("write:3", FaultPoint::Write),
            ("swap:1", FaultPoint::Swap),
        ] {
            assert_eq!(
                Fault::parse(src),
                Ok(Fault {
                    point,
                    nth: src[src.len() - 1..].parse().unwrap()
                })
            );
            assert!(point.is_serving());
        }
        assert!(!FaultPoint::Hom.is_serving());
        assert!(!FaultPoint::Deadline.is_serving());
        // A budget carrying a serving fault is inert for search meters.
        let budget = BudgetSpec::new()
            .fault(Fault {
                point: FaultPoint::Accept,
                nth: 1,
            })
            .build();
        let _g = install(budget.clone());
        for phase in [Phase::Hom, Phase::Cover, Phase::Plan] {
            let mut m = Meter::start(phase);
            for _ in 0..1000 {
                assert!(m.tick());
            }
            assert!(!m.exhausted());
        }
        assert_eq!(budget.hits().node_hits, 0);
    }

    #[test]
    fn fault_fires_on_the_nth_search_only() {
        no_budget();
        let budget = BudgetSpec::new()
            .fault(Fault {
                point: FaultPoint::Cover,
                nth: 2,
            })
            .build();
        let _g = install(budget.clone());
        let mut first = Meter::start(Phase::Cover);
        assert!(first.tick(), "first search unaffected");
        let mut second = Meter::start(Phase::Cover);
        assert!(!second.tick(), "second search hit the fault");
        let mut third = Meter::start(Phase::Cover);
        assert!(third.tick(), "fault fires exactly once");
        assert_eq!(budget.hits().node_hits, 1);
    }

    #[test]
    fn deadline_fault_cancels_everything() {
        no_budget();
        let budget = BudgetSpec::new()
            .fault(Fault {
                point: FaultPoint::Deadline,
                nth: 1,
            })
            .build();
        let _g = install(budget.clone());
        let mut m = Meter::start(Phase::Hom);
        assert!(!m.tick());
        assert!(budget.cancelled());
        assert_eq!(
            budget.completeness_since(HitSnapshot::default()),
            Completeness::DeadlineExceeded
        );
        // Subsequent searches in any phase are dead too.
        let mut n = Meter::start(Phase::Plan);
        assert!(!n.tick());
    }

    #[test]
    fn completeness_ordering() {
        use Completeness::*;
        assert_eq!(Complete.worst(Truncated), Truncated);
        assert_eq!(Truncated.worst(DeadlineExceeded), DeadlineExceeded);
        assert_eq!(DeadlineExceeded.worst(Complete), DeadlineExceeded);
        assert_eq!(Complete.worst(Complete), Complete);
        assert!(!Complete.is_incomplete());
        assert!(Truncated.is_incomplete());
        assert_eq!(Truncated.label(), "truncated");
    }

    #[test]
    fn snapshot_scopes_completeness_to_a_run() {
        no_budget();
        let budget = BudgetSpec::new().node_budget(3).build();
        let _g = install(budget.clone());
        let mut m = Meter::start(Phase::Hom);
        while m.tick() {}
        // A later run that stays within budget is Complete even though
        // the handle has hits from the earlier run.
        let before = snapshot();
        let mut ok = Meter::start(Phase::Hom);
        ok.tick();
        assert_eq!(completeness_since(before), Completeness::Complete);
    }
}
