//! A minimal JSON value, writer, and recursive-descent parser.
//!
//! The stats reporter needs to *emit* JSON and the test suite needs to
//! *parse* what was emitted; with no serde available offline, both live
//! here. The subset is full JSON minus `\u` surrogate-pair pedantry
//! (lone surrogates are replaced), which is plenty for metric dumps.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All JSON numbers are held as `f64` (integral values round-trip
    /// exactly up to 2⁵³, far beyond any metric this crate emits).
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements of an array (`None` elsewhere).
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number as `u64` if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Number(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => {
                Some(n as u64)
            }
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Number(n) => Some(n),
            _ => None,
        }
    }

    /// The string contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// A string value (convenience constructor).
    pub fn str(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// An integral number value. Precise up to 2⁵³ (the `f64` mantissa);
    /// larger metric values lose low bits, which no consumer of these
    /// documents distinguishes.
    pub fn num(n: u64) -> Json {
        Json::Number(n as f64)
    }

    /// Serializes this value as compact JSON. Object keys come out in
    /// `BTreeMap` order (sorted), so equal values render byte-identically
    /// — the property the golden tests and `parse` round-trips rely on.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    // JSON has no NaN/Infinity; null is the least-wrong
                    // encoding and parses back as an absent measurement.
                    out.push_str("null");
                }
            }
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Writes `s` as a JSON string literal (with escaping) into `out`.
pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", byte as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Number(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Number(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, 2, {"b": null}], "c": {"d": "e"}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_str(), Some("e"));
    }

    #[test]
    fn escaping_round_trips() {
        let nasty = "line\nquote\"back\\slash\ttab\u{1}𐍈";
        let mut doc = String::new();
        write_escaped(&mut doc, nasty);
        assert_eq!(parse(&doc).unwrap(), Json::String(nasty.into()));
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(parse(r#""A""#).unwrap(), Json::String("A".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn render_round_trips_through_parse() {
        let doc = r#"{"a":[1,2.5,{"b":null}],"c":"x\ny","d":true}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.render(), doc);
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn render_writes_integral_numbers_without_decimal_point() {
        assert_eq!(Json::num(42).render(), "42");
        assert_eq!(Json::Number(1.25).render(), "1.25");
        assert_eq!(Json::Number(f64::NAN).render(), "null");
    }
}
