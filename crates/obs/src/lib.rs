//! `viewplan-obs` — observability for the rewriting pipeline.
//!
//! The paper's experimental section (§7, Figures 6–9) is an exercise in
//! counting: view classes, view tuples, representative tuples, and
//! wall-clock per `CoreCover` phase. This crate gives every layer of the
//! system one shared, zero-dependency way to produce those numbers:
//!
//! * **Counters** ([`Counter`], [`counter!`]) — named, process-global,
//!   atomic. Hot loops bump them with a relaxed `fetch_add`.
//! * **Histograms** ([`Histogram`], [`histogram!`]) — log₂-bucketed
//!   distributions for quantities whose spread matters (intermediate
//!   relation sizes, per-check search nodes).
//! * **Spans** ([`span`]) — RAII phase timers. Nested spans build a
//!   phase tree (`corecover.run` → `corecover.set_cover` → …) aggregated
//!   by path across the whole process.
//! * **Reporters** ([`render_report`], [`json_report`],
//!   [`report_to_stderr`], [`write_json_report`], [`prometheus_text`]) —
//!   a human-readable phase tree, a machine-readable JSON dump, and a
//!   Prometheus text exposition of everything.
//! * **Traces** ([`trace::Trace`], [`trace_event!`]) — request-scoped
//!   span trees with typed events, stitched across worker threads by
//!   span id; export as a Chrome trace or a rendered tree. Snapshots of
//!   the registry ([`metrics_snapshot`]) subtract to isolate one
//!   request's share of the global counters.
//!
//! Collection is **off by default**: every instrumentation point first
//! checks one relaxed atomic bool, so instrumented hot loops cost ~one
//! predictable branch when stats are off. Turn collection on with
//! [`set_enabled`]`(true)` (the `viewplan` CLI does this for `--stats`).
//!
//! ```
//! use viewplan_obs as obs;
//! obs::set_enabled(true);
//! {
//!     let _run = obs::span("demo.run");
//!     let _phase = obs::span("demo.phase");
//!     obs::counter!("demo.widgets").add(3);
//! }
//! assert_eq!(obs::counter_value("demo.widgets"), 3);
//! assert!(obs::render_report().contains("demo.phase"));
//! obs::reset();
//! obs::set_enabled(false);
//! ```

pub mod budget;
mod json;
mod metrics;
mod prometheus;
mod report;
mod span;
pub mod trace;

pub use budget::{Budget, BudgetSpec, Completeness, Fault, FaultPoint, Meter, Phase};
pub use json::{parse as parse_json, Json};
pub use metrics::{
    counter_value, counters, histogram_snapshot, histograms, metrics_snapshot, Counter, Histogram,
    HistogramSnapshot, MetricsSnapshot,
};
pub use prometheus::{prometheus_text, write_prometheus};
pub use report::{json_report, render_report, report_to_stderr, write_json_report};
pub use span::{attach_path, current_path, span, span_tree, Span, SpanNode, SpanPathGuard};
pub use trace::{validate_chrome_trace, AttrValue, Trace, TraceContext, TraceGuard, TraceNode};

use viewplan_sync::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns metric collection on or off process-wide. Off (the default)
/// makes every instrumentation point a single relaxed load + branch.
pub fn set_enabled(enabled: bool) {
    // ordering: standalone switch; collection points tolerate observing
    // it late, and counters carry their own synchronization.
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether collection is currently on.
#[inline(always)]
pub fn enabled() -> bool {
    // ordering: standalone switch read on the hot path; stale reads only
    // delay when collection turns on/off.
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes all counters and histograms and clears the span tree.
/// Registered metric names stay registered. Spans still open across a
/// `reset` will record into the fresh tree when they close.
pub fn reset() {
    metrics::reset();
    span::reset();
}

/// The registry and the enabled switch are process-global while `cargo
/// test` is concurrent, so every test in this crate that toggles
/// [`set_enabled`] or calls [`reset`] serializes on this lock.
#[cfg(test)]
pub(crate) mod testlock {
    use viewplan_sync::{Mutex, MutexGuard};

    static GUARD: Mutex<()> = Mutex::new(());

    pub(crate) fn serial() -> MutexGuard<'static, ()> {
        GUARD.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testlock::serial;

    #[test]
    fn disabled_counters_stay_zero() {
        let _g = serial();
        set_enabled(false);
        reset();
        counter!("test.disabled").add(7);
        assert_eq!(counter_value("test.disabled"), 0);
    }

    #[test]
    fn enabled_counters_accumulate() {
        let _g = serial();
        set_enabled(true);
        reset();
        counter!("test.enabled").add(2);
        counter!("test.enabled").incr();
        assert_eq!(counter_value("test.enabled"), 3);
        set_enabled(false);
    }

    #[test]
    fn span_tree_nests_by_runtime_stack() {
        let _g = serial();
        set_enabled(true);
        reset();
        {
            let _outer = span("test.outer");
            let _inner = span("test.inner");
        }
        {
            let _outer = span("test.outer");
        }
        let tree = span_tree();
        let outer = tree
            .iter()
            .find(|n| n.name == "test.outer")
            .expect("outer span recorded");
        assert_eq!(outer.count, 2);
        assert_eq!(outer.children.len(), 1);
        assert_eq!(outer.children[0].name, "test.inner");
        assert_eq!(outer.children[0].count, 1);
        set_enabled(false);
    }

    #[test]
    fn reset_clears_everything() {
        let _g = serial();
        set_enabled(true);
        reset();
        counter!("test.reset").incr();
        histogram!("test.reset_hist").record(5);
        {
            let _s = span("test.reset_span");
        }
        reset();
        assert_eq!(counter_value("test.reset"), 0);
        assert_eq!(histogram_snapshot("test.reset_hist").unwrap().count, 0);
        assert!(span_tree().iter().all(|n| n.name != "test.reset_span"));
        set_enabled(false);
    }

    #[test]
    fn json_report_parses_and_contains_metrics() {
        let _g = serial();
        set_enabled(true);
        reset();
        counter!("test.json_counter").add(11);
        histogram!("test.json_hist").record(100);
        {
            let _s = span("test.json_span");
        }
        let report = json_report();
        let parsed = parse_json(&report).expect("report is valid JSON");
        let counters = parsed.get("counters").expect("counters key");
        assert_eq!(
            counters.get("test.json_counter").and_then(Json::as_u64),
            Some(11)
        );
        let hists = parsed.get("histograms").expect("histograms key");
        assert_eq!(
            hists
                .get("test.json_hist")
                .and_then(|h| h.get("count"))
                .and_then(Json::as_u64),
            Some(1)
        );
        let spans = parsed.get("spans").expect("spans key");
        let names: Vec<&str> = spans
            .as_array()
            .unwrap()
            .iter()
            .filter_map(|s| s.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"test.json_span"));
        set_enabled(false);
    }

    #[test]
    fn render_report_shows_phase_tree_and_counters() {
        let _g = serial();
        set_enabled(true);
        reset();
        {
            let _outer = span("test.render_outer");
            let _inner = span("test.render_inner");
        }
        counter!("test.render_counter").add(4);
        let report = render_report();
        let outer_at = report.find("test.render_outer").unwrap();
        let inner_at = report.find("test.render_inner").unwrap();
        assert!(outer_at < inner_at, "children render under parents");
        assert!(report.contains("test.render_counter"));
        assert!(report.contains('4'));
        set_enabled(false);
    }
}
