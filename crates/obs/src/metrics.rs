//! The metrics registry: named atomic counters and log₂ histograms.
//!
//! Instrumentation sites declare a `static` handle via [`counter!`] /
//! [`histogram!`]; the handle resolves to a process-global atomic the
//! first time it is touched while collection is enabled, so two call
//! sites naming the same metric share one cell. Resolution is cached in
//! a `OnceLock`, keeping the steady-state cost of a bump at one enabled
//! check plus one relaxed `fetch_add`.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Buckets per histogram: one per power of two of a `u64`, plus bucket 0
/// for the value 0.
pub const HISTOGRAM_BUCKETS: usize = 65;

struct Registry {
    counters: Vec<(&'static str, &'static AtomicU64)>,
    histograms: Vec<(&'static str, &'static HistogramCell)>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            counters: Vec::new(),
            histograms: Vec::new(),
        })
    })
}

fn register_counter(name: &'static str) -> &'static AtomicU64 {
    let mut reg = registry().lock();
    if let Some((_, cell)) = reg.counters.iter().find(|(n, _)| *n == name) {
        return cell;
    }
    let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
    reg.counters.push((name, cell));
    cell
}

fn register_histogram(name: &'static str) -> &'static HistogramCell {
    let mut reg = registry().lock();
    if let Some((_, cell)) = reg.histograms.iter().find(|(n, _)| *n == name) {
        return cell;
    }
    let cell: &'static HistogramCell = Box::leak(Box::new(HistogramCell::new()));
    reg.histograms.push((name, cell));
    cell
}

/// A named process-global counter. Declare via [`counter!`].
pub struct Counter {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

impl Counter {
    /// Const-constructs an unresolved handle (use the [`counter!`] macro
    /// rather than calling this directly).
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &'static AtomicU64 {
        self.cell.get_or_init(|| register_counter(self.name))
    }

    /// Adds `n` when collection is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.cell().fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 when collection is enabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 if never resolved).
    pub fn get(&self) -> u64 {
        self.cell().load(Ordering::Relaxed)
    }
}

/// Declares a `static` [`Counter`] for this call site and returns a
/// reference to it: `obs::counter!("corecover.view_tuples").add(n)`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static COUNTER: $crate::Counter = $crate::Counter::new($name);
        &COUNTER
    }};
}

/// The shared storage behind a [`Histogram`].
pub struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCell {
    fn new() -> HistogramCell {
        HistogramCell {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        let bucket = match value {
            0 => 0,
            v => 64 - v.leading_zeros() as usize,
        };
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| (bucket_bounds(i), n))
                })
                .map(|((lo, hi), n)| BucketCount { lo, hi, count: n })
                .collect(),
        }
    }
}

/// The inclusive value range of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        1 => (1, 1),
        64 => (1u64 << 63, u64::MAX),
        _ => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

/// One nonempty bucket of a [`HistogramSnapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BucketCount {
    /// Smallest value landing in this bucket.
    pub lo: u64,
    /// Largest value landing in this bucket.
    pub hi: u64,
    /// Observations in `[lo, hi]`.
    pub count: u64,
}

/// A point-in-time copy of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Nonempty log₂ buckets in increasing value order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A named process-global log₂ histogram. Declare via [`histogram!`].
pub struct Histogram {
    name: &'static str,
    cell: OnceLock<&'static HistogramCell>,
}

impl Histogram {
    /// Const-constructs an unresolved handle (use the [`histogram!`]
    /// macro rather than calling this directly).
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &'static HistogramCell {
        self.cell.get_or_init(|| register_histogram(self.name))
    }

    /// Records one observation when collection is enabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if crate::enabled() {
            self.cell().record(value);
        }
    }

    /// Current snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cell().snapshot()
    }
}

/// Declares a `static` [`Histogram`] for this call site and returns a
/// reference to it: `obs::histogram!("engine.join_output_rows").record(n)`.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HISTOGRAM: $crate::Histogram = $crate::Histogram::new($name);
        &HISTOGRAM
    }};
}

/// All registered counters and their values, sorted by name.
pub fn counters() -> Vec<(&'static str, u64)> {
    let reg = registry().lock();
    let mut out: Vec<(&'static str, u64)> = reg
        .counters
        .iter()
        .map(|(name, cell)| (*name, cell.load(Ordering::Relaxed)))
        .collect();
    out.sort_unstable_by_key(|(name, _)| *name);
    out
}

/// The value of one counter by name (0 if not registered).
pub fn counter_value(name: &str) -> u64 {
    let reg = registry().lock();
    reg.counters
        .iter()
        .find(|(n, _)| *n == name)
        .map_or(0, |(_, cell)| cell.load(Ordering::Relaxed))
}

/// All registered histograms and their snapshots, sorted by name.
pub fn histograms() -> Vec<(&'static str, HistogramSnapshot)> {
    let reg = registry().lock();
    let mut out: Vec<(&'static str, HistogramSnapshot)> = reg
        .histograms
        .iter()
        .map(|(name, cell)| (*name, cell.snapshot()))
        .collect();
    out.sort_unstable_by_key(|(name, _)| *name);
    out
}

/// One histogram's snapshot by name (`None` if not registered).
pub fn histogram_snapshot(name: &str) -> Option<HistogramSnapshot> {
    let reg = registry().lock();
    reg.histograms
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, cell)| cell.snapshot())
}

/// Zeroes every registered counter and histogram.
pub(crate) fn reset() {
    let reg = registry().lock();
    for (_, cell) in &reg.counters {
        cell.store(0, Ordering::Relaxed);
    }
    for (_, cell) in &reg.histograms {
        cell.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_u64() {
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(3), (4, 7));
        assert_eq!(bucket_bounds(64), (1u64 << 63, u64::MAX));
        // Every boundary is contiguous with its predecessor.
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_bounds(i).0, bucket_bounds(i - 1).1 + 1);
        }
    }

    #[test]
    fn histogram_cell_places_values_in_log_buckets() {
        let cell = HistogramCell::new();
        for v in [0, 1, 2, 3, 4, 1000, u64::MAX] {
            cell.record(v);
        }
        let snap = cell.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, u64::MAX);
        for b in &snap.buckets {
            assert!(b.lo <= b.hi);
        }
        assert_eq!(snap.buckets.iter().map(|b| b.count).sum::<u64>(), 7);
        // 2 and 3 share the [2, 3] bucket.
        assert!(snap.buckets.iter().any(|b| b.lo == 2 && b.count == 2));
    }

    #[test]
    fn mean_of_empty_histogram_is_zero() {
        assert_eq!(HistogramSnapshot::default().mean(), 0.0);
    }
}
