//! The metrics registry: named atomic counters and log₂ histograms.
//!
//! Instrumentation sites declare a `static` handle via [`counter!`] /
//! [`histogram!`]; the handle resolves to a process-global atomic the
//! first time it is touched while collection is enabled, so two call
//! sites naming the same metric share one cell. Resolution is cached in
//! a `OnceLock`, keeping the steady-state cost of a bump at one enabled
//! check plus one relaxed `fetch_add`.

use std::sync::OnceLock;
use viewplan_sync::{AtomicU64, Mutex, Ordering};

/// Buckets per histogram: one per power of two of a `u64`, plus bucket 0
/// for the value 0.
pub const HISTOGRAM_BUCKETS: usize = 65;

struct Registry {
    counters: Vec<(&'static str, &'static AtomicU64)>,
    histograms: Vec<(&'static str, &'static HistogramCell)>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            counters: Vec::new(),
            histograms: Vec::new(),
        })
    })
}

fn register_counter(name: &'static str) -> &'static AtomicU64 {
    let mut reg = registry().lock();
    if let Some((_, cell)) = reg.counters.iter().find(|(n, _)| *n == name) {
        return cell;
    }
    let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
    reg.counters.push((name, cell));
    cell
}

fn register_histogram(name: &'static str) -> &'static HistogramCell {
    let mut reg = registry().lock();
    if let Some((_, cell)) = reg.histograms.iter().find(|(n, _)| *n == name) {
        return cell;
    }
    let cell: &'static HistogramCell = Box::leak(Box::new(HistogramCell::new()));
    reg.histograms.push((name, cell));
    cell
}

/// A named process-global counter. Declare via [`counter!`].
pub struct Counter {
    name: &'static str,
    cell: OnceLock<&'static AtomicU64>,
}

impl Counter {
    /// Const-constructs an unresolved handle (use the [`counter!`] macro
    /// rather than calling this directly).
    pub const fn new(name: &'static str) -> Counter {
        Counter {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &'static AtomicU64 {
        self.cell.get_or_init(|| register_counter(self.name))
    }

    /// Adds `n` when collection is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            // ordering: monotone counter bump; readers only need totals,
            // never cross-counter ordering.
            self.cell().fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 when collection is enabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 if never resolved).
    pub fn get(&self) -> u64 {
        // ordering: monotone counter read; staleness only undercounts.
        self.cell().load(Ordering::Relaxed)
    }
}

/// Declares a `static` [`Counter`] for this call site and returns a
/// reference to it: `obs::counter!("corecover.view_tuples").add(n)`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static COUNTER: $crate::Counter = $crate::Counter::new($name);
        &COUNTER
    }};
}

/// The shared storage behind a [`Histogram`].
pub struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCell {
    fn new() -> HistogramCell {
        HistogramCell {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        let bucket = match value {
            0 => 0,
            v => 64 - v.leading_zeros() as usize,
        };
        // ordering: independent monotone statistics; snapshots tolerate
        // observing a partially-applied record (count/sum/bucket may skew
        // by in-flight observations, never corrupt).
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn reset(&self) {
        // ordering: callers quiesce recorders before reset (testlock /
        // request boundaries); no ordering needed between the zeroing
        // stores themselves.
        for b in &self.buckets {
            // ordering: quiesced zeroing store; see the note above.
            b.store(0, Ordering::Relaxed);
        }
        // ordering: quiesced zeroing stores; see the note above.
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        // ordering: statistics are each monotone, so a concurrent record
        // can skew a snapshot by at most the in-flight observation;
        // delta_since documents this tolerance.
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            // ordering: see the snapshot-wide note above.
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                // ordering: see the snapshot-wide note above.
                self.min.load(Ordering::Relaxed)
            },
            // ordering: see the snapshot-wide note above.
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    // ordering: see the snapshot-wide note above.
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then(|| (bucket_bounds(i), n))
                })
                .map(|((lo, hi), n)| BucketCount { lo, hi, count: n })
                .collect(),
        }
    }
}

/// The inclusive value range of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        1 => (1, 1),
        64 => (1u64 << 63, u64::MAX),
        _ => (1u64 << (i - 1), (1u64 << i) - 1),
    }
}

/// One nonempty bucket of a [`HistogramSnapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BucketCount {
    /// Smallest value landing in this bucket.
    pub lo: u64,
    /// Largest value landing in this bucket.
    pub hi: u64,
    /// Observations in `[lo, hi]`.
    pub count: u64,
}

/// A point-in-time copy of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Nonempty log₂ buckets in increasing value order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`q` ∈ [0, 1], clamped) estimated from the log₂
    /// buckets by linear interpolation.
    ///
    /// The fractional rank `q·(count−1)` locates the bucket holding the
    /// exact quantile; within it, ranks interpolate linearly between the
    /// bucket's bounds (tightened to the recorded `min`/`max` in the
    /// first/last nonempty bucket). **Error bound:** the true quantile
    /// lies in the same bucket, so the estimate is off by at most one
    /// bucket width — under 2× relative error for any log₂ bucket, and
    /// exact when the bucket holds a single distinct value (e.g. a
    /// constant distribution). Returns 0.0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * (self.count - 1) as f64;
        let last = self.buckets.len() - 1;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let first_rank = seen as f64;
            seen += b.count;
            let last_rank = (seen - 1) as f64;
            if rank <= last_rank {
                let lo = if i == 0 { self.min.max(b.lo) } else { b.lo } as f64;
                let hi = if i == last { self.max.min(b.hi) } else { b.hi } as f64;
                if b.count == 1 {
                    // A lone observation is exactly `max` in the last
                    // nonempty bucket and exactly `min` in the first;
                    // anywhere else, split the difference.
                    return if i == last {
                        hi
                    } else if i == 0 {
                        lo
                    } else {
                        (lo + hi) / 2.0
                    };
                }
                let frac = (rank - first_rank) / (b.count - 1) as f64;
                return lo + frac * (hi - lo);
            }
        }
        self.max as f64
    }

    /// The change since `earlier` (an older snapshot of the same
    /// histogram): `count`, `sum`, and per-bucket counts subtract
    /// (saturating, so a reset between snapshots degrades to the later
    /// values instead of wrapping); `min`/`max` are **not** differential
    /// — they carry the later snapshot's whole-history bounds, which
    /// still bound every observation of the interval.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let earlier_count = |lo: u64| {
            earlier
                .buckets
                .iter()
                .find(|b| b.lo == lo)
                .map_or(0, |b| b.count)
        };
        HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .filter_map(|b| {
                    let count = b.count.saturating_sub(earlier_count(b.lo));
                    (count > 0).then_some(BucketCount { count, ..*b })
                })
                .collect(),
        }
    }
}

/// A point-in-time copy of the whole registry (every counter and
/// histogram, sorted by name). Two snapshots subtract via
/// [`MetricsSnapshot::delta_since`] to isolate one request's (or one
/// bench pass's) share of the process-global metrics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Histogram snapshots, sorted by name.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

/// Snapshots every registered counter and histogram.
pub fn metrics_snapshot() -> MetricsSnapshot {
    MetricsSnapshot {
        counters: counters(),
        histograms: histograms(),
    }
}

impl MetricsSnapshot {
    /// One counter's value in this snapshot (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// One histogram's snapshot (`None` if absent).
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| s)
    }

    /// The per-name change since `earlier`: counters subtract
    /// (saturating), histograms via
    /// [`HistogramSnapshot::delta_since`]. Names registered only after
    /// `earlier` was taken count from zero. Because counters are
    /// monotone while collection stays on, the delta of two snapshots
    /// equals exactly the events recorded between them — including
    /// events from concurrent threads, which land in one snapshot or
    /// the other but never vanish.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|&(name, v)| (name, v.saturating_sub(earlier.counter(name))))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, s)| {
                    let base = earlier.histogram(name).cloned().unwrap_or_default();
                    (*name, s.delta_since(&base))
                })
                .collect(),
        }
    }
}

/// A named process-global log₂ histogram. Declare via [`histogram!`].
pub struct Histogram {
    name: &'static str,
    cell: OnceLock<&'static HistogramCell>,
}

impl Histogram {
    /// Const-constructs an unresolved handle (use the [`histogram!`]
    /// macro rather than calling this directly).
    pub const fn new(name: &'static str) -> Histogram {
        Histogram {
            name,
            cell: OnceLock::new(),
        }
    }

    fn cell(&self) -> &'static HistogramCell {
        self.cell.get_or_init(|| register_histogram(self.name))
    }

    /// Records one observation when collection is enabled.
    #[inline]
    pub fn record(&self, value: u64) {
        if crate::enabled() {
            self.cell().record(value);
        }
    }

    /// Current snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cell().snapshot()
    }
}

/// Declares a `static` [`Histogram`] for this call site and returns a
/// reference to it: `obs::histogram!("engine.join_output_rows").record(n)`.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HISTOGRAM: $crate::Histogram = $crate::Histogram::new($name);
        &HISTOGRAM
    }};
}

/// All registered counters and their values, sorted by name.
pub fn counters() -> Vec<(&'static str, u64)> {
    let reg = registry().lock();
    let mut out: Vec<(&'static str, u64)> = reg
        .counters
        .iter()
        // ordering: monotone counter reads; staleness only undercounts.
        .map(|(name, cell)| (*name, cell.load(Ordering::Relaxed)))
        .collect();
    out.sort_unstable_by_key(|(name, _)| *name);
    out
}

/// The value of one counter by name (0 if not registered).
pub fn counter_value(name: &str) -> u64 {
    let reg = registry().lock();
    reg.counters
        .iter()
        .find(|(n, _)| *n == name)
        // ordering: monotone counter read; staleness only undercounts.
        .map_or(0, |(_, cell)| cell.load(Ordering::Relaxed))
}

/// All registered histograms and their snapshots, sorted by name.
pub fn histograms() -> Vec<(&'static str, HistogramSnapshot)> {
    let reg = registry().lock();
    let mut out: Vec<(&'static str, HistogramSnapshot)> = reg
        .histograms
        .iter()
        .map(|(name, cell)| (*name, cell.snapshot()))
        .collect();
    out.sort_unstable_by_key(|(name, _)| *name);
    out
}

/// One histogram's snapshot by name (`None` if not registered).
pub fn histogram_snapshot(name: &str) -> Option<HistogramSnapshot> {
    let reg = registry().lock();
    reg.histograms
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, cell)| cell.snapshot())
}

/// Zeroes every registered counter and histogram.
pub(crate) fn reset() {
    let reg = registry().lock();
    for (_, cell) in &reg.counters {
        // ordering: callers quiesce recorders before reset.
        cell.store(0, Ordering::Relaxed);
    }
    for (_, cell) in &reg.histograms {
        cell.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_u64() {
        assert_eq!(bucket_bounds(0), (0, 0));
        assert_eq!(bucket_bounds(1), (1, 1));
        assert_eq!(bucket_bounds(2), (2, 3));
        assert_eq!(bucket_bounds(3), (4, 7));
        assert_eq!(bucket_bounds(64), (1u64 << 63, u64::MAX));
        // Every boundary is contiguous with its predecessor.
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_bounds(i).0, bucket_bounds(i - 1).1 + 1);
        }
    }

    #[test]
    fn histogram_cell_places_values_in_log_buckets() {
        let cell = HistogramCell::new();
        for v in [0, 1, 2, 3, 4, 1000, u64::MAX] {
            cell.record(v);
        }
        let snap = cell.snapshot();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, u64::MAX);
        for b in &snap.buckets {
            assert!(b.lo <= b.hi);
        }
        assert_eq!(snap.buckets.iter().map(|b| b.count).sum::<u64>(), 7);
        // 2 and 3 share the [2, 3] bucket.
        assert!(snap.buckets.iter().any(|b| b.lo == 2 && b.count == 2));
    }

    #[test]
    fn mean_of_empty_histogram_is_zero() {
        assert_eq!(HistogramSnapshot::default().mean(), 0.0);
    }

    /// The inclusive bounds of the log₂ bucket `value` lands in.
    fn bucket_of(value: u64) -> (u64, u64) {
        let i = match value {
            0 => 0,
            v => 64 - v.leading_zeros() as usize,
        };
        bucket_bounds(i)
    }

    #[test]
    fn percentile_is_exact_on_a_constant_distribution() {
        let cell = HistogramCell::new();
        for _ in 0..10 {
            cell.record(100);
        }
        let snap = cell.snapshot();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(snap.percentile(q), 100.0, "q={q}");
        }
    }

    #[test]
    fn percentile_of_uniform_distribution_stays_within_one_bucket() {
        // 1..=1000 uniformly: the exact q-quantile is 1 + q·999.
        let cell = HistogramCell::new();
        for v in 1..=1000u64 {
            cell.record(v);
        }
        let snap = cell.snapshot();
        for q in [0.5, 0.95, 0.99] {
            let exact = 1.0 + q * 999.0;
            let est = snap.percentile(q);
            let (lo, hi) = bucket_of(exact.round() as u64);
            assert!(
                est >= lo as f64 && est <= hi as f64,
                "q={q}: estimate {est} outside the exact quantile's bucket [{lo}, {hi}]"
            );
            // The documented bound: off by at most one bucket width.
            assert!(
                (est - exact).abs() <= (hi - lo + 1) as f64,
                "q={q}: |{est} - {exact}| exceeds the bucket width"
            );
        }
    }

    #[test]
    fn percentile_is_monotone_in_q_and_clamped_to_min_max() {
        let cell = HistogramCell::new();
        for v in [3u64, 17, 17, 90, 1200, 1200, 1200, 40_000] {
            cell.record(v);
        }
        let snap = cell.snapshot();
        let (p50, p95, p99) = (
            snap.percentile(0.5),
            snap.percentile(0.95),
            snap.percentile(0.99),
        );
        assert!(p50 <= p95 && p95 <= p99);
        assert_eq!(snap.percentile(0.0), snap.min as f64);
        assert_eq!(snap.percentile(1.0), snap.max as f64);
        assert_eq!(snap.percentile(-3.0), snap.min as f64, "q clamps to [0,1]");
        assert_eq!(HistogramSnapshot::default().percentile(0.5), 0.0);
    }

    #[test]
    fn histogram_delta_subtracts_counts_and_buckets() {
        let cell = HistogramCell::new();
        cell.record(5);
        cell.record(100);
        let a = cell.snapshot();
        cell.record(5);
        cell.record(7);
        let b = cell.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 12);
        // The [4,7] bucket gained two observations; [64,127] gained none
        // and is dropped from the delta.
        assert_eq!(d.buckets.len(), 1);
        assert_eq!(d.buckets[0].count, 2);
        assert_eq!(d.buckets[0].lo, 4);
    }
}
