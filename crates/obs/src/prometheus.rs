//! Prometheus text exposition of the metrics registry.
//!
//! [`prometheus_text`] renders every registered counter and histogram in
//! the [Prometheus text format] so `serve`/`batch --metrics-out PATH`
//! can drop a scrape-ready snapshot next to their results. Metric names
//! mangle to the Prometheus grammar (`serve.cache_hits` →
//! `viewplan_serve_cache_hits_total`); histograms expose the log₂
//! buckets cumulatively with each bucket's inclusive upper bound as the
//! `le` label, plus the conventional `_sum`/`_count` series.
//!
//! [Prometheus text format]:
//! https://prometheus.io/docs/instrumenting/exposition_formats/

use crate::metrics::{counters, histograms};
use std::fmt::Write as _;

/// `serve.cache_hits` → `serve_cache_hits`: every character outside
/// `[a-zA-Z0-9_]` becomes `_` (the Prometheus name grammar, minus the
/// colon reserved for recording rules).
fn mangle(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Renders the whole registry in the Prometheus text exposition format.
///
/// Every *registered* counter is rendered, zeros included. Registration
/// is lazy (a name only exists once some site touched it), so a
/// zero-valued counter means "this code path ran and the outcome never
/// happened" — exactly the series a scraper needs to compute ratios
/// like hit rates. Skipping zeros would also make the set of exposed
/// series depend on scheduling: paired outcome counters (cache hits vs
/// misses) register together on every probe, but which of them is
/// nonzero after a short run is a race. Histograms that never recorded
/// an observation are still omitted — an empty histogram has no
/// buckets, and no site touches one without recording.
pub fn prometheus_text() -> String {
    let mut out = String::new();
    for (name, value) in counters() {
        let m = mangle(name);
        let _ = writeln!(out, "# HELP viewplan_{m}_total {name}");
        let _ = writeln!(out, "# TYPE viewplan_{m}_total counter");
        let _ = writeln!(out, "viewplan_{m}_total {value}");
    }
    for (name, snap) in histograms() {
        if snap.count == 0 {
            continue;
        }
        let m = mangle(name);
        let _ = writeln!(out, "# HELP viewplan_{m} {name}");
        let _ = writeln!(out, "# TYPE viewplan_{m} histogram");
        let mut cumulative = 0u64;
        for b in &snap.buckets {
            cumulative += b.count;
            let _ = writeln!(out, "viewplan_{m}_bucket{{le=\"{}\"}} {cumulative}", b.hi);
        }
        let _ = writeln!(out, "viewplan_{m}_bucket{{le=\"+Inf\"}} {}", snap.count);
        let _ = writeln!(out, "viewplan_{m}_sum {}", snap.sum);
        let _ = writeln!(out, "viewplan_{m}_count {}", snap.count);
    }
    out
}

/// Writes [`prometheus_text`] to `path`.
pub fn write_prometheus(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, prometheus_text())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mangling_replaces_dots_and_dashes() {
        let _serial = crate::testlock::serial();
        assert_eq!(mangle("serve.cache_hits"), "serve_cache_hits");
        assert_eq!(mangle("a-b.c"), "a_b_c");
    }

    #[test]
    fn exposition_has_counter_and_histogram_series() {
        let _serial = crate::testlock::serial();
        // The registry is process-global: record under unique names and
        // assert only on them.
        crate::set_enabled(true);
        crate::counter!("promtest.requests").add(3);
        crate::histogram!("promtest.latency_us").record(5);
        crate::histogram!("promtest.latency_us").record(300);
        let text = prometheus_text();
        assert!(text.contains("# TYPE viewplan_promtest_requests_total counter"));
        assert!(text.contains("viewplan_promtest_requests_total 3"));
        assert!(text.contains("# TYPE viewplan_promtest_latency_us histogram"));
        assert!(text.contains("viewplan_promtest_latency_us_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("viewplan_promtest_latency_us_sum 305"));
        assert!(text.contains("viewplan_promtest_latency_us_count 2"));
        // Bucket series are cumulative: the last finite bucket holds
        // every observation at or below its bound.
        assert!(text.contains("viewplan_promtest_latency_us_bucket{le=\"511\"} 2"));
        crate::set_enabled(false);
    }

    #[test]
    fn zero_valued_counters_are_exposed_once_registered() {
        let _serial = crate::testlock::serial();
        crate::set_enabled(true);
        // A paired-outcome funnel registers both names on every probe;
        // the one that never fired must still appear (value 0), or the
        // set of exposed series would depend on which outcome a short
        // run happened to see first.
        crate::counter!("promtest.zero_outcome").add(0);
        let text = prometheus_text();
        assert!(text.contains("# TYPE viewplan_promtest_zero_outcome_total counter"));
        assert!(text.contains("viewplan_promtest_zero_outcome_total 0"));
        crate::set_enabled(false);
    }
}
