//! Reporters: a human-readable phase tree and a JSON dump.

use crate::json::write_escaped;
use crate::metrics::{counters, histograms};
use crate::span::{span_tree, SpanNode};
use std::fmt::Write as _;
use std::time::Duration;

pub(crate) fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos}ns")
    } else if nanos < 10_000_000 {
        format!("{:.1}µs", nanos as f64 / 1e3)
    } else if nanos < 10_000_000_000 {
        format!("{:.1}ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2}s", nanos as f64 / 1e9)
    }
}

fn render_span(out: &mut String, node: &SpanNode, depth: usize) {
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{}", node.name);
    let _ = writeln!(
        out,
        "  {label:<44} {:>10}  ×{}",
        format_duration(node.total),
        node.count
    );
    for child in &node.children {
        render_span(out, child, depth + 1);
    }
}

/// Renders the full report: phase tree, then counters, then histograms.
/// Metrics that never fired are omitted.
pub fn render_report() -> String {
    let mut out = String::new();
    let tree = span_tree();
    out.push_str("── phases ─────────────────────────────────────────────\n");
    if tree.is_empty() {
        out.push_str("  (no spans recorded — was collection enabled?)\n");
    }
    for node in &tree {
        render_span(&mut out, node, 0);
    }
    let live: Vec<(&str, u64)> = counters().into_iter().filter(|&(_, v)| v > 0).collect();
    if !live.is_empty() {
        out.push_str("── counters ───────────────────────────────────────────\n");
        for (name, value) in live {
            let _ = writeln!(out, "  {name:<44} {value:>12}");
        }
    }
    let live_hists: Vec<_> = histograms()
        .into_iter()
        .filter(|(_, s)| s.count > 0)
        .collect();
    if !live_hists.is_empty() {
        out.push_str("── histograms ─────────────────────────────────────────\n");
        for (name, snap) in live_hists {
            let _ = writeln!(
                out,
                "  {name:<44} n={} mean={:.1} min={} max={}",
                snap.count,
                snap.mean(),
                snap.min,
                snap.max
            );
        }
    }
    out
}

/// Prints [`render_report`] to stderr (stderr so piped stdout stays
/// machine-readable).
pub fn report_to_stderr() {
    eprint!("{}", render_report());
}

fn span_to_json(out: &mut String, node: &SpanNode) {
    out.push_str("{\"name\":");
    write_escaped(out, node.name);
    let _ = write!(
        out,
        ",\"count\":{},\"total_ns\":{},\"children\":[",
        node.count,
        node.total.as_nanos()
    );
    for (i, child) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        span_to_json(out, child);
    }
    out.push_str("]}");
}

/// The full report as a JSON document:
///
/// ```json
/// {
///   "counters": {"corecover.view_tuples": 4, ...},
///   "histograms": {"engine.join_output_rows": {"count": ..., "sum": ...,
///       "min": ..., "max": ..., "buckets": [{"lo":.., "hi":.., "count":..}]}},
///   "spans": [{"name": "...", "count": 1, "total_ns": 12345,
///              "children": [...]}]
/// }
/// ```
pub fn json_report() -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, value)) in counters().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(&mut out, name);
        let _ = write!(out, ":{value}");
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, snap)) in histograms().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_escaped(&mut out, name);
        let _ = write!(
            out,
            ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            snap.count, snap.sum, snap.min, snap.max
        );
        for (j, b) in snap.buckets.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"lo\":{},\"hi\":{},\"count\":{}}}",
                b.lo, b.hi, b.count
            );
        }
        out.push_str("]}");
    }
    out.push_str("},\"spans\":[");
    for (i, node) in span_tree().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        span_to_json(&mut out, node);
    }
    out.push_str("]}");
    out
}

/// Writes [`json_report`] to `path`.
pub fn write_json_report(path: &std::path::Path) -> std::io::Result<()> {
    std::fs::write(path, json_report())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting_picks_sensible_units() {
        assert_eq!(format_duration(Duration::from_nanos(900)), "900ns");
        assert_eq!(format_duration(Duration::from_micros(250)), "250.0µs");
        assert_eq!(format_duration(Duration::from_millis(35)), "35.0ms");
        assert_eq!(format_duration(Duration::from_secs(12)), "12.00s");
    }

    #[test]
    fn empty_report_mentions_missing_spans() {
        // Collection may be off and the tree empty in a fresh process;
        // render_report must still produce the banner.
        let report = render_report();
        assert!(report.contains("phases"));
    }

    #[test]
    fn json_report_is_always_valid_json() {
        let report = json_report();
        let parsed = crate::parse_json(&report).expect("valid JSON");
        assert!(parsed.get("counters").is_some());
        assert!(parsed.get("histograms").is_some());
        assert!(parsed.get("spans").is_some());
    }
}
