//! RAII span timers building an aggregated phase tree.
//!
//! `obs::span("corecover.set_cover")` starts a timer whose parent is
//! whatever span is currently open on the same thread; dropping the
//! guard records (count, total wall-clock) under the full path. The
//! aggregate is process-global, so repeated runs of the same phase fold
//! into one node — exactly what a per-phase profile of a 40-query sweep
//! wants.
//!
//! **Buffering.** Closed spans are staged in a per-thread buffer and
//! merged into the global aggregate only when the thread's span stack
//! empties (or its [`attach_path`] guard detaches). A worker pool at
//! `--threads 8` therefore contributes each worker's timings in one
//! atomic merge instead of interleaving per-span lock acquisitions into
//! the shared map mid-flight — the phase tree a reporter reads is
//! identical to the serial run's, and the hot path never touches the
//! global lock. When a [`crate::trace::Trace`] is installed, each span
//! additionally records start/end into the trace's per-thread buffers.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::OnceLock;
use std::time::{Duration, Instant};
use viewplan_sync::Mutex;

#[derive(Clone, Copy, Default)]
struct SpanStat {
    count: u64,
    total: Duration,
}

/// Aggregated stats keyed by full span path (root first).
fn aggregate() -> &'static Mutex<BTreeMap<Vec<&'static str>, SpanStat>> {
    static AGGREGATE: OnceLock<Mutex<BTreeMap<Vec<&'static str>, SpanStat>>> = OnceLock::new();
    AGGREGATE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

thread_local! {
    /// The stack of open span names on this thread.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// Closed spans not yet merged into the global aggregate. Flushed
    /// when the thread's stack empties or its attach guard drops.
    static PENDING: RefCell<BTreeMap<Vec<&'static str>, SpanStat>> =
        const { RefCell::new(BTreeMap::new()) };
}

/// Merges this thread's staged span stats into the global aggregate
/// under a single lock acquisition.
fn flush_pending() {
    PENDING.with(|pending| {
        let mut pending = pending.borrow_mut();
        if pending.is_empty() {
            return;
        }
        let mut agg = aggregate().lock();
        for (path, stat) in std::mem::take(&mut *pending) {
            let entry = agg.entry(path).or_default();
            entry.count += stat.count;
            entry.total += stat.total;
        }
    });
}

/// An open phase timer; records on drop. Returned by [`span`].
pub struct Span {
    start: Option<Instant>,
    traced: bool,
}

/// Opens a span named `name`, nested under the innermost span already
/// open on this thread. When collection is disabled this is a no-op
/// costing one relaxed load.
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span {
            start: None,
            traced: false,
        };
    }
    STACK.with(|stack| stack.borrow_mut().push(name));
    let traced = crate::trace::on_span_start(name);
    Span {
        start: Some(Instant::now()),
        traced,
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let elapsed = start.elapsed();
        if self.traced {
            crate::trace::on_span_end();
        }
        let (path, stack_empty) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = stack.clone();
            stack.pop();
            (path, stack.is_empty())
        });
        PENDING.with(|pending| {
            let mut pending = pending.borrow_mut();
            let stat = pending.entry(path).or_default();
            stat.count += 1;
            stat.total += elapsed;
        });
        if stack_empty {
            flush_pending();
        }
    }
}

/// The full path of spans currently open on this thread (root first).
/// A worker pool captures this on the spawning thread and re-attaches it
/// on each worker via [`attach_path`], so spans opened inside parallel
/// workers aggregate under the same phase-tree node as in a serial run.
pub fn current_path() -> Vec<&'static str> {
    STACK.with(|stack| stack.borrow().clone())
}

/// A guard that keeps a borrowed span path attached to this thread;
/// detaches on drop. Returned by [`attach_path`].
pub struct SpanPathGuard {
    depth: usize,
}

/// Pushes `path` onto this thread's span stack without starting a timer,
/// so subsequent [`span`] calls on this thread nest under it. Used to
/// carry the spawning thread's phase context onto pool workers. A no-op
/// when collection is disabled.
pub fn attach_path(path: &[&'static str]) -> SpanPathGuard {
    if !crate::enabled() || path.is_empty() {
        return SpanPathGuard { depth: 0 };
    }
    STACK.with(|stack| stack.borrow_mut().extend_from_slice(path));
    SpanPathGuard { depth: path.len() }
}

impl Drop for SpanPathGuard {
    fn drop(&mut self) {
        if self.depth == 0 {
            return;
        }
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let keep = stack.len().saturating_sub(self.depth);
            stack.truncate(keep);
        });
        // A worker's spans close with the attached prefix still on its
        // stack, so they stay staged until here: one merge per worker,
        // not one lock acquisition per span.
        flush_pending();
    }
}

/// One node of the aggregated phase tree.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Phase name (the last path component).
    pub name: &'static str,
    /// Number of times this phase ran.
    pub count: u64,
    /// Total wall-clock across all runs.
    pub total: Duration,
    /// Phases that ran nested inside this one.
    pub children: Vec<SpanNode>,
}

/// The aggregated phase tree (roots in first-recorded path order, which
/// for `BTreeMap` keys means lexicographic by path).
pub fn span_tree() -> Vec<SpanNode> {
    let agg = aggregate().lock();
    let mut roots: Vec<SpanNode> = Vec::new();
    for (path, stat) in agg.iter() {
        insert(&mut roots, path, *stat);
    }
    roots
}

fn insert(nodes: &mut Vec<SpanNode>, path: &[&'static str], stat: SpanStat) {
    let (head, rest) = match path {
        [] => return,
        [head, rest @ ..] => (*head, rest),
    };
    let idx = match nodes.iter().position(|n| n.name == head) {
        Some(idx) => idx,
        None => {
            nodes.push(SpanNode {
                name: head,
                count: 0,
                total: Duration::ZERO,
                children: Vec::new(),
            });
            nodes.len() - 1
        }
    };
    let node = &mut nodes[idx];
    if rest.is_empty() {
        node.count += stat.count;
        node.total += stat.total;
    } else {
        insert(&mut node.children, rest, stat);
    }
}

/// Clears the aggregated tree (open spans record into the fresh tree
/// when they close).
pub(crate) fn reset() {
    aggregate().lock().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Aggregation is global; these tests only assert on their own
    // uniquely named spans so they stay robust under parallel testing.

    #[test]
    fn disabled_span_records_nothing() {
        let _serial = crate::testlock::serial();
        crate::set_enabled(false);
        {
            let _s = span("span_test.disabled_unique");
        }
        assert!(span_tree()
            .iter()
            .all(|n| n.name != "span_test.disabled_unique"));
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let _serial = crate::testlock::serial();
        crate::set_enabled(true);
        {
            let _a = span("span_test.sib_a");
        }
        {
            let _b = span("span_test.sib_b");
        }
        let tree = span_tree();
        let a = tree.iter().find(|n| n.name == "span_test.sib_a").unwrap();
        assert!(a.children.is_empty());
        assert!(tree.iter().any(|n| n.name == "span_test.sib_b"));
        crate::set_enabled(false);
    }

    #[test]
    fn attached_path_nests_worker_spans_under_the_parent() {
        let _serial = crate::testlock::serial();
        crate::set_enabled(true);
        let path = {
            let _outer = span("span_test.attach_outer");
            current_path()
        };
        assert_eq!(path.last(), Some(&"span_test.attach_outer"));
        // Simulate a pool worker: fresh thread, parent path re-attached.
        let handle = std::thread::spawn(move || {
            let _attach = attach_path(&path);
            let _inner = span("span_test.attach_inner");
        });
        handle.join().unwrap();
        let tree = span_tree();
        let outer = tree
            .iter()
            .find(|n| n.name == "span_test.attach_outer")
            .unwrap();
        assert!(outer
            .children
            .iter()
            .any(|c| c.name == "span_test.attach_inner"));
        crate::set_enabled(false);
    }

    #[test]
    fn attach_path_detaches_on_drop() {
        let _serial = crate::testlock::serial();
        crate::set_enabled(true);
        {
            let _g = attach_path(&["span_test.detach_a", "span_test.detach_b"]);
            assert_eq!(current_path(), ["span_test.detach_a", "span_test.detach_b"]);
        }
        assert!(current_path().is_empty());
        crate::set_enabled(false);
    }

    #[test]
    fn count_accumulates_across_runs() {
        let _serial = crate::testlock::serial();
        crate::set_enabled(true);
        for _ in 0..3 {
            let _s = span("span_test.counted");
        }
        let tree = span_tree();
        let node = tree.iter().find(|n| n.name == "span_test.counted").unwrap();
        assert!(node.count >= 3);
        crate::set_enabled(false);
    }
}
