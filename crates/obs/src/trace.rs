//! Request-scoped tracing: per-request span trees with typed events.
//!
//! The metrics registry ([`crate::metrics`]) answers "how much, over the
//! whole process"; this module answers "what happened, in *this*
//! request, in what order, on which thread". A [`Trace`] is installed
//! for the dynamic extent of one request (or one CLI command) and every
//! [`crate::span`] opened while it is installed additionally records a
//! start/end pair into the trace; instrumentation sites attach typed
//! events ([`trace_event!`]) — a view pruned, an MCD rejected, a cover
//! verified, a cache hit — to whatever span is open.
//!
//! **Threading.** Each thread that participates in a trace appends to
//! its own buffer (one `Vec` behind an uncontended mutex), so worker
//! pools never serialize on a shared log. Spans carry process-unique ids
//! and a parent id; [`Trace::tree`] stitches the per-thread buffers back
//! into one tree by span id. A worker pool carries the spawning thread's
//! trace context to each worker via [`current_context`] / [`attach`]
//! (mirroring [`crate::attach_path`] for the aggregate phase tree), so
//! worker-side spans hang under the request span that spawned them.
//!
//! **Exports.** [`Trace::chrome_json`] renders the buffers as a Chrome
//! trace-event JSON array (load in `chrome://tracing` or Perfetto);
//! [`Trace::render_tree`] renders a human-readable tree with durations
//! and inline events (`viewplan ... --trace`).
//!
//! Tracing obeys the global [`crate::enabled`] switch: with collection
//! off, an installed trace records nothing.

use crate::json::Json;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;
use viewplan_sync::{AtomicU64, Mutex, Ordering};

/// One typed attribute value on a trace event.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// An unsigned measurement (counts, sizes, indices).
    U64(u64),
    /// A label (view name, rejection reason).
    Str(String),
    /// A yes/no outcome.
    Bool(bool),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::U64(n) => write!(f, "{n}"),
            AttrValue::Str(s) => write!(f, "{s}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<u64> for AttrValue {
    fn from(n: u64) -> AttrValue {
        AttrValue::U64(n)
    }
}

impl From<usize> for AttrValue {
    fn from(n: usize) -> AttrValue {
        AttrValue::U64(n as u64)
    }
}

impl From<bool> for AttrValue {
    fn from(b: bool) -> AttrValue {
        AttrValue::Bool(b)
    }
}

impl From<String> for AttrValue {
    fn from(s: String) -> AttrValue {
        AttrValue::Str(s)
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> AttrValue {
        AttrValue::Str(s.to_string())
    }
}

/// Event attributes: name/value pairs with typed values.
pub type Attrs = Vec<(&'static str, AttrValue)>;

/// One record in a per-thread buffer. Span ids are process-unique within
/// a trace; `parent` 0 means "root of the trace".
enum Record {
    Start {
        id: u64,
        parent: u64,
        name: &'static str,
        t_ns: u64,
    },
    End {
        id: u64,
        t_ns: u64,
    },
    Event {
        span: u64,
        name: &'static str,
        t_ns: u64,
        attrs: Attrs,
    },
}

/// One thread's append-only record buffer. The mutex is uncontended in
/// steady state (only its owning thread appends; readers come after the
/// request completes), so a push costs an uncontended lock + `Vec` push.
struct Buffer {
    tid: u64,
    records: Mutex<Vec<Record>>,
}

struct Inner {
    epoch: Instant,
    next_span: AtomicU64,
    next_tid: AtomicU64,
    buffers: Mutex<Vec<Arc<Buffer>>>,
}

/// A request-scoped trace. Cheap to clone (an `Arc`); install it on the
/// request thread with [`install`] and carry it to workers with
/// [`current_context`] / [`attach`].
#[derive(Clone)]
pub struct Trace {
    inner: Arc<Inner>,
}

impl Default for Trace {
    fn default() -> Trace {
        Trace::new()
    }
}

impl Trace {
    /// An empty trace; timestamps are relative to this call.
    pub fn new() -> Trace {
        Trace {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                next_span: AtomicU64::new(1),
                next_tid: AtomicU64::new(0),
                buffers: Mutex::new(Vec::new()),
            }),
        }
    }

    fn now_ns(&self) -> u64 {
        self.inner.epoch.elapsed().as_nanos() as u64
    }

    fn register_thread(&self) -> Arc<Buffer> {
        let buffer = Arc::new(Buffer {
            // ordering: unique-id allocation; only atomicity matters.
            tid: self.inner.next_tid.fetch_add(1, Ordering::Relaxed),
            records: Mutex::new(Vec::new()),
        });
        self.inner.buffers.lock().push(buffer.clone());
        buffer
    }

    fn same_trace(&self, other: &Trace) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Number of spans recorded so far (started, whether or not ended).
    // lock-order: buffer registry, then each per-thread record buffer
    // inside it — the order every reader uses; writers only ever hold
    // their own record buffer, so the nesting cannot invert.
    pub fn span_count(&self) -> usize {
        self.inner
            .buffers
            .lock()
            .iter()
            .map(|b| {
                b.records
                    .lock()
                    .iter()
                    .filter(|r| matches!(r, Record::Start { .. }))
                    .count()
            })
            .sum()
    }

    /// Number of events recorded so far.
    // lock-order: buffer registry, then each record buffer; see span_count.
    pub fn event_count(&self) -> usize {
        self.inner
            .buffers
            .lock()
            .iter()
            .map(|b| {
                b.records
                    .lock()
                    .iter()
                    .filter(|r| matches!(r, Record::Event { .. }))
                    .count()
            })
            .sum()
    }

    /// Stitches the per-thread buffers into one span tree by span id.
    /// Children are ordered by start time (ties by id, i.e. allocation
    /// order); a span whose `End` was never recorded (trace exported
    /// while it was still open) reports a zero duration.
    // lock-order: buffer registry, then each record buffer; see span_count.
    pub fn tree(&self) -> Vec<TraceNode> {
        let mut spans: BTreeMap<u64, TraceNode> = BTreeMap::new();
        let mut parents: BTreeMap<u64, u64> = BTreeMap::new();
        let buffers = self.inner.buffers.lock();
        for buffer in buffers.iter() {
            for record in buffer.records.lock().iter() {
                match record {
                    Record::Start {
                        id,
                        parent,
                        name,
                        t_ns,
                    } => {
                        parents.insert(*id, *parent);
                        spans.insert(
                            *id,
                            TraceNode {
                                id: *id,
                                name,
                                tid: buffer.tid,
                                start_ns: *t_ns,
                                end_ns: *t_ns,
                                events: Vec::new(),
                                children: Vec::new(),
                            },
                        );
                    }
                    Record::End { id, t_ns } => {
                        if let Some(node) = spans.get_mut(id) {
                            node.end_ns = *t_ns;
                        }
                    }
                    Record::Event {
                        span,
                        name,
                        t_ns,
                        attrs,
                    } => {
                        if let Some(node) = spans.get_mut(span) {
                            node.events.push(TraceEvent {
                                name,
                                t_ns: *t_ns,
                                attrs: attrs.clone(),
                            });
                        }
                    }
                }
            }
        }
        drop(buffers);
        // Events within one span can arrive from several worker buffers;
        // order them by time for a stable-by-construction rendering.
        for node in spans.values_mut() {
            node.events.sort_by_key(|e| e.t_ns);
        }
        // Attach children to parents, deepest ids first so that a child
        // is fully built (its own children attached) before it moves
        // into its parent.
        let mut roots: Vec<TraceNode> = Vec::new();
        let ids: Vec<u64> = spans.keys().rev().copied().collect();
        for id in ids {
            let Some(node) = spans.remove(&id) else {
                continue;
            };
            let parent = parents.get(&id).copied().unwrap_or(0);
            match spans.get_mut(&parent) {
                Some(p) => p.children.push(node),
                None => roots.push(node),
            }
        }
        roots.sort_by_key(|n| (n.start_ns, n.id));
        for root in &mut roots {
            sort_children(root);
        }
        roots
    }

    /// The trace as a Chrome trace-event JSON array (the `chrome://
    /// tracing` / Perfetto interchange format): `B`/`E` duration pairs
    /// per span and `i` instant events, timestamps in microseconds,
    /// one `tid` per participating thread.
    // lock-order: buffer registry, then each record buffer; see span_count.
    pub fn chrome_json(&self) -> String {
        let mut entries: Vec<Json> = Vec::new();
        let buffers = self.inner.buffers.lock();
        for buffer in buffers.iter() {
            for record in buffer.records.lock().iter() {
                let mut obj: BTreeMap<String, Json> = BTreeMap::new();
                obj.insert("pid".into(), Json::num(1));
                obj.insert("tid".into(), Json::num(buffer.tid));
                match record {
                    Record::Start { id, name, t_ns, .. } => {
                        obj.insert("ph".into(), Json::str("B"));
                        obj.insert("name".into(), Json::str(*name));
                        obj.insert("ts".into(), Json::Number(*t_ns as f64 / 1e3));
                        let mut args = BTreeMap::new();
                        args.insert("span".to_string(), Json::num(*id));
                        obj.insert("args".into(), Json::Object(args));
                    }
                    Record::End { t_ns, .. } => {
                        obj.insert("ph".into(), Json::str("E"));
                        obj.insert("ts".into(), Json::Number(*t_ns as f64 / 1e3));
                    }
                    Record::Event {
                        span,
                        name,
                        t_ns,
                        attrs,
                    } => {
                        obj.insert("ph".into(), Json::str("i"));
                        obj.insert("s".into(), Json::str("t"));
                        obj.insert("name".into(), Json::str(*name));
                        obj.insert("ts".into(), Json::Number(*t_ns as f64 / 1e3));
                        let mut args = BTreeMap::new();
                        args.insert("span".to_string(), Json::num(*span));
                        for (key, value) in attrs {
                            args.insert(
                                (*key).to_string(),
                                match value {
                                    AttrValue::U64(n) => Json::num(*n),
                                    AttrValue::Str(s) => Json::str(s.clone()),
                                    AttrValue::Bool(b) => Json::Bool(*b),
                                },
                            );
                        }
                        obj.insert("args".into(), Json::Object(args));
                    }
                }
                entries.push(Json::Object(obj));
            }
        }
        drop(buffers);
        Json::Array(entries).render()
    }

    /// A human-readable rendering of [`Trace::tree`]: one line per span
    /// with duration and thread, events indented beneath the span they
    /// belong to.
    pub fn render_tree(&self) -> String {
        let roots = self.tree();
        let mut out = format!(
            "trace: {} span(s), {} event(s)\n",
            self.span_count(),
            self.event_count()
        );
        for root in &roots {
            render_node(&mut out, root, 0);
        }
        out
    }
}

/// Checks that `doc` is a structurally well-formed Chrome trace-event
/// array as [`Trace::chrome_json`] emits it: every entry carries
/// `pid`/`tid`/`ts` and a phase in {`B`, `E`, `i`}, `B`/`E` pairs
/// balance per thread (never dipping below zero), and `B`/`i` entries
/// are named. Used by `viewplan bench --validate-trace` and CI to keep
/// the export loadable by `chrome://tracing` / Perfetto.
pub fn validate_chrome_trace(doc: &Json) -> Result<(), String> {
    let entries = doc
        .as_array()
        .ok_or_else(|| "top level must be a JSON array".to_string())?;
    let mut depth: BTreeMap<u64, i64> = BTreeMap::new();
    for (i, entry) in entries.iter().enumerate() {
        let field = |name: &str| {
            entry
                .get(name)
                .ok_or_else(|| format!("entry {i}: missing {name:?}"))
        };
        field("pid")?
            .as_u64()
            .ok_or_else(|| format!("entry {i}: pid must be an integer"))?;
        let tid = field("tid")?
            .as_u64()
            .ok_or_else(|| format!("entry {i}: tid must be an integer"))?;
        field("ts")?
            .as_f64()
            .ok_or_else(|| format!("entry {i}: ts must be a number"))?;
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("entry {i}: ph must be a string"))?;
        match ph {
            "B" | "i" => {
                let name = field("name")?
                    .as_str()
                    .ok_or_else(|| format!("entry {i}: name must be a string"))?;
                if name.is_empty() {
                    return Err(format!("entry {i}: empty event name"));
                }
                if ph == "B" {
                    *depth.entry(tid).or_insert(0) += 1;
                }
            }
            "E" => {
                let d = depth.entry(tid).or_insert(0);
                *d -= 1;
                if *d < 0 {
                    return Err(format!("entry {i}: E without a matching B on tid {tid}"));
                }
            }
            other => return Err(format!("entry {i}: unknown phase {other:?}")),
        }
    }
    for (tid, d) in depth {
        if d != 0 {
            return Err(format!("tid {tid}: {d} span(s) left open (unbalanced B/E)"));
        }
    }
    Ok(())
}

fn sort_children(node: &mut TraceNode) {
    node.children.sort_by_key(|n| (n.start_ns, n.id));
    for child in &mut node.children {
        sort_children(child);
    }
}

fn render_node(out: &mut String, node: &TraceNode, depth: usize) {
    let indent = "  ".repeat(depth);
    let duration = std::time::Duration::from_nanos(node.end_ns.saturating_sub(node.start_ns));
    out.push_str(&format!(
        "{indent}{} {} [t{}]\n",
        node.name,
        crate::report::format_duration(duration),
        node.tid
    ));
    for event in &node.events {
        let attrs: Vec<String> = event
            .attrs
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        out.push_str(&format!(
            "{indent}  · {}{}{}\n",
            event.name,
            if attrs.is_empty() { "" } else { " " },
            attrs.join(" ")
        ));
    }
    for child in &node.children {
        render_node(out, child, depth + 1);
    }
}

/// One stitched span of a [`Trace::tree`].
#[derive(Clone, Debug)]
pub struct TraceNode {
    /// Process-unique span id within the trace.
    pub id: u64,
    /// Span name (same names as the aggregate phase tree).
    pub name: &'static str,
    /// The trace-local id of the thread that opened the span.
    pub tid: u64,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the trace epoch (= `start_ns` if the span
    /// never closed before export).
    pub end_ns: u64,
    /// Events recorded while this span was the innermost open one, in
    /// time order.
    pub events: Vec<TraceEvent>,
    /// Spans opened inside this one, in start order.
    pub children: Vec<TraceNode>,
}

/// One typed event attached to a span.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Event name (registered at exactly one site; see the xtask lint).
    pub name: &'static str,
    /// Nanoseconds since the trace epoch.
    pub t_ns: u64,
    /// Typed attributes.
    pub attrs: Attrs,
}

// ---------------------------------------------------------------------
// Thread-local installation.

struct ThreadState {
    trace: Trace,
    buffer: Arc<Buffer>,
    /// Parent for spans opened at this thread's top level: the span id
    /// carried over from the spawning thread (0 on the install thread).
    base_parent: u64,
    /// Ids of trace spans currently open on this thread.
    stack: Vec<u64>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ThreadState>> = const { RefCell::new(None) };
}

/// Detaches (and restores any shadowed trace) on drop. Returned by
/// [`install`] and [`attach`].
pub struct TraceGuard {
    previous: Option<ThreadState>,
    installed: bool,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if !self.installed {
            return;
        }
        ACTIVE.with(|active| {
            *active.borrow_mut() = self.previous.take();
        });
    }
}

/// Installs `trace` on this thread for the guard's lifetime: every
/// subsequent [`crate::span`] and [`trace_event!`] on this thread
/// records into it (while collection is [enabled](crate::enabled)).
pub fn install(trace: &Trace) -> TraceGuard {
    let state = ThreadState {
        trace: trace.clone(),
        buffer: trace.register_thread(),
        base_parent: 0,
        stack: Vec::new(),
    };
    let previous = ACTIVE.with(|active| active.borrow_mut().replace(state));
    TraceGuard {
        previous,
        installed: true,
    }
}

/// A trace plus the span to parent new work under — what a worker pool
/// captures on the spawning thread and re-attaches on each worker.
#[derive(Clone)]
pub struct TraceContext {
    trace: Trace,
    parent: u64,
}

/// The context to carry to a pool worker: the installed trace and the
/// innermost open span. `None` when no trace is installed (workers then
/// skip tracing entirely).
pub fn current_context() -> Option<TraceContext> {
    ACTIVE.with(|active| {
        active.borrow().as_ref().map(|state| TraceContext {
            trace: state.trace.clone(),
            parent: state.stack.last().copied().unwrap_or(state.base_parent),
        })
    })
}

/// Attaches a context captured by [`current_context`] to this thread:
/// the worker gets its **own buffer** in the same trace, and its spans
/// parent under the spawning thread's span. A no-op guard for `None`.
/// Re-attaching a context on the thread it came from (serial fallback
/// of a worker pool) keeps using that thread's existing buffer.
pub fn attach(context: Option<&TraceContext>) -> TraceGuard {
    let Some(context) = context else {
        return TraceGuard {
            previous: None,
            installed: false,
        };
    };
    let reuse = ACTIVE.with(|active| {
        active
            .borrow()
            .as_ref()
            .is_some_and(|state| state.trace.same_trace(&context.trace))
    });
    if reuse {
        // Same trace already active here (serial path): spans already
        // nest under the live stack; do not re-root them.
        return TraceGuard {
            previous: None,
            installed: false,
        };
    }
    let state = ThreadState {
        trace: context.trace.clone(),
        buffer: context.trace.register_thread(),
        base_parent: context.parent,
        stack: Vec::new(),
    };
    let previous = ACTIVE.with(|active| active.borrow_mut().replace(state));
    TraceGuard {
        previous,
        installed: true,
    }
}

/// Whether a trace is installed on this thread (regardless of the
/// global enabled switch).
pub fn active() -> bool {
    ACTIVE.with(|active| active.borrow().is_some())
}

/// Called by [`crate::span`] when it opens: records a `Start` into the
/// installed trace. Returns `true` iff a record was written, so the
/// span's drop knows whether to write the matching `End`.
pub(crate) fn on_span_start(name: &'static str) -> bool {
    ACTIVE.with(|active| {
        let mut active = active.borrow_mut();
        let Some(state) = active.as_mut() else {
            return false;
        };
        // ordering: unique-id allocation; only atomicity matters.
        let id = state.trace.inner.next_span.fetch_add(1, Ordering::Relaxed);
        let parent = state.stack.last().copied().unwrap_or(state.base_parent);
        let t_ns = state.trace.now_ns();
        state.buffer.records.lock().push(Record::Start {
            id,
            parent,
            name,
            t_ns,
        });
        state.stack.push(id);
        true
    })
}

/// Called by a traced span's drop: records the `End` for the innermost
/// open trace span on this thread.
pub(crate) fn on_span_end() {
    ACTIVE.with(|active| {
        let mut active = active.borrow_mut();
        let Some(state) = active.as_mut() else {
            return;
        };
        let Some(id) = state.stack.pop() else {
            return;
        };
        let t_ns = state.trace.now_ns();
        state.buffer.records.lock().push(Record::End { id, t_ns });
    });
}

/// Records a typed event on the innermost open span of this thread's
/// installed trace. `attrs` is only evaluated when a trace is installed
/// and collection is enabled, so call sites stay allocation-free in the
/// untraced hot path. Use [`trace_event!`] rather than calling directly:
/// the macro is what the repo lint ratchets for single-site names.
pub fn record_event(name: &'static str, attrs: impl FnOnce() -> Attrs) {
    if !crate::enabled() {
        return;
    }
    ACTIVE.with(|active| {
        let mut active = active.borrow_mut();
        let Some(state) = active.as_mut() else {
            return;
        };
        let span = state.stack.last().copied().unwrap_or(state.base_parent);
        let t_ns = state.trace.now_ns();
        let attrs = attrs();
        state.buffer.records.lock().push(Record::Event {
            span,
            name,
            t_ns,
            attrs,
        });
    });
}

/// Records a typed event on the current trace span:
/// `obs::trace_event!("analyze.view_pruned", ("view", name))`.
/// Attribute values take anything `Into<AttrValue>` (u64, usize, bool,
/// &str, String) and are evaluated lazily — only when a trace is
/// installed. Each event name must appear at exactly one non-test call
/// site (enforced by `cargo run -p xtask`).
#[macro_export]
macro_rules! trace_event {
    ($name:expr) => {
        $crate::trace::record_event($name, std::vec::Vec::new)
    };
    ($name:expr, $(($key:expr, $value:expr)),+ $(,)?) => {
        $crate::trace::record_event($name, || {
            vec![$(($key, $crate::trace::AttrValue::from($value))),+]
        })
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // Collection is process-global; tests here only toggle it on and
    // rely on thread-local trace installation for isolation.

    #[test]
    fn spans_and_events_stitch_into_a_tree() {
        let _serial = crate::testlock::serial();
        crate::set_enabled(true);
        let trace = Trace::new();
        {
            let _g = install(&trace);
            let _outer = crate::span("trace_test.outer");
            crate::trace_event!("trace_test.marker", ("n", AttrValue::U64(3)));
            {
                let _inner = crate::span("trace_test.inner");
            }
        }
        let roots = trace.tree();
        assert_eq!(roots.len(), 1);
        let outer = &roots[0];
        assert_eq!(outer.name, "trace_test.outer");
        assert_eq!(outer.children.len(), 1);
        assert_eq!(outer.children[0].name, "trace_test.inner");
        assert_eq!(outer.events.len(), 1);
        assert_eq!(outer.events[0].attrs, vec![("n", AttrValue::U64(3))]);
        assert!(outer.end_ns >= outer.children[0].end_ns);
        crate::set_enabled(false);
    }

    #[test]
    fn worker_threads_get_their_own_buffers_and_parent() {
        let _serial = crate::testlock::serial();
        crate::set_enabled(true);
        let trace = Trace::new();
        {
            let _g = install(&trace);
            let _outer = crate::span("trace_test.pool_outer");
            let context = current_context();
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let context = context.clone();
                    std::thread::spawn(move || {
                        let _attach = attach(context.as_ref());
                        let _s = crate::span("trace_test.pool_item");
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        }
        let roots = trace.tree();
        assert_eq!(roots.len(), 1, "worker spans nest under the spawner");
        let outer = &roots[0];
        assert_eq!(outer.children.len(), 4);
        let tids: std::collections::BTreeSet<u64> = outer.children.iter().map(|c| c.tid).collect();
        assert_eq!(tids.len(), 4, "each worker wrote its own buffer");
        assert!(!tids.contains(&outer.tid));
        crate::set_enabled(false);
    }

    #[test]
    fn attach_on_the_installing_thread_is_idempotent() {
        let _serial = crate::testlock::serial();
        crate::set_enabled(true);
        let trace = Trace::new();
        {
            let _g = install(&trace);
            let _outer = crate::span("trace_test.serial_outer");
            let context = current_context();
            let _re = attach(context.as_ref());
            let _inner = crate::span("trace_test.serial_inner");
        }
        let roots = trace.tree();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].children.len(), 1);
        crate::set_enabled(false);
    }

    #[test]
    fn disabled_collection_records_nothing() {
        let _serial = crate::testlock::serial();
        crate::set_enabled(false);
        let trace = Trace::new();
        {
            let _g = install(&trace);
            let _s = crate::span("trace_test.disabled");
            crate::trace_event!("trace_test.disabled_event");
        }
        assert_eq!(trace.span_count(), 0);
        assert_eq!(trace.event_count(), 0);
    }

    #[test]
    fn without_a_trace_nothing_is_recorded_anywhere() {
        let _serial = crate::testlock::serial();
        crate::set_enabled(true);
        {
            let _s = crate::span("trace_test.untraced");
            crate::trace_event!("trace_test.untraced_event");
        }
        // No trace installed: the only assertion is "no panic"; the
        // aggregate phase tree still sees the span.
        crate::set_enabled(false);
    }

    #[test]
    fn chrome_json_is_valid_and_balanced() {
        let _serial = crate::testlock::serial();
        crate::set_enabled(true);
        let trace = Trace::new();
        {
            let _g = install(&trace);
            let _a = crate::span("trace_test.chrome_a");
            crate::trace_event!(
                "trace_test.chrome_marker",
                ("why", AttrValue::Str("demo".into())),
                ("ok", AttrValue::Bool(true)),
            );
        }
        let doc = trace.chrome_json();
        let parsed = crate::json::parse(&doc).expect("chrome trace is valid JSON");
        validate_chrome_trace(&parsed).expect("chrome trace passes its own validator");
        let entries = parsed.as_array().expect("top level is an array");
        let phase = |e: &Json| e.get("ph").and_then(Json::as_str).unwrap().to_string();
        let begins = entries.iter().filter(|e| phase(e) == "B").count();
        let ends = entries.iter().filter(|e| phase(e) == "E").count();
        let instants = entries.iter().filter(|e| phase(e) == "i").count();
        assert_eq!(begins, 1);
        assert_eq!(ends, 1);
        assert_eq!(instants, 1);
        let marker = entries.iter().find(|e| phase(e) == "i").unwrap();
        assert_eq!(
            marker
                .get("args")
                .and_then(|a| a.get("why"))
                .and_then(Json::as_str),
            Some("demo")
        );
        crate::set_enabled(false);
    }

    #[test]
    fn chrome_validator_rejects_malformed_traces() {
        let check = |text: &str| validate_chrome_trace(&crate::json::parse(text).expect("json"));
        assert!(check("{}").unwrap_err().contains("array"));
        // E before any B on its thread.
        assert!(check(r#"[{"pid": 1, "tid": 0, "ts": 1.0, "ph": "E"}]"#)
            .unwrap_err()
            .contains("without a matching B"));
        // B left open at the end.
        assert!(
            check(r#"[{"pid": 1, "tid": 0, "ts": 1.0, "ph": "B", "name": "s"}]"#)
                .unwrap_err()
                .contains("left open")
        );
        // Unknown phase letter.
        assert!(
            check(r#"[{"pid": 1, "tid": 0, "ts": 1.0, "ph": "X", "name": "s"}]"#)
                .unwrap_err()
                .contains("unknown phase")
        );
        // Balanced pair with a named instant passes.
        assert!(check(
            r#"[{"pid": 1, "tid": 0, "ts": 1.0, "ph": "B", "name": "s"},
                {"pid": 1, "tid": 0, "ts": 2.0, "ph": "i", "name": "e", "s": "t"},
                {"pid": 1, "tid": 0, "ts": 3.0, "ph": "E"}]"#
        )
        .is_ok());
    }

    #[test]
    fn render_tree_shows_spans_and_events() {
        let _serial = crate::testlock::serial();
        crate::set_enabled(true);
        let trace = Trace::new();
        {
            let _g = install(&trace);
            let _a = crate::span("trace_test.render_root");
            crate::trace_event!("trace_test.render_event", ("k", AttrValue::U64(7)));
        }
        let text = trace.render_tree();
        assert!(text.contains("trace_test.render_root"));
        assert!(text.contains("· trace_test.render_event k=7"));
        crate::set_enabled(false);
    }
}
