//! Property tests of snapshot/delta semantics: the difference of two
//! [`viewplan_obs::MetricsSnapshot`]s taken around a burst of recording
//! equals exactly the events recorded in between — **including events
//! from concurrent threads**, which is the contract the serving layer's
//! per-pass attribution (and `viewplan bench`'s warm/cold split) relies
//! on.
//!
//! Both properties join all recording threads before the second
//! snapshot, so every generated event falls inside the window; the
//! registry being process-global atomics, nothing can be lost or
//! double-counted, and the delta must be *exact* (not approximate).

use proptest::prelude::*;
use viewplan_obs as obs;

/// The log₂ bucket lower bound `value` lands in (mirrors the registry's
/// bucketing: bucket 0 holds only 0, bucket k holds [2^(k-1), 2^k - 1]).
fn bucket_lo(value: u64) -> u64 {
    match value {
        0 => 0,
        v => {
            let i = 64 - v.leading_zeros() as usize;
            if i == 1 {
                1
            } else {
                1u64 << (i - 1)
            }
        }
    }
}

/// Splits `values` into `threads` chunks and records each chunk on its
/// own thread via `record`, joining all before returning.
fn record_concurrently(values: &[u64], threads: usize, record: fn(u64)) {
    let chunk = values.len().div_ceil(threads).max(1);
    std::thread::scope(|scope| {
        for part in values.chunks(chunk) {
            let part = part.to_vec();
            scope.spawn(move || {
                for &v in &part {
                    record(v);
                }
            });
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Counter deltas equal the sum of increments recorded between the
    /// snapshots, no matter how the increments interleave across
    /// threads.
    #[test]
    fn counter_delta_is_exact_under_concurrent_recording(
        adds in proptest::collection::vec(0u64..1_000, 1..64),
        threads in 1usize..5,
    ) {
        obs::set_enabled(true);
        let before = obs::metrics_snapshot();
        record_concurrently(&adds, threads, |v| {
            obs::counter!("proptest.delta.counter").add(v)
        });
        let delta = obs::metrics_snapshot().delta_since(&before);
        prop_assert_eq!(
            delta.counter("proptest.delta.counter"),
            adds.iter().sum::<u64>()
        );
    }

    /// Histogram deltas carry the exact count, sum, and per-bucket
    /// distribution of the observations recorded between the snapshots.
    #[test]
    fn histogram_delta_is_exact_under_concurrent_recording(
        values in proptest::collection::vec(0u64..1_000_000, 1..64),
        threads in 1usize..5,
    ) {
        obs::set_enabled(true);
        let before = obs::metrics_snapshot();
        record_concurrently(&values, threads, |v| {
            obs::histogram!("proptest.delta.histogram").record(v)
        });
        let after = obs::metrics_snapshot();
        let delta = after.delta_since(&before);
        let h = delta
            .histogram("proptest.delta.histogram")
            .expect("recorded histogram must appear in the delta");
        prop_assert_eq!(h.count, values.len() as u64);
        prop_assert_eq!(h.sum, values.iter().sum::<u64>());
        // Per-bucket: the delta's distribution matches a recount of the
        // generated values, bucket by bucket.
        let mut expected: std::collections::BTreeMap<u64, u64> =
            std::collections::BTreeMap::new();
        for &v in &values {
            *expected.entry(bucket_lo(v)).or_default() += 1;
        }
        let got: std::collections::BTreeMap<u64, u64> =
            h.buckets.iter().map(|b| (b.lo, b.count)).collect();
        prop_assert_eq!(got, expected);
        // min/max are whole-history bounds (documented), so they bound
        // every observation of the interval.
        for &v in &values {
            prop_assert!(h.min <= v && v <= h.max);
        }
    }
}
