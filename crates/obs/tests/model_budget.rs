//! Interleaving regression test for budget-meter propagation, pinned by
//! the `viewplan-sync` model checker: two workers ticking meters against
//! one shared budget while a third thread cancels it.
//!
//! Invariants, across every explored schedule:
//!
//! * every worker's search is abandoned exactly once (node cap or
//!   cancellation — never zero, never double-counted);
//! * `deadline_hits + node_hits` equals the abandoned total once the
//!   workers join (each abandonment lands in exactly one cause bucket);
//! * mid-flight, an observer never sees the cause counters exceed the
//!   per-phase abandoned tallies (`note_abandoned` bumps the phase tally
//!   *before* the cause counter — the ordering this test pins);
//! * a worker that starts after the cancel classifies as a deadline
//!   abandonment, so cancellation is never silently swallowed.

use viewplan_obs::budget::{install, Budget, BudgetSpec, Meter, Phase};
use viewplan_sync::model;

/// Warm global lazy state (obs counter registration inside
/// `note_abandoned`) so model executions are a pure function of the
/// schedule.
fn warm() -> Budget {
    let budget = BudgetSpec::new().node_budget(2).build();
    {
        let _g = install(budget.clone());
        let mut m = Meter::start(Phase::Hom);
        while m.tick() {}
        budget.cancel();
        let mut n = Meter::start(Phase::Cover);
        n.tick();
    }
    budget
}

#[test]
fn meter_propagation_counts_every_abandonment_exactly_once() {
    let _ = warm();
    // Four model threads: bound 1 keeps the exhaustive DFS around a
    // thousand schedules (~1s); bound 2 explores ~88k and is left to
    // the seeded random pass below.
    let report = model::check(&model::Config::dfs(1), || {
        let budget = BudgetSpec::new().node_budget(2).build();
        let workers: Vec<_> = [Phase::Hom, Phase::Cover]
            .into_iter()
            .map(|phase| {
                let budget = budget.clone();
                model::spawn(move || {
                    // Ambient state is thread-local: each model thread
                    // installs the shared budget exactly as a pool
                    // worker does.
                    let _g = install(budget.clone());
                    let mut meter = Meter::start(phase);
                    let mut ticks = 0u64;
                    while meter.tick() {
                        ticks += 1;
                    }
                    assert!(meter.exhausted(), "refused tick marks exhaustion");
                    assert!(ticks <= 2, "node cap is never overrun");
                    ticks
                })
            })
            .collect();
        let canceller = {
            let budget = budget.clone();
            model::spawn(move || budget.cancel())
        };
        let observer = {
            let budget = budget.clone();
            model::spawn(move || {
                // The cause counters trail the per-phase tallies:
                // note_abandoned bumps `abandoned` first, so this sum
                // can never be observed exceeding that one.
                for _ in 0..2 {
                    let hits = budget.hits();
                    let abandoned = budget.abandoned(Phase::Hom)
                        + budget.abandoned(Phase::Cover)
                        + budget.abandoned(Phase::Plan);
                    assert!(
                        hits.deadline_hits + hits.node_hits <= abandoned,
                        "cause counters ({} + {}) overtook the abandoned total ({abandoned})",
                        hits.deadline_hits,
                        hits.node_hits,
                    );
                }
            })
        };
        for worker in workers {
            worker.join();
        }
        canceller.join();
        observer.join();
        assert!(budget.cancelled(), "cancel latched");
        let hits = budget.hits();
        assert_eq!(
            budget.abandoned(Phase::Hom) + budget.abandoned(Phase::Cover),
            2,
            "each worker abandons exactly once"
        );
        assert_eq!(
            hits.deadline_hits + hits.node_hits,
            2,
            "every abandonment lands in exactly one cause bucket"
        );
    });
    eprintln!("model budget_meters: {}", report.summary());
    assert!(report.ok(), "{}", report.summary());
    assert!(report.exhaustive, "DFS must exhaust the bounded schedules");
}

/// A seeded random slice of the higher-preemption schedules the DFS
/// bound above excludes.
#[test]
fn meter_propagation_random_walk() {
    let _ = warm();
    let report = model::check(&model::Config::random(300, 0xB0D6E7), || {
        let budget = BudgetSpec::new().node_budget(2).build();
        let workers: Vec<_> = [Phase::Hom, Phase::Cover]
            .into_iter()
            .map(|phase| {
                let budget = budget.clone();
                model::spawn(move || {
                    let _g = install(budget.clone());
                    let mut meter = Meter::start(phase);
                    while meter.tick() {}
                })
            })
            .collect();
        let canceller = {
            let budget = budget.clone();
            model::spawn(move || budget.cancel())
        };
        for worker in workers {
            worker.join();
        }
        canceller.join();
        let hits = budget.hits();
        assert_eq!(
            budget.abandoned(Phase::Hom) + budget.abandoned(Phase::Cover),
            2
        );
        assert_eq!(hits.deadline_hits + hits.node_hits, 2);
    });
    eprintln!("model budget_random: {}", report.summary());
    assert!(report.ok(), "{}", report.summary());
}

#[test]
fn post_cancel_meters_always_classify_as_deadline() {
    let _ = warm();
    let report = model::check(&model::Config::dfs(2), || {
        let budget = Budget::unlimited();
        let canceller = {
            let budget = budget.clone();
            model::spawn(move || budget.cancel())
        };
        canceller.join();
        let worker = {
            let budget = budget.clone();
            model::spawn(move || {
                let _g = install(budget.clone());
                let mut meter = Meter::start(Phase::Plan);
                assert!(!meter.tick(), "a cancelled budget refuses immediately");
            })
        };
        worker.join();
        let hits = budget.hits();
        assert_eq!(hits.deadline_hits, 1, "classified as a deadline stop");
        assert_eq!(hits.node_hits, 0);
        assert_eq!(budget.abandoned(Phase::Plan), 1);
    });
    eprintln!("model budget_cancel: {}", report.summary());
    assert!(report.ok(), "{}", report.summary());
    assert!(report.exhaustive, "DFS must exhaust the bounded schedules");
}
