//! Bounded, deadline-aware admission control with honest load shedding.
//!
//! The network front-end does not hand requests straight to workers — it
//! offers them to an [`AdmissionQueue`], which admits or *sheds* at
//! arrival time. Shedding is never silent: every shed carries a
//! [`ShedReason`], and the wire layer answers it with an explicit `shed`
//! response whose completeness marker is the honest
//! [`Completeness::DeadlineExceeded`](viewplan_obs::Completeness) — the
//! client learns its request did no work, rather than timing out against
//! a queue that was never going to reach it.
//!
//! Three admission verdicts:
//!
//! * **queue full** — the bounded queue is at capacity. Admitting more
//!   would only move the failure from an instant, cheap rejection to a
//!   slow, expensive timeout (and take every other request's latency
//!   down with it).
//! * **deadline unmeetable** — reject-on-arrival: the queue projects its
//!   wait as `queue length × EWMA service time` and sheds any request
//!   whose deadline falls inside that projection. This is the classic
//!   overload stabilizer: work that would be dead on arrival is never
//!   admitted, so the server's effort goes only to requests that can
//!   still make their deadlines.
//! * **shutting down** — the queue is closed; drain-in-progress.
//!
//! The service-time estimate is an exponentially weighted moving average
//! (`new = old·7/8 + sample/8`) updated by workers on completion —
//! cheap, lock-free, and deliberately coarse: admission needs the right
//! order of magnitude, not a forecast.
//!
//! Shutdown semantics support graceful drain: after [`AdmissionQueue::
//! close`], offers shed with [`ShedReason::ShuttingDown`] but
//! [`AdmissionQueue::take`] keeps returning already-admitted work until
//! the queue is empty — an admitted request is a promise.

use std::collections::VecDeque;
use std::time::{Duration, Instant};
use viewplan_obs as obs;
use viewplan_sync::{AtomicU64, Condvar, Mutex, Ordering};

/// Why a request was refused at admission.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ShedReason {
    /// The bounded queue is at capacity.
    QueueFull,
    /// Projected queue wait exceeds the request's deadline.
    DeadlineUnmeetable,
    /// The server is draining for shutdown.
    ShuttingDown,
}

impl ShedReason {
    /// Stable wire label for this reason.
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::DeadlineUnmeetable => "deadline_unmeetable",
            ShedReason::ShuttingDown => "shutting_down",
        }
    }
}

/// One admitted request, stamped with its arrival time and deadline.
pub struct Admitted<T> {
    /// The caller's payload.
    pub item: T,
    /// Absolute deadline, if the request carried one.
    pub deadline: Option<Instant>,
    enqueued: Instant,
}

impl<T> Admitted<T> {
    /// Time this request spent queued so far.
    pub fn queue_wait(&self) -> Duration {
        self.enqueued.elapsed()
    }

    /// True when the deadline passed while the request sat in the queue
    /// — the worker should answer with an honest shed instead of doing
    /// work whose result nobody is waiting for.
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Time remaining until the deadline (None = unbounded).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

struct State<T> {
    queue: VecDeque<Admitted<T>>,
    closed: bool,
}

/// A bounded MPMC queue with deadline-aware admission (see the module
/// docs). `offer` never blocks; `take` blocks until work arrives or the
/// queue is closed and drained.
pub struct AdmissionQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
    /// EWMA of per-request service time, microseconds. Zero until the
    /// first completion — projection starts optimistic, which only
    /// means the first few requests are admitted on queue length alone.
    service_ewma_us: AtomicU64,
    shed: AtomicU64,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` waiting requests (clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> AdmissionQueue<T> {
        AdmissionQueue {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            service_ewma_us: AtomicU64::new(0),
            shed: AtomicU64::new(0),
        }
    }

    /// Offers a request. Returns the payload back with a [`ShedReason`]
    /// when admission refuses it, so the caller can answer honestly.
    pub fn offer(&self, item: T, deadline: Option<Instant>) -> Result<(), (T, ShedReason)> {
        let mut state = self.state.lock();
        let reason = if state.closed {
            Some(ShedReason::ShuttingDown)
        } else if state.queue.len() >= self.capacity {
            Some(ShedReason::QueueFull)
        } else if deadline
            .is_some_and(|d| Instant::now() + self.projected_wait_for(state.queue.len()) >= d)
        {
            Some(ShedReason::DeadlineUnmeetable)
        } else {
            None
        };
        match reason {
            Some(reason) => {
                drop(state);
                self.shed_with(item, reason)
            }
            None => {
                state.queue.push_back(Admitted {
                    item,
                    deadline,
                    enqueued: Instant::now(),
                });
                drop(state);
                self.ready.notify_one();
                Ok(())
            }
        }
    }

    fn shed_with(&self, item: T, reason: ShedReason) -> Result<(), (T, ShedReason)> {
        self.record_shed();
        Err((item, reason))
    }

    /// Records a shed that happened past admission (a deadline expiring
    /// *inside* the queue), so `serve.shed` counts every shed request
    /// regardless of where it was refused.
    pub fn record_shed(&self) {
        // ordering: monotone tally; readers only want a recent count,
        // not synchronization with the shed request itself.
        self.shed.fetch_add(1, Ordering::Relaxed);
        obs::counter!("serve.shed").incr();
    }

    /// Blocks for the next admitted request; `None` once the queue is
    /// closed *and* drained. Records the queue-wait histogram.
    pub fn take(&self) -> Option<Admitted<T>> {
        let mut state = self.state.lock();
        loop {
            if let Some(job) = state.queue.pop_front() {
                drop(state);
                obs::histogram!("serve.queue_wait_us").record(job.queue_wait().as_micros() as u64);
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state);
        }
    }

    /// Worker-side completion report: folds one measured service time
    /// into the EWMA the admission projection uses.
    pub fn complete(&self, service: Duration) {
        let sample = service.as_micros() as u64;
        // ordering: deliberately racy read-modify-write — concurrent
        // completions may drop a sample, which only coarsens an estimate
        // that is already an order-of-magnitude heuristic.
        let old = self.service_ewma_us.load(Ordering::Relaxed);
        let new = if old == 0 {
            sample
        } else {
            old - old / 8 + sample / 8
        };
        // ordering: see the load above; admission tolerates stale EWMAs.
        self.service_ewma_us.store(new, Ordering::Relaxed);
    }

    /// The wait admission currently projects for a request arriving at
    /// the given queue depth.
    fn projected_wait_for(&self, depth: usize) -> Duration {
        // ordering: heuristic estimate; a stale EWMA only shifts the
        // admission projection by one sample.
        Duration::from_micros(self.service_ewma_us.load(Ordering::Relaxed) * depth as u64)
    }

    /// The wait admission currently projects for a request arriving now.
    pub fn projected_wait(&self) -> Duration {
        let depth = self.state.lock().queue.len();
        self.projected_wait_for(depth)
    }

    /// Closes the queue: future offers shed with
    /// [`ShedReason::ShuttingDown`]; already-admitted requests continue
    /// to drain through [`AdmissionQueue::take`].
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.ready.notify_all();
    }

    /// Requests currently waiting.
    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// True when no request is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total requests shed since construction.
    pub fn shed_count(&self) -> u64 {
        // ordering: monotone tally read for reporting.
        self.shed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn full_queue_sheds_with_queue_full() {
        let q = AdmissionQueue::new(2);
        assert!(q.offer(1, None).is_ok());
        assert!(q.offer(2, None).is_ok());
        let (item, reason) = q.offer(3, None).unwrap_err();
        assert_eq!((item, reason), (3, ShedReason::QueueFull));
        assert_eq!(q.shed_count(), 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn unmeetable_deadlines_are_shed_on_arrival() {
        let q = AdmissionQueue::new(64);
        // Teach the EWMA that a request takes ~10ms.
        q.complete(Duration::from_millis(10));
        assert!(q.offer(0, None).is_ok());
        assert!(q.offer(1, None).is_ok());
        // Projected wait at depth 2 is ~20ms; a 5ms deadline is dead on
        // arrival.
        let (_, reason) = q
            .offer(2, Some(Instant::now() + Duration::from_millis(5)))
            .unwrap_err();
        assert_eq!(reason, ShedReason::DeadlineUnmeetable);
        // A roomy deadline is admitted.
        assert!(q
            .offer(3, Some(Instant::now() + Duration::from_secs(5)))
            .is_ok());
    }

    #[test]
    fn close_drains_admitted_work_then_returns_none() {
        let q = Arc::new(AdmissionQueue::new(8));
        assert!(q.offer("a", None).is_ok());
        assert!(q.offer("b", None).is_ok());
        q.close();
        let (_, reason) = q.offer("c", None).unwrap_err();
        assert_eq!(reason, ShedReason::ShuttingDown);
        assert_eq!(q.take().map(|j| j.item), Some("a"));
        assert_eq!(q.take().map(|j| j.item), Some("b"));
        assert!(q.take().is_none(), "closed + drained");

        // A parked taker wakes up on close instead of hanging.
        let q2: Arc<AdmissionQueue<u32>> = Arc::new(AdmissionQueue::new(8));
        let taker = {
            let q2 = q2.clone();
            thread::spawn(move || q2.take().map(|j| j.item))
        };
        thread::sleep(Duration::from_millis(20));
        q2.close();
        assert_eq!(taker.join().ok().flatten(), None);
    }

    #[test]
    fn queue_wait_and_expiry_are_observable() {
        let q = AdmissionQueue::new(8);
        assert!(q
            .offer((), Some(Instant::now() + Duration::from_millis(1)))
            .is_ok());
        thread::sleep(Duration::from_millis(5));
        let job = q.take().expect("admitted");
        assert!(job.expired(), "deadline passed while queued");
        assert!(job.queue_wait() >= Duration::from_millis(5));
        assert_eq!(job.remaining(), Some(Duration::ZERO));
    }
}
