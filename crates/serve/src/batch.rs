//! The batch server: canonicalize → (cached) CoreCover → denormalize.
//!
//! One [`BatchServer`] owns everything shareable across a stream of
//! queries against a fixed view set:
//!
//! * the [`PreparedViews`] — the query-independent §5.2 preprocessing,
//!   computed once at construction and read read-only by every worker;
//! * the [`RewritingCache`] — answers keyed on the query canonicalized
//!   up to variable renaming.
//!
//! **The byte-identity argument.** Every request — cold or warm, serial
//! or on a pool worker — takes the same three steps:
//!
//! 1. canonicalize the incoming query into dense variable names
//!    (`__c0`, `__c1`, … by first occurrence);
//! 2. obtain the answer *for the canonical query* — by computing it, or
//!    by finding the identical canonical query in the cache;
//! 3. rename the canonical answer back through the inverse substitution.
//!
//! Step 2 never sees the caller's variable names, so whether the answer
//! was computed now or cached earlier by a differently-named variant
//! cannot influence it: both paths hold the same canonical-space value
//! (the pipeline is deterministic, including under `parallel_map` — the
//! PR 2 guarantee). Step 3 is a pure function of that value and the
//! request's own renaming. A warm hit is therefore byte-identical to a
//! cold run *by construction* — no renaming-equivariance assumption
//! about the pipeline internals is needed. The differential tests at the
//! workspace root check the claim end to end.
//!
//! Completeness and budgets: each request runs under its own budget
//! built from [`ServeConfig::budget`], and the answer carries the
//! honest [`Completeness`] marker from generation + planning. Incomplete
//! answers are served but never cached (see [`crate::cache`]).

use std::fmt::Write as _;
use std::sync::Arc;
use viewplan_containment::canonicalize;
use viewplan_core::{parallel_map, CoreCover, CoreCoverConfig, PreparedViews, Rewriting};
use viewplan_cost::{CostModel, Optimizer, PhysicalPlan, PlanError, PlannedRewriting, SizeOracle};
use viewplan_cq::{Atom, ConjunctiveQuery, Substitution, Symbol, Term, ViewSet};
use viewplan_engine::{AnnotatedStep, Engine};
use viewplan_obs as obs;
use viewplan_obs::budget::BudgetSpec;
use viewplan_obs::Completeness;

use crate::cache::RewritingCache;

/// Serving knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Generate the full CoreCover* space (all minimal rewritings,
    /// Theorem 5.1) instead of only the GMRs (Theorem 4.1).
    pub all_minimal: bool,
    /// CoreCover configuration for the generator.
    pub corecover: CoreCoverConfig,
    /// Per-request budget: a fresh budget is built from this spec for
    /// every request, so each gets its own deadline/node caps.
    pub budget: BudgetSpec,
    /// Rewriting-cache capacity in entries; `0` disables caching.
    pub cache_capacity: usize,
    /// Which execution engine the server installs while preparing views
    /// and serving requests. Defaults to the process-wide
    /// [`viewplan_engine::default_engine`] (columnar unless overridden
    /// via `VIEWPLAN_ENGINE` or the CLI's `--engine` flag).
    pub engine: Engine,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            all_minimal: false,
            corecover: CoreCoverConfig::default(),
            budget: BudgetSpec::new(),
            cache_capacity: 4096,
            engine: viewplan_engine::default_engine(),
        }
    }
}

/// The canonical-space answer for one canonical query — the unit the
/// cache stores. Denormalization turns it into a [`ServedAnswer`].
#[derive(Clone, Debug)]
pub struct CachedAnswer {
    /// Generated rewritings, in canonical variables.
    pub rewritings: Vec<Rewriting>,
    /// The chosen (M1) plan, in canonical variables.
    pub best: Option<PlannedRewriting>,
    /// Honesty marker for generation + planning.
    pub completeness: Completeness,
}

/// One request's answer, in the caller's own variable names.
#[derive(Clone, Debug)]
pub struct ServedAnswer {
    /// Generated rewritings (GMRs, or all minimal under `all_minimal`).
    pub rewritings: Vec<Rewriting>,
    /// The chosen plan under cost model M1.
    pub best: Option<PlannedRewriting>,
    /// Whether any budget truncated the work behind this answer.
    pub completeness: Completeness,
    /// Observability only: whether the answer came from the cache. This
    /// field is deliberately excluded from [`ServedAnswer::render`] —
    /// under concurrency two workers can race the same miss, so it is
    /// not deterministic, unlike everything else here.
    pub from_cache: bool,
    /// The catalog epoch of the snapshot that answered this request
    /// (0 for static deployments). Excluded from [`ServedAnswer::render`]
    /// like `from_cache`: under a live catalog the serving epoch depends
    /// on request/DDL interleaving, but the rendered answer for a given
    /// catalog *state* does not.
    pub epoch: u64,
}

impl ServedAnswer {
    /// Deterministic rendering: the bytes the differential and golden
    /// tests compare. Everything except `from_cache`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.rewritings.is_empty() {
            out.push_str("no equivalent rewriting\n");
        }
        for r in &self.rewritings {
            let _ = writeln!(out, "{r}");
        }
        if let Some(b) = &self.best {
            let _ = writeln!(out, "plan[m1]: {} (cost {})", b.plan, b.cost);
        }
        if self.completeness.is_incomplete() {
            let _ = writeln!(out, "note: result {}", self.completeness.label());
        }
        out
    }
}

/// M1 planning never consults the oracle; this satisfies the optimizer's
/// signature without pretending data exists.
struct NullOracle;

impl SizeOracle for NullOracle {
    fn relation_size(&mut self, _atom: &Atom) -> f64 {
        0.0
    }

    fn intermediate_size(
        &mut self,
        _body: &[Atom],
        _mask: u32,
        _retained: &std::collections::BTreeSet<Symbol>,
    ) -> f64 {
        0.0
    }
}

/// A multi-query server over one view set. Construct once, then call
/// [`BatchServer::serve`] per query or [`BatchServer::serve_batch`] for
/// a whole stream; the server is `Sync` and shares its prepared views
/// and cache across the worker pool by reference.
pub struct BatchServer {
    prepared: Arc<PreparedViews>,
    config: ServeConfig,
    cache: Option<Arc<RewritingCache>>,
}

impl BatchServer {
    /// A server with the default configuration.
    pub fn new(views: &ViewSet) -> BatchServer {
        BatchServer::with_config(views, ServeConfig::default())
    }

    /// A server with explicit configuration. The per-view-set
    /// preprocessing runs here, once.
    pub fn with_config(views: &ViewSet, config: ServeConfig) -> BatchServer {
        let _engine = viewplan_engine::install(config.engine);
        let prepared = Arc::new(PreparedViews::prepare(views));
        let cache = (config.cache_capacity > 0)
            .then(|| Arc::new(RewritingCache::new(config.cache_capacity)));
        BatchServer {
            prepared,
            config,
            cache,
        }
    }

    /// Assembles a server from an already-prepared snapshot and an
    /// (optionally shared) cache. This is the live catalog's swap
    /// constructor: on `add-view`/`drop-view` it prepares the new view
    /// set off the hot path, then builds the next server around the
    /// *same* cache so revalidated entries keep paying off across the
    /// epoch boundary.
    pub fn from_parts(
        prepared: Arc<PreparedViews>,
        config: ServeConfig,
        cache: Option<Arc<RewritingCache>>,
    ) -> BatchServer {
        BatchServer {
            prepared,
            config,
            cache,
        }
    }

    /// The view set this server answers over.
    pub fn views(&self) -> &ViewSet {
        self.prepared.views()
    }

    /// The prepared snapshot this server answers from.
    pub fn prepared(&self) -> &Arc<PreparedViews> {
        &self.prepared
    }

    /// This server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The catalog epoch of this server's snapshot (0 unless constructed
    /// by the live catalog).
    pub fn epoch(&self) -> u64 {
        self.prepared.epoch()
    }

    /// The rewriting cache, when caching is enabled.
    pub fn cache(&self) -> Option<&RewritingCache> {
        self.cache.as_deref()
    }

    /// A shareable handle to the cache, for the live catalog's swap path.
    pub fn cache_handle(&self) -> Option<Arc<RewritingCache>> {
        self.cache.clone()
    }

    /// Rejects queries that are ill-typed against this server's view
    /// set — before canonicalization, before the cache. An
    /// arity-mismatched query would otherwise pollute the canonical key
    /// space with entries that can only ever answer "no rewriting" (and,
    /// worse, teach callers that the mismatch was meaningful). Callers
    /// should gate [`BatchServer::serve`] on this for untrusted input.
    pub fn validate(&self, query: &ConjunctiveQuery) -> Result<(), String> {
        viewplan_analyze::validate_query_against_views(query, self.views())
    }

    /// Answers one query: canonicalize, hit the cache or run the
    /// pipeline over the prepared views, denormalize.
    pub fn serve(&self, query: &ConjunctiveQuery) -> Result<ServedAnswer, PlanError> {
        self.serve_with_spec(query, &self.config.budget)
    }

    /// [`BatchServer::serve`] under an explicit per-request budget spec —
    /// the admission layer's entry point, where each request's budget is
    /// the configured default clamped to its remaining network deadline.
    pub fn serve_with_spec(
        &self,
        query: &ConjunctiveQuery,
        spec: &BudgetSpec,
    ) -> Result<ServedAnswer, PlanError> {
        let _span = obs::span("serve.request");
        obs::counter!("serve.requests").incr();
        let started = obs::enabled().then(std::time::Instant::now);
        let out = self.serve_inner(query, spec);
        if let Some(started) = started {
            obs::histogram!("serve.request_latency_us")
                .record(started.elapsed().as_micros() as u64);
        }
        out
    }

    fn serve_inner(
        &self,
        query: &ConjunctiveQuery,
        spec: &BudgetSpec,
    ) -> Result<ServedAnswer, PlanError> {
        // Installed per request (not once at construction) because
        // `serve_batch` fans requests out across pool threads and the
        // engine override is thread-local.
        let _engine = viewplan_engine::install(self.config.engine);
        let epoch = self.epoch();
        let c = canonicalize(query);
        let Some(cache) = &self.cache else {
            let computed = Arc::new(self.compute(&c.canonical, spec)?);
            return Ok(denormalize(&computed, &c.from_canonical, false, epoch));
        };
        // Single-flight probe: concurrent requests for the same canonical
        // query elect one leader; the rest wait for its answer instead of
        // recomputing it (the duplicate-miss fix, model-checked in
        // tests/model_interleavings.rs).
        match cache.get_or_join(&c.key, epoch) {
            crate::cache::CacheProbe::Hit(hit) => {
                Ok(denormalize(&hit, &c.from_canonical, true, epoch))
            }
            crate::cache::CacheProbe::Miss(flight) => {
                // A compute error drops `flight` unpublished, aborting
                // the flight so waiting followers recompute for
                // themselves rather than inheriting the failure.
                let computed = Arc::new(self.compute(&c.canonical, spec)?);
                // The cache itself refuses incomplete answers (poisoning
                // rule), so a truncated compute is served — and shared
                // with no one — but not stored.
                flight.publish(c.canonical, computed.clone());
                Ok(denormalize(&computed, &c.from_canonical, false, epoch))
            }
        }
    }

    /// Answers a stream of queries on up to `threads` workers (the PR 2
    /// pool: order-preserving, deterministic at any thread count). The
    /// prepared views and cache are shared read-only/lock-sharded.
    pub fn serve_batch(
        &self,
        queries: &[ConjunctiveQuery],
        threads: usize,
    ) -> Vec<Result<ServedAnswer, PlanError>> {
        let _span = obs::span("serve.batch");
        parallel_map(threads, queries, |q| self.serve(q))
    }

    /// The cache-miss path: generation over prepared views + M1
    /// planning, all in canonical variable space, under this request's
    /// own budget.
    fn compute(
        &self,
        canonical: &ConjunctiveQuery,
        spec: &BudgetSpec,
    ) -> Result<CachedAnswer, PlanError> {
        let _span = obs::span("serve.compute");
        let _budget = (!spec.is_unlimited()).then(|| obs::budget::install(spec.build()));
        let generator = CoreCover::with_prepared_views(canonical, &self.prepared)
            .with_config(self.config.corecover.clone());
        let result = if self.config.all_minimal {
            generator.try_run_all_minimal()?
        } else {
            generator.try_run()?
        };
        let rewritings = result.rewritings().to_vec();
        let outcome = Optimizer::new(canonical, self.prepared.views()).try_plan_generated(
            CostModel::M1,
            result,
            &mut NullOracle,
        )?;
        Ok(CachedAnswer {
            rewritings,
            best: outcome.best,
            completeness: outcome.completeness,
        })
    }
}

/// Renames a canonical-space answer into the request's variable names —
/// a pure function of the stored value and the request's inverse
/// substitution, identical whether the value was computed or cached.
fn denormalize(
    answer: &CachedAnswer,
    back: &Substitution,
    from_cache: bool,
    epoch: u64,
) -> ServedAnswer {
    let rename_var = |v: Symbol| match back.get(v) {
        Some(Term::Var(w)) => w,
        _ => v,
    };
    ServedAnswer {
        rewritings: answer.rewritings.iter().map(|r| r.apply(back)).collect(),
        best: answer.best.as_ref().map(|p| PlannedRewriting {
            rewriting: p.rewriting.apply(back),
            plan: PhysicalPlan {
                steps: p
                    .plan
                    .steps
                    .iter()
                    .map(|s| AnnotatedStep {
                        atom: s.atom.apply(back),
                        drop_after: s.drop_after.iter().map(|&v| rename_var(v)).collect(),
                    })
                    .collect(),
            },
            cost: p.cost,
        }),
        completeness: answer.completeness,
        from_cache,
        epoch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewplan_cq::{parse_query, parse_views};
    use viewplan_obs::budget::{Fault, FaultPoint};

    /// Example 4.1 of the paper.
    fn example41_views() -> ViewSet {
        parse_views(
            "v1(A, B) :- a(A, B), a(B, B).\n\
             v2(C, D) :- a(C, E), b(C, D).",
        )
        .unwrap()
    }

    #[test]
    fn serve_answers_in_the_callers_variables() {
        let server = BatchServer::new(&example41_views());
        let q = parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)").unwrap();
        let a = server.serve(&q).unwrap();
        assert_eq!(a.rewritings.len(), 1);
        assert_eq!(a.rewritings[0].to_string(), "q(X, Y) :- v1(X, Z), v2(Z, Y)");
        assert_eq!(a.best.as_ref().unwrap().cost, 2.0);
        assert_eq!(a.completeness, Completeness::Complete);
        assert!(!a.from_cache);
        assert_eq!(a.epoch, 0, "static deployments stay at epoch 0");
        assert_eq!(server.epoch(), 0);
    }

    #[test]
    fn warm_hit_is_byte_identical_for_renamed_variants() {
        let server = BatchServer::new(&example41_views());
        let cold_server = BatchServer::with_config(
            &example41_views(),
            ServeConfig {
                cache_capacity: 0,
                ..ServeConfig::default()
            },
        );
        let q1 = parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)").unwrap();
        let q2 = parse_query("q(U, W) :- a(U, T), a(T, T), b(T, W)").unwrap();
        let miss = server.serve(&q1).unwrap();
        let hit = server.serve(&q2).unwrap();
        assert!(!miss.from_cache);
        assert!(hit.from_cache);
        let cold = cold_server.serve(&q2).unwrap();
        assert_eq!(hit.render(), cold.render());
        assert_eq!(
            hit.rewritings[0].to_string(),
            "q(U, W) :- v1(U, T), v2(T, W)"
        );
        assert_eq!(server.cache().unwrap().stats().hits, 1);
    }

    #[test]
    fn truncated_answers_are_served_but_never_cached() {
        // A deterministic fault exhausts the first homomorphism search
        // of every request's budget, so each compute comes back
        // truncated — and the poisoning rule keeps it out of the cache.
        let config = ServeConfig {
            budget: BudgetSpec::new().node_budget(u64::MAX).fault(Fault {
                point: FaultPoint::Hom,
                nth: 1,
            }),
            ..ServeConfig::default()
        };
        let server = BatchServer::with_config(&example41_views(), config);
        let q = parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)").unwrap();
        for _ in 0..2 {
            let a = server.serve(&q).unwrap();
            assert_eq!(a.completeness, Completeness::Truncated);
            assert!(!a.from_cache, "a truncated answer must not be cached");
        }
        let stats = server.cache().unwrap().stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.rejected_incomplete, 2);
    }

    #[test]
    fn batch_results_match_serial_at_any_thread_count() {
        let views = example41_views();
        let queries: Vec<ConjunctiveQuery> = (0..12)
            .map(|i| {
                // Rotate through renamed variants and a second shape.
                if i % 3 == 0 {
                    parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)").unwrap()
                } else {
                    parse_query(&format!(
                        "q(P{i}, Q{i}) :- a(P{i}, R{i}), a(R{i}, R{i}), b(R{i}, Q{i})"
                    ))
                    .unwrap()
                }
            })
            .collect();
        let reference: Vec<String> = BatchServer::new(&views)
            .serve_batch(&queries, 1)
            .into_iter()
            .map(|r| r.unwrap().render())
            .collect();
        for threads in [2, 8] {
            let out: Vec<String> = BatchServer::new(&views)
                .serve_batch(&queries, threads)
                .into_iter()
                .map(|r| r.unwrap().render())
                .collect();
            assert_eq!(out, reference, "threads = {threads}");
        }
    }

    #[test]
    fn validate_rejects_arity_mismatches_before_the_cache() {
        let server = BatchServer::new(&example41_views());
        let bad = parse_query("q(X) :- a(X, X, X)").unwrap();
        let err = server.validate(&bad).unwrap_err();
        assert!(err.contains("VP001"), "{err}");
        let ok = parse_query("q(X) :- a(X, X)").unwrap();
        assert!(server.validate(&ok).is_ok());
        // Nothing above touched the cache.
        assert_eq!(server.cache().unwrap().stats().entries, 0);
    }

    #[test]
    fn unanswerable_query_renders_no_rewriting() {
        let server = BatchServer::new(&example41_views());
        let q = parse_query("q(X) :- zzz(X, X)").unwrap();
        let a = server.serve(&q).unwrap();
        assert!(a.rewritings.is_empty());
        assert!(a.best.is_none());
        assert!(a.render().starts_with("no equivalent rewriting"));
    }
}
