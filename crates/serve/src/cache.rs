//! The rewriting cache: bounded, sharded, LRU, keyed on canonical
//! queries.
//!
//! A serving workload repeats itself — the same query template arrives
//! again and again with freshly generated variable names. The cache key
//! is therefore the query canonicalized up to variable renaming
//! ([`viewplan_containment::canonicalize`], the same canonical form the
//! containment memo cache uses), so every variant of a query hits one
//! entry. The stored value is the full canonical-space answer
//! (rewritings, chosen plan, completeness); the serving layer
//! denormalizes it back into the caller's variable names on the way out.
//!
//! **Poisoning rule.** An answer whose completeness marker is anything
//! but [`Completeness::Complete`] is *never* stored — a budget-truncated
//! answer is an artifact of one request's deadline, and caching it would
//! replay the degradation to every later (possibly unbudgeted) request.
//! This mirrors the containment cache's rule of never memoizing
//! truncated verdicts. Rejections are counted, not silent.
//!
//! **Eviction.** The cache is sharded (key-hash → shard, each an
//! independent mutex) to keep worker threads from contending on one
//! lock. Each shard holds at most `capacity / SHARDS` entries and evicts
//! its least-recently-used entry on overflow, tracked by a per-shard
//! monotone stamp bumped on every touch. The LRU victim scan is linear
//! in the shard — shards are small (hundreds of entries) and eviction is
//! off the hit path, so simplicity wins over an intrusive list.
//!
//! Counters (when stats collection is on): `serve.cache_hits`,
//! `serve.cache_misses`, `serve.cache_evictions`,
//! `serve.cache_rejected_incomplete`. The same numbers are always
//! available programmatically through [`RewritingCache::stats`],
//! independent of whether obs collection is enabled.

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use viewplan_containment::CanonicalQuery;
use viewplan_obs as obs;

use crate::batch::CachedAnswer;

/// Number of independent lock shards (power of two).
const SHARDS: usize = 8;

/// One cached entry: the canonical-space answer plus its LRU stamp.
struct Entry {
    stamp: u64,
    value: Arc<CachedAnswer>,
}

/// One shard: an independent map with its own LRU clock.
struct Shard {
    map: HashMap<CanonicalQuery, Entry>,
    tick: u64,
}

/// Point-in-time cache statistics (see [`RewritingCache::stats`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Probes that found an entry.
    pub hits: u64,
    /// Probes that found nothing.
    pub misses: u64,
    /// Entries displaced by the LRU policy.
    pub evictions: u64,
    /// Insert attempts refused because the answer was not `Complete`.
    pub rejected_incomplete: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// A bounded, sharded, LRU map from canonical queries to served answers.
pub struct RewritingCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    rejected_incomplete: AtomicU64,
}

impl RewritingCache {
    /// A cache holding at most (roughly) `capacity` entries across all
    /// shards. `capacity` is clamped to at least one entry per shard.
    pub fn new(capacity: usize) -> RewritingCache {
        RewritingCache {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            shard_capacity: capacity.div_ceil(SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejected_incomplete: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CanonicalQuery) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Probes the cache, refreshing the entry's recency on a hit.
    pub fn get(&self, key: &CanonicalQuery) -> Option<Arc<CachedAnswer>> {
        let mut shard = self.shard(key).lock();
        shard.tick += 1;
        let now = shard.tick;
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = now;
                let value = entry.value.clone();
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                obs::counter!("serve.cache_hits").incr();
                obs::trace_event!("serve.cache_hit");
                Some(value)
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                obs::counter!("serve.cache_misses").incr();
                obs::trace_event!("serve.cache_miss");
                None
            }
        }
    }

    /// Stores an answer — unless it is incomplete (the poisoning rule;
    /// see the module docs), in which case the attempt is counted and
    /// dropped. Evicts the shard's LRU entry on overflow.
    pub fn insert(&self, key: CanonicalQuery, value: Arc<CachedAnswer>) {
        if value.completeness.is_incomplete() {
            self.rejected_incomplete.fetch_add(1, Ordering::Relaxed);
            obs::counter!("serve.cache_rejected_incomplete").incr();
            return;
        }
        let mut shard = self.shard(&key).lock();
        shard.tick += 1;
        let now = shard.tick;
        if !shard.map.contains_key(&key) && shard.map.len() >= self.shard_capacity {
            if let Some(victim) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
                obs::counter!("serve.cache_evictions").incr();
            }
        }
        shard.map.insert(key, Entry { stamp: now, value });
    }

    /// Number of resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the cache's counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            rejected_incomplete: self.rejected_incomplete.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewplan_containment::canonicalize;
    use viewplan_cq::parse_query;
    use viewplan_obs::Completeness;

    fn answer(completeness: Completeness) -> Arc<CachedAnswer> {
        Arc::new(CachedAnswer {
            rewritings: Vec::new(),
            best: None,
            completeness,
        })
    }

    fn key(src: &str) -> CanonicalQuery {
        canonicalize(&parse_query(src).unwrap()).key
    }

    #[test]
    fn hit_after_insert_and_variant_keys_collide() {
        let cache = RewritingCache::new(16);
        cache.insert(key("q(X) :- e(X, Y)"), answer(Completeness::Complete));
        assert!(cache.get(&key("q(A) :- e(A, B)")).is_some());
        assert!(cache.get(&key("q(X) :- e(Y, X)")).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn incomplete_answers_are_never_cached() {
        let cache = RewritingCache::new(16);
        cache.insert(key("q(X) :- e(X, Y)"), answer(Completeness::Truncated));
        cache.insert(
            key("q(X) :- f(X, Y)"),
            answer(Completeness::DeadlineExceeded),
        );
        assert!(cache.is_empty());
        assert_eq!(cache.stats().rejected_incomplete, 2);
    }

    #[test]
    fn lru_eviction_keeps_recently_used_entries() {
        // Capacity 8 over 8 shards = 1 entry per shard: inserting two
        // keys that land in the same shard must evict the stale one.
        let cache = RewritingCache::new(8);
        let keys: Vec<CanonicalQuery> = (0..64)
            .map(|i| key(&format!("q(X) :- p{i}(X, Y)")))
            .collect();
        for k in &keys {
            cache.insert(k.clone(), answer(Completeness::Complete));
        }
        assert!(cache.len() <= 8);
        assert!(cache.stats().evictions >= 56);
        // The most recent insert in some shard is still resident.
        assert!(cache.get(keys.last().unwrap()).is_some());
    }
}
