//! The rewriting cache: bounded, sharded, LRU, keyed on canonical
//! queries, versioned by catalog epoch.
//!
//! A serving workload repeats itself — the same query template arrives
//! again and again with freshly generated variable names. The cache key
//! is therefore the query canonicalized up to variable renaming
//! ([`viewplan_containment::canonicalize`], the same canonical form the
//! containment memo cache uses), so every variant of a query hits one
//! entry. The stored value is the full canonical-space answer
//! (rewritings, chosen plan, completeness); the serving layer
//! denormalizes it back into the caller's variable names on the way out.
//!
//! **Poisoning rule.** An answer whose completeness marker is anything
//! but [`Completeness::Complete`] is *never* stored — a budget-truncated
//! answer is an artifact of one request's deadline, and caching it would
//! replay the degradation to every later (possibly unbudgeted) request.
//! This mirrors the containment cache's rule of never memoizing
//! truncated verdicts. Rejections are counted, not silent.
//!
//! **Epochs and online DDL.** Under a live catalog (`add-view` /
//! `drop-view` without draining traffic) an answer is only valid for the
//! view set that computed it. Every entry therefore carries the epoch it
//! is known valid for, and [`RewritingCache::get`] only hits when the
//! entry's epoch equals the *reader's snapshot* epoch. On a catalog swap
//! the single DDL writer calls [`RewritingCache::retarget`]: entries the
//! change cannot affect are revalidated in place (their epoch is bumped
//! to the new one — the principled part: only entries whose cached
//! rewriting touches a changed view are evicted), affected entries are
//! removed, and entries left behind by races (inserted under an epoch
//! older than the swap's source) are dropped — they can never hit again.
//! An insert racing the swap lands tagged with the *computing* snapshot's
//! epoch, so a new-epoch reader treats it as a miss rather than a stale
//! answer; the next swap sweeps it out. Static deployments stay at epoch
//! 0 throughout and never pay any of this.
//!
//! **Eviction.** The cache is sharded (key-hash → shard, each an
//! independent mutex) to keep worker threads from contending on one
//! lock. Each shard holds at most `capacity / SHARDS` entries and evicts
//! its least-recently-used entry on overflow, tracked by a per-shard
//! monotone stamp bumped on every touch. The LRU victim scan is linear
//! in the shard — shards are small (hundreds of entries) and eviction is
//! off the hit path, so simplicity wins over an intrusive list.
//!
//! Counters (when stats collection is on): `serve.cache_hits`,
//! `serve.cache_misses`, `serve.cache_coalesced`,
//! `serve.cache_evictions`, `serve.cache_rejected_incomplete`,
//! `serve.cache_invalidated`. The
//! same numbers are always available programmatically through
//! [`RewritingCache::stats`], independent of whether obs collection is
//! enabled.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use viewplan_containment::CanonicalQuery;
use viewplan_cq::ConjunctiveQuery;
use viewplan_obs as obs;
use viewplan_sync::{AtomicU64, Condvar, Mutex, Ordering};

use crate::batch::CachedAnswer;

/// Number of independent lock shards (power of two).
const SHARDS: usize = 8;

/// One cached entry: the canonical query it answers (kept for
/// invalidation predicates and the differential oracle), the epoch it is
/// known valid for, its LRU stamp, and the canonical-space answer.
struct Entry {
    stamp: u64,
    epoch: u64,
    canonical: ConjunctiveQuery,
    value: Arc<CachedAnswer>,
}

/// One shard: an independent map with its own LRU clock.
struct Shard {
    map: HashMap<CanonicalQuery, Entry>,
    tick: u64,
}

/// Point-in-time cache statistics (see [`RewritingCache::stats`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Probes that found a current-epoch entry.
    pub hits: u64,
    /// Probes that found nothing (or only a wrong-epoch entry).
    pub misses: u64,
    /// Hits served by waiting on another request's in-flight compute
    /// (a subset of `hits`; see [`RewritingCache::get_or_join`]).
    pub coalesced: u64,
    /// Entries displaced by the LRU policy.
    pub evictions: u64,
    /// Insert attempts refused because the answer was not `Complete`.
    pub rejected_incomplete: u64,
    /// Entries evicted by DDL because the change could affect them.
    pub invalidated: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// What one [`RewritingCache::retarget`] pass did.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RetargetOutcome {
    /// Entries removed because the catalog change could affect them.
    pub invalidated: u64,
    /// Entries the change cannot affect, revalidated to the new epoch.
    pub revalidated: u64,
    /// Race leftovers (epoch older than the swap's source) removed.
    pub stale_dropped: u64,
}

/// Counter funnel for one cache lookup — the single registration site
/// for `serve.cache_hits` / `serve.cache_misses` (the xtask lint).
/// Both names are touched on *every* lookup (`add(0)` on the outcome
/// that did not happen): metric registration is lazy, and a workload of
/// racing concurrent misses used to leave `serve.cache_hits`
/// unregistered — and therefore absent from Prometheus/stats snapshots —
/// until the first hit landed, which made exposition output
/// thread-count-dependent. The exposition side holds up the other end
/// of the bargain by rendering registered counters even at zero, so
/// both series appear from the very first probe.
fn note_lookup(hit: bool) {
    let hits = obs::counter!("serve.cache_hits");
    let misses = obs::counter!("serve.cache_misses");
    if hit {
        hits.incr();
        misses.add(0);
        obs::trace_event!("serve.cache_hit");
    } else {
        misses.incr();
        hits.add(0);
        obs::trace_event!("serve.cache_miss");
    }
}

/// One in-flight compute for a `(key, epoch)` pair. The leader publishes
/// the finished answer (or an abort) through `state`; followers wait on
/// `ready` instead of redundantly recomputing the same canonical query.
struct Flight {
    state: Mutex<FlightState>,
    ready: Condvar,
}

enum FlightState {
    /// The leader is still computing.
    Pending,
    /// The leader finished with a complete answer; followers share it.
    Published(Arc<CachedAnswer>),
    /// The leader failed, was dropped, or produced an incomplete answer
    /// (which the poisoning rule forbids sharing — a follower with a
    /// healthier budget must recompute rather than inherit truncation).
    Aborted,
}

/// The outcome of [`RewritingCache::get_or_join`].
pub enum CacheProbe<'a> {
    /// A usable answer: resident in the cache, or published by a
    /// concurrent leader this probe coalesced onto.
    Hit(Arc<CachedAnswer>),
    /// This probe is the leader for its `(key, epoch)`: compute the
    /// answer and call [`FlightGuard::publish`] (dropping the guard
    /// without publishing aborts, waking followers to recompute).
    Miss(FlightGuard<'a>),
}

/// Leadership token for one in-flight compute (see [`CacheProbe::Miss`]).
pub struct FlightGuard<'a> {
    cache: &'a RewritingCache,
    key: CanonicalQuery,
    epoch: u64,
    flight: Arc<Flight>,
    done: bool,
}

impl FlightGuard<'_> {
    /// Stores the computed answer (subject to the cache's poisoning
    /// rule) and wakes followers: a complete answer is shared with them
    /// directly; an incomplete one aborts the flight so each follower
    /// recomputes under its own budget.
    pub fn publish(mut self, canonical: ConjunctiveQuery, value: Arc<CachedAnswer>) {
        self.done = true;
        let complete = !value.completeness.is_incomplete();
        self.cache
            .insert(self.key.clone(), canonical, value.clone(), self.epoch);
        let state = if complete {
            FlightState::Published(value)
        } else {
            FlightState::Aborted
        };
        self.cache
            .finish(&self.key, self.epoch, &self.flight, state);
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.cache
                .finish(&self.key, self.epoch, &self.flight, FlightState::Aborted);
        }
    }
}

/// A bounded, sharded, LRU map from canonical queries to served answers,
/// versioned by catalog epoch.
pub struct RewritingCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    /// In-flight computes by `(key, epoch)`: the epoch is part of the
    /// key so a request on a newer catalog snapshot never coalesces onto
    /// (or waits for) a pre-swap compute.
    inflight: Mutex<HashMap<(CanonicalQuery, u64), Arc<Flight>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    rejected_incomplete: AtomicU64,
    invalidated: AtomicU64,
}

impl RewritingCache {
    /// A cache holding at most (roughly) `capacity` entries across all
    /// shards. `capacity` is clamped to at least one entry per shard.
    pub fn new(capacity: usize) -> RewritingCache {
        RewritingCache {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            shard_capacity: capacity.div_ceil(SHARDS).max(1),
            inflight: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            rejected_incomplete: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &CanonicalQuery) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// The raw resident-entry probe shared by [`RewritingCache::get`]
    /// and [`RewritingCache::get_or_join`]: refreshes recency on a hit,
    /// counts nothing (each public entry point tallies exactly one
    /// hit-or-miss per call, preserving hits + misses == lookups).
    fn lookup(&self, key: &CanonicalQuery, epoch: u64) -> Option<Arc<CachedAnswer>> {
        let mut shard = self.shard(key).lock();
        shard.tick += 1;
        let now = shard.tick;
        match shard.map.get_mut(key) {
            Some(entry) if entry.epoch == epoch => {
                entry.stamp = now;
                Some(entry.value.clone())
            }
            _ => None,
        }
    }

    fn note_hit(&self, coalesced: bool) {
        // ordering: monotone tallies; `stats` reads each independently.
        self.hits.fetch_add(1, Ordering::Relaxed);
        if coalesced {
            // ordering: monotone tally; see above.
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            obs::counter!("serve.cache_coalesced").incr();
        }
        note_lookup(true);
    }

    /// Probes the cache for an answer valid at `epoch` (the reader's
    /// catalog-snapshot epoch), refreshing the entry's recency on a hit.
    /// An entry tagged with any other epoch is a miss — never a stale
    /// answer — and is left for [`RewritingCache::retarget`] to settle.
    pub fn get(&self, key: &CanonicalQuery, epoch: u64) -> Option<Arc<CachedAnswer>> {
        match self.lookup(key, epoch) {
            Some(value) => {
                self.note_hit(false);
                Some(value)
            }
            None => {
                // ordering: monotone tally; `stats` reads it alone.
                self.misses.fetch_add(1, Ordering::Relaxed);
                note_lookup(false);
                None
            }
        }
    }

    /// Probes the cache with miss coalescing: concurrent requests for
    /// the same `(key, epoch)` elect one leader ([`CacheProbe::Miss`])
    /// while the rest wait for its published answer instead of
    /// recomputing it. This closes the duplicate-miss race where N
    /// identical requests, all probing before any inserted, ran N
    /// identical pipeline computes. Exactly one hit-or-miss is tallied
    /// per call (hits + misses == lookups, the model-checked invariant),
    /// and a coalesced wait counts as a hit.
    // lock-order: `inflight` and the flight's `state` are never held
    // together — the inflight guard is dropped before the state lock is
    // taken in the follower wait loop.
    pub fn get_or_join(&self, key: &CanonicalQuery, epoch: u64) -> CacheProbe<'_> {
        loop {
            if let Some(value) = self.lookup(key, epoch) {
                self.note_hit(false);
                return CacheProbe::Hit(value);
            }
            let flight = {
                let mut inflight = self.inflight.lock();
                match inflight.get(&(key.clone(), epoch)) {
                    Some(flight) => flight.clone(),
                    None => {
                        // Double-check the cache before taking the
                        // lead: publish inserts the answer *before*
                        // finish unregisters its flight, so "no flight"
                        // after a stale initial probe can mean a whole
                        // compute came and went in between — its answer
                        // is resident, and electing a second leader
                        // here would recompute it (the duplicate-miss
                        // race the model checker pins).
                        // lock-order: `inflight` is held across the
                        // shard lock inside `lookup`; no path acquires
                        // a shard lock before `inflight`.
                        if let Some(value) = self.lookup(key, epoch) {
                            drop(inflight);
                            self.note_hit(false);
                            return CacheProbe::Hit(value);
                        }
                        let flight = Arc::new(Flight {
                            state: Mutex::new(FlightState::Pending),
                            ready: Condvar::new(),
                        });
                        inflight.insert((key.clone(), epoch), flight.clone());
                        // ordering: monotone tally; see `get`.
                        self.misses.fetch_add(1, Ordering::Relaxed);
                        note_lookup(false);
                        return CacheProbe::Miss(FlightGuard {
                            cache: self,
                            key: key.clone(),
                            epoch,
                            flight,
                            done: false,
                        });
                    }
                }
            };
            let mut state = flight.state.lock();
            loop {
                match &*state {
                    FlightState::Pending => state = flight.ready.wait(state),
                    FlightState::Published(value) => {
                        let value = value.clone();
                        drop(state);
                        self.note_hit(true);
                        return CacheProbe::Hit(value);
                    }
                    // The leader gave up (error, panic, or incomplete
                    // answer): take another full pass — the next
                    // iteration elects a new leader (possibly us).
                    FlightState::Aborted => break,
                }
            }
        }
    }

    /// Resolves a flight: unregisters it and wakes every follower with
    /// the final state. Called with neither the inflight map nor the
    /// flight state held.
    // lock-order: `inflight` is released before the flight's `state` is
    // taken (same discipline as get_or_join).
    fn finish(&self, key: &CanonicalQuery, epoch: u64, flight: &Arc<Flight>, state: FlightState) {
        self.inflight.lock().remove(&(key.clone(), epoch));
        *flight.state.lock() = state;
        flight.ready.notify_all();
    }

    /// Stores an answer computed at `epoch` for `canonical` — unless it
    /// is incomplete (the poisoning rule; see the module docs), in which
    /// case the attempt is counted and dropped. Evicts the shard's LRU
    /// entry on overflow. An existing entry tagged with a *newer* epoch
    /// wins over the incoming one (a racing insert from a pre-swap
    /// compute must not clobber a revalidated or freshly computed
    /// answer).
    pub fn insert(
        &self,
        key: CanonicalQuery,
        canonical: ConjunctiveQuery,
        value: Arc<CachedAnswer>,
        epoch: u64,
    ) {
        if value.completeness.is_incomplete() {
            // ordering: monotone tally; `stats` reads it alone.
            self.rejected_incomplete.fetch_add(1, Ordering::Relaxed);
            obs::counter!("serve.cache_rejected_incomplete").incr();
            return;
        }
        let mut shard = self.shard(&key).lock();
        shard.tick += 1;
        let now = shard.tick;
        match shard.map.get(&key) {
            Some(existing) => {
                if existing.epoch > epoch {
                    return;
                }
            }
            None => {
                if shard.map.len() >= self.shard_capacity {
                    if let Some(victim) = shard
                        .map
                        .iter()
                        .min_by_key(|(_, e)| e.stamp)
                        .map(|(k, _)| k.clone())
                    {
                        shard.map.remove(&victim);
                        // ordering: monotone tally; `stats` reads it alone.
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                        obs::counter!("serve.cache_evictions").incr();
                    }
                }
            }
        }
        shard.map.insert(
            key,
            Entry {
                stamp: now,
                epoch,
                canonical,
                value,
            },
        );
    }

    /// The DDL writer's swap-time pass: settle every entry for the move
    /// from `old_epoch` to `new_epoch`. Entries at `old_epoch` for which
    /// `affected` returns false are revalidated in place (epoch bumped —
    /// the answer provably cannot change, so evicting it would be
    /// wasteful, not wrong); affected entries are removed and counted as
    /// invalidated. Entries older than `old_epoch` are race leftovers
    /// (inserted by a compute that straddled an earlier swap) and are
    /// dropped — they could never hit again.
    ///
    /// Call this *after* publishing the new snapshot: readers between the
    /// publish and this pass see plain misses (their epoch is new, the
    /// entries are still old), never stale answers.
    pub fn retarget(
        &self,
        old_epoch: u64,
        new_epoch: u64,
        affected: impl Fn(&ConjunctiveQuery, &CachedAnswer) -> bool,
    ) -> RetargetOutcome {
        let mut outcome = RetargetOutcome::default();
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.map.retain(|_, entry| {
                if entry.epoch < old_epoch {
                    outcome.stale_dropped += 1;
                    return false;
                }
                if entry.epoch == old_epoch {
                    if affected(&entry.canonical, &entry.value) {
                        outcome.invalidated += 1;
                        return false;
                    }
                    entry.epoch = new_epoch;
                    outcome.revalidated += 1;
                }
                true
            });
        }
        self.invalidated
            // ordering: monotone tally; `stats` reads it alone.
            .fetch_add(outcome.invalidated, Ordering::Relaxed);
        obs::counter!("serve.cache_invalidated").add(outcome.invalidated);
        outcome
    }

    /// Every resident entry: `(canonical query, epoch, answer)`. Order is
    /// unspecified. This is the differential oracle's window: after any
    /// DDL sequence, each current-epoch entry must render byte-identical
    /// to a cold recompute under the current catalog.
    pub fn entries(&self) -> Vec<(ConjunctiveQuery, u64, Arc<CachedAnswer>)> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .map
                    .values()
                    .map(|e| (e.canonical.clone(), e.epoch, e.value.clone()))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Number of resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the cache's counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            // ordering: monotone tallies read independently; a snapshot
            // concurrent with lookups may straddle an in-flight probe,
            // which skews a count by at most the probes still running.
            hits: self.hits.load(Ordering::Relaxed),
            // ordering: see above.
            misses: self.misses.load(Ordering::Relaxed),
            // ordering: see above.
            coalesced: self.coalesced.load(Ordering::Relaxed),
            // ordering: see above.
            evictions: self.evictions.load(Ordering::Relaxed),
            // ordering: see above.
            rejected_incomplete: self.rejected_incomplete.load(Ordering::Relaxed),
            // ordering: see above.
            invalidated: self.invalidated.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewplan_containment::canonicalize;
    use viewplan_cq::parse_query;
    use viewplan_obs::Completeness;

    fn answer(completeness: Completeness) -> Arc<CachedAnswer> {
        Arc::new(CachedAnswer {
            rewritings: Vec::new(),
            best: None,
            completeness,
        })
    }

    fn keyed(src: &str) -> (CanonicalQuery, ConjunctiveQuery) {
        let c = canonicalize(&parse_query(src).unwrap());
        (c.key, c.canonical)
    }

    fn key(src: &str) -> CanonicalQuery {
        keyed(src).0
    }

    fn put(cache: &RewritingCache, src: &str, completeness: Completeness, epoch: u64) {
        let (k, canonical) = keyed(src);
        cache.insert(k, canonical, answer(completeness), epoch);
    }

    #[test]
    fn hit_after_insert_and_variant_keys_collide() {
        let cache = RewritingCache::new(16);
        put(&cache, "q(X) :- e(X, Y)", Completeness::Complete, 0);
        assert!(cache.get(&key("q(A) :- e(A, B)"), 0).is_some());
        assert!(cache.get(&key("q(X) :- e(Y, X)"), 0).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn incomplete_answers_are_never_cached() {
        let cache = RewritingCache::new(16);
        put(&cache, "q(X) :- e(X, Y)", Completeness::Truncated, 0);
        put(&cache, "q(X) :- f(X, Y)", Completeness::DeadlineExceeded, 0);
        assert!(cache.is_empty());
        assert_eq!(cache.stats().rejected_incomplete, 2);
    }

    #[test]
    fn lru_eviction_keeps_recently_used_entries() {
        // Capacity 8 over 8 shards = 1 entry per shard: inserting two
        // keys that land in the same shard must evict the stale one.
        let cache = RewritingCache::new(8);
        let sources: Vec<String> = (0..64).map(|i| format!("q(X) :- p{i}(X, Y)")).collect();
        for src in &sources {
            put(&cache, src, Completeness::Complete, 0);
        }
        assert!(cache.len() <= 8);
        assert!(cache.stats().evictions >= 56);
        // The most recent insert in some shard is still resident.
        assert!(cache.get(&key(sources.last().unwrap()), 0).is_some());
    }

    #[test]
    fn wrong_epoch_entries_miss_instead_of_serving_stale() {
        let cache = RewritingCache::new(16);
        put(&cache, "q(X) :- e(X, Y)", Completeness::Complete, 0);
        // A reader on a newer (or older) snapshot must not see it.
        assert!(cache.get(&key("q(X) :- e(X, Y)"), 1).is_none());
        assert!(cache.get(&key("q(X) :- e(X, Y)"), 0).is_some());
    }

    #[test]
    fn retarget_revalidates_unaffected_and_evicts_affected() {
        let cache = RewritingCache::new(64);
        put(&cache, "q(X) :- e(X, Y)", Completeness::Complete, 0);
        put(&cache, "q(X) :- f(X, Y)", Completeness::Complete, 0);
        let outcome = cache.retarget(0, 1, |canonical, _| {
            canonical.body.iter().any(|a| a.predicate.as_str() == "e")
        });
        assert_eq!(
            outcome,
            RetargetOutcome {
                invalidated: 1,
                revalidated: 1,
                stale_dropped: 0
            }
        );
        assert_eq!(cache.stats().invalidated, 1);
        // The survivor now answers at the new epoch, not the old one.
        assert!(cache.get(&key("q(X) :- f(X, Y)"), 1).is_some());
        assert!(cache.get(&key("q(X) :- f(X, Y)"), 0).is_none());
        assert!(cache.get(&key("q(X) :- e(X, Y)"), 1).is_none());
    }

    #[test]
    fn retarget_drops_race_leftovers_and_newer_epoch_wins_on_insert() {
        let cache = RewritingCache::new(64);
        // A pre-swap compute's insert (epoch 0) arriving after the
        // catalog already moved 0 → 1 → 2: the 0-tagged entry is a race
        // leftover for the 1 → 2 retarget and must be dropped.
        put(&cache, "q(X) :- e(X, Y)", Completeness::Complete, 0);
        let outcome = cache.retarget(1, 2, |_, _| false);
        assert_eq!(outcome.stale_dropped, 1);
        assert!(cache.is_empty());
        // An old-epoch insert must not clobber a newer-epoch entry.
        put(&cache, "q(X) :- f(X, Y)", Completeness::Complete, 2);
        put(&cache, "q(X) :- f(X, Y)", Completeness::Complete, 1);
        assert!(cache.get(&key("q(X) :- f(X, Y)"), 2).is_some());
    }

    #[test]
    fn entries_exposes_canonical_queries_for_the_oracle() {
        let cache = RewritingCache::new(16);
        put(&cache, "q(A, B) :- e(A, B)", Completeness::Complete, 3);
        let entries = cache.entries();
        assert_eq!(entries.len(), 1);
        let (canonical, epoch, _) = &entries[0];
        assert_eq!(*epoch, 3);
        assert_eq!(canonical.to_string(), "q(__c0, __c1) :- e(__c0, __c1)");
    }
}
