//! The live view catalog: online `add-view` / `drop-view` without
//! draining traffic.
//!
//! A [`LiveCatalog`] wraps one [`BatchServer`] behind an epoch-versioned
//! `Arc` snapshot: readers grab the current server with a brief
//! read-lock clone and then serve entirely lock-free against it, while
//! the single DDL writer (serialized by its own mutex) builds the next
//! [`PreparedViews`] snapshot **off the hot path** — the quadratic §5.2
//! view-equivalence grouping runs before any lock that readers contend
//! on — and publishes it with one pointer swap. In-flight requests keep
//! the snapshot they started with alive through their `Arc`; new
//! requests see the new epoch immediately. There is no drain, no pause,
//! no request that observes a half-applied catalog.
//!
//! **Principled cache invalidation.** The swapped-in server shares the
//! old server's [`RewritingCache`], so the writer must settle every
//! cached entry for the new epoch. Evicting everything would be sound
//! but wasteful; the point of the epoch design is that most entries are
//! *provably* unaffected by a DDL step and can be revalidated in place:
//!
//! * `drop v`: an entry is affected iff its cached rewritings or chosen
//!   plan mention `v`, or its canonical query's body does. Rewritings
//!   that never used `v` remain exactly what a cold recompute produces —
//!   removing a view only shrinks the candidate space, and (because
//!   rewritings mention only class representatives, and representatives
//!   of untouched classes are stable under removal of `v`) the surviving
//!   output is unchanged. Dropping a non-representative view of a
//!   grouped class therefore evicts nothing.
//! * `add v`: an entry is affected iff its canonical query's body shares
//!   a predicate with `v`'s definition body (or mentions `v`'s name). A
//!   view participates in a rewriting only through view tuples, which
//!   require a homomorphism from `v`'s body into the query's — no shared
//!   predicate, no tuple, no new rewriting, and no change to the cost
//!   ranking among the old ones.
//!
//! The eviction predicate is checked end to end by the differential
//! oracle (`tests/catalog_invalidation.rs`): after *any* add/drop
//! sequence, every resident entry renders byte-identical to a cold
//! recompute under the current catalog.
//!
//! **Fault injection.** `VIEWPLAN_FAULT=swap:nth` (via the shared
//! [`ServeFaults`] arm) fails the nth swap after the new snapshot is
//! built but before it is published: the catalog stays on the old epoch,
//! the cache is untouched, and the caller gets an error — a crashed DDL
//! step must never leave readers on a half-swapped catalog.

use std::collections::HashSet;
use std::sync::Arc;
use viewplan_core::PreparedViews;
use viewplan_cq::{ConjunctiveQuery, Symbol, View, ViewSet};
use viewplan_obs as obs;
use viewplan_obs::budget::FaultPoint;
use viewplan_sync::{Mutex, RwLock};

use crate::batch::{BatchServer, CachedAnswer, ServeConfig};
use crate::cache::RetargetOutcome;
use crate::fault::ServeFaults;

/// What one successful DDL step did.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DdlOutcome {
    /// The epoch the catalog now serves at.
    pub epoch: u64,
    /// Views in the new catalog.
    pub views: usize,
    /// Cache entries evicted because the change could affect them.
    pub invalidated: u64,
    /// Cache entries revalidated in place to the new epoch.
    pub revalidated: u64,
}

/// An epoch-versioned, swappable [`BatchServer`]: many lock-free
/// readers, one serialized DDL writer.
pub struct LiveCatalog {
    server: RwLock<Arc<BatchServer>>,
    /// Serializes DDL steps so epoch arithmetic and snapshot builds
    /// never race each other; never held on the serve path.
    ddl: Mutex<()>,
    faults: Arc<ServeFaults>,
}

impl LiveCatalog {
    /// A catalog starting from the given view set, with no armed faults.
    pub fn new(views: &ViewSet, config: ServeConfig) -> LiveCatalog {
        LiveCatalog::with_faults(views, config, Arc::new(ServeFaults::new(None)))
    }

    /// A catalog sharing a fault arm with the network front-end (so one
    /// `VIEWPLAN_FAULT=swap:nth` countdown spans both layers).
    pub fn with_faults(
        views: &ViewSet,
        config: ServeConfig,
        faults: Arc<ServeFaults>,
    ) -> LiveCatalog {
        LiveCatalog {
            server: RwLock::new(Arc::new(BatchServer::with_config(views, config))),
            ddl: Mutex::new(()),
            faults,
        }
    }

    /// The shared serving-layer fault arm.
    pub fn faults(&self) -> &Arc<ServeFaults> {
        &self.faults
    }

    /// The current serving snapshot. The returned `Arc` pins the
    /// snapshot (and its epoch) for the caller's whole request, however
    /// many swaps happen meanwhile.
    pub fn server(&self) -> Arc<BatchServer> {
        self.server.read().clone()
    }

    /// The epoch currently being served.
    pub fn epoch(&self) -> u64 {
        self.server.read().epoch()
    }

    /// Adds a view under a fresh epoch. Rejects duplicate names and
    /// definitions whose body conflicts with the catalog's predicate
    /// arities (the same VP001 gate the serve path applies to queries).
    pub fn add_view(&self, view: View) -> Result<DdlOutcome, String> {
        let _ddl = self.ddl.lock();
        let current = self.server();
        let name = view.name();
        if current.views().get(name).is_some() {
            return Err(format!("view `{name}` already exists"));
        }
        current
            .validate(&view.definition)
            .map_err(|e| format!("invalid view definition: {e}"))?;
        let mut views = current.views().clone();
        views.push(view.clone());
        let body_preds: HashSet<Symbol> =
            view.definition.body.iter().map(|a| a.predicate).collect();
        self.swap_to(&current, views, move |canonical, _| {
            canonical
                .body
                .iter()
                .any(|a| a.predicate == name || body_preds.contains(&a.predicate))
        })
    }

    /// Drops every view named `name` under a fresh epoch.
    pub fn drop_view(&self, name: Symbol) -> Result<DdlOutcome, String> {
        let _ddl = self.ddl.lock();
        let current = self.server();
        if current.views().get(name).is_none() {
            return Err(format!("unknown view `{name}`"));
        }
        let views =
            ViewSet::from_views(current.views().iter().filter(|v| v.name() != name).cloned());
        self.swap_to(&current, views, move |canonical, answer| {
            mentions(canonical, name)
                || answer.rewritings.iter().any(|r| mentions(r, name))
                || answer.best.as_ref().is_some_and(|b| {
                    mentions(&b.rewriting, name)
                        || b.plan.steps.iter().any(|s| s.atom.predicate == name)
                })
        })
    }

    /// The common swap tail (DDL lock held): prepare the new snapshot
    /// off the hot path, publish it, then settle the shared cache.
    // lock-order: the `ddl` mutex (held by the caller) is always taken
    // before the `server` write lock, and the write lock is released
    // before the cache's shard locks (inside retarget) are touched.
    fn swap_to(
        &self,
        current: &Arc<BatchServer>,
        views: ViewSet,
        affected: impl Fn(&ConjunctiveQuery, &CachedAnswer) -> bool,
    ) -> Result<DdlOutcome, String> {
        let old_epoch = current.epoch();
        let new_epoch = old_epoch + 1;
        let prepared = {
            // Same engine the server installs per request: the grouping
            // pass may evaluate views, and the override is thread-local.
            let _engine = viewplan_engine::install(current.config().engine);
            Arc::new(PreparedViews::prepare_with_epoch(&views, new_epoch))
        };
        if self.faults.fires(FaultPoint::Swap) {
            return Err(format!(
                "injected swap fault: catalog stays at epoch {old_epoch}"
            ));
        }
        let next = Arc::new(BatchServer::from_parts(
            prepared,
            current.config().clone(),
            current.cache_handle(),
        ));
        *self.server.write() = next.clone();
        obs::counter!("serve.epoch_swaps").incr();
        obs::trace_event!("serve.epoch_swap");
        // Retarget strictly after publishing: a reader racing this window
        // sees plain misses (new epoch, old-tagged entries), never stale
        // answers; see `RewritingCache::retarget`.
        let outcome = match current.cache_handle() {
            Some(cache) => cache.retarget(old_epoch, new_epoch, affected),
            None => RetargetOutcome::default(),
        };
        Ok(DdlOutcome {
            epoch: new_epoch,
            views: next.views().len(),
            invalidated: outcome.invalidated,
            revalidated: outcome.revalidated,
        })
    }
}

fn mentions(q: &ConjunctiveQuery, name: Symbol) -> bool {
    q.body.iter().any(|a| a.predicate == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use viewplan_cq::{parse_query, parse_views};
    use viewplan_obs::budget::Fault;

    fn example41_views() -> ViewSet {
        parse_views(
            "v1(A, B) :- a(A, B), a(B, B).\n\
             v2(C, D) :- a(C, E), b(C, D).",
        )
        .unwrap()
    }

    fn view(src: &str) -> View {
        View {
            definition: parse_query(src).unwrap(),
        }
    }

    #[test]
    fn add_view_swaps_epoch_and_answers_improve() {
        let catalog = LiveCatalog::new(
            &parse_views("v2(C, D) :- a(C, E), b(C, D).").unwrap(),
            ServeConfig::default(),
        );
        let q = parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)").unwrap();
        let before = catalog.server().serve(&q).unwrap();
        assert!(before.rewritings.is_empty());
        assert_eq!(before.epoch, 0);

        let outcome = catalog
            .add_view(view("v1(A, B) :- a(A, B), a(B, B)"))
            .unwrap();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.views, 2);
        // The cached "no rewriting" entry shares predicate `a` with the
        // new view, so it must be evicted — and the recompute finds the
        // rewriting the new view enables.
        assert_eq!(outcome.invalidated, 1);
        let after = catalog.server().serve(&q).unwrap();
        assert!(!after.from_cache);
        assert_eq!(after.epoch, 1);
        // Body order follows view order (v2 predates the added v1).
        assert_eq!(
            after.rewritings[0].to_string(),
            "q(X, Y) :- v2(Z, Y), v1(X, Z)"
        );
    }

    #[test]
    fn drop_view_evicts_only_entries_touching_it() {
        let catalog = LiveCatalog::new(&example41_views(), ServeConfig::default());
        let uses_both = parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)").unwrap();
        let uses_neither = parse_query("q(X) :- zzz(X, X)").unwrap();
        catalog.server().serve(&uses_both).unwrap();
        catalog.server().serve(&uses_neither).unwrap();

        let outcome = catalog.drop_view(Symbol::new("v1")).unwrap();
        assert_eq!(outcome.epoch, 1);
        assert_eq!(outcome.views, 1);
        assert_eq!((outcome.invalidated, outcome.revalidated), (1, 1));
        // The untouched entry still hits, now at the new epoch.
        let warm = catalog.server().serve(&uses_neither).unwrap();
        assert!(warm.from_cache);
        assert_eq!(warm.epoch, 1);
        // The evicted one recomputes without the dropped view.
        let cold = catalog.server().serve(&uses_both).unwrap();
        assert!(!cold.from_cache);
        assert!(cold.rewritings.is_empty());
    }

    #[test]
    fn duplicate_add_unknown_drop_and_bad_arity_are_rejected() {
        let catalog = LiveCatalog::new(&example41_views(), ServeConfig::default());
        let err = catalog.add_view(view("v1(A, B) :- b(A, B)")).unwrap_err();
        assert!(err.contains("already exists"), "{err}");
        let err = catalog.drop_view(Symbol::new("nope")).unwrap_err();
        assert!(err.contains("unknown view"), "{err}");
        let err = catalog.add_view(view("v3(A) :- a(A, A, A)")).unwrap_err();
        assert!(err.contains("VP001"), "{err}");
        assert_eq!(catalog.epoch(), 0, "rejected DDL must not swap");
    }

    #[test]
    fn swap_fault_leaves_catalog_on_the_old_epoch() {
        let faults = Arc::new(ServeFaults::new(Some(Fault {
            point: FaultPoint::Swap,
            nth: 1,
        })));
        let catalog = LiveCatalog::with_faults(&example41_views(), ServeConfig::default(), faults);
        let q = parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)").unwrap();
        catalog.server().serve(&q).unwrap();

        let err = catalog.add_view(view("v3(A, B) :- b(A, B)")).unwrap_err();
        assert!(err.contains("injected swap fault"), "{err}");
        assert_eq!(catalog.epoch(), 0);
        // The cache was untouched by the failed swap: still warm.
        assert!(catalog.server().serve(&q).unwrap().from_cache);
        // The fault is one-shot; the retry succeeds.
        let outcome = catalog.add_view(view("v3(A, B) :- b(A, B)")).unwrap();
        assert_eq!(outcome.epoch, 1);
    }

    #[test]
    fn resident_entries_match_cold_recompute_after_ddl() {
        // The differential oracle in miniature (the proptest at the
        // workspace root drives arbitrary DDL sequences through this).
        let catalog = LiveCatalog::new(&example41_views(), ServeConfig::default());
        let queries = [
            parse_query("q(X, Y) :- a(X, Z), a(Z, Z), b(Z, Y)").unwrap(),
            parse_query("q(X) :- a(X, X)").unwrap(),
            parse_query("q(X) :- zzz(X, X)").unwrap(),
        ];
        for q in &queries {
            catalog.server().serve(q).unwrap();
        }
        catalog.add_view(view("v3(A, B) :- b(A, B)")).unwrap();
        catalog.drop_view(Symbol::new("v2")).unwrap();

        let server = catalog.server();
        let cold = BatchServer::with_config(
            server.views(),
            ServeConfig {
                cache_capacity: 0,
                ..ServeConfig::default()
            },
        );
        for q in &queries {
            let warm = server.serve(q).unwrap();
            let fresh = cold.serve(q).unwrap();
            assert_eq!(warm.render(), fresh.render(), "{q}");
        }
        for (canonical, epoch, _) in server.cache().unwrap().entries() {
            assert_eq!(epoch, server.epoch(), "no stale-epoch residents");
            let warm = server.serve(&canonical).unwrap();
            let fresh = cold.serve(&canonical).unwrap();
            assert_eq!(warm.render(), fresh.render(), "{canonical}");
        }
    }
}
