//! Serving-layer fault injection.
//!
//! PR 3's `VIEWPLAN_FAULT=phase:nth` trips the *nth* budget-meter probe
//! of a search phase; this PR extends the same syntax to the network
//! front-end (`accept`, `read`, `write`) and the live catalog (`swap`).
//! Those points never pass through a search [`Meter`](
//! viewplan_obs::budget::Meter) — [`FaultPoint::is_serving`] keeps them
//! out of `fault_fires` — so the serving layer arms its own countdown
//! here: one process-wide [`ServeFaults`] per server, decremented at
//! each matching probe, firing exactly once when the countdown crosses
//! 1 → 0. The chaos harness relies on the exactly-once semantics to
//! assert "exactly one connection was sacrificed, everything else was
//! answered".

use viewplan_obs::budget::{Fault, FaultPoint};
use viewplan_sync::{AtomicU64, Ordering};

/// An armed serving-layer fault: fires exactly once, at the `nth` probe
/// of its point. A `ServeFaults` built from `None` (or from a
/// search-phase fault, which belongs to the budget subsystem) never
/// fires.
pub struct ServeFaults {
    point: Option<FaultPoint>,
    countdown: AtomicU64,
}

impl ServeFaults {
    /// Arms the countdown when `fault` names a serving-layer point;
    /// search-phase faults are left to the budget meters.
    pub fn new(fault: Option<Fault>) -> ServeFaults {
        match fault {
            Some(f) if f.point.is_serving() => ServeFaults {
                point: Some(f.point),
                countdown: AtomicU64::new(f.nth),
            },
            _ => ServeFaults {
                point: None,
                countdown: AtomicU64::new(0),
            },
        }
    }

    /// Probes the countdown at `point`: true exactly once, at the nth
    /// matching probe. Never true for a non-matching point.
    pub fn fires(&self, point: FaultPoint) -> bool {
        if self.point != Some(point) {
            return false;
        }
        // Fire on the 1 → 0 transition only; saturate at 0 so the fault
        // stays one-shot under concurrent probes.
        self.countdown
            // ordering: fetch_update's CAS loop already makes the decrement
            // exactly-once; no other memory is published by a firing fault.
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok_and(|before| before == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_once_at_the_nth_probe() {
        let faults = ServeFaults::new(Some(Fault {
            point: FaultPoint::Accept,
            nth: 3,
        }));
        assert!(!faults.fires(FaultPoint::Accept));
        assert!(!faults.fires(FaultPoint::Read), "wrong point never fires");
        assert!(!faults.fires(FaultPoint::Accept));
        assert!(faults.fires(FaultPoint::Accept), "third probe fires");
        assert!(!faults.fires(FaultPoint::Accept), "one-shot");
    }

    #[test]
    fn search_phase_faults_never_arm_the_serving_countdown() {
        let faults = ServeFaults::new(Some(Fault {
            point: FaultPoint::Hom,
            nth: 1,
        }));
        assert!(!faults.fires(FaultPoint::Hom));
        assert!(!faults.fires(FaultPoint::Accept));
        let unarmed = ServeFaults::new(None);
        assert!(!unarmed.fires(FaultPoint::Swap));
    }
}
