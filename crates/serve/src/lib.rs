//! Batched multi-query serving (the deployment shape of the paper's
//! pipeline).
//!
//! The CoreCover/CoreCover* pipeline does its expensive work per query,
//! but a deployment sees *streams* of queries over a mostly-stable view
//! set. This crate amortizes across the stream and hardens the result
//! into a real network server:
//!
//! * [`BatchServer`] — owns the per-view-set preprocessing
//!   ([`viewplan_core::PreparedViews`], computed once) and answers
//!   queries one at a time or in parallel batches over the PR 2 worker
//!   pool;
//! * [`RewritingCache`] — a bounded, sharded LRU cache of answers keyed
//!   on queries canonicalized up to variable renaming, epoch-versioned
//!   for the live catalog, with the poisoning rule that budget-truncated
//!   answers are never stored;
//! * [`LiveCatalog`] — online `add-view`/`drop-view` via epoch-versioned
//!   `Arc` snapshot swaps (one writer, many lock-free readers) with
//!   principled cache invalidation;
//! * [`AdmissionQueue`] — bounded, deadline-aware admission with honest
//!   load shedding ([`Completeness`](viewplan_obs::Completeness) on
//!   every shed, never silence);
//! * [`NetServer`] — a thread-per-core TCP front-end speaking the
//!   length-prefixed [`net`] protocol, with read/write timeouts,
//!   idle-connection reaping, graceful drain on shutdown, and
//!   serving-layer fault injection ([`fault`]).
//!
//! The correctness contract — a cached/batched answer is byte-identical
//! to a cold single-query run *against the epoch that served it* — is
//! established by construction (canonicalize → compute/hit in canonical
//! space → denormalize; see [`batch`]) and enforced end to end by the
//! workspace's differential tests.

pub mod admission;
pub mod batch;
pub mod cache;
pub mod catalog;
pub mod fault;
pub mod net;

pub use admission::{AdmissionQueue, ShedReason};
pub use batch::{BatchServer, CachedAnswer, ServeConfig, ServedAnswer};
pub use cache::{CacheProbe, CacheStats, FlightGuard, RetargetOutcome, RewritingCache};
pub use catalog::{DdlOutcome, LiveCatalog};
pub use fault::ServeFaults;
pub use net::{NetConfig, NetServer};
