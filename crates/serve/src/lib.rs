//! Batched multi-query serving (the deployment shape of the paper's
//! pipeline).
//!
//! The CoreCover/CoreCover* pipeline does its expensive work per query,
//! but a deployment sees *streams* of queries over a mostly-stable view
//! set. This crate amortizes across the stream:
//!
//! * [`BatchServer`] — owns the per-view-set preprocessing
//!   ([`viewplan_core::PreparedViews`], computed once) and answers
//!   queries one at a time or in parallel batches over the PR 2 worker
//!   pool;
//! * [`RewritingCache`] — a bounded, sharded LRU cache of answers keyed
//!   on queries canonicalized up to variable renaming, with the
//!   poisoning rule that budget-truncated answers are never stored.
//!
//! The correctness contract — a cached/batched answer is byte-identical
//! to a cold single-query run — is established by construction
//! (canonicalize → compute/hit in canonical space → denormalize; see
//! [`batch`]) and enforced end to end by the workspace's differential
//! tests.

pub mod batch;
pub mod cache;

pub use batch::{BatchServer, CachedAnswer, ServeConfig, ServedAnswer};
pub use cache::{CacheStats, RewritingCache};
